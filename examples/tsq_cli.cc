// tsq command-line shell: load a CSV of sequences (one per row) or generate
// a synthetic market, then run queries in the tsq query language.
//
//   ./build/examples/tsq_cli [--csv FILE | --stocks N | --walks N] [--len L]
//   tsq> find similar to series 17 under mv(1..40) within correlation 0.96
//   tsq> find 5 nearest to series 3 under momentum then shift(0..10) apply data
//   tsq> find pairs under mv(5..14) within correlation 0.99
//   tsq> help | stats | quit
//
// Queries can also be piped on stdin (one per line), making the shell
// scriptable:   echo "find pairs under mv(5) within correlation 0.99" |
//               ./build/examples/tsq_cli --stocks 200

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "core/engine.h"
#include "lang/compiler.h"
#include "ts/generate.h"
#include "ts/io.h"

namespace {

void PrintHelp() {
  std::printf(
      "queries:\n"
      "  find similar to series <id> under <transforms> within\n"
      "      (correlation <rho> | distance <eps>) [options]\n"
      "  find <k> nearest to series <id> under <transforms> [options]\n"
      "  find pairs under <transforms> within (correlation r | distance e)\n"
      "transforms:  mv(1..40), momentum[(s)], shift(s), ema(a), lwma(w),\n"
      "  scale(a), invert, band(lo, hi), diff2, identity; ranges lo..hi[:step];\n"
      "  compose with THEN, union with ','\n"
      "options:     using (mt|st|scan), apply (both|data), per_mbr <g>,\n"
      "  groups <g>, clustered, ordered\n"
      "commands:    help, stats, quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv;
  std::size_t stocks = 0;
  std::size_t walks = 0;
  std::size_t length = 128;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--csv") {
      csv = next();
    } else if (arg == "--stocks") {
      stocks = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--walks") {
      walks = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--len") {
      length = static_cast<std::size_t>(std::atol(next()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--csv FILE | --stocks N | --walks N] "
                   "[--len L]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<tsq::ts::Series> data;
  if (!csv.empty()) {
    auto loaded = tsq::ts::ReadCsv(csv);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", csv.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(*loaded);
    std::printf("loaded %zu sequences from %s\n", data.size(), csv.c_str());
  } else if (walks > 0) {
    tsq::ts::RandomWalkConfig config;
    config.num_series = walks;
    config.length = length;
    data = tsq::ts::GenerateRandomWalks(config);
    std::printf("generated %zu random walks of length %zu\n", walks, length);
  } else {
    tsq::ts::StockMarketConfig config;
    config.num_series = stocks > 0 ? stocks : 1068;
    config.length = length;
    data = tsq::ts::GenerateStockMarket(config);
    std::printf("generated %zu synthetic stocks of length %zu\n",
                config.num_series, length);
  }

  tsq::Stopwatch build_watch;
  tsq::core::SimilarityEngine engine(std::move(data));
  std::printf("indexed %zu sequences in %.0f ms; type 'help' for the query "
              "language\n",
              engine.size(), build_watch.ElapsedMillis());

  std::string line;
  while (true) {
    std::printf("tsq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    const auto begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r\n");
    const std::string text = line.substr(begin, end - begin + 1);
    if (text == "quit" || text == "exit") break;
    if (text == "help") {
      PrintHelp();
      continue;
    }
    if (text == "stats") {
      std::printf("sequences: %zu (length %zu), index height %zu, "
                  "record pages %zu\n",
                  engine.size(), engine.length(),
                  engine.index().tree().height(),
                  engine.dataset().record_pages());
      continue;
    }
    const auto compiled = tsq::lang::CompileQuery(text, engine);
    if (!compiled.ok()) {
      std::printf("error: %s\n", compiled.status().ToString().c_str());
      continue;
    }
    tsq::Stopwatch watch;
    const auto rendered = tsq::lang::Execute(*compiled, engine);
    if (!rendered.ok()) {
      std::printf("error: %s\n", rendered.status().ToString().c_str());
      continue;
    }
    std::printf("%s(%.1f ms)\n", rendered->c_str(), watch.ElapsedMillis());
  }
  return 0;
}
