// Subsequence matching (the Faloutsos et al. extension the paper's Section
// 2.1 cites), fused with the paper's transformation machinery: find every
// place a short pattern occurs inside long sequences — raw, and under a set
// of smoothing transformations that rescue noisy occurrences.
//
// Build & run:   ./build/examples/subsequence_scan

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "subseq/subsequence_index.h"
#include "transform/builders.h"

namespace {

tsq::ts::Series RandomWalk(std::size_t n, tsq::Rng& rng) {
  tsq::ts::Series x(n);
  double v = 0.0;
  for (double& value : x) {
    v += rng.Uniform(-1.0, 1.0);
    value = v;
  }
  return x;
}

}  // namespace

int main() {
  std::printf("Subsequence similarity search with transformations\n");
  std::printf("==================================================\n\n");
  tsq::Rng rng(1994);  // the year of the FRM paper
  const std::size_t window = 64;

  tsq::subseq::SubsequenceOptions options;
  options.window = window;
  tsq::subseq::SubsequenceIndex index(options);

  // A pattern, planted in several hosts: clean, scaled+shifted, and noisy.
  const tsq::ts::Series pattern = RandomWalk(window, rng);
  struct Plant {
    const char* kind;
    std::size_t sequence;
    std::size_t offset;
  };
  std::vector<Plant> plants;
  tsq::Stopwatch build;
  for (int h = 0; h < 40; ++h) {
    tsq::ts::Series host = RandomWalk(1000, rng);
    if (h == 3) {
      for (std::size_t i = 0; i < window; ++i) host[200 + i] = pattern[i];
      plants.push_back({"exact copy", 3, 200});
    }
    if (h == 11) {
      for (std::size_t i = 0; i < window; ++i) {
        host[500 + i] = 3.0 * pattern[i] - 40.0;
      }
      plants.push_back({"scaled + shifted", 11, 500});
    }
    if (h == 27) {
      for (std::size_t i = 0; i < window; ++i) {
        host[750 + i] = pattern[i] + 0.35 * rng.NextGaussian();
      }
      plants.push_back({"noisy copy", 27, 750});
    }
    const auto id = index.AddSequence(host);
    if (!id.ok()) {
      std::printf("add failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed %zu sequences, %zu windows -> %zu sub-trail MBRs "
              "(%.1fx compression) in %.0f ms\n\n",
              index.sequence_count(), index.window_count(),
              index.subtrail_count(),
              static_cast<double>(index.window_count()) /
                  static_cast<double>(index.subtrail_count()),
              build.ElapsedMillis());

  const auto report = [&](const char* label,
                          const std::vector<tsq::subseq::SubseqMatch>& found,
                          const tsq::subseq::SubseqStats& stats,
                          double millis) {
    std::printf("%s: %zu match(es), %llu candidate windows of %zu, "
                "%llu index nodes, %.1f ms\n",
                label, found.size(),
                static_cast<unsigned long long>(stats.candidate_windows),
                index.window_count(),
                static_cast<unsigned long long>(stats.index_nodes_accessed),
                millis);
    for (const auto& m : found) {
      const char* planted = "";
      for (const auto& plant : plants) {
        if (plant.sequence == m.sequence && plant.offset == m.offset) {
          planted = plant.kind;
        }
      }
      std::printf("  seq %2zu @ %4zu  t=%zu  D = %.3f  %s\n", m.sequence,
                  m.offset, m.transform_index, m.distance, planted);
    }
  };

  // Plain (identity) search: shift/scale-invariant via per-window
  // normalization, so the exact and the scaled copies match.
  tsq::subseq::SubseqStats stats;
  tsq::Stopwatch watch;
  auto plain = index.RangeSearch(pattern, 1.0, {}, &stats);
  if (!plain.ok()) return 1;
  report("identity search (eps = 1.0)", *plain, stats, watch.ElapsedMillis());

  // With moving averages: the noisy copy is rescued by smoothing.
  std::printf("\n");
  const auto mas = tsq::transform::MovingAverageRange(window, 2, 9);
  stats = {};
  watch.Reset();
  auto smoothed = index.RangeSearch(pattern, 1.0, mas, &stats);
  if (!smoothed.ok()) return 1;
  report("MA 2..9 search (eps = 1.0)", *smoothed, stats,
         watch.ElapsedMillis());
  return 0;
}
