// Hedging screen: the paper's introduction motivates finding stocks that
// behave "approximately the opposite way, for hedging". The inversion
// transformation (multiply by -1, Section 5.2) turns that into an ordinary
// similarity query: s hedges q when some smoothed version of -s is close to
// the smoothed q. This example also demonstrates the similarity self-join
// (Query 2) and the k-NN query.
//
// Build & run:   ./build/examples/hedging_screen

#include <algorithm>
#include <cstdio>

#include "tsq.h"

namespace {

using tsq::core::Algorithm;

std::vector<tsq::ts::Series> MarketWithInversePairs(std::size_t n) {
  tsq::ts::StockMarketConfig config;
  config.num_series = 800;
  config.length = n;
  std::vector<tsq::ts::Series> stocks = tsq::ts::GenerateStockMarket(config);
  // Plant a handful of "inverse trackers" (think: inverse ETFs) whose
  // normalized shape is the mirror image of an existing stock.
  for (std::size_t k = 0; k < 5; ++k) {
    const tsq::ts::Series& base = stocks[k * 37];
    tsq::ts::Series inverse(n);
    for (std::size_t t = 0; t < n; ++t) {
      inverse[t] = 500.0 - base[t];  // anti-correlated price path
    }
    stocks.push_back(std::move(inverse));
  }
  return stocks;
}

}  // namespace

int main() {
  std::printf("Hedging screen: inverted-similarity queries\n");
  std::printf("===========================================\n\n");
  const std::size_t n = 128;
  tsq::core::SimilarityEngine engine(MarketWithInversePairs(n));
  std::printf("universe: %zu stocks x %zu days\n\n", engine.size(), n);

  // --- Range query for anti-correlated stocks ----------------------------
  // Query 1 applies the same transformation to both sequences, so inverting
  // every t would cancel out: D(-t(s), -t(q)) == D(t(s), t(q)). The hedge
  // screen instead inverts the *query* -- find s whose smoothed shape is
  // close to the mirror image of the query's -- and keeps plain moving
  // averages as the transformation set.
  const std::size_t query_id = 0;
  tsq::core::RangeQuerySpec spec;
  spec.query = tsq::ts::AffineMap(
      tsq::ts::Denormalize(engine.dataset().normal(query_id)), -1.0, 0.0);
  for (const auto& t : tsq::transform::MovingAverageRange(n, 5, 20)) {
    spec.transforms.push_back(t);
  }
  spec.epsilon = tsq::ts::CorrelationToDistanceThreshold(0.96, n);

  const auto hedges = engine.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  if (!hedges.ok()) {
    std::printf("query failed: %s\n", hedges.status().ToString().c_str());
    return 1;
  }
  std::printf("hedge candidates for stock %zu (MA 5..20 vs the inverted "
              "query, rho >= 0.96):\n", query_id);
  std::vector<std::size_t> ids;
  for (const auto& m : hedges->range()->matches) ids.push_back(m.series_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (std::size_t id : ids) {
    // Report the plain correlation of the normal forms as a sanity check —
    // a good hedge is strongly anti-correlated.
    const double rho = tsq::ts::CrossCorrelation(
        engine.dataset().normal(query_id).values,
        engine.dataset().normal(id).values);
    std::printf("  stock %4zu   rho(normal forms) = %+.4f\n", id, rho);
  }
  if (ids.empty()) std::printf("  (none found)\n");

  // --- k-NN: the 3 best hedges, whatever the threshold --------------------
  tsq::core::KnnQuerySpec knn;
  knn.query = spec.query;  // still the inverted query
  knn.k = 3;
  knn.transforms = spec.transforms;
  const auto best = engine.Execute(knn);
  if (best.ok()) {
    std::printf("\n3 nearest hedges (k-NN under the same transformations):\n");
    for (const auto& m : best->knn()->matches) {
      std::printf("  stock %4zu under %-8s D = %.3f\n", m.series_id,
                  knn.transforms[m.transform_index].label().c_str(),
                  m.distance);
    }
  }

  // --- Self-join: all strongly coupled pairs (Query 2) --------------------
  tsq::core::JoinQuerySpec join;
  join.mode = tsq::core::JoinMode::kCorrelation;
  join.min_correlation = 0.99;
  join.transforms = tsq::transform::MovingAverageRange(n, 5, 14);
  const auto pairs = engine.Execute(join, {.planner = {.algorithm = Algorithm::kMtIndex}});
  if (pairs.ok()) {
    std::size_t distinct = 0;
    std::size_t last_a = SIZE_MAX, last_b = SIZE_MAX;
    tsq::core::JoinQueryResult sorted = *pairs->join();
    tsq::core::SortJoinMatches(&sorted.matches);
    for (const auto& m : sorted.matches) {
      if (m.a != last_a || m.b != last_b) {
        ++distinct;
        last_a = m.a;
        last_b = m.b;
      }
    }
    std::printf("\nQuery 2 self-join at rho >= 0.99 under MA 5..14:\n");
    std::printf("  %zu (pair, window) matches over %zu distinct pairs; "
                "%llu disk accesses vs %zu pages for a scan\n",
                pairs->join()->matches.size(), distinct,
                static_cast<unsigned long long>(
                    pairs->stats().disk_accesses()),
                engine.dataset().record_pages());
  }
  return 0;
}
