// Example 1.1 of the paper, on synthetic analogues of the COMPV/NYV/DECL
// indices: two volume indices track the same activity trend at different
// scales, a third tracks it noisily. Raw Euclidean distances are huge;
// normalization plus the right moving average reveals the similarity, and
// the example hunts for the *shortest* qualifying window, as the paper
// recommends.
//
// Build & run:   ./build/examples/market_indices

#include <cstdio>

#include "common/rng.h"
#include "ts/distance.h"
#include "ts/normal_form.h"
#include "ts/ops.h"

namespace {

using tsq::ts::Series;

struct Indices {
  Series compv;  // composite volume
  Series nyv;    // exchange volume (tightly coupled)
  Series decl;   // declining issues (coupled with more noise)
};

Indices MakeIndices(std::size_t n, tsq::Rng& rng) {
  Series activity(n);
  double level = 0.0;
  for (double& v : activity) {
    level += rng.Uniform(-1.0, 1.0);
    v = level;
  }
  Indices out;
  out.compv.resize(n);
  out.nyv.resize(n);
  out.decl.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.compv[t] = 50.0 + 4.0 * activity[t] + 1.2 * rng.NextGaussian();
    out.nyv[t] = 280.0 + 14.0 * activity[t] + 5.0 * rng.NextGaussian();
    out.decl[t] = 900.0 + 55.0 * activity[t] + 65.0 * rng.NextGaussian();
  }
  return out;
}

// Shortest moving-average window (1..40) whose smoothed normal forms are
// within `threshold`; 0 when none qualifies.
std::size_t ShortestQualifyingWindow(const Series& a, const Series& b,
                                     double threshold) {
  const Series na = tsq::ts::Normalize(a).values;
  const Series nb = tsq::ts::Normalize(b).values;
  for (std::size_t w = 1; w <= 40; ++w) {
    const double d =
        tsq::ts::EuclideanDistance(tsq::ts::CircularMovingAverage(na, w),
                                   tsq::ts::CircularMovingAverage(nb, w));
    if (d < threshold) return w;
  }
  return 0;
}

void Compare(const char* label_a, const Series& a, const char* label_b,
             const Series& b, double threshold) {
  std::printf("%s vs %s\n", label_a, label_b);
  std::printf("  raw Euclidean distance:        %10.1f\n",
              tsq::ts::EuclideanDistance(a, b));
  const Series na = tsq::ts::Normalize(a).values;
  const Series nb = tsq::ts::Normalize(b).values;
  std::printf("  normalized distance:           %10.2f\n",
              tsq::ts::EuclideanDistance(na, nb));
  const std::size_t w = ShortestQualifyingWindow(a, b, threshold);
  if (w == 0) {
    std::printf("  no moving average within %.2f\n\n", threshold);
    return;
  }
  const double d =
      tsq::ts::EuclideanDistance(tsq::ts::CircularMovingAverage(na, w),
                                 tsq::ts::CircularMovingAverage(nb, w));
  std::printf("  shortest qualifying MA window: %10zu days\n", w);
  std::printf("  distance after %2zu-day MA:      %10.2f  (rho = %.4f)\n\n",
              w, d,
              tsq::ts::SquaredDistanceToCorrelation(d * d, na.size()));
}

}  // namespace

int main() {
  std::printf("Example 1.1: market volume indices and moving averages\n");
  std::printf("=======================================================\n\n");
  const std::size_t n = 128;
  tsq::Rng rng(940615);  // the date in Fig. 1's captions
  const Indices indices = MakeIndices(n, rng);

  // The paper's threshold: distance < 3 (correlation ~0.96 via Eq. 9).
  const double threshold =
      tsq::ts::CorrelationToDistanceThreshold(0.96, n);
  std::printf("threshold: D < %.3f  (rho >= 0.96 by Eq. 9)\n\n", threshold);

  Compare("COMPV", indices.compv, "NYV", indices.nyv, threshold);
  Compare("COMPV", indices.compv, "DECL", indices.decl, threshold);

  std::printf(
      "As in the paper: the noisier pair needs a longer moving average\n"
      "before the underlying trend similarity crosses the threshold.\n");
  return 0;
}
