// Example 1.2 of the paper, on synthetic analogues of PCG and PCL: two
// stocks react to the same news two days apart, so their *momenta* disagree
// at the spikes; composing a 2-day shift with the momentum transformation
// (Section 3.3 / Eq. 10) aligns them. The example then runs the composed
// transformation set "shift s in 0..10, then momentum" as one indexed query.
//
// Build & run:   ./build/examples/momentum_shift

#include <cstdio>

#include "common/rng.h"
#include "ts/normal_form.h"
#include "tsq.h"

namespace {

using tsq::ts::Series;

// Two coupled price series with reaction spikes `lag` days apart.
std::pair<Series, Series> MakePricePair(std::size_t n, std::size_t lag,
                                        tsq::Rng& rng) {
  Series pcg(n), pcl(n);
  double a = 20.0, b = 25.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double shared = 0.25 * rng.NextGaussian();
    a += shared + 0.04 * rng.NextGaussian();
    b += shared + 0.04 * rng.NextGaussian();
    pcg[t] = a;
    pcl[t] = b;
  }
  pcg[60] += 7.0;        // PCG reacts on "February 3rd"
  pcl[60 + lag] += 7.0;  // PCL reacts `lag` days later
  return {pcg, pcl};
}

}  // namespace

int main() {
  std::printf("Example 1.2: momentum + time shift\n");
  std::printf("==================================\n\n");
  const std::size_t n = 128;
  tsq::Rng rng(941102);
  const auto [pcg, pcl] = MakePricePair(n, 2, rng);

  const Series npcg = tsq::ts::Normalize(pcg).values;
  const Series npcl = tsq::ts::Normalize(pcl).values;
  const Series mg = tsq::ts::CircularMomentum(npcg);
  const Series ml = tsq::ts::CircularMomentum(npcl);

  std::printf("distance between momenta:            %6.3f\n",
              tsq::ts::EuclideanDistance(mg, ml));
  std::printf("after shifting PCG's momentum right:\n");
  for (std::size_t s = 0; s <= 4; ++s) {
    std::printf("  shift %zu: D = %6.3f%s\n", s,
                tsq::ts::EuclideanDistance(tsq::ts::CircularShift(mg, s), ml),
                s == 2 ? "   <- spikes aligned" : "");
  }

  // The same discovery as one indexed query: embed PCL in a dataset of
  // distractors and ask for sequences similar to PCG under
  // "momentum followed by s-day shift" for s = 0..10 (Eq. 11 composition).
  std::printf("\nIndexed query over the composed transformation set\n");
  std::printf("---------------------------------------------------\n");
  std::vector<Series> stocks;
  stocks.push_back(pcl);  // id 0: the stock we hope to find
  tsq::ts::StockMarketConfig config;
  config.num_series = 500;
  config.length = n;
  for (auto& s : tsq::ts::GenerateStockMarket(config)) {
    stocks.push_back(std::move(s));
  }
  tsq::core::SimilarityEngine engine(std::move(stocks));

  tsq::core::RangeQuerySpec spec;
  // Time shifts applied to *both* sides of a distance cancel out, so
  // alignment queries use the transform-the-data-only semantics: each
  // candidate is compared as shift_s(momentum(s)) against momentum(q),
  // i.e. T = { shift_s o momentum } on the data, u = momentum on the query.
  spec.query = pcg;
  spec.query_transform = tsq::transform::MomentumTransform(n);
  // Lags of -5..+5 days (a circular shift by n-k is a k-day left shift).
  std::vector<tsq::transform::SpectralTransform> shifts;
  for (int lag = -5; lag <= 5; ++lag) {
    shifts.push_back(tsq::transform::ShiftTransform(
        n, static_cast<std::size_t>((static_cast<int>(n) + lag) %
                                    static_cast<int>(n))));
  }
  const std::vector momentum = {tsq::transform::MomentumTransform(n)};
  spec.transforms = tsq::transform::ComposeSpectralSets(momentum, shifts);
  spec.target = tsq::core::TransformTarget::kDataOnly;
  spec.epsilon = 6.0;  // tight enough that only an aligned momentum matches

  const auto result = engine.Execute(spec);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const tsq::core::RangeQueryResult& range = *result->range();
  std::printf("|T| = %zu composed transformations, epsilon = %.2f\n",
              spec.transforms.size(), spec.epsilon);
  std::printf("disk accesses = %llu, candidates = %llu, matches = %zu\n",
              static_cast<unsigned long long>(range.stats.disk_accesses()),
              static_cast<unsigned long long>(range.stats.candidates),
              range.matches.size());
  for (const tsq::core::Match& m : range.matches) {
    std::printf("  stock %4zu under %-18s D = %.3f%s\n", m.series_id,
                spec.transforms[m.transform_index].label().c_str(), m.distance,
                m.series_id == 0 ? "   <- PCL, found via the 2-day shift"
                                 : "");
  }
  return 0;
}
