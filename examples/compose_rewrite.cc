// Query rewriting with transformation composition (Section 3.3): a query
// phrased as a *sequence* of transformation sets -- "apply an s-day shift,
// then an m-day moving average" -- rewrites via Eq. 10/11 into a flat set
// that the MT-index machinery evaluates in a handful of index traversals.
// The example also shows the ordering optimization of Section 4.4 on a scale
// family, and the cost-based partitioner choosing MBR groups.
//
// Build & run:   ./build/examples/compose_rewrite

#include <cstdio>

#include "common/stopwatch.h"
#include "transform/partition.h"
#include "tsq.h"

namespace {

using tsq::core::Algorithm;

}  // namespace

int main() {
  std::printf("Query rewriting, ordering and cost-based partitioning\n");
  std::printf("=====================================================\n\n");
  const std::size_t n = 128;
  tsq::ts::StockMarketConfig config;
  config.num_series = 600;
  tsq::core::SimilarityEngine engine(tsq::ts::GenerateStockMarket(config));

  // --- 1. Composition: shift 0..5 then MA 5..12 --------------------------
  const auto shifts = tsq::transform::ShiftRange(n, 0, 5);
  const auto mvs = tsq::transform::MovingAverageRange(n, 5, 12);
  tsq::core::RangeQuerySpec spec;
  spec.query = tsq::ts::Denormalize(engine.dataset().normal(17));
  spec.transforms = tsq::transform::ComposeSpectralSets(shifts, mvs);
  spec.epsilon = tsq::ts::CorrelationToDistanceThreshold(0.96, n);
  std::printf("composed set: %zu shifts x %zu windows = %zu transformations\n",
              shifts.size(), mvs.size(), spec.transforms.size());

  const auto flat = engine.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  if (!flat.ok()) {
    std::printf("query failed: %s\n", flat.status().ToString().c_str());
    return 1;
  }
  std::printf("one-MBR MT-index: %llu disk accesses, %llu comparisons, "
              "%zu matches\n\n",
              static_cast<unsigned long long>(flat->stats().disk_accesses()),
              static_cast<unsigned long long>(flat->stats().comparisons),
              flat->range()->matches.size());

  // --- 2. Partitioning choices over the composed set ---------------------
  std::printf("%-22s %10s %12s %12s\n", "partitioning", "groups",
              "disk acc.", "comparisons");
  const auto report = [&](const char* name,
                          tsq::transform::Partition partition) {
    tsq::core::RangeQuerySpec run = spec;
    run.partition = std::move(partition);
    const auto result = engine.Execute(run, {.planner = {.algorithm = Algorithm::kMtIndex}});
    if (!result.ok()) return;
    std::printf("%-22s %10zu %12llu %12llu\n", name, run.partition.size(),
                static_cast<unsigned long long>(result->stats().disk_accesses()),
                static_cast<unsigned long long>(result->stats().comparisons));
  };
  report("single MBR",
         tsq::transform::PartitionAll(spec.transforms.size()));
  report("8 per MBR",
         tsq::transform::PartitionBySize(spec.transforms.size(), 8));
  report("singletons (ST)",
         tsq::transform::PartitionSingletons(spec.transforms.size()));

  // Cost-based DP over the analytic estimator.
  std::vector<tsq::transform::FeatureTransform> fts;
  for (const auto& t : spec.transforms) {
    fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
  }
  const tsq::core::TreeCostEstimator estimator(engine.index());
  const auto partition = tsq::transform::PartitionCostBased(
      spec.transforms.size(), [&](std::size_t first, std::size_t last) {
        const std::span<const tsq::transform::FeatureTransform> group(
            fts.data() + first, last - first + 1);
        return tsq::core::EstimateGroupCost(estimator, group, spec.epsilon,
                                            engine.dataset().layout());
      });
  report("cost-based DP", partition);

  // --- 3. Ordering: scale factors + binary search (Section 4.4) ----------
  std::printf("\nOrdered scale family 2..100 (Lemma 2) with binary-search "
              "post-processing:\n");
  tsq::core::RangeQuerySpec scale_spec;
  scale_spec.query = tsq::ts::Denormalize(engine.dataset().normal(3));
  scale_spec.transforms = tsq::transform::ScaleRange(n, 2.0, 100.0, 1.0);
  scale_spec.epsilon = 40.0;
  for (const bool use_ordering : {false, true}) {
    scale_spec.use_ordering = use_ordering;
    tsq::Stopwatch watch;
    const auto result = engine.Execute(
        scale_spec, {.planner = {.algorithm = Algorithm::kSequentialScan}});
    if (!result.ok()) continue;
    std::printf("  %-14s %8llu comparisons (%zu matches, %.1f ms)\n",
                use_ordering ? "binary search" : "linear sweep",
                static_cast<unsigned long long>(result->stats().comparisons),
                result->range()->matches.size(), watch.ElapsedMillis());
  }
  return 0;
}
