// Quickstart: build a similarity engine over synthetic stock data and run
// the paper's Query 1 ("find every stock with an m-day moving average
// similar to the query's") with all three algorithms plus the cost-based
// planner (the default), and a look at the transformation-MBR machinery of
// Figures 3 and 4.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "common/stopwatch.h"
#include "dft/spectrum.h"
#include "transform/transform_mbr.h"
#include "tsq.h"

namespace {

using tsq::core::Algorithm;
using tsq::core::SimilarityEngine;

void RunQueryWithAllAlgorithms(const SimilarityEngine& engine) {
  const std::size_t n = engine.length();

  tsq::core::RangeQuerySpec spec;
  // "Find all stocks that have an m-day moving average similar to that of
  // IBM" -- stock 0 plays IBM; m ranges over 1..40 as in the paper.
  spec.query = tsq::ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = tsq::transform::MovingAverageRange(n, 1, 40);
  // The paper fixes the correlation threshold at 0.96 and converts it to a
  // Euclidean threshold with Eq. 9.
  spec.epsilon = tsq::ts::CorrelationToDistanceThreshold(0.96, n);

  std::printf("Query 1: |T| = %zu moving averages, epsilon = %.3f\n",
              spec.transforms.size(), spec.epsilon);
  std::printf("%-10s %10s %12s %12s %12s %10s\n", "algorithm", "time(ms)",
              "disk acc.", "candidates", "comparisons", "matches");
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex, Algorithm::kAuto}) {
    tsq::core::ExecOptions options;
    options.planner.algorithm = algorithm;
    tsq::Stopwatch watch;
    const auto result = engine.Execute(spec, options);
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      return;
    }
    const tsq::core::QueryStats& stats = result->stats();
    std::printf("%-10s %10.2f %12llu %12llu %12llu %10llu\n",
                tsq::core::AlgorithmName(algorithm), watch.ElapsedMillis(),
                static_cast<unsigned long long>(stats.disk_accesses()),
                static_cast<unsigned long long>(stats.candidates),
                static_cast<unsigned long long>(stats.comparisons),
                static_cast<unsigned long long>(stats.output_size));
  }

  // Show a few matches: which stock, which window, how close. The default
  // options leave the algorithm at kAuto, so the planner picks the plan.
  const auto result = engine.Execute(spec);
  std::printf("\nSample matches (stock, window, distance):\n");
  std::size_t shown = 0;
  for (const tsq::core::Match& m : result->range()->matches) {
    if (m.series_id == 0) continue;  // skip the query itself
    std::printf("  stock %4zu  mv%-3zu  D = %.3f\n", m.series_id,
                m.transform_index + 1, m.distance);
    if (++shown == 5) break;
  }
  if (shown == 0) std::printf("  (only the query matched itself)\n");

  // Where did the time go, and what did the planner decide? Every result
  // carries a per-phase trace; planned queries add the candidate plans.
  std::printf("\nExplain (auto):\n%s", tsq::core::Explain(*result).c_str());
}

void ShowFigure3Decomposition() {
  // Figure 3: the second-coefficient action of MV 1..40 decomposes into a
  // mult-MBR (magnitudes x [~0.85, 1], angles x 1) and an add-MBR
  // (magnitudes + 0, angles + [~-0.96, 0]).
  const std::size_t n = 128;
  tsq::transform::FeatureLayout layout;
  std::vector<tsq::transform::FeatureTransform> fts;
  for (const auto& t : tsq::transform::MovingAverageRange(n, 1, 40)) {
    fts.push_back(t.ToFeatureTransform(layout));
  }
  const tsq::transform::TransformMbr mbr(fts, layout);
  const std::size_t md = layout.magnitude_dimension(0);
  const std::size_t ad = layout.angle_dimension(0);
  std::printf("\nFigure 3 (MV1-40 at the 2nd DFT coefficient):\n");
  std::printf("  mult-MBR: |F2| x [%.3f, %.3f], angle x [%.0f, %.0f]\n",
              mbr.mult_low(md), mbr.mult_high(md), mbr.mult_low(ad),
              mbr.mult_high(ad));
  std::printf("  add-MBR : |F2| + [%.0f, %.0f], angle + [%.3f, %.3f]\n",
              mbr.add_low(md), mbr.add_high(md), mbr.add_low(ad),
              mbr.add_high(ad));

  // Figure 4: transforming a data rectangle.
  std::vector<double> low(layout.dimensions(), 0.0);
  std::vector<double> high(layout.dimensions(), 0.0);
  low[md] = 3.0;
  high[md] = 7.0;
  low[ad] = -0.5;
  high[ad] = -0.1;
  const tsq::rstar::Rect data(low, high);
  const tsq::rstar::Rect image = mbr.Apply(data);
  std::printf("  data rect  |F2| in [%.2f, %.2f], angle in [%.2f, %.2f]\n",
              data.low(md), data.high(md), data.low(ad), data.high(ad));
  std::printf("  image rect |F2| in [%.2f, %.2f], angle in [%.2f, %.2f]\n",
              image.low(md), image.high(md), image.low(ad), image.high(ad));
}

}  // namespace

int main() {
  std::printf("tsq quickstart: similarity queries under multiple "
              "transformations\n");
  std::printf("================================================="
              "==============\n\n");

  // 1068 stocks x 128 daily closes, the shape of the paper's data set.
  tsq::ts::StockMarketConfig config;
  std::printf("Generating %zu synthetic stocks (%zu days) and building the "
              "index...\n\n",
              config.num_series, config.length);
  SimilarityEngine engine(tsq::ts::GenerateStockMarket(config));

  RunQueryWithAllAlgorithms(engine);
  ShowFigure3Decomposition();
  return 0;
}
