#include "transform/transform_mbr.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "transform/builders.h"

namespace tsq::transform {
namespace {

constexpr double kPi = std::numbers::pi;

FeatureLayout NoStatsLayout() {
  FeatureLayout layout;
  layout.include_mean_std = false;
  return layout;
}

TEST(SmallestCircularIntervalTest, NonWrappingSet) {
  const std::vector<double> angles = {-0.5, 0.0, 1.0};
  const auto [lo, hi] = SmallestCircularInterval(angles);
  EXPECT_NEAR(lo, -0.5, 1e-12);
  EXPECT_NEAR(hi, 1.0, 1e-12);
}

TEST(SmallestCircularIntervalTest, WrappingSet) {
  // {-3, 3} are 0.566 rad apart across the pi boundary.
  const std::vector<double> angles = {-3.0, 3.0};
  const auto [lo, hi] = SmallestCircularInterval(angles);
  EXPECT_NEAR(lo, 3.0, 1e-12);
  EXPECT_NEAR(hi, -3.0 + 2.0 * kPi, 1e-12);
  EXPECT_LT(hi - lo, 1.0);
}

TEST(SmallestCircularIntervalTest, SingleAngle) {
  const std::vector<double> angles = {1.25};
  const auto [lo, hi] = SmallestCircularInterval(angles);
  EXPECT_EQ(lo, hi);
  EXPECT_NEAR(lo, 1.25, 1e-12);
}

TEST(SmallestCircularIntervalTest, CoversAllInputsModulo2Pi) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> angles(1 + trial % 7);
    for (double& a : angles) a = rng.Uniform(-kPi, kPi);
    const auto [lo, hi] = SmallestCircularInterval(angles);
    EXPECT_LE(hi - lo, 2.0 * kPi + 1e-9);
    for (double a : angles) {
      // a (possibly + 2pi) must land inside [lo, hi].
      const bool inside = (a >= lo - 1e-9 && a <= hi + 1e-9) ||
                          (a + 2.0 * kPi >= lo - 1e-9 &&
                           a + 2.0 * kPi <= hi + 1e-9);
      EXPECT_TRUE(inside) << "angle " << a << " not in [" << lo << ", " << hi
                          << "]";
    }
  }
}

TEST(CircularIntervalsIntersectTest, PlainOverlap) {
  EXPECT_TRUE(CircularIntervalsIntersect(0.0, 1.0, 0.5, 2.0));
  EXPECT_FALSE(CircularIntervalsIntersect(0.0, 1.0, 1.5, 2.0));
}

TEST(CircularIntervalsIntersectTest, WrapAroundOverlap) {
  // [3.0, 3.5] wraps past pi; modulo 2pi it covers [-pi, 3.5-2pi] around
  // -3.0.
  EXPECT_TRUE(CircularIntervalsIntersect(3.0, 3.5, -3.2, -3.1));
  EXPECT_FALSE(CircularIntervalsIntersect(3.0, 3.1, -1.0, 0.0));
}

TEST(CircularIntervalsIntersectTest, FullCircleAlwaysIntersects) {
  EXPECT_TRUE(CircularIntervalsIntersect(-kPi, kPi, 17.0, 17.1));
  EXPECT_TRUE(CircularIntervalsIntersect(0.0, 7.0, 100.0, 100.0));
}

TEST(CircularIntervalsIntersectTest, AgreesWithDenseSampling) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const double a_lo = rng.Uniform(-2.0 * kPi, 2.0 * kPi);
    const double a_hi = a_lo + rng.Uniform(0.0, 2.0);
    const double b_lo = rng.Uniform(-2.0 * kPi, 2.0 * kPi);
    const double b_hi = b_lo + rng.Uniform(0.0, 2.0);
    // Exact reference: [a_lo, a_hi] meets [b_lo + 2 pi k, b_hi + 2 pi k] for
    // some integer shift k (widths here are < 2 pi, so |k| <= 2 suffices).
    bool expected = false;
    for (int k = -2; k <= 2 && !expected; ++k) {
      const double lo = b_lo + 2.0 * kPi * k;
      const double hi = b_hi + 2.0 * kPi * k;
      expected = !(a_lo > hi || lo > a_hi);
    }
    const bool actual = CircularIntervalsIntersect(a_lo, a_hi, b_lo, b_hi);
    EXPECT_EQ(actual, expected)
        << "[" << a_lo << "," << a_hi << "] vs [" << b_lo << "," << b_hi
        << "]";
  }
}

TEST(TransformMbrTest, SingletonMbrIsThePointTransform) {
  const FeatureLayout layout = NoStatsLayout();
  const std::size_t n = 128;
  const FeatureTransform ft =
      MovingAverageTransform(n, 10).ToFeatureTransform(layout);
  const TransformMbr mbr(std::span<const FeatureTransform>(&ft, 1), layout);
  EXPECT_EQ(mbr.transform_count(), 1u);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> lo(layout.dimensions()), hi(layout.dimensions());
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      const double a = rng.Uniform(-2.0, 2.0);
      const double b = rng.Uniform(-2.0, 2.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const rstar::Rect rect(lo, hi);
    const rstar::Rect via_mbr = mbr.Apply(rect);
    const rstar::Rect via_point = ft.Apply(rect);
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      EXPECT_NEAR(via_mbr.low(d), via_point.low(d), 1e-9);
      EXPECT_NEAR(via_mbr.high(d), via_point.high(d), 1e-9);
    }
  }
}

TEST(TransformMbrTest, Figure3MultAndAddMbr) {
  // Fig. 3: for MV 1..40 at the second coefficient, the mult-MBR magnitudes
  // span ~[0.84, 1] with angle-scale pinned at 1, and the add-MBR has
  // magnitude offset 0 with angle offsets in ~[-0.96, 0].
  const std::size_t n = 128;
  const FeatureLayout layout = NoStatsLayout();
  std::vector<FeatureTransform> fts;
  for (const auto& t : MovingAverageRange(n, 1, 40)) {
    fts.push_back(t.ToFeatureTransform(layout));
  }
  const TransformMbr mbr(fts, layout);
  const std::size_t md = layout.magnitude_dimension(0);
  const std::size_t ad = layout.angle_dimension(0);
  EXPECT_NEAR(mbr.mult_high(md), 1.0, 1e-9);
  EXPECT_GT(mbr.mult_low(md), 0.84);
  EXPECT_EQ(mbr.mult_low(ad), 1.0);
  EXPECT_EQ(mbr.mult_high(ad), 1.0);
  EXPECT_EQ(mbr.add_low(md), 0.0);
  EXPECT_EQ(mbr.add_high(md), 0.0);
  EXPECT_NEAR(mbr.add_high(ad), 0.0, 1e-9);
  EXPECT_GT(mbr.add_low(ad), -0.96);
}

TEST(TransformMbrTest, Equation12ContainmentProperty) {
  // The heart of Lemma 1: for every x in X and t in the MBR,
  // t(x) lies inside Apply(X).
  Rng rng(4);
  const FeatureLayout layout = NoStatsLayout();
  const std::size_t n = 128;
  const auto spectral = MovingAverageRange(n, 5, 25);
  std::vector<FeatureTransform> fts;
  for (const auto& t : spectral) fts.push_back(t.ToFeatureTransform(layout));
  const TransformMbr mbr(fts, layout);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> lo(layout.dimensions()), hi(layout.dimensions());
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      const bool angle = layout.is_angle_dimension(d);
      const double a = angle ? rng.Uniform(-kPi, kPi) : rng.Uniform(0.0, 3.0);
      const double b = angle ? rng.Uniform(-kPi, kPi) : rng.Uniform(0.0, 3.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const rstar::Rect data(lo, hi);
    const rstar::Rect image = mbr.Apply(data);
    // Random point in the data rect, random transform from the set.
    rstar::Point x(layout.dimensions());
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      x[d] = rng.Uniform(lo[d], hi[d]);
    }
    const FeatureTransform& t =
        fts[rng.UniformInt(0, static_cast<std::int64_t>(fts.size()) - 1)];
    const rstar::Point tx = t.Apply(x);
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      if (layout.is_angle_dimension(d)) {
        // Containment modulo 2pi.
        const double width = image.high(d) - image.low(d);
        double rel = std::remainder(tx[d] - image.low(d), 2.0 * kPi);
        if (rel < 0.0) rel += 2.0 * kPi;
        EXPECT_LE(rel, width + 1e-9) << "angle dim " << d;
      } else {
        EXPECT_GE(tx[d], image.low(d) - 1e-9);
        EXPECT_LE(tx[d], image.high(d) + 1e-9);
      }
    }
  }
}

TEST(TransformMbrTest, CoversMembersAndRejectsOutsiders) {
  const FeatureLayout layout = NoStatsLayout();
  const std::size_t n = 128;
  const auto spectral = MovingAverageRange(n, 5, 15);
  std::vector<FeatureTransform> fts;
  for (const auto& t : spectral) fts.push_back(t.ToFeatureTransform(layout));
  const TransformMbr mbr(fts, layout);
  for (const FeatureTransform& t : fts) {
    EXPECT_TRUE(mbr.Covers(t));
  }
  // A 40-day MA lies outside the 5..15 MBR (smaller magnitude multiplier).
  EXPECT_FALSE(mbr.Covers(
      MovingAverageTransform(n, 40).ToFeatureTransform(layout)));
}

TEST(TransformMbrTest, WrappingAngleClusterStaysTight) {
  // Shifts whose angle offsets straddle the -pi/pi seam: the circular
  // interval must be narrow, not nearly 2 pi wide.
  const FeatureLayout layout = NoStatsLayout();
  const std::size_t n = 16;
  // shift s: angle at f=1 is -2 pi s/16; s=7 -> -2.75, s=9 -> -3.53 == 2.75.
  std::vector<FeatureTransform> fts = {
      ShiftTransform(n, 7).ToFeatureTransform(layout),
      ShiftTransform(n, 9).ToFeatureTransform(layout)};
  const TransformMbr mbr(fts, layout);
  const std::size_t ad = layout.angle_dimension(0);
  EXPECT_LT(mbr.add_high(ad) - mbr.add_low(ad), 1.0);
  EXPECT_TRUE(mbr.Covers(fts[0]));
  EXPECT_TRUE(mbr.Covers(fts[1]));
}

TEST(TransformMbrTest, AppliedIntersectsMatchesApplyPlusIntersect) {
  // The fused hot-path test must agree with the compositional one on random
  // rect pairs, including angle wrap-around.
  Rng rng(99);
  const FeatureLayout layout = NoStatsLayout();
  const std::size_t n = 128;
  std::vector<FeatureTransform> fts;
  for (const auto& t : MovingAverageRange(n, 3, 20)) {
    fts.push_back(t.ToFeatureTransform(layout));
  }
  for (const auto& t : ShiftRange(n, 50, 70)) {  // wide angle offsets
    fts.push_back(t.ToFeatureTransform(layout));
  }
  const TransformMbr mbr(fts, layout);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> dlo(layout.dimensions()), dhi(layout.dimensions());
    std::vector<double> qlo(layout.dimensions()), qhi(layout.dimensions());
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      const bool angle = layout.is_angle_dimension(d);
      const double base = angle ? kPi : 4.0;
      double a = rng.Uniform(-base, base);
      double b = rng.Uniform(-base, base);
      dlo[d] = std::min(a, b);
      dhi[d] = std::max(a, b);
      a = rng.Uniform(-base, base);
      b = rng.Uniform(-base, base);
      qlo[d] = std::min(a, b);
      qhi[d] = std::max(a, b);
    }
    const rstar::Rect data(dlo, dhi), query(qlo, qhi);
    EXPECT_EQ(mbr.AppliedIntersects(data, query),
              CircularIntersects(mbr.Apply(data), query, layout))
        << "trial " << trial;
  }
}

TEST(CircularIntersectsTest, MixesLinearAndAngularDims) {
  FeatureLayout layout;
  layout.include_mean_std = false;
  layout.num_coefficients = 1;  // dims: [magnitude, angle]
  // Rects overlap in angle only modulo 2pi.
  const rstar::Rect a({1.0, 3.0}, {2.0, 3.3});
  const rstar::Rect b({1.5, -3.2}, {3.0, -3.1});
  EXPECT_TRUE(CircularIntersects(a, b, layout));
  // Same angles but disjoint magnitudes: no intersection.
  const rstar::Rect c({5.0, -3.2}, {6.0, -3.1});
  EXPECT_FALSE(CircularIntersects(a, c, layout));
}

}  // namespace
}  // namespace tsq::transform
