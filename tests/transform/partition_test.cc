#include "transform/partition.h"

#include <numeric>
#include <set>

#include "gtest/gtest.h"
#include "transform/builders.h"

namespace tsq::transform {
namespace {

// Checks that `partition` is a real partition of [0, count).
void ExpectValidPartition(const Partition& partition, std::size_t count) {
  std::set<std::size_t> seen;
  for (const auto& group : partition) {
    EXPECT_FALSE(group.empty());
    for (std::size_t t : group) {
      EXPECT_LT(t, count);
      EXPECT_TRUE(seen.insert(t).second) << "duplicate index " << t;
    }
  }
  EXPECT_EQ(seen.size(), count);
}

TEST(PartitionAllTest, OneGroupWithEverything) {
  const Partition p = PartitionAll(5);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  ExpectValidPartition(p, 5);
}

TEST(PartitionSingletonsTest, OneGroupPerTransform) {
  const Partition p = PartitionSingletons(4);
  ASSERT_EQ(p.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p[i], std::vector<std::size_t>{i});
  }
  ExpectValidPartition(p, 4);
}

TEST(PartitionBySizeTest, EvenAndRaggedGroups) {
  const Partition even = PartitionBySize(24, 6);
  EXPECT_EQ(even.size(), 4u);
  for (const auto& g : even) EXPECT_EQ(g.size(), 6u);
  ExpectValidPartition(even, 24);

  const Partition ragged = PartitionBySize(10, 4);
  ASSERT_EQ(ragged.size(), 3u);
  EXPECT_EQ(ragged[0].size(), 4u);
  EXPECT_EQ(ragged[2].size(), 2u);
  ExpectValidPartition(ragged, 10);
}

TEST(PartitionBySizeTest, GroupsAreContiguous) {
  const Partition p = PartitionBySize(9, 3);
  EXPECT_EQ(p[1], (std::vector<std::size_t>{3, 4, 5}));
}

TEST(PartitionIntoGroupsTest, BalancedSizes) {
  const Partition p = PartitionIntoGroups(10, 3);
  ASSERT_EQ(p.size(), 3u);
  // Sizes 4,3,3 — never differing by more than one.
  std::vector<std::size_t> sizes;
  for (const auto& g : p) sizes.push_back(g.size());
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 10u);
  EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()) -
                *std::min_element(sizes.begin(), sizes.end()),
            1u);
  ExpectValidPartition(p, 10);
}

TEST(PartitionIntoGroupsTest, ExtremeCases) {
  ExpectValidPartition(PartitionIntoGroups(7, 1), 7);
  EXPECT_EQ(PartitionIntoGroups(7, 1).size(), 1u);
  EXPECT_EQ(PartitionIntoGroups(7, 7).size(), 7u);
}

TEST(PartitionByClustersTest, NeverSpansTheGap) {
  // Fig. 9's pathology: MAs plus their inverted copies form two clusters; no
  // group may contain members of both.
  const std::size_t n = 128;
  FeatureLayout layout;
  std::vector<FeatureTransform> fts;
  const auto mvs = MovingAverageRange(n, 6, 29);
  for (const auto& t : mvs) fts.push_back(t.ToFeatureTransform(layout));
  const std::size_t cluster_size = fts.size();
  for (const auto& t : mvs) {
    fts.push_back(Inverted(t).ToFeatureTransform(layout));
  }

  for (std::size_t per_group : {4u, 8u, 16u, 48u}) {
    const Partition p = PartitionByClusters(fts, per_group);
    ExpectValidPartition(p, fts.size());
    for (const auto& group : p) {
      bool has_plain = false, has_inverted = false;
      for (std::size_t t : group) {
        (t < cluster_size ? has_plain : has_inverted) = true;
      }
      EXPECT_FALSE(has_plain && has_inverted)
          << "group spans the inter-cluster gap";
      EXPECT_LE(group.size(), per_group);
    }
  }
}

TEST(PartitionByClustersTest, SingleClusterBehavesLikeBySize) {
  const std::size_t n = 128;
  FeatureLayout layout;
  std::vector<FeatureTransform> fts;
  for (const auto& t : MovingAverageRange(n, 6, 17)) {
    fts.push_back(t.ToFeatureTransform(layout));
  }
  const Partition p = PartitionByClusters(fts, 4);
  ExpectValidPartition(p, fts.size());
  EXPECT_EQ(p.size(), 3u);
}

TEST(PartitionCostBasedTest, ConstantCostPrefersOneGroup) {
  // When every group costs the same, fewer groups win.
  const Partition p =
      PartitionCostBased(8, [](std::size_t, std::size_t) { return 1.0; });
  EXPECT_EQ(p.size(), 1u);
  ExpectValidPartition(p, 8);
}

TEST(PartitionCostBasedTest, SuperLinearCostPrefersSingletons) {
  // Cost quadratic in group size: singletons are optimal.
  const Partition p = PartitionCostBased(6, [](std::size_t a, std::size_t b) {
    const double size = static_cast<double>(b - a + 1);
    return size * size;
  });
  EXPECT_EQ(p.size(), 6u);
  ExpectValidPartition(p, 6);
}

TEST(PartitionCostBasedTest, FindsTheObviousCut) {
  // Crossing index 2..3 is penalized heavily: the DP must cut there.
  const Partition p = PartitionCostBased(6, [](std::size_t a, std::size_t b) {
    if (a <= 2 && b >= 3) return 1000.0;
    return 1.0;
  });
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(p[1], (std::vector<std::size_t>{3, 4, 5}));
}

TEST(PartitionCostBasedTest, MatchesExhaustiveOnSmallInputs) {
  // Compare the DP against brute force over all 2^(n-1) cuts.
  const auto cost = [](std::size_t a, std::size_t b) {
    const double size = static_cast<double>(b - a + 1);
    return 3.0 + size * size * 0.7 + (a % 3) * 0.9;
  };
  const std::size_t count = 10;
  double best = 1e300;
  for (std::size_t mask = 0; mask < (1u << (count - 1)); ++mask) {
    double total = 0.0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const bool cut = i + 1 == count || (mask >> i) & 1;
      if (cut) {
        total += cost(start, i);
        start = i + 1;
      }
    }
    best = std::min(best, total);
  }
  const Partition p = PartitionCostBased(count, cost);
  double dp_total = 0.0;
  for (const auto& g : p) dp_total += cost(g.front(), g.back());
  EXPECT_NEAR(dp_total, best, 1e-9);
}

}  // namespace
}  // namespace tsq::transform
