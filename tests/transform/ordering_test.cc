#include "transform/ordering.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::transform {
namespace {

// The exact counterexample sequences of the paper's Appendix A.
const std::vector<ts::Series> kAppendixSamples = {
    {10.0, 12.0, 10.0, 12.0},
    {10.0, 11.0, 12.0, 11.0},
    {11.0, 11.0, 11.0, 11.0},
};

TEST(IsScaleFamilyTest, DetectsScaleSets) {
  EXPECT_TRUE(IsScaleFamily(ScaleRange(16, 2.0, 10.0)));
  EXPECT_FALSE(IsScaleFamily(MovingAverageRange(16, 1, 4)));
  EXPECT_FALSE(IsScaleFamily(ShiftRange(16, 1, 3)));
  EXPECT_TRUE(IsScaleFamily(std::vector<SpectralTransform>{
      ScaleTransform(16, -3.0)}));  // negative scales still constant-real
}

TEST(Lemma2Test, ScaleFactorsAreOrdered) {
  // Lemma 2: "<" orders scale factors w.r.t. Euclidean distance.
  const auto scales = ScaleRange(4, 2.0, 10.0);
  EXPECT_TRUE(EmpiricallyOrdered(scales, kAppendixSamples));
  // And the dominance chain detects it.
  EXPECT_EQ(DominanceChain(scales).size(), scales.size());
}

TEST(Lemma2Test, ScaleOrderingOnRandomData) {
  Rng rng(1);
  std::vector<ts::Series> samples;
  for (int i = 0; i < 5; ++i) {
    ts::Series s(16);
    for (double& v : s) v = rng.Uniform(-10.0, 10.0);
    samples.push_back(std::move(s));
  }
  EXPECT_TRUE(EmpiricallyOrdered(ScaleRange(16, 1.0, 50.0, 7.0), samples));
}

TEST(Lemma3Test, CircularMovingAveragesNotOrdered) {
  // Lemma 3: mv2 and mv3 (circular) admit no ordering; the appendix
  // sequences witness both violation directions.
  std::vector<SpectralTransform> mvs = {MovingAverageTransform(4, 2),
                                        MovingAverageTransform(4, 3)};
  EXPECT_FALSE(EmpiricallyOrdered(mvs, kAppendixSamples));
  std::swap(mvs[0], mvs[1]);
  EXPECT_FALSE(EmpiricallyOrdered(mvs, kAppendixSamples));
}

TEST(Lemma3Test, AppendixDistancesReproduced) {
  // Both violation directions of Lemma 3:
  //   D(mv2(s2), mv2(s3)) = 1 > D(mv3(s2), mv3(s3))   and
  //   D(mv3(s1), mv3(s3)) = 0.66 > D(mv2(s1), mv2(s3)) = 0.
  // Note: the paper prints D(mv3(s2), mv3(s3)) = 0.75, but its own printed
  // sequences mv3(s2) = [11, 10.67, 11, 11.33] and mv3(s3) = [11 11 11 11]
  // give sqrt(2)/3 ~ 0.471 (a typo in the paper); the inequality — which is
  // what the lemma needs — holds either way.
  const SpectralTransform mv2 = MovingAverageTransform(4, 2);
  const SpectralTransform mv3 = MovingAverageTransform(4, 3);
  const auto d = [](const ts::Series& a, const ts::Series& b) {
    return ts::EuclideanDistance(a, b);
  };
  EXPECT_NEAR(d(mv2.ApplyToSeries(kAppendixSamples[1]),
                mv2.ApplyToSeries(kAppendixSamples[2])),
              1.0, 1e-6);
  EXPECT_NEAR(d(mv3.ApplyToSeries(kAppendixSamples[1]),
                mv3.ApplyToSeries(kAppendixSamples[2])),
              std::sqrt(2.0) / 3.0, 0.01);
  EXPECT_GT(d(mv2.ApplyToSeries(kAppendixSamples[1]),
              mv2.ApplyToSeries(kAppendixSamples[2])),
            d(mv3.ApplyToSeries(kAppendixSamples[1]),
              mv3.ApplyToSeries(kAppendixSamples[2])));
  EXPECT_NEAR(d(mv3.ApplyToSeries(kAppendixSamples[0]),
                mv3.ApplyToSeries(kAppendixSamples[2])),
              0.66, 0.01);
  EXPECT_NEAR(d(mv2.ApplyToSeries(kAppendixSamples[0]),
                mv2.ApplyToSeries(kAppendixSamples[2])),
              0.0, 1e-6);
}

TEST(DominanceChainTest, MovingAveragesHaveNoChain) {
  // |M_f| curves of different windows cross, so no coefficient-wise
  // dominance chain exists.
  EXPECT_TRUE(DominanceChain(MovingAverageRange(128, 5, 34)).empty());
}

TEST(DominanceChainTest, ScalesChainSortedByMagnitude) {
  std::vector<SpectralTransform> scales = {
      ScaleTransform(8, 5.0), ScaleTransform(8, 1.0), ScaleTransform(8, 3.0)};
  const auto chain = DominanceChain(scales);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(DominanceChainTest, SingletonAndEmptyBehaviour) {
  EXPECT_EQ(DominanceChain(std::vector<SpectralTransform>{}).size(), 0u);
  EXPECT_EQ(
      DominanceChain(std::vector<SpectralTransform>{ScaleTransform(4, 2.0)})
          .size(),
      1u);
}

TEST(MonotonePrefixLengthTest, FindsBoundary) {
  for (std::size_t boundary = 0; boundary <= 20; ++boundary) {
    std::size_t probes = 0;
    const std::size_t found =
        MonotonePrefixLength(20, [&](std::size_t i) {
          ++probes;
          return i < boundary;
        });
    EXPECT_EQ(found, std::min<std::size_t>(boundary, 20));
    EXPECT_LE(probes, 6u);  // ~log2(20) + 1
  }
}

TEST(MonotonePrefixLengthTest, EmptyDomain) {
  EXPECT_EQ(MonotonePrefixLength(0, [](std::size_t) { return true; }), 0u);
}

TEST(OrderedPostProcessingTest, BinarySearchEqualsLinearScanOnScales) {
  // The Section 4.4 claim: for ordered transforms, binary search finds
  // exactly the transforms satisfying the distance predicate.
  Rng rng(2);
  const std::size_t n = 32;
  ts::Series x(n), q(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    q[i] = rng.Uniform(-1.0, 1.0);
  }
  const auto scales = ScaleRange(n, 1.0, 30.0, 1.0);
  const double eps = 10.0;
  // Linear scan ground truth.
  std::vector<bool> qualifies;
  for (const auto& t : scales) {
    qualifies.push_back(ts::EuclideanDistance(t.ApplyToSeries(x),
                                              t.ApplyToSeries(q)) < eps);
  }
  // Must be a prefix.
  bool seen_false = false;
  for (bool v : qualifies) {
    if (!v) seen_false = true;
    if (seen_false) {
      EXPECT_FALSE(v);
    }
  }
  const std::size_t prefix =
      MonotonePrefixLength(scales.size(), [&](std::size_t i) {
        return ts::EuclideanDistance(scales[i].ApplyToSeries(x),
                                     scales[i].ApplyToSeries(q)) < eps;
      });
  std::size_t expected = 0;
  while (expected < qualifies.size() && qualifies[expected]) ++expected;
  EXPECT_EQ(prefix, expected);
}

}  // namespace
}  // namespace tsq::transform
