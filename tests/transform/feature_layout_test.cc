#include "transform/feature_layout.h"

#include "gtest/gtest.h"

namespace tsq::transform {
namespace {

TEST(FeatureLayoutTest, PaperDefaultLayout) {
  const FeatureLayout layout;
  // Section 5: mean, stddev, then (|F1|, angle F1), (|F2|, angle F2).
  EXPECT_EQ(layout.dimensions(), 6u);
  EXPECT_EQ(layout.mean_dimension(), 0u);
  EXPECT_EQ(layout.stddev_dimension(), 1u);
  EXPECT_EQ(layout.magnitude_dimension(0), 2u);
  EXPECT_EQ(layout.angle_dimension(0), 3u);
  EXPECT_EQ(layout.magnitude_dimension(1), 4u);
  EXPECT_EQ(layout.angle_dimension(1), 5u);
  EXPECT_EQ(layout.coefficient(0), 1u);  // DC term skipped
  EXPECT_EQ(layout.coefficient(1), 2u);
  EXPECT_EQ(layout.coefficient_weight(), 2.0);  // symmetry on by default
}

TEST(FeatureLayoutTest, DimensionKindPredicates) {
  const FeatureLayout layout;
  EXPECT_FALSE(layout.is_angle_dimension(0));
  EXPECT_FALSE(layout.is_magnitude_dimension(0));
  EXPECT_FALSE(layout.is_angle_dimension(1));
  EXPECT_TRUE(layout.is_magnitude_dimension(2));
  EXPECT_TRUE(layout.is_angle_dimension(3));
  EXPECT_TRUE(layout.is_magnitude_dimension(4));
  EXPECT_TRUE(layout.is_angle_dimension(5));
}

TEST(FeatureLayoutTest, NoStatsLayout) {
  FeatureLayout layout;
  layout.include_mean_std = false;
  layout.num_coefficients = 3;
  EXPECT_EQ(layout.dimensions(), 6u);
  EXPECT_EQ(layout.magnitude_dimension(0), 0u);
  EXPECT_EQ(layout.angle_dimension(2), 5u);
  EXPECT_TRUE(layout.is_magnitude_dimension(0));
  EXPECT_TRUE(layout.is_angle_dimension(1));
}

TEST(FeatureLayoutTest, FirstCoefficientOffset) {
  FeatureLayout layout;
  layout.first_coefficient = 2;
  layout.num_coefficients = 2;
  EXPECT_EQ(layout.coefficient(0), 2u);
  EXPECT_EQ(layout.coefficient(1), 3u);
}

TEST(FeatureLayoutTest, SymmetryToggleChangesWeight) {
  FeatureLayout layout;
  layout.use_symmetry = false;
  EXPECT_EQ(layout.coefficient_weight(), 1.0);
}

}  // namespace
}  // namespace tsq::transform
