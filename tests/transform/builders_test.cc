#include "transform/builders.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "dft/spectrum.h"
#include "gtest/gtest.h"
#include "ts/ops.h"
#include "ts/series.h"

namespace tsq::transform {
namespace {

constexpr double kPi = std::numbers::pi;

ts::Series RandomSeries(std::size_t n, Rng& rng) {
  ts::Series x(n);
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  return x;
}

void ExpectSeriesNear(const ts::Series& actual, const ts::Series& expected,
                      double tolerance = 1e-8) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tolerance) << "i=" << i;
  }
}

// Every spectral builder must agree with its time-domain counterpart —
// that is the whole point of formulating the operations as linear
// transformations over the Fourier representation (Section 3.1).

class BuilderEquivalenceTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::size_t n() const { return GetParam(); }
};

TEST_P(BuilderEquivalenceTest, MovingAverageMatchesTimeDomain) {
  Rng rng(n());
  const ts::Series x = RandomSeries(n(), rng);
  for (std::size_t w = 1; w <= n(); w += std::max<std::size_t>(1, n() / 7)) {
    ExpectSeriesNear(MovingAverageTransform(n(), w).ApplyToSeries(x),
                     ts::CircularMovingAverage(x, w));
  }
}

TEST_P(BuilderEquivalenceTest, MomentumMatchesTimeDomain) {
  Rng rng(n() + 1);
  const ts::Series x = RandomSeries(n(), rng);
  ExpectSeriesNear(MomentumTransform(n()).ApplyToSeries(x),
                   ts::CircularMomentum(x));
  if (n() > 3) {
    ExpectSeriesNear(MomentumTransform(n(), 3).ApplyToSeries(x),
                     ts::CircularMomentum(x, 3));
  }
}

TEST_P(BuilderEquivalenceTest, ShiftMatchesTimeDomain) {
  Rng rng(n() + 2);
  const ts::Series x = RandomSeries(n(), rng);
  for (std::size_t s : {std::size_t{0}, std::size_t{1}, n() / 2, n() - 1}) {
    ExpectSeriesNear(ShiftTransform(n(), s).ApplyToSeries(x),
                     ts::CircularShift(x, s));
  }
}

TEST_P(BuilderEquivalenceTest, ScaleAndInvertMatchTimeDomain) {
  Rng rng(n() + 3);
  const ts::Series x = RandomSeries(n(), rng);
  ExpectSeriesNear(ScaleTransform(n(), 2.5).ApplyToSeries(x),
                   ts::Scale(x, 2.5));
  ExpectSeriesNear(InvertTransform(n()).ApplyToSeries(x), ts::Invert(x));
}

INSTANTIATE_TEST_SUITE_P(Lengths, BuilderEquivalenceTest,
                         ::testing::Values(4, 8, 16, 60, 128));

TEST(MovingAverageTransformTest, Figure3Magnitudes) {
  // Fig. 3 of the paper: for n = 128 the second DFT coefficient (f = 1) of
  // MV 1..40 has |M| in ~[0.84, 1] and angle in ~[-0.96, 0].
  const std::size_t n = 128;
  for (std::size_t w = 1; w <= 40; ++w) {
    const auto m = MovingAverageTransform(n, w).multiplier(1);
    const dft::Polar polar = dft::ToPolar(m);
    EXPECT_GE(polar.magnitude, 0.84) << "w=" << w;
    EXPECT_LE(polar.magnitude, 1.0 + 1e-9) << "w=" << w;
    EXPECT_LE(polar.angle, 1e-9) << "w=" << w;
    EXPECT_GE(polar.angle, -0.96) << "w=" << w;
  }
  // Closed form: |M_1| = sin(pi w / n) / (w sin(pi / n)), angle
  // -pi (w-1) / n (Dirichlet kernel of the trailing window).
  const auto m40 = MovingAverageTransform(n, 40).multiplier(1);
  EXPECT_NEAR(std::abs(m40),
              std::sin(kPi * 40.0 / 128.0) / (40.0 * std::sin(kPi / 128.0)),
              1e-9);
  EXPECT_NEAR(std::arg(m40), -kPi * 39.0 / 128.0, 1e-9);
}

TEST(MovingAverageTransformTest, DcGainIsOne) {
  // A moving average preserves the mean: M_0 == 1 for every window.
  for (std::size_t w = 1; w <= 16; ++w) {
    const auto m = MovingAverageTransform(16, w).multiplier(0);
    EXPECT_NEAR(m.real(), 1.0, 1e-9);
    EXPECT_NEAR(m.imag(), 0.0, 1e-9);
  }
}

TEST(ShiftTransformTest, UnitMagnitudeAllCoefficients) {
  const auto t = ShiftTransform(64, 5);
  for (std::size_t f = 0; f < 64; ++f) {
    EXPECT_NEAR(std::abs(t.multiplier(f)), 1.0, 1e-12);
  }
  // Angle of coefficient f is -2 pi f s / n.
  EXPECT_NEAR(std::arg(t.multiplier(1)), -2.0 * kPi * 5.0 / 64.0, 1e-12);
}

TEST(PaddedShiftTransformTest, PaperFormulaAndApproximation) {
  // Section 3.1.2: X'_f = exp(-j 2 pi f s / (n+s)) X_f. For long sequences
  // it approximates the padded shift.
  const std::size_t n = 128;
  const std::size_t s = 1;
  const auto t = PaddedShiftTransform(n, s);
  EXPECT_NEAR(std::arg(t.multiplier(1)), -2.0 * kPi / 129.0, 1e-12);
  // Approximation quality: compare against the circular shift multiplier.
  const auto exact = ShiftTransform(n, s);
  for (std::size_t f = 1; f < 5; ++f) {
    EXPECT_NEAR(std::arg(t.multiplier(f)), std::arg(exact.multiplier(f)),
                0.01);
  }
}

TEST(MomentumTransformTest, KillsConstants) {
  // Momentum of a constant series is zero: M_0 == 0.
  const auto t = MomentumTransform(32);
  EXPECT_NEAR(std::abs(t.multiplier(0)), 0.0, 1e-12);
  // |M_f| = 2 |sin(pi f / n)|.
  for (std::size_t f = 1; f < 32; ++f) {
    EXPECT_NEAR(std::abs(t.multiplier(f)),
                2.0 * std::fabs(std::sin(kPi * f / 32.0)), 1e-9);
  }
}

TEST(InvertedTest, NegatesSeries) {
  Rng rng(10);
  const ts::Series x = RandomSeries(24, rng);
  const SpectralTransform mv = MovingAverageTransform(24, 4);
  const SpectralTransform inv = Inverted(mv);
  const ts::Series a = mv.ApplyToSeries(x);
  const ts::Series b = inv.ApplyToSeries(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(a[i], -b[i], 1e-9);
  }
  EXPECT_EQ(inv.label(), "inv-mv4");
}

TEST(WeightedMovingAverageTest, UniformWeightsEqualPlainMa) {
  Rng rng(30);
  const std::size_t n = 32;
  const ts::Series x = RandomSeries(n, rng);
  const std::vector<double> uniform(5, 1.0);
  ExpectSeriesNear(WeightedMovingAverageTransform(n, uniform).ApplyToSeries(x),
                   MovingAverageTransform(n, 5).ApplyToSeries(x));
}

TEST(WeightedMovingAverageTest, MatchesDirectComputation) {
  Rng rng(31);
  const std::size_t n = 24;
  const ts::Series x = RandomSeries(n, rng);
  const std::vector<double> weights = {3.0, 2.0, 1.0};
  const ts::Series y =
      WeightedMovingAverageTransform(n, weights).ApplyToSeries(x);
  for (std::size_t i = 0; i < n; ++i) {
    const double direct = (3.0 * x[i] + 2.0 * x[(i + n - 1) % n] +
                           1.0 * x[(i + n - 2) % n]) /
                          6.0;
    EXPECT_NEAR(y[i], direct, 1e-8) << "i=" << i;
  }
}

TEST(WeightedMovingAverageTest, PreservesMean) {
  // Normalized weights keep M_0 == 1.
  const auto t = LinearWeightedMovingAverageTransform(16, 6);
  EXPECT_NEAR(std::abs(t.multiplier(0) - dft::Complex(1.0, 0.0)), 0.0, 1e-9);
  EXPECT_TRUE(t.PreservesRealSequences());
}

TEST(ExponentialMovingAverageTest, WeightsDecayGeometrically) {
  Rng rng(32);
  const std::size_t n = 64;
  const ts::Series x = RandomSeries(n, rng);
  const double alpha = 0.5;
  const ts::Series y =
      ExponentialMovingAverageTransform(n, alpha, 8).ApplyToSeries(x);
  // Direct truncated EMA at one position.
  double expected = 0.0, total = 0.0, weight = alpha;
  for (std::size_t k = 0; k < 8; ++k) {
    expected += weight * x[(10 + n - k) % n];
    total += weight;
    weight *= (1.0 - alpha);
  }
  EXPECT_NEAR(y[10], expected / total, 1e-8);
}

TEST(ExponentialMovingAverageTest, AutoDepthAndIdentityLimit) {
  // alpha = 1 is the identity (all weight on the current value).
  Rng rng(33);
  const std::size_t n = 16;
  const ts::Series x = RandomSeries(n, rng);
  ExpectSeriesNear(ExponentialMovingAverageTransform(n, 1.0).ApplyToSeries(x),
                   x);
  // Auto-depth must smooth: variance decreases for a random-walk.
  ts::Series walk(n);
  double level = 0.0;
  for (double& v : walk) {
    level += rng.Uniform(-1.0, 1.0);
    v = level;
  }
  const auto smooth = ExponentialMovingAverageTransform(n, 0.3);
  EXPECT_LE(ts::ComputeStats(smooth.ApplyToSeries(walk)).stddev,
            ts::ComputeStats(walk).stddev + 1e-9);
}

TEST(BandPassTransformTest, PartitionsTheSpectrum) {
  Rng rng(34);
  const std::size_t n = 32;
  const ts::Series x = RandomSeries(n, rng);
  // Low + high bands sum back to the original signal.
  const ts::Series low = BandPassTransform(n, 0, 4).ApplyToSeries(x);
  const ts::Series high = BandPassTransform(n, 5, n / 2).ApplyToSeries(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(low[i] + high[i], x[i], 1e-8);
  }
  EXPECT_TRUE(BandPassTransform(n, 0, 4).PreservesRealSequences());
  EXPECT_TRUE(BandPassTransform(n, 5, n / 2).PreservesRealSequences());
}

TEST(BandPassTransformTest, DetrendRemovesConstants) {
  const std::size_t n = 16;
  const ts::Series constant(n, 7.0);
  const ts::Series detrended =
      BandPassTransform(n, 1, n / 2).ApplyToSeries(constant);
  for (double v : detrended) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(SecondDifferenceTest, MatchesMomentumOfMomentum) {
  Rng rng(35);
  const std::size_t n = 32;
  const ts::Series x = RandomSeries(n, rng);
  const ts::Series via_diff2 = SecondDifferenceTransform(n).ApplyToSeries(x);
  const ts::Series via_twice =
      ts::CircularMomentum(ts::CircularMomentum(x));
  ExpectSeriesNear(via_diff2, via_twice);
  // Composition agrees too: momentum o momentum == diff2.
  const auto composed =
      MomentumTransform(n).Compose(MomentumTransform(n));
  ExpectSeriesNear(composed.ApplyToSeries(x), via_diff2);
}

TEST(RangeBuildersTest, SizesAndLabels) {
  const auto mvs = MovingAverageRange(128, 5, 34);
  EXPECT_EQ(mvs.size(), 30u);
  EXPECT_EQ(mvs.front().label(), "mv5");
  EXPECT_EQ(mvs.back().label(), "mv34");

  const auto shifts = ShiftRange(128, 0, 10);
  EXPECT_EQ(shifts.size(), 11u);

  const auto scales = ScaleRange(128, 2.0, 100.0, 1.0);
  EXPECT_EQ(scales.size(), 99u);
}

TEST(ComposeSpectralSetsTest, Equation11AtTheSpectralLevel) {
  // "s-day shift followed by m-day moving average" (Section 3.3).
  const std::size_t n = 64;
  const auto shifts = ShiftRange(n, 0, 2);
  const auto mvs = MovingAverageRange(n, 1, 3);
  const auto composed = ComposeSpectralSets(shifts, mvs);
  ASSERT_EQ(composed.size(), 9u);
  Rng rng(11);
  const ts::Series x = RandomSeries(n, rng);
  std::size_t index = 0;
  for (const auto& shift : shifts) {
    for (const auto& mv : mvs) {
      const ts::Series expected = mv.ApplyToSeries(shift.ApplyToSeries(x));
      const ts::Series actual = composed[index].ApplyToSeries(x);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(actual[i], expected[i], 1e-8);
      }
      ++index;
    }
  }
}

}  // namespace
}  // namespace tsq::transform
