#include "transform/feature_transform.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::transform {
namespace {

TEST(FeatureTransformTest, IdentityLeavesPointsAlone) {
  const FeatureTransform id = FeatureTransform::Identity(3);
  const rstar::Point p = {1.0, -2.0, 3.5};
  EXPECT_EQ(id.Apply(p), p);
}

TEST(FeatureTransformTest, ApplyToPoint) {
  const FeatureTransform t({2.0, -1.0}, {1.0, 0.5});
  EXPECT_EQ(t.Apply(rstar::Point{3.0, 4.0}), (rstar::Point{7.0, -3.5}));
}

TEST(FeatureTransformTest, ApplyToRectHandlesNegativeScale) {
  const FeatureTransform t({-2.0}, {1.0});
  const rstar::Rect image = t.Apply(rstar::Rect({1.0}, {3.0}));
  // -2*[1,3]+1 = [-5,-1].
  EXPECT_EQ(image, rstar::Rect({-5.0}, {-1.0}));
}

TEST(FeatureTransformTest, RectImageContainsPointImages) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> scale(3), offset(3), lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      scale[d] = rng.Uniform(-3.0, 3.0);
      offset[d] = rng.Uniform(-3.0, 3.0);
      const double a = rng.Uniform(-5.0, 5.0);
      const double b = rng.Uniform(-5.0, 5.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const FeatureTransform t(scale, offset);
    const rstar::Rect rect(lo, hi);
    const rstar::Rect image = t.Apply(rect);
    for (int sample = 0; sample < 10; ++sample) {
      rstar::Point p(3);
      for (int d = 0; d < 3; ++d) p[d] = rng.Uniform(lo[d], hi[d]);
      EXPECT_TRUE(image.ContainsPoint(t.Apply(p)));
    }
  }
}

TEST(FeatureTransformTest, ComposeMatchesEquation10) {
  // t2(t1(x)) must equal the composed transform applied once.
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> a1(2), b1(2), a2(2), b2(2);
    for (int d = 0; d < 2; ++d) {
      a1[d] = rng.Uniform(-2.0, 2.0);
      b1[d] = rng.Uniform(-2.0, 2.0);
      a2[d] = rng.Uniform(-2.0, 2.0);
      b2[d] = rng.Uniform(-2.0, 2.0);
    }
    const FeatureTransform t1(a1, b1), t2(a2, b2);
    const FeatureTransform composed = t2.Compose(t1);
    const rstar::Point x = {rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)};
    const rstar::Point via_steps = t2.Apply(t1.Apply(x));
    const rstar::Point via_composed = composed.Apply(x);
    for (int d = 0; d < 2; ++d) {
      EXPECT_NEAR(via_steps[d], via_composed[d], 1e-9);
    }
  }
}

TEST(FeatureTransformTest, CompositionIsAssociative) {
  const FeatureTransform t1({2.0}, {1.0});
  const FeatureTransform t2({-1.0}, {3.0});
  const FeatureTransform t3({0.5}, {-2.0});
  const FeatureTransform left = t3.Compose(t2).Compose(t1);
  const FeatureTransform right = t3.Compose(t2.Compose(t1));
  EXPECT_EQ(left, right);
}

TEST(FeatureTransformTest, IdentityIsNeutralForCompose) {
  const FeatureTransform t({2.0, 3.0}, {-1.0, 4.0});
  const FeatureTransform id = FeatureTransform::Identity(2);
  EXPECT_EQ(t.Compose(id), t);
  EXPECT_EQ(id.Compose(t), t);
}

TEST(FeatureTransformTest, AsPointInterleavesScaleAndOffset) {
  const FeatureTransform t({2.0, 3.0}, {-1.0, 4.0});
  EXPECT_EQ(t.AsPoint(), (std::vector<double>{2.0, -1.0, 3.0, 4.0}));
}

TEST(ComposeSetsTest, Equation11CrossProduct) {
  const std::vector<FeatureTransform> first = {FeatureTransform({1.0}, {1.0}),
                                               FeatureTransform({2.0}, {0.0})};
  const std::vector<FeatureTransform> second = {
      FeatureTransform({1.0}, {0.0}), FeatureTransform({-1.0}, {0.0}),
      FeatureTransform({1.0}, {5.0})};
  const auto composed = ComposeSets(first, second);
  ASSERT_EQ(composed.size(), 6u);
  // Every element is t2(t1(x)) for some pair; verify on a sample point.
  const rstar::Point x = {3.0};
  std::size_t index = 0;
  for (const FeatureTransform& t1 : first) {
    for (const FeatureTransform& t2 : second) {
      EXPECT_NEAR(composed[index].Apply(x)[0], t2.Apply(t1.Apply(x))[0],
                  1e-12);
      ++index;
    }
  }
}

TEST(FeatureTransformDeathTest, MismatchedSizes) {
  EXPECT_DEATH(FeatureTransform({1.0, 2.0}, {0.0}), "CHECK failed");
}

}  // namespace
}  // namespace tsq::transform
