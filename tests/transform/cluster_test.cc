#include "transform/cluster.h"

#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::transform {
namespace {

std::vector<std::vector<double>> TwoClusters(Rng& rng, std::size_t per_cluster,
                                             double separation) {
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      points.push_back(
          {c * separation + rng.Uniform(-0.5, 0.5), rng.Uniform(-0.5, 0.5)});
    }
  }
  return points;
}

std::size_t NumLabels(const std::vector<std::size_t>& labels) {
  return std::set<std::size_t>(labels.begin(), labels.end()).size();
}

TEST(AgglomerativeClustersTest, SinglePoint) {
  const std::vector<std::vector<double>> points = {{1.0, 2.0}};
  EXPECT_EQ(AgglomerativeClusters(points, 1),
            (std::vector<std::size_t>{0}));
}

TEST(AgglomerativeClustersTest, KEqualsNMakesSingletons) {
  Rng rng(1);
  const auto points = TwoClusters(rng, 3, 100.0);
  const auto labels = AgglomerativeClusters(points, 6);
  EXPECT_EQ(NumLabels(labels), 6u);
}

TEST(AgglomerativeClustersTest, SeparatesTwoClusters) {
  Rng rng(2);
  const auto points = TwoClusters(rng, 10, 100.0);
  const auto labels = AgglomerativeClusters(points, 2);
  EXPECT_EQ(NumLabels(labels), 2u);
  // All points in the first half share a label; second half the other.
  for (std::size_t i = 1; i < 10; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (std::size_t i = 11; i < 20; ++i) EXPECT_EQ(labels[i], labels[10]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(AgglomerativeClustersTest, ChainStructureSingleLink) {
  // Single link merges chains: equally spaced points form one cluster until
  // k forces cuts.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 8; ++i) points.push_back({static_cast<double>(i)});
  EXPECT_EQ(NumLabels(AgglomerativeClusters(points, 1)), 1u);
  EXPECT_EQ(NumLabels(AgglomerativeClusters(points, 3)), 3u);
}

TEST(DetectClustersTest, FindsTwoWellSeparatedClusters) {
  Rng rng(3);
  const auto points = TwoClusters(rng, 12, 50.0);
  const auto labels = DetectClusters(points);
  EXPECT_EQ(NumLabels(labels), 2u);
}

TEST(DetectClustersTest, SingleBlobStaysOneCluster) {
  Rng rng(4);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
  }
  const auto labels = DetectClusters(points);
  EXPECT_EQ(NumLabels(labels), 1u);
}

TEST(DetectClustersTest, SinglePointAndPair) {
  EXPECT_EQ(DetectClusters(std::vector<std::vector<double>>{{0.0}}),
            (std::vector<std::size_t>{0}));
  const std::vector<std::vector<double>> pair = {{0.0}, {1.0}};
  EXPECT_EQ(NumLabels(DetectClusters(pair)), 1u);
}

TEST(DetectClustersTest, ThreeClusters) {
  Rng rng(5);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 8; ++i) {
      points.push_back({c * 200.0 + rng.Uniform(-1.0, 1.0)});
    }
  }
  EXPECT_EQ(NumLabels(DetectClusters(points)), 3u);
}

TEST(DetectClustersTest, GapRatioControlsSensitivity) {
  // Moderate gap: detected with a low ratio, ignored with a huge one.
  Rng rng(6);
  const auto points = TwoClusters(rng, 10, 5.0);
  EXPECT_GE(NumLabels(DetectClusters(points, 2.0)), 2u);
  EXPECT_EQ(NumLabels(DetectClusters(points, 1000.0)), 1u);
}

}  // namespace
}  // namespace tsq::transform
