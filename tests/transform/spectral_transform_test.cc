#include "transform/spectral_transform.h"

#include <cmath>

#include "common/rng.h"
#include "dft/spectrum.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/ops.h"

namespace tsq::transform {
namespace {

ts::Series RandomSeries(std::size_t n, Rng& rng) {
  ts::Series x(n);
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  return x;
}

TEST(SpectralTransformTest, IdentityActsAsIdentity) {
  Rng rng(1);
  const ts::Series x = RandomSeries(32, rng);
  const SpectralTransform id = SpectralTransform::Identity(32);
  const ts::Series y = id.ApplyToSeries(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-9);
  }
  EXPECT_TRUE(id.PreservesRealSequences());
}

TEST(SpectralTransformTest, TransformedDistanceMatchesTimeDomain) {
  // D(t(x), t(y)) computed in the frequency domain equals the time-domain
  // distance between the transformed series (Parseval, Eq. 8).
  Rng rng(2);
  const std::size_t n = 64;
  const ts::Series x = RandomSeries(n, rng);
  const ts::Series y = RandomSeries(n, rng);
  dft::FftPlan plan(n);
  const auto fx = plan.Forward(std::span<const double>(x));
  const auto fy = plan.Forward(std::span<const double>(y));
  for (std::size_t w : {1u, 3u, 10u, 25u}) {
    const SpectralTransform t = MovingAverageTransform(n, w);
    const double freq = t.TransformedSquaredDistance(fx, fy);
    const double time = ts::SquaredEuclideanDistance(t.ApplyToSeries(x),
                                                     t.ApplyToSeries(y));
    EXPECT_NEAR(freq, time, 1e-6 * (1.0 + time)) << "w=" << w;
  }
}

TEST(SpectralTransformTest, TransformedToPlainDistanceMatchesTimeDomain) {
  // D(t(x), q) computed in the frequency domain equals the time-domain
  // distance between the transformed data series and the plain query.
  Rng rng(21);
  const std::size_t n = 64;
  const ts::Series x = RandomSeries(n, rng);
  const ts::Series q = RandomSeries(n, rng);
  dft::FftPlan plan(n);
  const auto fx = plan.Forward(std::span<const double>(x));
  const auto fq = plan.Forward(std::span<const double>(q));
  for (std::size_t s : {0u, 1u, 5u, 63u}) {
    const SpectralTransform t = ShiftTransform(n, s);
    const double freq = t.TransformedToPlainSquaredDistance(fx, fq);
    const double time =
        ts::SquaredEuclideanDistance(t.ApplyToSeries(x), q);
    EXPECT_NEAR(freq, time, 1e-6 * (1.0 + time)) << "s=" << s;
  }
}

TEST(SpectralTransformTest, DataOnlyDistanceDetectsShifts) {
  // Unlike the same-transform distance, the data-only distance changes when
  // the data is shifted relative to the query.
  Rng rng(22);
  const std::size_t n = 32;
  const ts::Series x = RandomSeries(n, rng);
  dft::FftPlan plan(n);
  const auto fx = plan.Forward(std::span<const double>(x));
  const SpectralTransform shift = ShiftTransform(n, 4);
  // Same-transform distance to itself: always 0.
  EXPECT_NEAR(shift.TransformedSquaredDistance(fx, fx), 0.0, 1e-9);
  // Data-only: shift(x) vs x is far from 0 for a random series.
  EXPECT_GT(shift.TransformedToPlainSquaredDistance(fx, fx), 1.0);
  // ...and shift-0 is exact again.
  EXPECT_NEAR(ShiftTransform(n, 0).TransformedToPlainSquaredDistance(fx, fx),
              0.0, 1e-9);
}

TEST(SpectralTransformTest, ComposeMultipliesMultipliers) {
  const std::size_t n = 16;
  const SpectralTransform a = MovingAverageTransform(n, 3);
  const SpectralTransform b = ShiftTransform(n, 2);
  const SpectralTransform ab = a.Compose(b);
  for (std::size_t f = 0; f < n; ++f) {
    EXPECT_LT(std::abs(ab.multiplier(f) - a.multiplier(f) * b.multiplier(f)),
              1e-12);
  }
  EXPECT_EQ(ab.label(), "mv3(shift2)");
}

TEST(SpectralTransformTest, ComposeEqualsSequentialApplication) {
  Rng rng(3);
  const std::size_t n = 32;
  const ts::Series x = RandomSeries(n, rng);
  const SpectralTransform shift = ShiftTransform(n, 2);
  const SpectralTransform mv = MovingAverageTransform(n, 5);
  const ts::Series via_steps = mv.ApplyToSeries(shift.ApplyToSeries(x));
  const ts::Series via_composed = mv.Compose(shift).ApplyToSeries(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(via_steps[i], via_composed[i], 1e-8);
  }
}

TEST(SpectralTransformTest, PreservesRealDetection) {
  const std::size_t n = 8;
  EXPECT_TRUE(MovingAverageTransform(n, 3).PreservesRealSequences());
  EXPECT_TRUE(ShiftTransform(n, 1).PreservesRealSequences());
  EXPECT_TRUE(MomentumTransform(n).PreservesRealSequences());
  EXPECT_TRUE(ScaleTransform(n, -2.5).PreservesRealSequences());
  // A one-sided multiplier (only f=1 boosted) breaks conjugate symmetry.
  std::vector<dft::Complex> lopsided(n, {1.0, 0.0});
  lopsided[1] = {2.0, 0.0};
  EXPECT_FALSE(
      SpectralTransform("lopsided", lopsided).PreservesRealSequences());
}

TEST(SpectralTransformTest, ToFeatureTransformPolarDecomposition) {
  const std::size_t n = 128;
  FeatureLayout layout;
  const SpectralTransform t = MovingAverageTransform(n, 10);
  const FeatureTransform ft = t.ToFeatureTransform(layout);
  ASSERT_EQ(ft.dimensions(), layout.dimensions());
  // Mean/std dims are identity.
  EXPECT_EQ(ft.scale(layout.mean_dimension()), 1.0);
  EXPECT_EQ(ft.offset(layout.mean_dimension()), 0.0);
  for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
    const dft::Polar polar = dft::ToPolar(t.multiplier(layout.coefficient(i)));
    EXPECT_NEAR(ft.scale(layout.magnitude_dimension(i)), polar.magnitude,
                1e-12);
    EXPECT_EQ(ft.offset(layout.magnitude_dimension(i)), 0.0);
    EXPECT_EQ(ft.scale(layout.angle_dimension(i)), 1.0);
    EXPECT_NEAR(ft.offset(layout.angle_dimension(i)), polar.angle, 1e-12);
  }
}

TEST(SpectralTransformTest, FeatureTransformTracksTransformedFeatures) {
  // Applying the feature transform to a sequence's features must produce the
  // features of the transformed sequence (up to angle wrapping).
  Rng rng(4);
  const std::size_t n = 128;
  FeatureLayout layout;
  layout.include_mean_std = false;
  dft::FftPlan plan(n);
  for (int trial = 0; trial < 20; ++trial) {
    const ts::Series x = RandomSeries(n, rng);
    const auto spectrum = plan.Forward(std::span<const double>(x));
    const SpectralTransform t = MovingAverageTransform(n, 2 + trial);
    const FeatureTransform ft = t.ToFeatureTransform(layout);

    rstar::Point features(layout.dimensions());
    for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
      const dft::Polar polar =
          dft::ToPolar(spectrum[layout.coefficient(i)]);
      features[layout.magnitude_dimension(i)] = polar.magnitude;
      features[layout.angle_dimension(i)] = polar.angle;
    }
    const rstar::Point transformed = ft.Apply(features);

    const auto t_spectrum = t.ApplyToSpectrum(spectrum);
    for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
      const dft::Polar expected =
          dft::ToPolar(t_spectrum[layout.coefficient(i)]);
      EXPECT_NEAR(transformed[layout.magnitude_dimension(i)],
                  expected.magnitude, 1e-9);
      EXPECT_NEAR(dft::AngularDistance(
                      transformed[layout.angle_dimension(i)], expected.angle),
                  0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace tsq::transform
