// Hammer test for the thread-safety contract: any number of Execute() calls
// may run concurrently on one engine as long as nothing mutates it. Eight
// threads fire mixed queries against a shared engine with the index buffer
// pool attached and a small simulated per-page latency (to widen race
// windows); every thread must get exactly the single-threaded answer.

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "../core/test_util.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

TEST(ExecutorConcurrencyTest, EightConcurrentExecutesAgree) {
  SimilarityEngine engine(testutil::Stocks(200, 128, 202));
  engine.EnableIndexBufferPool(32);         // shared, concurrently accessed
  engine.SetSimulatedDiskLatency(2'000);    // 2us per page read

  RangeQuerySpec range;
  range.query = ts::Denormalize(engine.dataset().normal(9));
  range.transforms = transform::MovingAverageRange(128, 5, 20);
  range.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  KnnQuerySpec knn;
  knn.query = ts::Denormalize(engine.dataset().normal(17));
  knn.k = 5;
  knn.transforms = transform::MovingAverageRange(128, 5, 12);

  JoinQuerySpec join;
  join.mode = JoinMode::kCorrelation;
  join.min_correlation = 0.99;
  join.transforms = transform::MovingAverageRange(128, 5, 9);

  // Single-threaded ground truth, one per (query, algorithm) combination.
  struct Workload {
    QuerySpec spec;
    ExecOptions options;
    std::vector<Match> range_matches;
    std::vector<KnnMatch> knn_matches;
    std::vector<JoinMatch> join_matches;
  };
  std::vector<Workload> workloads;
  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kStIndex,
        Algorithm::kMtIndex}) {
    workloads.push_back({range, {.planner = {.algorithm = algorithm}}, {}, {}, {}});
    workloads.push_back({knn, {.planner = {.algorithm = algorithm}}, {}, {}, {}});
    if (algorithm != Algorithm::kStIndex) {
      workloads.push_back({join, {.planner = {.algorithm = algorithm}}, {}, {}, {}});
    }
  }
  for (Workload& w : workloads) {
    const auto baseline = engine.Execute(w.spec, w.options);
    ASSERT_TRUE(baseline.ok());
    if (const auto* r = baseline->range()) w.range_matches = r->matches;
    if (const auto* k = baseline->knn()) w.knn_matches = k->matches;
    if (const auto* j = baseline->join()) w.join_matches = j->matches;
  }

  // Hammer: 8 threads, each looping over every workload (worker threads of
  // the parallel executor nest inside these callers at num_threads=2).
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &workloads, &failures, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
          const Workload& workload = workloads[(w + t) % workloads.size()];
          ExecOptions options = workload.options;
          options.num_threads = 1 + (t % 2);
          const auto result = engine.Execute(workload.spec, options);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          bool ok = true;
          if (const auto* r = result->range()) {
            ok = r->matches == workload.range_matches;
          } else if (const auto* k = result->knn()) {
            ok = k->matches.size() == workload.knn_matches.size();
            for (std::size_t i = 0; ok && i < k->matches.size(); ++i) {
              ok = k->matches[i].series_id ==
                       workload.knn_matches[i].series_id &&
                   k->matches[i].distance == workload.knn_matches[i].distance;
            }
          } else if (const auto* j = result->join()) {
            ok = j->matches == workload.join_matches;
          }
          if (!ok) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // The engine is still sound and mutable once the storm has passed.
  engine.EnableIndexBufferPool(0);
  engine.SetSimulatedDiskLatency(0);
  const auto after = engine.Execute(range);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->range()->matches.empty());
}

}  // namespace
}  // namespace tsq::core
