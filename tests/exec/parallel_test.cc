#include "exec/parallel.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "gtest/gtest.h"

namespace tsq::exec {
namespace {

TEST(EffectiveThreadsTest, ZeroMeansHardware) {
  EXPECT_GE(EffectiveThreads(0), 1u);
  EXPECT_EQ(EffectiveThreads(1), 1u);
  EXPECT_EQ(EffectiveThreads(7), 7u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructorWaitsForInFlightTasks) {
  std::atomic<bool> done{false};
  {
    ThreadPool pool(2);
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.store(true);
    });
  }
  EXPECT_TRUE(done.load());
}

TEST(ParallelForTest, EveryTaskRunsExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> runs(101);
    for (auto& r : runs) r.store(0);
    const Status status =
        ParallelFor(threads, runs.size(), [&runs](std::size_t i) {
          runs[i].fetch_add(1);
          return Status::Ok();
        });
    EXPECT_TRUE(status.ok());
    for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  }
}

TEST(ParallelForTest, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  Status status = ParallelFor(1, 8, [caller](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  // Zero tasks: trivially OK, no worker spun up.
  EXPECT_TRUE(ParallelFor(8, 0, [](std::size_t) {
                return Status::Internal("never called");
              }).ok());
}

TEST(ParallelForTest, ReturnsLowestFailingTaskAndStillRunsAll) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<int> ran{0};
    const Status status =
        ParallelFor(threads, 64, [&ran](std::size_t i) -> Status {
          ran.fetch_add(1);
          if (i == 9 || i == 40) {
            return Status::Internal("task " + std::to_string(i));
          }
          return Status::Ok();
        });
    EXPECT_EQ(ran.load(), 64);  // failures never cancel other tasks
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("task 9"), std::string::npos);
  }
}

TEST(ParallelForTest, LargeFanOutReportsLowestFailure) {
  // A million-item fan-out: errors are captured in a single slot, not an
  // O(count) status array, and the lowest failing index still wins even
  // when a later task fails first in wall-clock order.
  constexpr std::size_t kCount = 1'000'000;
  std::atomic<std::size_t> ran{0};
  const Status status =
      ParallelFor(8, kCount, [&ran](std::size_t i) -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 123'456 || i == 900'000) {
          return Status::Internal("task " + std::to_string(i));
        }
        return Status::Ok();
      });
  EXPECT_EQ(ran.load(), kCount);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("task 123456"), std::string::npos);
}

TEST(ChunkTest, BoundsPartitionTheRange) {
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{255}, std::size_t{256},
                                  std::size_t{1000}}) {
    const std::size_t chunk = 256;
    const std::size_t chunks = ChunkCount(count, chunk);
    EXPECT_EQ(chunks, (count + chunk - 1) / chunk);
    std::size_t covered = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const ChunkRange r = ChunkBounds(count, chunk, c);
      EXPECT_EQ(r.first, covered);
      EXPECT_LE(r.last, count);
      EXPECT_LT(r.first, r.last);
      covered = r.last;
    }
    EXPECT_EQ(covered, count);
  }
}

}  // namespace
}  // namespace tsq::exec
