// The executor's core contract: Execute() returns byte-identical match sets
// and identical summed QueryStats for every num_threads value. The task
// decomposition (fixed-size chunks, one pass per transformation rectangle)
// depends only on the query, never on the worker count, and partial results
// are merged in task order.

#include <vector>

#include "../core/test_util.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

void ExpectSameStats(const QueryStats& a, const QueryStats& b,
                     const char* what) {
  EXPECT_EQ(a.index_nodes_accessed, b.index_nodes_accessed) << what;
  EXPECT_EQ(a.index_leaves_accessed, b.index_leaves_accessed) << what;
  EXPECT_EQ(a.record_pages_read, b.record_pages_read) << what;
  EXPECT_EQ(a.candidates, b.candidates) << what;
  EXPECT_EQ(a.comparisons, b.comparisons) << what;
  EXPECT_EQ(a.traversals, b.traversals) << what;
  EXPECT_EQ(a.output_size, b.output_size) << what;
}

class ExecutorDeterminismTest : public ::testing::Test {
 protected:
  ExecutorDeterminismTest()
      : engine_(testutil::Stocks(300, 128, 201)) {}

  SimilarityEngine engine_;
  const std::vector<std::size_t> thread_counts_{1, 4, 8};
};

TEST_F(ExecutorDeterminismTest, RangeQueryIdenticalAcrossThreadCounts) {
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(11));
  spec.transforms = transform::MovingAverageRange(128, 5, 24);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.95, 128);
  spec.partition = transform::PartitionBySize(spec.transforms.size(), 5);

  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kStIndex,
        Algorithm::kMtIndex}) {
    ExecOptions options;
    options.planner.algorithm = algorithm;
    options.collect_group_stats = true;
    options.num_threads = 1;
    const auto baseline = engine_.Execute(spec, options);
    ASSERT_TRUE(baseline.ok()) << AlgorithmName(algorithm);
    EXPECT_FALSE(baseline->range()->matches.empty());

    for (const std::size_t threads : thread_counts_) {
      options.num_threads = threads;
      const auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
      // Identical matches, in identical order — not just the same set.
      EXPECT_EQ(result->range()->matches, baseline->range()->matches)
          << AlgorithmName(algorithm) << " threads=" << threads;
      ExpectSameStats(result->stats(), baseline->stats(),
                      AlgorithmName(algorithm));
      // Per-rectangle counters are deterministic too.
      ASSERT_EQ(result->group_stats.size(), baseline->group_stats.size());
      for (std::size_t g = 0; g < result->group_stats.size(); ++g) {
        EXPECT_EQ(result->group_stats[g].da_all,
                  baseline->group_stats[g].da_all);
        EXPECT_EQ(result->group_stats[g].da_leaf,
                  baseline->group_stats[g].da_leaf);
        EXPECT_EQ(result->group_stats[g].candidates,
                  baseline->group_stats[g].candidates);
      }
    }
  }
}

TEST_F(ExecutorDeterminismTest, KnnQueryIdenticalAcrossThreadCounts) {
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(4));
  spec.k = 7;
  spec.transforms = transform::MovingAverageRange(128, 5, 16);

  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kMtIndex}) {
    ExecOptions options;
    options.planner.algorithm = algorithm;
    options.num_threads = 1;
    const auto baseline = engine_.Execute(spec, options);
    ASSERT_TRUE(baseline.ok()) << AlgorithmName(algorithm);
    ASSERT_EQ(baseline->knn()->matches.size(), 7u);

    for (const std::size_t threads : thread_counts_) {
      options.num_threads = threads;
      const auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
      ASSERT_EQ(result->knn()->matches.size(),
                baseline->knn()->matches.size());
      for (std::size_t i = 0; i < result->knn()->matches.size(); ++i) {
        EXPECT_EQ(result->knn()->matches[i].series_id,
                  baseline->knn()->matches[i].series_id);
        EXPECT_EQ(result->knn()->matches[i].transform_index,
                  baseline->knn()->matches[i].transform_index);
        EXPECT_EQ(result->knn()->matches[i].distance,
                  baseline->knn()->matches[i].distance);
      }
      ExpectSameStats(result->stats(), baseline->stats(),
                      AlgorithmName(algorithm));
    }
  }
}

TEST_F(ExecutorDeterminismTest, JoinQueryIdenticalAcrossThreadCounts) {
  JoinQuerySpec spec;
  spec.mode = JoinMode::kCorrelation;
  spec.min_correlation = 0.99;
  spec.transforms = transform::MovingAverageRange(128, 5, 12);
  spec.partition = transform::PartitionBySize(spec.transforms.size(), 3);

  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kStIndex,
        Algorithm::kMtIndex}) {
    ExecOptions options;
    options.planner.algorithm = algorithm;
    options.num_threads = 1;
    const auto baseline = engine_.Execute(spec, options);
    ASSERT_TRUE(baseline.ok()) << AlgorithmName(algorithm);
    EXPECT_FALSE(baseline->join()->matches.empty());

    for (const std::size_t threads : thread_counts_) {
      options.num_threads = threads;
      const auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
      EXPECT_EQ(result->join()->matches, baseline->join()->matches)
          << AlgorithmName(algorithm) << " threads=" << threads;
      ExpectSameStats(result->stats(), baseline->stats(),
                      AlgorithmName(algorithm));
    }
  }
}

TEST_F(ExecutorDeterminismTest, ShardedPoolPreservesMatchesAndStats) {
  // The sharded buffer pool only changes *physical* I/O (misses/coalescing);
  // matches and the summed QueryStats must stay identical to the pool-less
  // single-threaded run for every thread count and shard count.
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(11));
  spec.transforms = transform::MovingAverageRange(128, 5, 24);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.95, 128);
  spec.partition = transform::PartitionBySize(spec.transforms.size(), 5);

  ExecOptions options;
  options.planner.algorithm = Algorithm::kMtIndex;
  const auto baseline = engine_.Execute(spec, options);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->range()->matches.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    engine_.EnableIndexBufferPool(64, shards);
    ASSERT_EQ(engine_.index_buffer_pool()->shard_count(), shards);
    for (const std::size_t threads : thread_counts_) {
      engine_.index_buffer_pool()->Clear();
      options.num_threads = threads;
      const auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok()) << "shards=" << shards;
      EXPECT_EQ(result->range()->matches, baseline->range()->matches)
          << "shards=" << shards << " threads=" << threads;
      ExpectSameStats(result->stats(), baseline->stats(), "sharded pool");
    }
  }
  engine_.EnableIndexBufferPool(0);
}

TEST_F(ExecutorDeterminismTest, ZeroThreadsMeansHardwareAndStaysExact) {
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(128, 6, 17);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  const auto serial = engine_.Execute(spec);
  const auto hardware = engine_.Execute(spec, {.num_threads = 0});
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(hardware.ok());
  EXPECT_EQ(hardware->range()->matches, serial->range()->matches);
  ExpectSameStats(hardware->stats(), serial->stats(), "num_threads=0");
}

}  // namespace
}  // namespace tsq::core
