#include "common/status.h"

#include "gtest/gtest.h"

namespace tsq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, Names) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> result = Status::NotFound("nothing here");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  const std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Status FailsThrough() {
  TSQ_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::Ok();
}

Status Succeeds() {
  TSQ_RETURN_IF_ERROR(Status::Ok());
  return Status::Internal("reached the end");
}

TEST(ReturnIfErrorTest, PropagatesAndPasses) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kIoError);
  EXPECT_EQ(Succeeds().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tsq
