#include "common/check.h"

#include "gtest/gtest.h"

namespace tsq {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  TSQ_CHECK(true);
  TSQ_CHECK_EQ(1, 1);
  TSQ_CHECK_NE(1, 2);
  TSQ_CHECK_LT(1, 2);
  TSQ_CHECK_LE(2, 2);
  TSQ_CHECK_GT(3, 2);
  TSQ_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(TSQ_CHECK(false) << "boom", "CHECK failed");
}

TEST(CheckDeathTest, FailingComparisonShowsValues) {
  EXPECT_DEATH(TSQ_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(CheckDeathTest, MessageIsIncluded) {
  EXPECT_DEATH(TSQ_CHECK(1 > 2) << "custom context 42", "custom context 42");
}

TEST(CheckTest, SideEffectsEvaluatedOnce) {
  int calls = 0;
  const auto bump = [&calls]() {
    ++calls;
    return true;
  };
  TSQ_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckActiveInDebug) {
  EXPECT_DEATH(TSQ_DCHECK(false), "CHECK failed");
}
#endif

}  // namespace
}  // namespace tsq
