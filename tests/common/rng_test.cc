#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace tsq {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-500.0, 500.0);
    EXPECT_GE(v, -500.0);
    EXPECT_LT(v, 500.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.Uniform(0.0, 1.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 9000);  // roughly uniform
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(13);
  const int trials = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == std::numeric_limits<std::uint64_t>::max());
  Rng rng(15);
  // Usable with <random> distributions.
  std::vector<int> values = {1, 2, 3, 4, 5};
  std::shuffle(values.begin(), values.end(), rng);
  EXPECT_EQ(values.size(), 5u);
}

}  // namespace
}  // namespace tsq
