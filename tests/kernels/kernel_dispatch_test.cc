// Dispatch-layer tests (ctest label `kernels`): TSQ_KERNEL_ISA resolution,
// CPUID gating, metrics accounting, and the end-to-end guarantee that
// forcing the scalar variant leaves engine-visible distances bitwise
// unchanged.

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "ts/distance.h"

namespace tsq::kernels {
namespace {

TEST(ResolveIsaTest, ExplicitSupportedNamesAreHonored) {
  EXPECT_EQ(ResolveIsa("scalar", BestSupportedIsa()), Isa::kScalar);
  for (const Isa isa : {Isa::kSse2, Isa::kAvx2}) {
    if (!IsaSupported(isa)) continue;
    EXPECT_EQ(ResolveIsa(IsaName(isa), BestSupportedIsa()), isa);
  }
}

TEST(ResolveIsaTest, AutoEmptyUnsetAndGarbageFallBackToBest) {
  const Isa best = BestSupportedIsa();
  EXPECT_EQ(ResolveIsa(nullptr, best), best);
  EXPECT_EQ(ResolveIsa("", best), best);
  EXPECT_EQ(ResolveIsa("auto", best), best);
  EXPECT_EQ(ResolveIsa("avx512", best), best);
  EXPECT_EQ(ResolveIsa("SCALAR", best), best);  // names are case-sensitive
}

TEST(ResolveIsaTest, UnsupportedRequestFallsBackToBest) {
  // Pretend scalar is the best we have: requesting avx2 must not escape it.
  EXPECT_EQ(ResolveIsa("avx2", Isa::kScalar), Isa::kScalar);
}

TEST(IsaSupportTest, ScalarAlwaysSupportedAndBestIsSupported) {
  EXPECT_TRUE(IsaSupported(Isa::kScalar));
  EXPECT_TRUE(IsaSupported(BestSupportedIsa()));
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kSse2), "sse2");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
}

TEST(DispatchTest, MetricsCountCallsElementsAndAbandons) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* calls = registry.counter("engine.kernels.calls");
  obs::Counter* elements = registry.counter("engine.kernels.elements");
  obs::Counter* abandons = registry.counter("engine.kernels.early_abandons");

  const std::vector<double> x(256, 3.0);
  const std::vector<double> y(256, 1.0);

  const std::uint64_t calls0 = calls->value();
  const std::uint64_t elements0 = elements->value();
  ASSERT_DOUBLE_EQ(SquaredDistance(x, y), 4.0 * 256);
  EXPECT_EQ(calls->value(), calls0 + 1);
  EXPECT_EQ(elements->value(), elements0 + 256);

  // d^2 accumulates 4.0 per element, so a bound of 1.0 abandons at the
  // first 64-element checkpoint: 64 elements consumed, one abandon event.
  const std::uint64_t abandons0 = abandons->value();
  const std::uint64_t elements1 = elements->value();
  const double partial = SquaredDistanceWithin(x, y, 1.0);
  EXPECT_GT(partial, 1.0);
  EXPECT_EQ(abandons->value(), abandons0 + 1);
  EXPECT_EQ(elements->value(), elements1 + 64);

  // No abandon when the bound covers the full sum — and the exact value.
  const double full = SquaredDistanceWithin(x, y, 4.0 * 256);
  EXPECT_DOUBLE_EQ(full, 4.0 * 256);
  EXPECT_EQ(abandons->value(), abandons0 + 1);
}

// The tentpole's user-facing promise: switching ISAs never changes results.
// Compute library-level distances under the best variant and under forced
// scalar; every value must be bitwise identical.
TEST(DispatchTest, ForcedScalarMatchesBestIsaBitwise) {
  Rng rng(1999);
  std::vector<std::vector<double>> series(8);
  for (auto& s : series) {
    s.resize(128);
    for (double& v : s) v = rng.Uniform(-5.0, 5.0);
  }

  const Isa best = BestSupportedIsa();
  std::vector<std::uint64_t> best_bits;
  ForceIsaForTesting(best);
  ASSERT_EQ(ActiveIsa(), best);
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      best_bits.push_back(std::bit_cast<std::uint64_t>(
          ts::SquaredEuclideanDistance(series[i], series[j])));
      best_bits.push_back(std::bit_cast<std::uint64_t>(
          ts::CrossCorrelation(series[i], series[j])));
    }
  }

  ForceIsaForTesting(Isa::kScalar);
  ASSERT_EQ(ActiveIsa(), Isa::kScalar);
  std::size_t at = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      EXPECT_EQ(best_bits[at++],
                std::bit_cast<std::uint64_t>(
                    ts::SquaredEuclideanDistance(series[i], series[j])))
          << "distance(" << i << "," << j << ")";
      EXPECT_EQ(best_bits[at++],
                std::bit_cast<std::uint64_t>(
                    ts::CrossCorrelation(series[i], series[j])))
          << "correlation(" << i << "," << j << ")";
    }
  }
  ForceIsaForTesting(best);
}

}  // namespace
}  // namespace tsq::kernels
