// Property suite for the SIMD kernel layer (ctest label `kernels`).
//
// The load-bearing property is *bitwise* cross-ISA identity: every variant
// of every kernel must produce the exact same bit pattern as the scalar
// reference for every input — random, unaligned, denormal, NaN, infinite.
// Query results must never depend on which ISA the dispatcher picked.
//
// The second property is the early-abandon contract: a Within kernel that
// does not abandon returns the bitwise-exact full sum; when it abandons, the
// returned partial exceeds the bound (hence so does the true sum), and it
// stopped at a 64-element checkpoint.

#include "kernels/kernels.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "kernels/internal.h"

namespace tsq::kernels {
namespace {

constexpr std::size_t kMaxLength = 257;
constexpr std::size_t kMaxOffset = 3;
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQnan = std::numeric_limits<double>::quiet_NaN();

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Bitwise equality that treats any NaN payload mismatch as failure too —
// identical op sequences must produce identical payloads.
::testing::AssertionResult SameBits(double a, double b) {
  if (Bits(a) == Bits(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << Bits(a) << ") vs " << b << " (0x"
         << Bits(b) << ")";
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas;
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (IsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

// One buffer per operand, kMaxOffset doubles longer than the longest test
// span so every offset in [0, kMaxOffset] yields a valid (and usually
// unaligned) view.
struct Inputs {
  std::vector<double> x, y, w, q;
};

Inputs FillRandom(Rng& rng) {
  Inputs in;
  const std::size_t size = kMaxLength + kMaxOffset + 1;
  in.x.resize(size);
  in.y.resize(size);
  in.w.resize(size);
  in.q.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    in.x[i] = rng.Uniform(-10.0, 10.0);
    in.y[i] = rng.Uniform(-10.0, 10.0);
    in.w[i] = rng.Uniform(0.0, 4.0);
    in.q[i] = rng.Uniform(-10.0, 10.0);
  }
  return in;
}

// Large mean, tiny variance — the ill-conditioned regime — plus a sprinkle
// of denormals, NaNs and infinities so special values flow through every
// lane position.
Inputs FillNasty(Rng& rng) {
  Inputs in = FillRandom(rng);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    in.x[i] = 1.0e12 + rng.Uniform(-1e-3, 1e-3);
    in.y[i] = 1.0e12 + rng.Uniform(-1e-3, 1e-3);
    switch (rng.UniformInt(0, 19)) {
      case 0:
        in.x[i] = 4.9406564584124654e-324;  // smallest denormal
        break;
      case 1:
        in.y[i] = -2.2250738585072009e-308;  // largest-magnitude denormal
        break;
      case 2:
        in.x[i] = kQnan;
        break;
      case 3:
        in.y[i] = i % 2 == 0 ? kInf : -kInf;
        break;
      default:
        break;
    }
  }
  return in;
}

template <typename Fn>
void ForEachCase(Fn&& fn) {
  Rng rng(20260808);
  const Inputs random = FillRandom(rng);
  const Inputs nasty = FillNasty(rng);
  for (const Inputs* in : {&random, &nasty}) {
    for (std::size_t n = 1; n <= kMaxLength; ++n) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        fn(*in, n, off);
      }
    }
  }
}

TEST(KernelBitwiseTest, SquaredDistanceMatchesScalarOnAllIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  const KernelTable& ref = TableFor(Isa::kScalar);
  ForEachCase([&](const Inputs& in, std::size_t n, std::size_t off) {
    const double* x = in.x.data() + off;
    const double* y = in.y.data() + off;
    const double expected = ref.squared_distance(x, y, n);
    for (const Isa isa : isas) {
      EXPECT_TRUE(SameBits(expected, TableFor(isa).squared_distance(x, y, n)))
          << IsaName(isa) << " n=" << n << " off=" << off;
    }
  });
}

TEST(KernelBitwiseTest, WeightedSquaredDistanceMatchesScalarOnAllIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  const KernelTable& ref = TableFor(Isa::kScalar);
  ForEachCase([&](const Inputs& in, std::size_t n, std::size_t off) {
    const double* x = in.x.data() + off;
    const double* y = in.y.data() + off;
    const double* w = in.w.data() + off;
    const double expected = ref.weighted_squared_distance(x, y, w, n);
    for (const Isa isa : isas) {
      EXPECT_TRUE(SameBits(
          expected, TableFor(isa).weighted_squared_distance(x, y, w, n)))
          << IsaName(isa) << " n=" << n << " off=" << off;
    }
  });
}

TEST(KernelBitwiseTest, TransformedToPlainMatchesScalarOnAllIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  const KernelTable& ref = TableFor(Isa::kScalar);
  // Interleaved complex data: even lengths, even offsets (component pairs).
  ForEachCase([&](const Inputs& in, std::size_t n, std::size_t off) {
    if (n % 2 != 0 || off % 2 != 0) return;
    const double* x = in.x.data() + off;
    const double* q = in.q.data() + off;
    const double* mre = in.y.data() + off;
    const double* mim = in.w.data() + off;
    const double expected = ref.transformed_to_plain(x, q, mre, mim, n);
    for (const Isa isa : isas) {
      EXPECT_TRUE(SameBits(
          expected, TableFor(isa).transformed_to_plain(x, q, mre, mim, n)))
          << IsaName(isa) << " n=" << n << " off=" << off;
    }
  });
}

TEST(KernelBitwiseTest, ComplexPointwiseMultiplyMatchesScalarOnAllIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  const KernelTable& ref = TableFor(Isa::kScalar);
  ForEachCase([&](const Inputs& in, std::size_t n, std::size_t off) {
    if (n % 2 != 0 || off % 2 != 0) return;
    const double* x = in.x.data() + off;
    const double* mre = in.y.data() + off;
    const double* mim = in.w.data() + off;
    std::vector<double> expected(n), got(n);
    ref.complex_pointwise_multiply(x, mre, mim, expected.data(), n);
    for (const Isa isa : isas) {
      TableFor(isa).complex_pointwise_multiply(x, mre, mim, got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(SameBits(expected[i], got[i]))
            << IsaName(isa) << " n=" << n << " off=" << off << " i=" << i;
      }
    }
  });
}

TEST(KernelBitwiseTest, CorrelationSumsMatchScalarOnAllIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  const KernelTable& ref = TableFor(Isa::kScalar);
  ForEachCase([&](const Inputs& in, std::size_t n, std::size_t off) {
    const double* x = in.x.data() + off;
    const double* y = in.y.data() + off;
    const CorrelationSums expected =
        ref.correlation_sums(x, y, n, x[0], y[0]);
    for (const Isa isa : isas) {
      const CorrelationSums got =
          TableFor(isa).correlation_sums(x, y, n, x[0], y[0]);
      EXPECT_TRUE(SameBits(expected.dx, got.dx)) << IsaName(isa) << " n=" << n;
      EXPECT_TRUE(SameBits(expected.dy, got.dy)) << IsaName(isa) << " n=" << n;
      EXPECT_TRUE(SameBits(expected.dxx, got.dxx))
          << IsaName(isa) << " n=" << n;
      EXPECT_TRUE(SameBits(expected.dyy, got.dyy))
          << IsaName(isa) << " n=" << n;
      EXPECT_TRUE(SameBits(expected.dxy, got.dxy))
          << IsaName(isa) << " n=" << n;
    }
  });
}

TEST(KernelBitwiseTest, WeightedDotSumsMatchScalarOnAllIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  const KernelTable& ref = TableFor(Isa::kScalar);
  ForEachCase([&](const Inputs& in, std::size_t n, std::size_t off) {
    const double* x = in.x.data() + off;
    const double* y = in.y.data() + off;
    const double* w = in.w.data() + off;
    const WeightedDotSums expected = ref.weighted_dot_sums(x, y, w, n);
    for (const Isa isa : isas) {
      const WeightedDotSums got = TableFor(isa).weighted_dot_sums(x, y, w, n);
      EXPECT_TRUE(SameBits(expected.dot, got.dot))
          << IsaName(isa) << " n=" << n;
      EXPECT_TRUE(SameBits(expected.energy_x, got.energy_x))
          << IsaName(isa) << " n=" << n;
      EXPECT_TRUE(SameBits(expected.energy_y, got.energy_y))
          << IsaName(isa) << " n=" << n;
    }
  });
}

// The early-abandon contract, checked for every ISA against that ISA's own
// full kernel (which the bitwise tests above tie to the scalar reference):
//  * consumed == n  =>  value is the bitwise-exact full sum;
//  * consumed < n   =>  value > bound, the true sum > bound, and the kernel
//    stopped at a 64-element checkpoint;
//  * a bound at exactly the full sum is never abandoned (strict test).
TEST(EarlyAbandonTest, WithinIsExactOrProvablyAboveBound) {
  Rng rng(424242);
  const Inputs in = FillRandom(rng);
  for (const Isa isa : SupportedIsas()) {
    const KernelTable& table = TableFor(isa);
    for (std::size_t n : {1u, 63u, 64u, 65u, 128u, 200u, 256u, 257u}) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        const double* x = in.x.data() + off;
        const double* y = in.y.data() + off;
        const double* w = in.w.data() + off;
        const double full = table.squared_distance(x, y, n);
        const double wfull = table.weighted_squared_distance(x, y, w, n);
        const double bounds[] = {0.0,        full * 0.25, full * 0.5,
                                 full,       full * 2.0,  kInf};
        for (const double bound : bounds) {
          const EarlyAbandonResult r =
              table.squared_distance_within(x, y, n, bound);
          if (r.consumed == n) {
            EXPECT_TRUE(SameBits(full, r.value))
                << IsaName(isa) << " n=" << n << " bound=" << bound;
          } else {
            EXPECT_GT(r.value, bound) << IsaName(isa) << " n=" << n;
            EXPECT_GT(full, bound) << IsaName(isa) << " n=" << n;
            EXPECT_EQ(r.consumed % internal::kAbandonCheckElements, 0u);
            EXPECT_GT(r.consumed, 0u);
          }
          const EarlyAbandonResult wr =
              table.weighted_squared_distance_within(x, y, w, n, bound * 4.0);
          if (wr.consumed == n) {
            EXPECT_TRUE(SameBits(wfull, wr.value)) << IsaName(isa);
          } else {
            EXPECT_GT(wr.value, bound * 4.0) << IsaName(isa);
            EXPECT_GT(wfull, bound * 4.0) << IsaName(isa);
          }
        }
        // Bound exactly at the full sum: strict abandon must not trigger.
        const EarlyAbandonResult exact =
            table.squared_distance_within(x, y, n, full);
        EXPECT_EQ(exact.consumed, n);
        EXPECT_TRUE(SameBits(full, exact.value));
      }
    }
  }
}

TEST(EarlyAbandonTest, WithinResultsBitwiseIdenticalAcrossIsas) {
  Rng rng(77);
  const Inputs in = FillRandom(rng);
  const KernelTable& ref = TableFor(Isa::kScalar);
  for (const Isa isa : SupportedIsas()) {
    const KernelTable& table = TableFor(isa);
    for (std::size_t n : {64u, 128u, 257u}) {
      const double* x = in.x.data();
      const double* y = in.y.data();
      const double full = ref.squared_distance(x, y, n);
      for (const double bound : {full * 0.1, full * 0.9, full * 1.1}) {
        const EarlyAbandonResult a = ref.squared_distance_within(x, y, n, bound);
        const EarlyAbandonResult b =
            table.squared_distance_within(x, y, n, bound);
        EXPECT_EQ(a.consumed, b.consumed) << IsaName(isa) << " n=" << n;
        EXPECT_TRUE(SameBits(a.value, b.value)) << IsaName(isa) << " n=" << n;
      }
    }
  }
}

TEST(EarlyAbandonTest, TransformedToPlainWithinContract) {
  Rng rng(99);
  const Inputs in = FillRandom(rng);
  for (const Isa isa : SupportedIsas()) {
    const KernelTable& table = TableFor(isa);
    for (std::size_t n : {2u, 64u, 128u, 256u}) {
      const double* x = in.x.data();
      const double* q = in.q.data();
      const double* mre = in.y.data();
      const double* mim = in.w.data();
      const double full = table.transformed_to_plain(x, q, mre, mim, n);
      for (const double bound : {0.0, full * 0.5, full, full * 2.0}) {
        const EarlyAbandonResult r =
            table.transformed_to_plain_within(x, q, mre, mim, n, bound);
        if (r.consumed == n) {
          EXPECT_TRUE(SameBits(full, r.value)) << IsaName(isa) << " n=" << n;
        } else {
          EXPECT_GT(r.value, bound);
          EXPECT_GT(full, bound);
          EXPECT_EQ(r.consumed % internal::kAbandonCheckElements, 0u);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tsq::kernels
