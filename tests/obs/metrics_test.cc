#include "obs/metrics.h"

#include <bit>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tsq::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  g.Add(-12);
  EXPECT_EQ(g.value(), -5);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, CountSumMeanExact) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Observe(10);
  h.Observe(20);
  h.Observe(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(HistogramTest, Log2Bucketing) {
  Histogram h;
  // bucket(v) = bit_width(v): 0→0, 1→1, 2,3→2, 4..7→3, 1024..2047→11.
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(std::bit_width(std::uint64_t{1024})), 1u);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    total += h.bucket_count(b);
  }
  EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("test.counter");
  Counter* b = registry.counter("test.counter");
  EXPECT_EQ(a, b);
  a->Increment(5);
  EXPECT_EQ(b->value(), 5u);
  Gauge* g = registry.gauge("test.gauge");
  EXPECT_EQ(registry.gauge("test.gauge"), g);
  Histogram* h = registry.histogram("test.histogram");
  EXPECT_EQ(registry.histogram("test.histogram"), h);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter* c = registry.counter("reset.counter");
  Gauge* g = registry.gauge("reset.gauge");
  Histogram* h = registry.histogram("reset.histogram");
  c->Increment(7);
  g->Set(-2);
  h->Observe(100);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  // Same pointers still registered.
  EXPECT_EQ(registry.counter("reset.counter"), c);
}

TEST(MetricsRegistryTest, RenderTextSortedWithValues) {
  MetricsRegistry registry;
  registry.counter("b.second")->Increment(2);
  registry.counter("a.first")->Increment(1);
  registry.gauge("c.depth")->Set(3);
  const std::string text = registry.RenderText();
  const std::size_t first = text.find("a.first");
  const std::size_t second = text.find("b.second");
  const std::size_t depth = text.find("c.depth");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(depth, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, depth);
}

TEST(MetricsRegistryTest, RenderJsonWellFormed) {
  MetricsRegistry registry;
  registry.counter("json.count")->Increment(4);
  registry.histogram("json.hist")->Observe(17);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"json.count\":4"), std::string::npos);
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, GlobalIsSingletonAndPopulatedByEngineUse) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
  // Instruments created through Global() persist across call sites.
  Counter* c = a.counter("global.test.counter");
  c->Increment();
  EXPECT_EQ(b.counter("global.test.counter")->value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.counter("contended.counter");
      for (int i = 0; i < 1000; ++i) c->Increment();
      seen[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), 8000u);
}

}  // namespace
}  // namespace tsq::obs
