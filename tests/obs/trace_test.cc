#include "obs/trace.h"

#include <string>

#include "gtest/gtest.h"

namespace tsq::obs {
namespace {

TEST(PhaseStatsTest, AddTaskAccumulatesSumMaxCountItems) {
  PhaseStats stats;
  EXPECT_TRUE(stats.empty());
  stats.AddTask(100, 7);
  stats.AddTask(250, 3);
  stats.AddTask(50, 0);
  EXPECT_FALSE(stats.empty());
  EXPECT_EQ(stats.nanos, 400u);
  EXPECT_EQ(stats.max_task_nanos, 250u);
  EXPECT_EQ(stats.tasks, 3u);
  EXPECT_EQ(stats.items, 10u);
}

TEST(PhaseStatsTest, MergeIsSumSumSumMax) {
  PhaseStats a;
  a.AddTask(100, 1);
  a.AddTask(300, 2);
  PhaseStats b;
  b.AddTask(200, 4);
  a.Merge(b);
  EXPECT_EQ(a.nanos, 600u);
  EXPECT_EQ(a.max_task_nanos, 300u);
  EXPECT_EQ(a.tasks, 3u);
  EXPECT_EQ(a.items, 7u);
}

TEST(TraceTest, PhaseNamesAreStable) {
  EXPECT_STREQ(PhaseName(Phase::kPlan), "plan");
  EXPECT_STREQ(PhaseName(Phase::kIndexTraversal), "index-traversal");
  EXPECT_STREQ(PhaseName(Phase::kCandidateFetch), "candidate-fetch");
  EXPECT_STREQ(PhaseName(Phase::kVerification), "verification");
  EXPECT_STREQ(PhaseName(Phase::kMerge), "merge");
}

QueryTrace SampleTrace() {
  QueryTrace trace;
  trace.algorithm = "MT-index";
  trace.num_threads = 4;
  trace.total_nanos = 123456;
  trace.at(Phase::kPlan).AddTask(1000, 16);
  trace.at(Phase::kIndexTraversal).AddTask(2000, 40);
  trace.at(Phase::kVerification).AddTask(3000, 200);
  trace.at(Phase::kVerification).AddTask(1500, 100);
  trace.at(Phase::kMerge).AddTask(500, 12);
  return trace;
}

TEST(TraceTest, DeterministicSignatureExcludesTiming) {
  QueryTrace a = SampleTrace();
  QueryTrace b = SampleTrace();
  // Perturb every timing field of b: same tasks/items, wildly different
  // clocks. The signature must not change.
  b.total_nanos = 999;
  for (PhaseStats& phase : b.phases) {
    phase.nanos *= 17;
    phase.max_task_nanos += 1234;
  }
  b.num_threads = 8;
  EXPECT_EQ(a.DeterministicSignature(), b.DeterministicSignature());

  // Changing an item count must change it.
  b.at(Phase::kPlan).items += 1;
  EXPECT_NE(a.DeterministicSignature(), b.DeterministicSignature());
}

TEST(TraceTest, FormatTraceListsNonEmptyPhasesOnly) {
  const std::string text = FormatTrace(SampleTrace());
  EXPECT_NE(text.find("MT-index"), std::string::npos);
  EXPECT_NE(text.find("plan"), std::string::npos);
  EXPECT_NE(text.find("index-traversal"), std::string::npos);
  EXPECT_NE(text.find("verification"), std::string::npos);
  EXPECT_NE(text.find("merge"), std::string::npos);
  // kCandidateFetch was never recorded, so it is omitted.
  EXPECT_EQ(text.find("candidate-fetch"), std::string::npos);
}

TEST(TraceTest, JsonRenderingHasExpectedFields) {
  const std::string json = TraceToJson(SampleTrace());
  EXPECT_NE(json.find("\"algorithm\":\"MT-index\""), std::string::npos);
  EXPECT_NE(json.find("\"num_threads\":4"), std::string::npos);
  EXPECT_NE(json.find("\"total_nanos\":123456"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks\":2"), std::string::npos);  // verification
  EXPECT_NE(json.find("\"items\":300"), std::string::npos);
  EXPECT_EQ(json.find("candidate-fetch"), std::string::npos);
  // Braces/brackets balance (cheap well-formedness check).
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, ScopedPhaseRecordsOneTask) {
  QueryTrace trace;
  {
    ScopedPhase scope(&trace, Phase::kVerification, 5);
    scope.AddItems(3);
  }
  const PhaseStats& phase = trace.at(Phase::kVerification);
  EXPECT_EQ(phase.tasks, 1u);
  EXPECT_EQ(phase.items, 8u);
  EXPECT_EQ(phase.nanos, phase.max_task_nanos);
}

TEST(ClockTest, MonotonicNanosNeverGoesBackwards) {
  std::uint64_t prev = MonotonicNanos();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = MonotonicNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace tsq::obs
