#include "dft/spectrum.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::dft {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(WrapAngleTest, IdentityInsideRange) {
  EXPECT_NEAR(WrapAngle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(WrapAngle(1.5), 1.5, 1e-12);
  EXPECT_NEAR(WrapAngle(-1.5), -1.5, 1e-12);
}

TEST(WrapAngleTest, WrapsMultiplesOfTwoPi) {
  EXPECT_NEAR(WrapAngle(2.0 * kPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(WrapAngle(-2.0 * kPi - 0.5), -0.5, 1e-12);
  EXPECT_NEAR(WrapAngle(6.0 * kPi + 1.0), 1.0, 1e-12);
}

TEST(WrapAngleTest, ResultAlwaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double wrapped = WrapAngle(rng.Uniform(-100.0, 100.0));
    EXPECT_GE(wrapped, -kPi);
    EXPECT_LE(wrapped, kPi);
  }
}

TEST(AngularDistanceTest, BasicCases) {
  EXPECT_NEAR(AngularDistance(0.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(AngularDistance(0.0, kPi), kPi, 1e-12);
  // Wrap-around: -3 and +3 radians are 2*pi - 6 apart.
  EXPECT_NEAR(AngularDistance(-3.0, 3.0), 2.0 * kPi - 6.0, 1e-12);
}

TEST(AngularDistanceTest, SymmetricAndBounded) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Uniform(-kPi, kPi);
    const double b = rng.Uniform(-kPi, kPi);
    EXPECT_NEAR(AngularDistance(a, b), AngularDistance(b, a), 1e-12);
    EXPECT_LE(AngularDistance(a, b), kPi + 1e-12);
    EXPECT_GE(AngularDistance(a, b), 0.0);
  }
}

TEST(PolarTest, RoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Complex z(rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0));
    const Complex back = FromPolar(ToPolar(z));
    EXPECT_LT(std::abs(z - back), 1e-10);
  }
}

TEST(PolarTest, SpectrumRoundTrip) {
  Rng rng(4);
  std::vector<Complex> spectrum(16);
  for (auto& v : spectrum) {
    v = Complex(rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0));
  }
  const auto polar = SpectrumToPolar(spectrum);
  const auto back = SpectrumFromPolar(polar);
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    EXPECT_LT(std::abs(spectrum[i] - back[i]), 1e-10);
  }
}

TEST(PolarSquaredDistanceTest, MatchesComplexDistance) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Complex a(rng.Uniform(-4.0, 4.0), rng.Uniform(-4.0, 4.0));
    const Complex b(rng.Uniform(-4.0, 4.0), rng.Uniform(-4.0, 4.0));
    EXPECT_NEAR(PolarSquaredDistance(ToPolar(a), ToPolar(b)),
                std::norm(a - b), 1e-9);
  }
}

TEST(PolarSquaredDistanceTest, NeverNegative) {
  // Identical points with rounding noise must clamp at zero.
  const Polar p{1.0, 0.5};
  EXPECT_GE(PolarSquaredDistance(p, p), 0.0);
  EXPECT_NEAR(PolarSquaredDistance(p, p), 0.0, 1e-12);
}

TEST(SymmetryDefectTest, ZeroForRealSpectra) {
  // Conjugate-symmetric spectrum (what a real signal produces).
  std::vector<Complex> spectrum = {
      {1.0, 0.0}, {0.5, 0.25}, {0.1, -0.3}, {0.1, 0.3}, {0.5, -0.25}};
  EXPECT_NEAR(SymmetryDefect(spectrum), 0.0, 1e-12);
}

TEST(SymmetryDefectTest, PositiveForAsymmetricSpectra) {
  std::vector<Complex> spectrum = {
      {1.0, 0.0}, {2.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.5, 0.0}};
  EXPECT_GT(SymmetryDefect(spectrum), 1.0);
}

}  // namespace
}  // namespace tsq::dft
