#include "dft/fft.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::dft {
namespace {

constexpr double kTol = 1e-9;

std::vector<double> RandomSignal(std::size_t n, Rng& rng) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.Uniform(-10.0, 10.0);
  return x;
}

double MaxAbsDiff(std::span<const Complex> a, std::span<const Complex> b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(PowerOfTwoTest, Detection) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(128));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(127));
}

TEST(PowerOfTwoTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(129), 256u);
}

TEST(FftTest, LengthOneIsIdentity) {
  const std::vector<double> x = {3.5};
  const auto spectrum = Forward(x);
  ASSERT_EQ(spectrum.size(), 1u);
  EXPECT_NEAR(spectrum[0].real(), 3.5, kTol);
  EXPECT_NEAR(spectrum[0].imag(), 0.0, kTol);
}

TEST(FftTest, KnownSpectrumOfConstant) {
  // Constant c of length n has all energy in X_0 = sqrt(n) * c.
  const std::size_t n = 16;
  const std::vector<double> x(n, 2.0);
  const auto spectrum = Forward(x);
  EXPECT_NEAR(spectrum[0].real(), 2.0 * std::sqrt(16.0), kTol);
  for (std::size_t f = 1; f < n; ++f) {
    EXPECT_NEAR(std::abs(spectrum[f]), 0.0, kTol) << "f=" << f;
  }
}

TEST(FftTest, KnownSpectrumOfCosine) {
  // cos(2 pi t / n) concentrates at f = 1 and f = n-1.
  const std::size_t n = 32;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::cos(2.0 * std::numbers::pi * static_cast<double>(t) /
                    static_cast<double>(n));
  }
  const auto spectrum = Forward(x);
  EXPECT_NEAR(std::abs(spectrum[1]), std::sqrt(32.0) / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(spectrum[n - 1]), std::sqrt(32.0) / 2.0, 1e-8);
  for (std::size_t f = 2; f < n - 1; ++f) {
    EXPECT_NEAR(std::abs(spectrum[f]), 0.0, 1e-8);
  }
}

// --- property sweeps over many lengths (pow2 and not) ---------------------

class FftPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPropertyTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n * 7919);
  const auto x = RandomSignal(n, rng);
  EXPECT_LT(MaxAbsDiff(Forward(std::span<const double>(x)), NaiveForward(x)),
            1e-7);
}

TEST_P(FftPropertyTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n * 104729);
  const auto x = RandomSignal(n, rng);
  const auto back = InverseReal(Forward(std::span<const double>(x)));
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-8) << "i=" << i;
  }
}

TEST_P(FftPropertyTest, ParsevalHolds) {
  // Eq. 7: E(x) == E(X) under the unitary convention.
  const std::size_t n = GetParam();
  Rng rng(n * 31337);
  const auto x = RandomSignal(n, rng);
  const auto spectrum = Forward(std::span<const double>(x));
  EXPECT_NEAR(Energy(std::span<const double>(x)),
              Energy(std::span<const Complex>(spectrum)),
              1e-7 * (1.0 + Energy(std::span<const double>(x))));
}

TEST_P(FftPropertyTest, DistancePreserved) {
  // Eq. 8: D(x, y) == D(X, Y).
  const std::size_t n = GetParam();
  Rng rng(n * 13);
  const auto x = RandomSignal(n, rng);
  const auto y = RandomSignal(n, rng);
  double d2_time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d2_time += (x[i] - y[i]) * (x[i] - y[i]);
  }
  const auto fx = Forward(std::span<const double>(x));
  const auto fy = Forward(std::span<const double>(y));
  double d2_freq = 0.0;
  for (std::size_t f = 0; f < n; ++f) d2_freq += std::norm(fx[f] - fy[f]);
  EXPECT_NEAR(d2_time, d2_freq, 1e-6 * (1.0 + d2_time));
}

TEST_P(FftPropertyTest, Linearity) {
  // Eq. 4: DFT(a x + b y) == a X + b Y.
  const std::size_t n = GetParam();
  Rng rng(n * 271828);
  const auto x = RandomSignal(n, rng);
  const auto y = RandomSignal(n, rng);
  const double a = rng.Uniform(-3.0, 3.0);
  const double b = rng.Uniform(-3.0, 3.0);
  std::vector<double> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a * x[i] + b * y[i];
  const auto f_combo = Forward(std::span<const double>(combo));
  const auto fx = Forward(std::span<const double>(x));
  const auto fy = Forward(std::span<const double>(y));
  for (std::size_t f = 0; f < n; ++f) {
    EXPECT_LT(std::abs(f_combo[f] - (a * fx[f] + b * fy[f])), 1e-7);
  }
}

TEST_P(FftPropertyTest, SymmetryOfRealSignals) {
  // Eq. 6: |X_{n-f}| == |X_f| and X_{n-f} == conj(X_f) for real input.
  const std::size_t n = GetParam();
  Rng rng(n * 999331);
  const auto x = RandomSignal(n, rng);
  const auto spectrum = Forward(std::span<const double>(x));
  for (std::size_t f = 1; f < n; ++f) {
    EXPECT_NEAR(std::abs(spectrum[f]), std::abs(spectrum[n - f]), 1e-8);
    EXPECT_LT(std::abs(spectrum[n - f] - std::conj(spectrum[f])), 1e-8);
  }
}

TEST_P(FftPropertyTest, ConvolutionTheorem) {
  // Eq. 5 (with unitary scaling): conv(x, y) <-> sqrt(n) X .* Y.
  const std::size_t n = GetParam();
  Rng rng(n * 42);
  const auto x = RandomSignal(n, rng);
  const auto y = RandomSignal(n, rng);
  const auto fast = CircularConvolution(x, y);
  const auto naive = NaiveCircularConvolution(x, y);
  ASSERT_EQ(fast.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-6 * (1.0 + std::fabs(naive[i])));
  }
}

TEST_P(FftPropertyTest, KernelTransferMatchesConvolution) {
  // Transforming via KernelTransfer multipliers equals time-domain circular
  // convolution.
  const std::size_t n = GetParam();
  Rng rng(n * 5);
  const auto x = RandomSignal(n, rng);
  std::vector<double> kernel(n, 0.0);
  kernel[0] = 0.5;
  kernel[1 % n] = 0.25;
  kernel[(n - 1) % n] = -0.25;
  const auto transfer = KernelTransfer(kernel);
  FftPlan plan(n);
  auto spectrum = plan.Forward(std::span<const double>(x));
  for (std::size_t f = 0; f < n; ++f) spectrum[f] *= transfer[f];
  const auto via_freq = plan.InverseReal(spectrum);
  const auto via_time = CircularConvolution(x, kernel);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(via_freq[i], via_time[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 27, 31,
                                           32, 64, 100, 128, 129, 255, 256,
                                           360, 512, 1000));

TEST(FftTest, ImpulseHasFlatSpectrum) {
  // delta at t=0: X_f = 1/sqrt(n) for every f.
  const std::size_t n = 20;
  std::vector<double> x(n, 0.0);
  x[0] = 1.0;
  const auto spectrum = Forward(std::span<const double>(x));
  for (std::size_t f = 0; f < n; ++f) {
    EXPECT_NEAR(spectrum[f].real(), 1.0 / std::sqrt(20.0), 1e-10);
    EXPECT_NEAR(spectrum[f].imag(), 0.0, 1e-10);
  }
}

TEST(FftTest, LargePrimeLengthBluestein) {
  // 1009 is prime: pure Bluestein path, checked against the naive DFT.
  const std::size_t n = 1009;
  Rng rng(1009);
  const auto x = RandomSignal(n, rng);
  const auto fast = Forward(std::span<const double>(x));
  const auto slow = NaiveForward(x);
  EXPECT_LT(MaxAbsDiff(fast, slow), 1e-6);
  // Round trip too.
  const auto back = InverseReal(fast);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-7);
  }
}

TEST(FftTest, TimeShiftTheorem) {
  // x shifted circularly by s has spectrum X_f * exp(-j 2 pi f s / n).
  const std::size_t n = 48;
  Rng rng(48);
  const auto x = RandomSignal(n, rng);
  std::vector<double> shifted(n);
  const std::size_t s = 7;
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + n - s) % n];
  const auto fx = Forward(std::span<const double>(x));
  const auto fs = Forward(std::span<const double>(shifted));
  for (std::size_t f = 0; f < n; ++f) {
    const Complex expected =
        fx[f] * std::polar(1.0, -2.0 * std::numbers::pi *
                                    static_cast<double>(f * s) /
                                    static_cast<double>(n));
    EXPECT_LT(std::abs(fs[f] - expected), 1e-8);
  }
}

TEST(FftPlanTest, ReusablePlanMatchesOneShot) {
  const std::size_t n = 96;
  FftPlan plan(n);
  Rng rng(777);
  for (int round = 0; round < 5; ++round) {
    const auto x = RandomSignal(n, rng);
    const auto a = plan.Forward(std::span<const double>(x));
    const auto b = Forward(std::span<const double>(x));
    EXPECT_LT(MaxAbsDiff(a, b), kTol);
  }
}

TEST(FftPlanTest, ComplexForwardMatchesRealForward) {
  const std::size_t n = 64;
  Rng rng(31);
  const auto x = RandomSignal(n, rng);
  std::vector<Complex> cx(n);
  for (std::size_t i = 0; i < n; ++i) cx[i] = Complex(x[i], 0.0);
  EXPECT_LT(MaxAbsDiff(Forward(std::span<const double>(x)),
                       Forward(std::span<const Complex>(cx))),
            kTol);
}

TEST(FftPlanTest, InverseOfComplexSpectrum) {
  // Complex (non-symmetric) spectra round-trip through Inverse.
  const std::size_t n = 24;
  Rng rng(8);
  std::vector<Complex> spectrum(n);
  for (auto& v : spectrum) {
    v = Complex(rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0));
  }
  const auto time = Inverse(spectrum);
  const auto back = Forward(std::span<const Complex>(time));
  EXPECT_LT(MaxAbsDiff(back, spectrum), 1e-8);
}

}  // namespace
}  // namespace tsq::dft
