#include "core/cost_model.h"

#include "core/range_query.h"
#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

TEST(CostEq20Test, HandComputedValue) {
  // Ck = C_DA * sum DA_all + CA_leaf * C_cmp * sum (DA_leaf * NT).
  const std::vector<GroupRunStats> groups = {
      GroupRunStats{100, 20, 8, 50},
      GroupRunStats{60, 10, 8, 30},
  };
  const CostConstants constants{1.0, 0.4};
  const double expected = 1.0 * (100 + 60) + 30.0 * 0.4 * (20 * 8 + 10 * 8);
  EXPECT_NEAR(CostEq20(groups, 30.0, constants), expected, 1e-9);
}

TEST(CostEq20Test, EmptyGroupsCostNothing) {
  EXPECT_EQ(CostEq20({}, 39.0), 0.0);
}

TEST(CostEq20Test, PaperConstantsAreDefault) {
  const CostConstants constants;
  EXPECT_EQ(constants.c_da, 1.0);
  EXPECT_EQ(constants.c_cmp, 0.4);
}

class CostEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testutil::Stocks(300, 128, 21),
                                         transform::FeatureLayout{});
    index_ = std::make_unique<SequenceIndex>(*dataset_);
    estimator_ = std::make_unique<TreeCostEstimator>(*index_);
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SequenceIndex> index_;
  std::unique_ptr<TreeCostEstimator> estimator_;
};

TEST_F(CostEstimatorTest, LeafCapacityMatchesIndex) {
  EXPECT_NEAR(estimator_->leaf_capacity(), index_->AverageLeafCapacity(),
              1e-9);
  EXPECT_GT(estimator_->leaf_capacity(), 1.0);
}

TEST_F(CostEstimatorTest, EstimateIsPositiveAndBounded) {
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> group;
  for (const auto& t : transform::MovingAverageRange(128, 5, 20)) {
    group.push_back(t.ToFeatureTransform(layout));
  }
  const auto estimate = estimator_->EstimateTraversal(group, 0.5, layout);
  EXPECT_GT(estimate.da_all, 0.0);
  EXPECT_GE(estimate.da_all, estimate.da_leaf);
  // Never more than the whole tree.
  std::size_t total_nodes = 0;
  ASSERT_TRUE(index_->tree()
                  .VisitNodes([&](const rstar::RStarTree::NodeView&) {
                    ++total_nodes;
                  })
                  .ok());
  EXPECT_LE(estimate.da_all, static_cast<double>(total_nodes) + 1e-9);
}

TEST_F(CostEstimatorTest, WiderMbrCostsMore) {
  // A wider transformation rectangle must not be estimated cheaper.
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> narrow, wide;
  for (const auto& t : transform::MovingAverageRange(128, 10, 12)) {
    narrow.push_back(t.ToFeatureTransform(layout));
  }
  for (const auto& t : transform::MovingAverageRange(128, 1, 40)) {
    wide.push_back(t.ToFeatureTransform(layout));
  }
  const auto narrow_est = estimator_->EstimateTraversal(narrow, 0.5, layout);
  const auto wide_est = estimator_->EstimateTraversal(wide, 0.5, layout);
  EXPECT_GE(wide_est.da_all, narrow_est.da_all);
}

TEST_F(CostEstimatorTest, LargerEpsilonCostsMore) {
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> group = {
      transform::MovingAverageTransform(128, 10).ToFeatureTransform(layout)};
  const auto small = estimator_->EstimateTraversal(group, 0.1, layout);
  const auto large = estimator_->EstimateTraversal(group, 2.0, layout);
  EXPECT_GE(large.da_all, small.da_all);
}

TEST_F(CostEstimatorTest, GroupCostGrowsWithGroupSize) {
  // Eq. 19: the comparison term is linear in NT(r).
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> group = {
      transform::MovingAverageTransform(128, 10).ToFeatureTransform(layout),
      transform::MovingAverageTransform(128, 11).ToFeatureTransform(layout)};
  const double two = EstimateGroupCost(*estimator_, group, 0.5, layout);
  group.push_back(
      transform::MovingAverageTransform(128, 12).ToFeatureTransform(layout));
  const double three = EstimateGroupCost(*estimator_, group, 0.5, layout);
  EXPECT_GT(three, two);
}

TEST_F(CostEstimatorTest, MeasuredCostTracksRuntimeOrdering) {
  // The Fig. 8 claim, in miniature: the Eq. 20 cost evaluated on *measured*
  // group counters ranks "all singletons" (ST-like) worse than moderate
  // grouping for a 16-transform MA workload.
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(dataset_->normal(0));
  spec.transforms = transform::MovingAverageRange(128, 10, 25);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  const double leaf_capacity = index_->AverageLeafCapacity();
  auto cost_for = [&](std::size_t per_group) {
    spec.partition =
        transform::PartitionBySize(spec.transforms.size(), per_group);
    std::vector<GroupRunStats> groups;
    auto result =
        RunRangeQuery(*dataset_, *index_, spec, Algorithm::kMtIndex, &groups);
    EXPECT_TRUE(result.ok());
    return CostEq20(groups, leaf_capacity);
  };
  const double singletons = cost_for(1);
  const double grouped = cost_for(8);
  EXPECT_LT(grouped, singletons);
}

}  // namespace
}  // namespace tsq::core
