#include "core/cost_model.h"

#include "common/rng.h"
#include "core/knn_query.h"
#include "core/range_query.h"
#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

TEST(CostEq20Test, HandComputedValue) {
  // Ck = C_DA * sum DA_all + CA_leaf * C_cmp * sum (DA_leaf * NT).
  const std::vector<GroupRunStats> groups = {
      GroupRunStats{100, 20, 8, 50},
      GroupRunStats{60, 10, 8, 30},
  };
  const CostConstants constants{1.0, 0.4};
  const double expected = 1.0 * (100 + 60) + 30.0 * 0.4 * (20 * 8 + 10 * 8);
  EXPECT_NEAR(CostEq20(groups, 30.0, constants), expected, 1e-9);
}

TEST(CostEq20Test, EmptyGroupsCostNothing) {
  EXPECT_EQ(CostEq20({}, 39.0), 0.0);
}

TEST(CostEq20Test, PaperConstantsAreDefault) {
  const CostConstants constants;
  EXPECT_EQ(constants.c_da, 1.0);
  EXPECT_EQ(constants.c_cmp, 0.4);
}

class CostEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testutil::Stocks(300, 128, 21),
                                         transform::FeatureLayout{});
    index_ = std::make_unique<SequenceIndex>(*dataset_);
    estimator_ = std::make_unique<TreeCostEstimator>(*index_);
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SequenceIndex> index_;
  std::unique_ptr<TreeCostEstimator> estimator_;
};

TEST_F(CostEstimatorTest, LeafCapacityMatchesIndex) {
  EXPECT_NEAR(estimator_->leaf_capacity(), index_->AverageLeafCapacity(),
              1e-9);
  EXPECT_GT(estimator_->leaf_capacity(), 1.0);
}

TEST_F(CostEstimatorTest, EstimateIsPositiveAndBounded) {
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> group;
  for (const auto& t : transform::MovingAverageRange(128, 5, 20)) {
    group.push_back(t.ToFeatureTransform(layout));
  }
  const auto estimate = estimator_->EstimateTraversal(group, 0.5, layout);
  EXPECT_GT(estimate.da_all, 0.0);
  EXPECT_GE(estimate.da_all, estimate.da_leaf);
  // Never more than the whole tree.
  std::size_t total_nodes = 0;
  ASSERT_TRUE(index_->tree()
                  .VisitNodes([&](const rstar::RStarTree::NodeView&) {
                    ++total_nodes;
                  })
                  .ok());
  EXPECT_LE(estimate.da_all, static_cast<double>(total_nodes) + 1e-9);
}

TEST_F(CostEstimatorTest, WiderMbrCostsMore) {
  // A wider transformation rectangle must not be estimated cheaper.
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> narrow, wide;
  for (const auto& t : transform::MovingAverageRange(128, 10, 12)) {
    narrow.push_back(t.ToFeatureTransform(layout));
  }
  for (const auto& t : transform::MovingAverageRange(128, 1, 40)) {
    wide.push_back(t.ToFeatureTransform(layout));
  }
  const auto narrow_est = estimator_->EstimateTraversal(narrow, 0.5, layout);
  const auto wide_est = estimator_->EstimateTraversal(wide, 0.5, layout);
  EXPECT_GE(wide_est.da_all, narrow_est.da_all);
}

TEST_F(CostEstimatorTest, LargerEpsilonCostsMore) {
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> group = {
      transform::MovingAverageTransform(128, 10).ToFeatureTransform(layout)};
  const auto small = estimator_->EstimateTraversal(group, 0.1, layout);
  const auto large = estimator_->EstimateTraversal(group, 2.0, layout);
  EXPECT_GE(large.da_all, small.da_all);
}

TEST_F(CostEstimatorTest, GroupCostGrowsWithGroupSize) {
  // Eq. 19: the comparison term is linear in NT(r).
  const auto& layout = dataset_->layout();
  std::vector<transform::FeatureTransform> group = {
      transform::MovingAverageTransform(128, 10).ToFeatureTransform(layout),
      transform::MovingAverageTransform(128, 11).ToFeatureTransform(layout)};
  const double two = EstimateGroupCost(*estimator_, group, 0.5, layout);
  group.push_back(
      transform::MovingAverageTransform(128, 12).ToFeatureTransform(layout));
  const double three = EstimateGroupCost(*estimator_, group, 0.5, layout);
  EXPECT_GT(three, two);
}

TEST_F(CostEstimatorTest, MeasuredCostTracksRuntimeOrdering) {
  // The Fig. 8 claim, in miniature: the Eq. 20 cost evaluated on *measured*
  // group counters ranks "all singletons" (ST-like) worse than moderate
  // grouping for a 16-transform MA workload.
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(dataset_->normal(0));
  spec.transforms = transform::MovingAverageRange(128, 10, 25);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  const double leaf_capacity = index_->AverageLeafCapacity();
  auto cost_for = [&](std::size_t per_group) {
    spec.partition =
        transform::PartitionBySize(spec.transforms.size(), per_group);
    std::vector<GroupRunStats> groups;
    auto result =
        RunRangeQuery(*dataset_, *index_, spec, Algorithm::kMtIndex, &groups);
    EXPECT_TRUE(result.ok());
    return CostEq20(groups, leaf_capacity);
  };
  const double singletons = cost_for(1);
  const double grouped = cost_for(8);
  EXPECT_LT(grouped, singletons);
}

// ---- randomized property tests (Eq. 18-20) ---------------------------------

TEST(CostEq20PropertyTest, NonNegativeOnRandomCounters) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<GroupRunStats> groups(rng.UniformInt(0, 5));
    for (auto& g : groups) {
      g.da_all = rng.UniformInt(0, 1000);
      g.da_leaf = rng.UniformInt(0, 200);
      g.transforms = rng.UniformInt(0, 64);
      g.candidates = rng.UniformInt(0, 500);
    }
    const CostConstants constants{rng.Uniform(0.0, 4.0),
                                  rng.Uniform(0.0, 2.0)};
    EXPECT_GE(CostEq20(groups, rng.Uniform(1.0, 64.0), constants), 0.0);
  }
}

TEST(CostEq20PropertyTest, MonotoneInEveryCounter) {
  // Bumping any counter of any group never makes the query look cheaper.
  Rng rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<GroupRunStats> groups(1 + rng.UniformInt(0, 3));
    for (auto& g : groups) {
      g.da_all = rng.UniformInt(0, 100);
      g.da_leaf = rng.UniformInt(0, 50);
      g.transforms = rng.UniformInt(0, 16);
    }
    const double leaf_capacity = rng.Uniform(1.0, 40.0);
    const double base = CostEq20(groups, leaf_capacity);
    const std::size_t which = rng.UniformInt(0, groups.size() - 1);
    const std::uint64_t bump = 1 + rng.UniformInt(0, 9);

    auto bumped = groups;
    bumped[which].da_all += bump;
    EXPECT_GE(CostEq20(bumped, leaf_capacity), base);
    bumped = groups;
    bumped[which].da_leaf += bump;
    EXPECT_GE(CostEq20(bumped, leaf_capacity), base);
    bumped = groups;
    bumped[which].transforms += bump;
    EXPECT_GE(CostEq20(bumped, leaf_capacity), base);
  }
}

TEST(CostEq20PropertyTest, AdditiveOverGroups) {
  // Eq. 20 is a sum of per-rectangle terms (Eq. 19), so splitting the group
  // list changes nothing.
  Rng rng(103);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<GroupRunStats> groups(2 + rng.UniformInt(0, 4));
    for (auto& g : groups) {
      g.da_all = rng.UniformInt(0, 100);
      g.da_leaf = rng.UniformInt(0, 50);
      g.transforms = rng.UniformInt(0, 16);
    }
    const double leaf_capacity = rng.Uniform(1.0, 40.0);
    const std::size_t cut = 1 + rng.UniformInt(0, groups.size() - 2);
    const std::vector<GroupRunStats> head(groups.begin(),
                                          groups.begin() + cut);
    const std::vector<GroupRunStats> tail(groups.begin() + cut, groups.end());
    EXPECT_NEAR(CostEq20(groups, leaf_capacity),
                CostEq20(head, leaf_capacity) + CostEq20(tail, leaf_capacity),
                1e-9);
  }
}

TEST_F(CostEstimatorTest, EstimateMonotoneInEpsilonRandomized) {
  const auto& layout = dataset_->layout();
  Rng rng(104);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t lo = 1 + rng.UniformInt(0, 20);
    const std::size_t hi = lo + 1 + rng.UniformInt(0, 10);
    std::vector<transform::FeatureTransform> group;
    for (const auto& t : transform::MovingAverageRange(128, lo, hi)) {
      group.push_back(t.ToFeatureTransform(layout));
    }
    const double eps_small = rng.Uniform(0.01, 1.0);
    const double eps_large = eps_small + rng.Uniform(0.0, 2.0);
    const auto small = estimator_->EstimateTraversal(group, eps_small, layout);
    const auto large = estimator_->EstimateTraversal(group, eps_large, layout);
    EXPECT_GE(small.da_all, 0.0);
    EXPECT_GE(small.da_leaf, 0.0);
    EXPECT_GE(large.da_all, small.da_all) << "trial " << trial;
    EXPECT_GE(large.da_leaf, small.da_leaf) << "trial " << trial;
    EXPECT_GE(EstimateGroupCost(*estimator_, group, eps_large, layout),
              EstimateGroupCost(*estimator_, group, eps_small, layout));
  }
}

TEST(CostModelScalingTest, MeasuredCostMonotoneInSequenceCount) {
  // Same query over a 4x larger relation must not measure cheaper (Eq. 20 on
  // real counters: more leaves to read, more candidates to compare).
  RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(64, 5, 16);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.9, 64);

  auto measured_cost = [&](std::size_t num_series) {
    Dataset dataset(testutil::Stocks(num_series, 64, 21),
                    transform::FeatureLayout{});
    SequenceIndex index(dataset);
    spec.query = ts::Denormalize(dataset.normal(0));
    std::vector<GroupRunStats> groups;
    auto result =
        RunRangeQuery(dataset, index, spec, Algorithm::kMtIndex, &groups);
    EXPECT_TRUE(result.ok());
    return CostEq20(groups, index.AverageLeafCapacity());
  };
  const double small = measured_cost(100);
  const double large = measured_cost(400);
  EXPECT_GT(small, 0.0);
  EXPECT_GE(large, small);
}

TEST(CostModelScalingTest, KnnDiskCostMonotoneInK) {
  // Randomized sweep: raising k never lets the best-first search stop
  // earlier, so disk accesses and comparisons are non-decreasing in k.
  Dataset dataset(testutil::Stocks(120, 64, 31), transform::FeatureLayout{});
  SequenceIndex index(dataset);
  Rng rng(105);
  for (int trial = 0; trial < 10; ++trial) {
    KnnQuerySpec spec;
    spec.query = ts::Denormalize(
        dataset.normal(rng.UniformInt(0, dataset.size() - 1)));
    spec.transforms = transform::MovingAverageRange(64, 1, 4);
    std::uint64_t last_da = 0;
    std::uint64_t last_cmp = 0;
    for (const std::size_t k : {1u, 4u, 16u, 64u}) {
      spec.k = k;
      const auto result =
          RunKnnQuery(dataset, index, spec, Algorithm::kMtIndex);
      ASSERT_TRUE(result.ok());
      EXPECT_GE(result->stats.disk_accesses(), last_da) << "k=" << k;
      EXPECT_GE(result->stats.comparisons, last_cmp) << "k=" << k;
      last_da = result->stats.disk_accesses();
      last_cmp = result->stats.comparisons;
    }
  }
}

}  // namespace
}  // namespace tsq::core
