// Thread-safety of SimilarityEngine::ExecuteBatch (run under TSAN by
// scripts/tsan_write_tests.sh): several threads issue batches — result cache
// on and off — while a writer commits Insert/Remove continuously. Every
// batch must pin exactly ONE snapshot for all of its entries, versions must
// be monotone per issuing thread, no entry may error, and duplicate specs
// within one batch must come back bitwise identical.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

namespace tsq::core {
namespace {

std::string ExactDiff(const QueryResult& a, const QueryResult& b) {
  if (const auto* range = a.range()) {
    if (b.range() == nullptr) return "kind mismatch";
    if (range->matches.size() != b.range()->matches.size()) {
      return "range count mismatch";
    }
    for (std::size_t i = 0; i < range->matches.size(); ++i) {
      if (!(range->matches[i] == b.range()->matches[i])) {
        return "range match " + std::to_string(i) + " differs";
      }
    }
    return "";
  }
  if (const auto* knn = a.knn()) {
    if (b.knn() == nullptr) return "kind mismatch";
    if (knn->matches.size() != b.knn()->matches.size()) {
      return "knn count mismatch";
    }
    for (std::size_t i = 0; i < knn->matches.size(); ++i) {
      if (knn->matches[i].series_id != b.knn()->matches[i].series_id ||
          knn->matches[i].distance != b.knn()->matches[i].distance) {
        return "knn match " + std::to_string(i) + " differs";
      }
    }
    return "";
  }
  if (a.join() == nullptr || b.join() == nullptr) return "kind mismatch";
  if (a.join()->matches.size() != b.join()->matches.size()) {
    return "join count mismatch";
  }
  for (std::size_t i = 0; i < a.join()->matches.size(); ++i) {
    if (!(a.join()->matches[i] == b.join()->matches[i])) {
      return "join match " + std::to_string(i) + " differs";
    }
  }
  return "";
}

TEST(BatchConcurrencyTest, ConcurrentBatchesUnderContinuousWrites) {
  SimilarityEngine engine(testutil::Stocks(48, 128, 101));
  constexpr std::size_t kQueryThreads = 8;
  constexpr std::size_t kBatchesPerThread = 5;
  constexpr std::size_t kWriterOps = 24;

  // Batches are prepared BEFORE any writer starts: building specs reads the
  // dataset's normal forms, which only the pre-write snapshot guarantees.
  // Entry layout per thread: [range A, range B, knn, range A again] — the
  // duplicate checks in-batch determinism at whatever snapshot the batch
  // pins.
  std::vector<std::vector<QuerySpec>> batches(kQueryThreads);
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    RangeQuerySpec a;
    a.query = ts::Denormalize(engine.dataset().normal(t));
    a.transforms = transform::MovingAverageRange(128, 4, 12);
    a.epsilon = ts::CorrelationToDistanceThreshold(0.95, 128);
    RangeQuerySpec b;
    b.query = ts::Denormalize(engine.dataset().normal(t + 8));
    b.transforms = transform::MovingAverageRange(128, 4, 12);
    b.epsilon = ts::CorrelationToDistanceThreshold(0.97, 128);
    KnnQuerySpec knn;
    knn.query = ts::Denormalize(engine.dataset().normal(t + 16));
    knn.k = 4;
    knn.transforms = transform::MovingAverageRange(128, 4, 12);
    batches[t] = {QuerySpec(a), QuerySpec(b), QuerySpec(knn), QuerySpec(a)};
  }

  std::atomic<bool> stop{false};
  std::string writer_failure;
  std::thread writer([&] {
    Rng rng(2026);
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < engine.dataset().size(); ++i) live.push_back(i);
    for (std::size_t op = 0; op < kWriterOps && !stop.load(); ++op) {
      if (live.size() < 40 || rng.Bernoulli(0.6)) {
        const auto id =
            engine.Insert(ts::GenerateRandomWalk(engine.length(), 500.0, rng));
        if (!id.ok()) {
          writer_failure = "insert failed: " + id.status().ToString();
          return;
        }
        live.push_back(*id);
      } else {
        const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1));
        const Status removed = engine.Remove(live[pick]);
        if (!removed.ok()) {
          writer_failure = "remove failed: " + removed.ToString();
          return;
        }
        live.erase(live.begin() + pick);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::string> failures(kQueryThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto fail = [&](const std::string& what) {
        if (failures[t].empty()) failures[t] = what;
      };
      std::uint64_t last_version = 0;
      for (std::size_t round = 0; round < kBatchesPerThread; ++round) {
        BatchOptions options;
        options.exec.planner.algorithm =
            round % 2 == 0 ? Algorithm::kAuto : Algorithm::kMtIndex;
        options.exec.num_threads = 2;
        options.use_result_cache = round % 2 == 1;
        const auto batch = engine.ExecuteBatch(batches[t], options);
        if (batch.size() != batches[t].size()) {
          fail("wrong batch size");
          return;
        }
        std::uint64_t version = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (!batch[i].ok()) {
            fail("entry " + std::to_string(i) +
                 " errored: " + batch[i].status().ToString());
            return;
          }
          const std::uint64_t v = batch[i]->trace().snapshot_version;
          if (i == 0) {
            version = v;
          } else if (v != version) {
            fail("batch pinned two snapshots: v" + std::to_string(version) +
                 " and v" + std::to_string(v));
            return;
          }
        }
        if (version < last_version) {
          fail("snapshot went backwards: v" + std::to_string(version) +
               " after v" + std::to_string(last_version));
          return;
        }
        last_version = version;
        // Entry 3 duplicates entry 0 and ran at the same pinned snapshot.
        const std::string diff = ExactDiff(*batch[0], *batch[3]);
        if (!diff.empty()) {
          fail("duplicate diverged from original: " + diff);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  stop.store(true);
  writer.join();

  EXPECT_TRUE(writer_failure.empty()) << writer_failure;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }
}

TEST(BatchConcurrencyTest, ConcurrentIdenticalBatchesShareTheCache) {
  // Many threads race the SAME cacheable batch: the pin protocol must ensure
  // each spec is computed by someone and every served hit is identical —
  // no torn entries, no deadlocks, no double-publish corruption.
  SimilarityEngine engine(testutil::Stocks(40, 128, 107));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(3));
  spec.transforms = transform::MovingAverageRange(128, 5, 11);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);
  const std::vector<QuerySpec> specs = {QuerySpec(spec), QuerySpec(spec)};

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<Result<QueryResult>>> outputs(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      BatchOptions options;
      options.exec.num_threads = 2;
      outputs[t] = engine.ExecuteBatch(specs, options);
    });
  }
  for (std::thread& worker : workers) worker.join();

  const QueryResult* reference = nullptr;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(outputs[t].size(), 2u);
    for (const auto& entry : outputs[t]) {
      ASSERT_TRUE(entry.ok()) << entry.status().ToString();
      if (reference == nullptr) {
        reference = &*entry;
      } else {
        EXPECT_EQ(ExactDiff(*reference, *entry), "");
      }
    }
  }
}

}  // namespace
}  // namespace tsq::core
