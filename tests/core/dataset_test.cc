#include "core/dataset.h"

#include "test_util.h"
#include "gtest/gtest.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

TEST(DatasetTest, BuildsAllDerivedArtifacts) {
  const auto series = testutil::RandomWalks(20, 128, 1);
  Dataset dataset(series, transform::FeatureLayout{});
  EXPECT_EQ(dataset.size(), 20u);
  EXPECT_EQ(dataset.length(), 128u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(dataset.normal(i).values.size(), 128u);
    EXPECT_EQ(dataset.spectrum(i).size(), 128u);
    EXPECT_EQ(dataset.features(i).size(), 6u);
    // Normal forms are zero mean / unit stddev.
    const ts::SeriesStats stats = ts::ComputeStats(dataset.normal(i).values);
    EXPECT_NEAR(stats.mean, 0.0, 1e-9);
    EXPECT_NEAR(stats.stddev, 1.0, 1e-9);
  }
}

TEST(DatasetTest, FeaturesMatchSpectra) {
  const auto series = testutil::RandomWalks(5, 64, 2);
  transform::FeatureLayout layout;
  Dataset dataset(series, layout);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& spectrum = dataset.spectrum(i);
    const auto& features = dataset.features(i);
    EXPECT_NEAR(features[layout.magnitude_dimension(0)],
                std::abs(spectrum[1]), 1e-12);
    EXPECT_NEAR(features[layout.angle_dimension(1)], std::arg(spectrum[2]),
                1e-12);
  }
}

TEST(DatasetTest, FetchSpectrumMatchesInMemorySpectrum) {
  const auto series = testutil::RandomWalks(10, 128, 3);
  Dataset dataset(series, transform::FeatureLayout{});
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto fetched = dataset.FetchSpectrum(i);
    ASSERT_TRUE(fetched.ok());
    ASSERT_EQ(fetched->size(), dataset.spectrum(i).size());
    for (std::size_t f = 0; f < fetched->size(); ++f) {
      EXPECT_LT(std::abs((*fetched)[f] - dataset.spectrum(i)[f]), 1e-9);
    }
  }
}

TEST(DatasetTest, FetchCountsPageReads) {
  const auto series = testutil::RandomWalks(10, 128, 4);
  Dataset dataset(series, transform::FeatureLayout{});
  EXPECT_EQ(dataset.record_io().reads, 0u);  // load I/O was reset
  ASSERT_TRUE(dataset.FetchSpectrum(0).ok());
  EXPECT_GE(dataset.record_io().reads, 1u);
  dataset.ResetRecordIo();
  EXPECT_EQ(dataset.record_io().reads, 0u);
}

TEST(DatasetTest, RecordPagesScaleWithData) {
  // A record is the complex spectrum: 256 doubles = 2 KiB, so ~2 records per
  // 4 KiB page (packed).
  const auto series = testutil::RandomWalks(100, 128, 5);
  Dataset dataset(series, transform::FeatureLayout{});
  EXPECT_GE(dataset.record_pages(), 50u);
  EXPECT_LE(dataset.record_pages(), 70u);
}

TEST(DatasetTest, ConstantSeriesHandled) {
  std::vector<ts::Series> series = {ts::Series(32, 5.0),
                                    testutil::RandomWalks(1, 32, 6)[0]};
  Dataset dataset(series, transform::FeatureLayout{});
  // Constant series: normal form all zeros, features finite.
  for (double v : dataset.features(0)) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(dataset.normal(0).stddev, 0.0);
}

TEST(DatasetDeathTest, MismatchedLengthsRejected) {
  std::vector<ts::Series> series = {ts::Series(32, 1.0), ts::Series(64, 1.0)};
  EXPECT_DEATH(Dataset(series, transform::FeatureLayout{}), "equal length");
}

}  // namespace
}  // namespace tsq::core
