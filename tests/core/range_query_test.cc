#include "core/range_query.h"

#include <limits>

#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

struct Workload {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<SequenceIndex> index;
};

Workload MakeWorkload(std::vector<ts::Series> series,
                      transform::FeatureLayout layout = {}) {
  Workload w;
  w.dataset = std::make_unique<Dataset>(std::move(series), layout);
  w.index = std::make_unique<SequenceIndex>(*w.dataset);
  return w;
}

RangeQuerySpec MovingAverageSpec(const Workload& w, std::size_t query_id,
                                 std::size_t first_w, std::size_t last_w,
                                 double correlation = 0.96) {
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(query_id));
  spec.transforms =
      transform::MovingAverageRange(w.dataset->length(), first_w, last_w);
  spec.epsilon =
      ts::CorrelationToDistanceThreshold(correlation, w.dataset->length());
  return spec;
}

void ExpectSameMatches(std::vector<Match> a, std::vector<Match> b) {
  SortMatches(&a);
  SortMatches(&b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].series_id, b[i].series_id) << i;
    EXPECT_EQ(a[i].transform_index, b[i].transform_index) << i;
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-6) << i;
  }
}

// The central correctness property (Lemma 1, end to end): every algorithm
// returns exactly the brute-force answer set, on varied datasets, layouts
// and partitionings.
class RangeQueryEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeQueryEquivalenceTest, AllAlgorithmsMatchBruteForce) {
  const int seed = GetParam();
  const auto series = (seed % 2 == 0)
                          ? testutil::RandomWalks(120, 128, seed)
                          : testutil::Stocks(120, 128, seed);
  transform::FeatureLayout layout;
  layout.use_symmetry = (seed % 3 != 0);
  layout.include_mean_std = (seed % 4 != 0);
  Workload w = MakeWorkload(series, layout);

  for (std::size_t query_id : {std::size_t{0}, std::size_t{57}}) {
    const RangeQuerySpec spec = MovingAverageSpec(w, query_id, 5, 20);
    const std::vector<Match> expected = BruteForceRangeQuery(*w.dataset, spec);

    for (Algorithm algorithm :
         {Algorithm::kSequentialScan, Algorithm::kStIndex,
          Algorithm::kMtIndex}) {
      auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectSameMatches(result->matches, expected);
      EXPECT_EQ(result->stats.output_size, expected.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeQueryEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(RangeQueryTest, PartitionedMtIndexStillExact) {
  Workload w = MakeWorkload(testutil::Stocks(150, 128, 42));
  RangeQuerySpec spec = MovingAverageSpec(w, 3, 6, 29);
  const std::vector<Match> expected = BruteForceRangeQuery(*w.dataset, spec);
  for (std::size_t per_group : {1u, 2u, 5u, 8u, 24u}) {
    spec.partition =
        transform::PartitionBySize(spec.transforms.size(), per_group);
    auto result =
        RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
    ASSERT_TRUE(result.ok());
    ExpectSameMatches(result->matches, expected);
    EXPECT_EQ(result->stats.traversals, spec.partition.size());
  }
}

TEST(RangeQueryTest, QueryFromOutsideTheDataset) {
  Workload w = MakeWorkload(testutil::RandomWalks(100, 128, 7));
  RangeQuerySpec spec;
  spec.query = testutil::RandomWalks(1, 128, 999)[0];
  spec.transforms = transform::MovingAverageRange(128, 1, 10);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.9, 128);
  const auto expected = BruteForceRangeQuery(*w.dataset, spec);
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    ExpectSameMatches(result->matches, expected);
  }
}

TEST(RangeQueryTest, SelfQueryAlwaysMatchesWithIdentityWindow) {
  // Querying a dataset member with MA-1 (identity) must return itself with
  // distance 0.
  Workload w = MakeWorkload(testutil::RandomWalks(50, 64, 8));
  RangeQuerySpec spec = MovingAverageSpec(w, 11, 1, 1, 0.9);
  auto result = RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  bool found_self = false;
  for (const Match& m : result->matches) {
    if (m.series_id == 11) {
      found_self = true;
      EXPECT_NEAR(m.distance, 0.0, 1e-6);
    }
  }
  EXPECT_TRUE(found_self);
}

TEST(RangeQueryTest, ShiftTransformsExact) {
  // Shifts exercise the angle-wrapping machinery (pure phase transforms).
  Workload w = MakeWorkload(testutil::RandomWalks(80, 64, 9));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(5));
  spec.transforms = transform::ShiftRange(64, 0, 10);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.9, 64);
  const auto expected = BruteForceRangeQuery(*w.dataset, spec);
  EXPECT_FALSE(expected.empty());  // shift 0 matches the query itself
  for (Algorithm algorithm : {Algorithm::kStIndex, Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    ExpectSameMatches(result->matches, expected);
  }
}

TEST(RangeQueryTest, MomentumAndMixedTransformSet) {
  Workload w = MakeWorkload(testutil::Stocks(100, 128, 10));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(0));
  spec.transforms.push_back(transform::MomentumTransform(128));
  spec.transforms.push_back(transform::MovingAverageTransform(128, 7));
  spec.transforms.push_back(transform::ShiftTransform(128, 3));
  spec.transforms.push_back(transform::InvertTransform(128));
  spec.epsilon = 2.0;
  const auto expected = BruteForceRangeQuery(*w.dataset, spec);
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    ExpectSameMatches(result->matches, expected);
  }
}

TEST(RangeQueryTest, OrderedScaleSetBinarySearch) {
  Workload w = MakeWorkload(testutil::RandomWalks(60, 64, 11));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(2));
  spec.transforms = transform::ScaleRange(64, 1.0, 50.0, 1.0);
  spec.epsilon = 20.0;
  spec.use_ordering = true;
  const auto expected = BruteForceRangeQuery(*w.dataset, spec);
  EXPECT_FALSE(expected.empty());

  RangeQuerySpec linear = spec;
  linear.use_ordering = false;
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto ordered = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    auto plain = RunRangeQuery(*w.dataset, *w.index, linear, algorithm);
    ASSERT_TRUE(ordered.ok());
    ASSERT_TRUE(plain.ok());
    ExpectSameMatches(ordered->matches, expected);
    ExpectSameMatches(plain->matches, expected);
    // Binary search never evaluates more distances than the linear sweep,
    // and strictly fewer whenever a post-processing step sees more than one
    // transformation (ST-index verifies one transformation per traversal,
    // so there the two coincide).
    EXPECT_LE(ordered->stats.comparisons, plain->stats.comparisons)
        << AlgorithmName(algorithm);
    if (algorithm != Algorithm::kStIndex) {
      EXPECT_LT(ordered->stats.comparisons, plain->stats.comparisons)
          << AlgorithmName(algorithm);
    }
  }
}

TEST(RangeQueryTest, StatsAccounting) {
  Workload w = MakeWorkload(testutil::Stocks(200, 128, 12));
  const RangeQuerySpec spec = MovingAverageSpec(w, 0, 10, 25);

  w.dataset->ResetRecordIo();
  auto seq =
      RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kSequentialScan);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->stats.index_nodes_accessed, 0u);
  // The scan's record_pages_read counts the pages its fetches actually
  // touched: exactly the physical reads issued, and at least one full pass
  // over the record file (records straddling a page boundary are counted
  // once per fetch that touches them, so the sum can exceed record_pages()).
  EXPECT_EQ(seq->stats.record_pages_read, w.dataset->record_io().reads);
  EXPECT_GE(seq->stats.record_pages_read, w.dataset->record_pages());
  EXPECT_EQ(seq->stats.candidates, w.dataset->active_size());
  EXPECT_EQ(seq->stats.comparisons,
            w.dataset->size() * spec.transforms.size());

  std::vector<GroupRunStats> groups;
  auto mt =
      RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex, &groups);
  ASSERT_TRUE(mt.ok());
  EXPECT_EQ(mt->stats.traversals, 1u);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].transforms, spec.transforms.size());
  EXPECT_GE(mt->stats.index_nodes_accessed, 1u);
  EXPECT_GE(mt->stats.index_nodes_accessed, mt->stats.index_leaves_accessed);
  // MT-index reads fewer record pages than the scan (filtering works).
  EXPECT_LT(mt->stats.record_pages_read, seq->stats.record_pages_read);
  EXPECT_LT(mt->stats.comparisons, seq->stats.comparisons);

  auto st = RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kStIndex);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->stats.traversals, spec.transforms.size());
  // One traversal (MT) reads fewer index pages than |T| traversals (ST).
  EXPECT_LT(mt->stats.index_nodes_accessed, st->stats.index_nodes_accessed);
}

TEST(RangeQueryTest, InvalidSpecsRejected) {
  Workload w = MakeWorkload(testutil::RandomWalks(10, 64, 13));
  RangeQuerySpec spec;
  spec.query = ts::Series(32, 1.0);  // wrong length
  spec.transforms = transform::MovingAverageRange(64, 1, 2);
  spec.epsilon = 1.0;
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  spec.query = ts::Series(64, 1.0);
  spec.transforms.clear();
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  spec.transforms = transform::MovingAverageRange(64, 1, 4);
  spec.epsilon = -1.0;
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // A NaN threshold makes every comparison false; reject it like a negative.
  spec.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  spec.epsilon = 1.0;
  spec.partition = {{0, 1}, {1, 2, 3}};  // overlapping groups
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  spec.partition = {{0, 1}};  // not covering
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RangeQueryTest, DataOnlyTargetMatchesBruteForce) {
  // SIGMOD'97-style semantics: transform the data sequence only.
  Workload w = MakeWorkload(testutil::Stocks(120, 128, 16));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(4));
  spec.target = TransformTarget::kDataOnly;
  spec.transforms = transform::MovingAverageRange(128, 1, 15);
  for (std::size_t s : {1u, 2u, 126u, 127u}) {
    spec.transforms.push_back(transform::ShiftTransform(128, s));
  }
  spec.epsilon = 2.5;
  const auto expected = BruteForceRangeQuery(*w.dataset, spec);
  EXPECT_FALSE(expected.empty());
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameMatches(result->matches, expected);
  }
}

TEST(RangeQueryTest, DataOnlyShiftsAreMeaningful) {
  // Under kBoth a pure shift never changes the distance; under kDataOnly it
  // does — that is the whole point of the mode.
  Workload w = MakeWorkload(testutil::RandomWalks(50, 64, 17));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(9));
  spec.transforms = {transform::ShiftTransform(64, 0),
                     transform::ShiftTransform(64, 7)};
  spec.epsilon = 1e-6;

  spec.target = TransformTarget::kBoth;
  auto both = BruteForceRangeQuery(*w.dataset, spec);
  // Both shifts match the query itself (distance 0 either way).
  EXPECT_EQ(both.size(), 2u);

  spec.target = TransformTarget::kDataOnly;
  auto data_only = BruteForceRangeQuery(*w.dataset, spec);
  // Only the unshifted version still matches.
  ASSERT_EQ(data_only.size(), 1u);
  EXPECT_EQ(data_only[0].transform_index, 0u);
}

TEST(RangeQueryTest, QueryTransformAlignment) {
  // Example 1.2 as a unit test: plant a copy of the query whose reaction is
  // lagged by 3 days; the (shift o momentum) vs momentum(q) query finds it
  // at exactly that lag.
  // Like the paper's PCG/PCL: two smooth, tightly coupled series whose large
  // reaction spikes are three days apart, so the momenta are spike-dominated.
  const std::size_t n = 128;
  auto series = testutil::Stocks(60, n, 18);
  Rng rng(1812);
  ts::Series query(n);
  ts::Series lagged(n);
  double a = 50.0, b = 60.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double shared = 0.1 * rng.NextGaussian();
    a += shared + 0.02 * rng.NextGaussian();
    b += shared + 0.02 * rng.NextGaussian();
    query[t] = a;
    lagged[t] = b;
  }
  query[40] += 8.0;    // query reacts on day 40
  lagged[43] += 8.0;   // stock 0 reacts three days later
  series[0] = lagged;
  Workload w = MakeWorkload(series);

  RangeQuerySpec spec;
  spec.query = query;
  spec.query_transform = transform::MomentumTransform(n);
  spec.target = TransformTarget::kDataOnly;
  std::vector<transform::SpectralTransform> momentum = {
      transform::MomentumTransform(n)};
  std::vector<transform::SpectralTransform> shifts;
  for (std::size_t s = 0; s < 6; ++s) {
    shifts.push_back(transform::ShiftTransform(n, (n - s) % n));
  }
  spec.transforms = transform::ComposeSpectralSets(momentum, shifts);
  spec.epsilon = 4.0;  // the aligned lag scores ~2, every other lag ~20

  const auto expected = BruteForceRangeQuery(*w.dataset, spec);
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    ExpectSameMatches(result->matches, expected);
  }
  // The lag-3 composed transform (index 3) matches stock 0.
  bool found = false;
  for (const Match& m : expected) {
    if (m.series_id == 0 && m.transform_index == 3) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RangeQueryTest, OrderingRejectedForDataOnlyTarget) {
  Workload w = MakeWorkload(testutil::RandomWalks(10, 64, 19));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(0));
  spec.transforms = transform::ScaleRange(64, 1.0, 5.0);
  spec.epsilon = 1.0;
  spec.target = TransformTarget::kDataOnly;
  spec.use_ordering = true;
  EXPECT_EQ(RunRangeQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RangeQueryTest, ZeroEpsilonReturnsNothing) {
  Workload w = MakeWorkload(testutil::RandomWalks(20, 64, 14));
  RangeQuerySpec spec = MovingAverageSpec(w, 0, 1, 5);
  spec.epsilon = 0.0;  // strict '<' comparison: even exact matches fail
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->matches.empty());
  }
}

TEST(RangeQueryTest, LargeEpsilonReturnsEverything) {
  Workload w = MakeWorkload(testutil::RandomWalks(30, 64, 15));
  RangeQuerySpec spec = MovingAverageSpec(w, 0, 1, 4);
  spec.epsilon = 1e6;
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunRangeQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->matches.size(),
              w.dataset->size() * spec.transforms.size());
  }
}

}  // namespace
}  // namespace tsq::core
