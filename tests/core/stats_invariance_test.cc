// Observability invariants: the per-phase QueryTrace rides on the same
// determinism contract as the match sets and QueryStats. Its deterministic
// part — which phases ran, how many tasks each decomposed into, how many
// items each processed — must be byte-identical for every num_threads value;
// only wall-clock fields may differ. And the scan path's record_pages_read
// must equal the physical page reads actually issued, not a precomputed
// dataset-wide figure.

#include <string>
#include <vector>

#include "../core/test_util.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

class StatsInvarianceTest : public ::testing::Test {
 protected:
  StatsInvarianceTest() : engine_(testutil::Stocks(250, 128, 301)) {}

  // Executes `spec` for each thread count and asserts that QueryStats
  // compares equal (operator==, every counter) and that the trace's
  // deterministic signature is byte-identical to the single-threaded run.
  void ExpectInvariantAcrossThreads(const QuerySpec& spec,
                                    Algorithm algorithm) {
    ExecOptions options;
    options.planner.algorithm = algorithm;
    options.num_threads = 1;
    const auto baseline = engine_.Execute(spec, options);
    ASSERT_TRUE(baseline.ok()) << AlgorithmName(algorithm);
    const std::string baseline_signature =
        baseline->trace().DeterministicSignature();
    EXPECT_FALSE(baseline_signature.empty());
    EXPECT_EQ(baseline->trace().algorithm, AlgorithmName(algorithm));

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
      options.num_threads = threads;
      const auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok())
          << AlgorithmName(algorithm) << " threads=" << threads;
      EXPECT_TRUE(result->stats() == baseline->stats())
          << AlgorithmName(algorithm) << " threads=" << threads;
      EXPECT_EQ(result->trace().DeterministicSignature(), baseline_signature)
          << AlgorithmName(algorithm) << " threads=" << threads;
      EXPECT_EQ(result->trace().num_threads, threads);
    }
  }

  SimilarityEngine engine_;
};

TEST_F(StatsInvarianceTest, RangeQueryTraceInvariant) {
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(7));
  spec.transforms = transform::MovingAverageRange(128, 5, 20);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.95, 128);
  spec.partition = transform::PartitionBySize(spec.transforms.size(), 4);
  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kStIndex,
        Algorithm::kMtIndex}) {
    ExpectInvariantAcrossThreads(spec, algorithm);
  }
}

TEST_F(StatsInvarianceTest, KnnQueryTraceInvariant) {
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(3));
  spec.k = 9;
  spec.transforms = transform::MovingAverageRange(128, 5, 14);
  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kStIndex,
        Algorithm::kMtIndex}) {
    ExpectInvariantAcrossThreads(spec, algorithm);
  }
}

TEST_F(StatsInvarianceTest, JoinQueryTraceInvariant) {
  JoinQuerySpec spec;
  spec.mode = JoinMode::kCorrelation;
  spec.min_correlation = 0.99;
  spec.transforms = transform::MovingAverageRange(128, 5, 12);
  spec.partition = transform::PartitionBySize(spec.transforms.size(), 3);
  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kStIndex,
        Algorithm::kMtIndex}) {
    ExpectInvariantAcrossThreads(spec, algorithm);
  }
}

TEST_F(StatsInvarianceTest, TracePhasesMatchAlgorithmShape) {
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine_.dataset().normal(7));
  spec.transforms = transform::MovingAverageRange(128, 5, 20);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.95, 128);

  ExecOptions options;
  options.planner.algorithm = Algorithm::kSequentialScan;
  const auto scan = engine_.Execute(spec, options);
  ASSERT_TRUE(scan.ok());
  const obs::QueryTrace& scan_trace = scan->trace();
  EXPECT_FALSE(scan_trace.at(obs::Phase::kPlan).empty());
  EXPECT_TRUE(scan_trace.at(obs::Phase::kIndexTraversal).empty());
  EXPECT_FALSE(scan_trace.at(obs::Phase::kCandidateFetch).empty());
  EXPECT_FALSE(scan_trace.at(obs::Phase::kVerification).empty());
  // Scan fetches exactly the live sequences.
  EXPECT_EQ(scan_trace.at(obs::Phase::kCandidateFetch).items,
            engine_.dataset().active_size());

  options.planner.algorithm = Algorithm::kMtIndex;
  const auto mt = engine_.Execute(spec, options);
  ASSERT_TRUE(mt.ok());
  const obs::QueryTrace& mt_trace = mt->trace();
  EXPECT_FALSE(mt_trace.at(obs::Phase::kIndexTraversal).empty());
  EXPECT_EQ(mt_trace.at(obs::Phase::kIndexTraversal).items,
            mt->stats().index_nodes_accessed);
  EXPECT_EQ(mt_trace.at(obs::Phase::kCandidateFetch).items,
            mt->stats().candidates);
  EXPECT_EQ(mt_trace.at(obs::Phase::kVerification).items,
            mt->stats().comparisons);
  EXPECT_GT(mt->trace().total_nanos, 0u);
}

// Regression for the scan-path stats bug: record_pages_read used to be
// wholesale-assigned dataset.record_pages() (and candidates :=
// active_size()) without issuing or counting a single fetch. Now it must
// reconcile exactly with the record PageFile's own read counter.
TEST_F(StatsInvarianceTest, ScanRecordPagesMatchPageFileReads) {
  RangeQuerySpec range;
  range.query = ts::Denormalize(engine_.dataset().normal(1));
  range.transforms = transform::MovingAverageRange(128, 5, 12);
  range.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  KnnQuerySpec knn;
  knn.query = ts::Denormalize(engine_.dataset().normal(2));
  knn.k = 5;
  knn.transforms = transform::MovingAverageRange(128, 5, 12);

  for (const bool with_pool : {false, true}) {
    engine_.EnableIndexBufferPool(with_pool ? 128 : 0);
    for (const QuerySpec& spec :
         std::vector<QuerySpec>{QuerySpec(range), QuerySpec(knn)}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        engine_.ResetIoStats();
        ExecOptions options;
        options.planner.algorithm = Algorithm::kSequentialScan;
        options.num_threads = threads;
        const auto result = engine_.Execute(spec, options);
        ASSERT_TRUE(result.ok());
        const storage::IoStats io = engine_.dataset().record_io();
        // Every page touch the scan reported really happened, and nothing
        // else read from the record file during the query.
        EXPECT_EQ(result->stats().record_pages_read, io.reads)
            << "pool=" << with_pool << " threads=" << threads;
        // A full scan visits every live record; records can straddle page
        // boundaries, so the count is at least the file's page count.
        EXPECT_GE(result->stats().record_pages_read,
                  engine_.dataset().record_pages());
        EXPECT_EQ(result->stats().candidates,
                  engine_.dataset().active_size());
      }
    }
  }
  engine_.EnableIndexBufferPool(0);
}

}  // namespace
}  // namespace tsq::core
