#include "core/feature.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "dft/spectrum.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

constexpr double kPi = std::numbers::pi;

ts::Series RandomWalk(std::size_t n, Rng& rng) {
  ts::Series x(n);
  double v = 0.0;
  for (double& value : x) {
    v += rng.Uniform(-1.0, 1.0);
    value = v;
  }
  return x;
}

TEST(ExtractFeaturesTest, LayoutPlacement) {
  Rng rng(1);
  const std::size_t n = 128;
  const ts::Series x = RandomWalk(n, rng);
  const ts::NormalForm normal = ts::Normalize(x);
  dft::FftPlan plan(n);
  const auto spectrum = plan.Forward(std::span<const double>(normal.values));
  transform::FeatureLayout layout;
  const rstar::Point features = ExtractFeatures(normal, spectrum, layout);
  ASSERT_EQ(features.size(), 6u);
  EXPECT_NEAR(features[0], normal.mean, 1e-12);
  EXPECT_NEAR(features[1], normal.stddev, 1e-12);
  EXPECT_NEAR(features[2], std::abs(spectrum[1]), 1e-12);
  EXPECT_NEAR(features[3], std::arg(spectrum[1]), 1e-12);
  EXPECT_NEAR(features[4], std::abs(spectrum[2]), 1e-12);
  EXPECT_NEAR(features[5], std::arg(spectrum[2]), 1e-12);
}

TEST(ExtractFeaturesTest, NoMeanStdLayout) {
  Rng rng(2);
  const std::size_t n = 64;
  const ts::NormalForm normal = ts::Normalize(RandomWalk(n, rng));
  dft::FftPlan plan(n);
  const auto spectrum = plan.Forward(std::span<const double>(normal.values));
  transform::FeatureLayout layout;
  layout.include_mean_std = false;
  layout.num_coefficients = 3;
  const rstar::Point features = ExtractFeatures(normal, spectrum, layout);
  ASSERT_EQ(features.size(), 6u);
  EXPECT_NEAR(features[0], std::abs(spectrum[1]), 1e-12);
  EXPECT_NEAR(features[5], std::arg(spectrum[3]), 1e-12);
}

TEST(SafeAngleHalfWidthTest, FullCircleWhenMagnitudeSmall) {
  EXPECT_EQ(SafeAngleHalfWidth(1.0, 0.5), kPi);
  EXPECT_EQ(SafeAngleHalfWidth(1.0, 1.0), kPi);
  EXPECT_EQ(SafeAngleHalfWidth(0.0, 0.0), kPi);
}

TEST(SafeAngleHalfWidthTest, ShrinksWithMagnitude) {
  const double wide = SafeAngleHalfWidth(0.5, 1.0);
  const double narrow = SafeAngleHalfWidth(0.5, 10.0);
  EXPECT_GT(wide, narrow);
  EXPECT_GT(narrow, 0.0);
}

TEST(SafeAngleHalfWidthTest, CoversQualifyingAngles) {
  // For any u, v with |u - v| <= eps and |v| >= m_q, the angular gap must be
  // within the computed half width (v plays the query, u the candidate).
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const double eps = rng.Uniform(0.01, 2.0);
    const double mq = rng.Uniform(0.01, 5.0);
    const double half = SafeAngleHalfWidth(eps, mq);
    // Sample u within eps of a point with magnitude mq.
    const std::complex<double> v = std::polar(mq, rng.Uniform(-kPi, kPi));
    const double radius = rng.Uniform(0.0, eps);
    const double theta = rng.Uniform(-kPi, kPi);
    const std::complex<double> u = v + std::polar(radius, theta);
    const double gap = dft::AngularDistance(std::arg(u), std::arg(v));
    EXPECT_LE(gap, half + 1e-9)
        << "eps=" << eps << " mq=" << mq << " gap=" << gap;
  }
}

TEST(BuildQueryRegionTest, SingleIdentityTransformCentersOnQuery) {
  transform::FeatureLayout layout;
  const std::size_t n = 128;
  const transform::FeatureTransform id =
      transform::SpectralTransform::Identity(n).ToFeatureTransform(layout);
  const rstar::Point q = {10.0, 2.0, 3.0, 0.5, 1.5, -0.5};
  const double eps = 0.25;
  const rstar::Rect region = BuildQueryRegion(
      q, std::span<const transform::FeatureTransform>(&id, 1), eps, layout);
  const double eps_f = eps / std::sqrt(2.0);  // symmetry weight
  EXPECT_NEAR(region.low(2), 3.0 - eps_f, 1e-9);
  EXPECT_NEAR(region.high(2), 3.0 + eps_f, 1e-9);
  // Angle window symmetric around the query angle.
  EXPECT_NEAR(region.Center(3), 0.5, 1e-9);
  // Mean/std unbounded.
  EXPECT_LT(region.low(0), -1e100);
  EXPECT_GT(region.high(0), 1e100);
}

TEST(BuildQueryRegionTest, MagnitudeNeverNegative) {
  transform::FeatureLayout layout;
  layout.include_mean_std = false;
  const std::size_t n = 128;
  const transform::FeatureTransform id =
      transform::SpectralTransform::Identity(n).ToFeatureTransform(layout);
  const rstar::Point q = {0.1, 0.0, 0.1, 0.0};
  const rstar::Rect region = BuildQueryRegion(
      q, std::span<const transform::FeatureTransform>(&id, 1), 5.0, layout);
  EXPECT_GE(region.low(0), 0.0);
}

TEST(BuildQueryRegionTest, CoversAllTransformedQueryPoints) {
  // The region must contain every t(q) even before the epsilon expansion.
  Rng rng(4);
  transform::FeatureLayout layout;
  const std::size_t n = 128;
  const auto mvs = transform::MovingAverageRange(n, 5, 34);
  std::vector<transform::FeatureTransform> fts;
  for (const auto& t : mvs) fts.push_back(t.ToFeatureTransform(layout));

  const ts::NormalForm normal = ts::Normalize(RandomWalk(n, rng));
  dft::FftPlan plan(n);
  const auto spectrum = plan.Forward(std::span<const double>(normal.values));
  const rstar::Point q = ExtractFeatures(normal, spectrum, layout);
  const rstar::Rect region = BuildQueryRegion(q, fts, 0.5, layout);
  for (const auto& ft : fts) {
    const rstar::Point tq = ft.Apply(q);
    for (std::size_t d = 0; d < layout.dimensions(); ++d) {
      if (layout.is_angle_dimension(d)) {
        const double width = region.high(d) - region.low(d);
        double rel = std::remainder(tq[d] - region.low(d), 2.0 * kPi);
        if (rel < 0.0) rel += 2.0 * kPi;
        EXPECT_LE(rel, width + 1e-9);
      } else {
        EXPECT_GE(tq[d], region.low(d) - 1e-9);
        EXPECT_LE(tq[d], region.high(d) + 1e-9);
      }
    }
  }
}

TEST(BuildQueryRegionTest, LargerEpsilonWidensRegion) {
  transform::FeatureLayout layout;
  layout.include_mean_std = false;
  const std::size_t n = 128;
  const transform::FeatureTransform ft =
      transform::MovingAverageTransform(n, 10).ToFeatureTransform(layout);
  const rstar::Point q = {2.0, 0.3, 1.0, -0.7};
  const rstar::Rect narrow = BuildQueryRegion(
      q, std::span<const transform::FeatureTransform>(&ft, 1), 0.1, layout);
  const rstar::Rect wide = BuildQueryRegion(
      q, std::span<const transform::FeatureTransform>(&ft, 1), 1.0, layout);
  for (std::size_t d = 0; d < layout.dimensions(); ++d) {
    EXPECT_GE(wide.Extent(d), narrow.Extent(d));
  }
}

}  // namespace
}  // namespace tsq::core
