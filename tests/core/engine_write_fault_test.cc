// Write-path fault audit: Insert and Remove driven through every fault
// policy must leave the engine consistent — the tree's entry count equals
// the live-sequence count and every algorithm still matches a fresh
// brute-force oracle — whether the write committed or was compensated.

#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "test_util.h"
#include "testing/fault_policy.h"
#include "testing/oracle.h"
#include "transform/builders.h"
#include "ts/generate.h"

namespace tsq::core {
namespace {

using tsq::testing::FaultPolicy;
using tsq::testing::FaultPolicyConfig;

// Every fault kind the policy knows, at several ordinals: hard failures on
// the first reads an index mutation issues, periodic failures that strike
// mid-restructure, checksum corruption, torn reads, and latency-only (which
// must never fail a write).
std::vector<FaultPolicyConfig> AllPolicies() {
  std::vector<FaultPolicyConfig> list;
  for (std::uint64_t nth = 1; nth <= 6; ++nth) {
    FaultPolicyConfig p;
    p.fail_nth_read = nth;
    list.push_back(p);
  }
  FaultPolicyConfig p;
  p.fail_nth_read = 2;
  p.failure_code = StatusCode::kCorruption;
  list.push_back(p);
  p = FaultPolicyConfig();
  p.fail_every_k = 1;
  list.push_back(p);
  p = FaultPolicyConfig();
  p.fail_every_k = 3;
  list.push_back(p);
  p = FaultPolicyConfig();
  p.corrupt_nth_read = 1;
  list.push_back(p);
  p = FaultPolicyConfig();
  p.corrupt_nth_read = 4;
  list.push_back(p);
  p = FaultPolicyConfig();
  p.short_nth_read = 2;
  p.short_read_bytes = 256;
  list.push_back(p);
  p = FaultPolicyConfig();
  p.delay_nanos = 1000;
  list.push_back(p);
  return list;
}

class EngineWriteFaultTest : public ::testing::Test {
 protected:
  EngineWriteFaultTest()
      : series_(testutil::Stocks(32, 16, 11)), engine_(series_), rng_(401) {}

  RangeQuerySpec RangeSpec() const {
    RangeQuerySpec spec;
    spec.query = series_[0];
    spec.transforms = transform::MovingAverageRange(16, 1, 6);
    spec.epsilon = 1.5;
    return spec;
  }

  ts::Series NewSeries() { return ts::GenerateRandomWalk(16, 500.0, rng_); }

  // Post-write equivalence: scan, ST and MT must all agree with a
  // brute-force oracle built over the current dataset, and the index must
  // hold exactly one entry per live sequence (a compensated write rebuilt
  // it; a committed one updated it in place).
  void ExpectConsistent(const std::string& context) {
    EXPECT_EQ(engine_.index().tree().size(), engine_.size()) << context;
    const testing::Oracle oracle(engine_.dataset());
    const RangeQuerySpec spec = RangeSpec();
    const std::vector<Match> expected = oracle.Range(spec);
    for (const Algorithm algorithm :
         {Algorithm::kSequentialScan, Algorithm::kStIndex,
          Algorithm::kMtIndex}) {
      ExecOptions options;
      options.planner.algorithm = algorithm;
      const auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok())
          << context << " " << AlgorithmName(algorithm) << ": "
          << result.status().ToString();
      std::vector<Match> got = result->range()->matches;
      SortMatches(&got);
      ASSERT_EQ(got.size(), expected.size())
          << context << " " << AlgorithmName(algorithm);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].series_id, expected[i].series_id) << context;
        EXPECT_EQ(got[i].transform_index, expected[i].transform_index)
            << context;
        EXPECT_NEAR(got[i].distance, expected[i].distance,
                    1e-9 * (1.0 + expected[i].distance))
            << context;
      }
    }
  }

  std::vector<ts::Series> series_;
  SimilarityEngine engine_;
  Rng rng_;
};

TEST_F(EngineWriteFaultTest, InsertUnderEveryPolicyCommitsOrRollsBack) {
  for (const FaultPolicyConfig& config : AllPolicies()) {
    const std::size_t size_before = engine_.size();
    const std::uint64_t version_before = engine_.write_version();
    FaultPolicy policy(config);
    engine_.SetReadFaultHook(&policy);
    const Result<std::size_t> id = engine_.Insert(NewSeries());
    engine_.SetReadFaultHook(nullptr);
    if (id.ok()) {
      EXPECT_EQ(engine_.size(), size_before + 1) << policy.Describe();
      EXPECT_FALSE(engine_.dataset().removed(*id)) << policy.Describe();
      EXPECT_EQ(engine_.write_version(), version_before + 1)
          << policy.Describe();
    } else {
      // Failed either in the record append (nothing changed, no version
      // bump) or in the index insertion (appended id tombstoned and index
      // rebuilt — a state change, so the version moved). Either way the
      // live count is unchanged and the failed id can never match a query.
      EXPECT_EQ(engine_.size(), size_before) << policy.Describe();
      EXPECT_LE(engine_.write_version(), version_before + 1)
          << policy.Describe();
      EXPECT_GE(engine_.write_version(), version_before) << policy.Describe();
    }
    ExpectConsistent("insert under " + policy.Describe());
  }
}

TEST_F(EngineWriteFaultTest, RemoveUnderEveryPolicyAlwaysCommits) {
  std::size_t victim = 0;
  for (const FaultPolicyConfig& config : AllPolicies()) {
    const std::size_t size_before = engine_.size();
    const std::uint64_t version_before = engine_.write_version();
    FaultPolicy policy(config);
    engine_.SetReadFaultHook(&policy);
    const Status removed = engine_.Remove(victim);
    engine_.SetReadFaultHook(nullptr);
    // The tombstone is the commit point and cannot fail, so a remove of a
    // live id returns Ok under any read-fault schedule.
    EXPECT_TRUE(removed.ok()) << policy.Describe() << ": "
                              << removed.ToString();
    EXPECT_EQ(engine_.size(), size_before - 1) << policy.Describe();
    EXPECT_TRUE(engine_.dataset().removed(victim)) << policy.Describe();
    EXPECT_EQ(engine_.write_version(), version_before + 1)
        << policy.Describe();
    // Removing it again is NotFound — and does not bump the version.
    EXPECT_EQ(engine_.Remove(victim).code(), StatusCode::kNotFound);
    EXPECT_EQ(engine_.write_version(), version_before + 1);
    ExpectConsistent("remove under " + policy.Describe());
    ++victim;
  }
}

TEST_F(EngineWriteFaultTest, InsertRollbackBumpsEpochAndCountsRollback) {
  obs::Counter* rollbacks =
      obs::MetricsRegistry::Global().counter("engine.writes.rollbacks");
  const std::uint64_t rollbacks_before = rollbacks->value();
  const std::uint64_t epoch_before = engine_.planner().epoch();

  FaultPolicyConfig config;
  // Read #1 is the record store's current-page read (the append must
  // succeed); read #2 is the tree's root page — failing there forces the
  // tombstone-and-rebuild compensation.
  config.fail_nth_read = 2;
  FaultPolicy policy(config);
  engine_.SetReadFaultHook(&policy);
  const Result<std::size_t> id = engine_.Insert(NewSeries());
  engine_.SetReadFaultHook(nullptr);
  ASSERT_FALSE(id.ok());
  EXPECT_GE(policy.faults_injected(), 1u);
  EXPECT_GE(rollbacks->value(), rollbacks_before + 1);
  // The epoch must move even on a rolled-back insert: the rebuild produced a
  // different tree shape, so cached plans priced a structure that no longer
  // exists.
  EXPECT_GT(engine_.planner().epoch(), epoch_before);
  ExpectConsistent("rolled-back insert");
}

TEST_F(EngineWriteFaultTest, InvalidWritesDoNotBumpTheVersion) {
  const std::uint64_t version = engine_.write_version();
  EXPECT_EQ(engine_.Insert(ts::Series{1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_.Remove(1u << 20).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine_.write_version(), version);
}

TEST_F(EngineWriteFaultTest, AlternatingFaultedWritesStayConsistent) {
  // A longer mixed sequence: every odd write runs under a periodic-failure
  // policy, every even write runs clean; the engine must stay equivalent to
  // the oracle throughout.
  FaultPolicyConfig config;
  config.fail_every_k = 5;
  std::size_t victim = 20;
  for (int step = 0; step < 8; ++step) {
    FaultPolicy policy(config);
    if (step % 2 == 1) engine_.SetReadFaultHook(&policy);
    if (step % 3 == 0) {
      (void)engine_.Remove(victim++);
    } else {
      (void)engine_.Insert(NewSeries());
    }
    engine_.SetReadFaultHook(nullptr);
  }
  ExpectConsistent("alternating faulted writes");
}

}  // namespace
}  // namespace tsq::core
