#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/engine.h"
#include "core/range_query.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Checkpoints are a manifest plus epoch-named file trios; sweep
    // everything under the prefix.
    const std::filesystem::path prefix(prefix_);
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(prefix.parent_path(), ec)) {
      if (entry.path().filename().string().rfind(
              prefix.filename().string(), 0) == 0) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
  // Per-test prefix: ctest discovers each test as its own process and runs
  // them in parallel, so a shared prefix would race.
  std::string prefix_ =
      ::testing::TempDir() + "/tsq_persist_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
};

TEST_F(PersistenceTest, SaveLoadRoundTripPreservesAnswers) {
  SimilarityEngine original(testutil::Stocks(120, 128, 60));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(original.dataset().normal(7));
  spec.transforms = transform::MovingAverageRange(128, 5, 20);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);
  const auto before =
      original.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(original.SaveTo(prefix_).ok());
  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), original.size());
  EXPECT_EQ((*loaded)->length(), original.length());
  EXPECT_TRUE((*loaded)->index().tree().CheckInvariants().ok());

  // Identical answers and identical index traversal counters.
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    const auto a = original.Execute(spec, {.planner = {.algorithm = algorithm}});
    const auto b = (*loaded)->Execute(spec, {.planner = {.algorithm = algorithm}});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::vector<Match> ma = a->range()->matches, mb = b->range()->matches;
    SortMatches(&ma);
    SortMatches(&mb);
    ASSERT_EQ(ma.size(), mb.size()) << AlgorithmName(algorithm);
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].series_id, mb[i].series_id);
      EXPECT_NEAR(ma[i].distance, mb[i].distance, 1e-9);
    }
    EXPECT_EQ(a->stats().index_nodes_accessed,
              b->stats().index_nodes_accessed);
  }
}

TEST_F(PersistenceTest, LoadedEngineSupportsUpdatesAndQueries) {
  SimilarityEngine original(testutil::RandomWalks(40, 64, 61));
  ASSERT_TRUE(original.Remove(3).ok());  // persist a tombstone too
  ASSERT_TRUE(original.SaveTo(prefix_).ok());

  auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->size(), 39u);
  EXPECT_TRUE((*loaded)->dataset().removed(3));

  // Insert into the reopened engine and find the new sequence.
  ts::Series fresh = ts::Denormalize((*loaded)->dataset().normal(0));
  const auto id = (*loaded)->Insert(fresh);
  ASSERT_TRUE(id.ok());
  RangeQuerySpec spec;
  spec.query = fresh;
  spec.transforms = {transform::SpectralTransform::Identity(64)};
  spec.epsilon = 0.1;
  const auto result =
      (*loaded)->Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const Match& m : result->range()->matches) {
    if (m.series_id == *id) found = true;
    EXPECT_NE(m.series_id, 3u);  // tombstone stays dead
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE((*loaded)->index().tree().CheckInvariants().ok());

  // Save the mutated engine and reload once more.
  ASSERT_TRUE((*loaded)->SaveTo(prefix_).ok());
  const auto again = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->size(), 40u);
}

TEST_F(PersistenceTest, CustomLayoutSurvivesRoundTrip) {
  SimilarityEngine::Options options;
  options.layout.num_coefficients = 3;
  options.layout.include_mean_std = false;
  options.layout.use_symmetry = false;
  SimilarityEngine original(testutil::Stocks(50, 64, 62), options);
  ASSERT_TRUE(original.SaveTo(prefix_).ok());
  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok());
  const auto& layout = (*loaded)->dataset().layout();
  EXPECT_EQ(layout.num_coefficients, 3u);
  EXPECT_FALSE(layout.include_mean_std);
  EXPECT_FALSE(layout.use_symmetry);
  EXPECT_EQ((*loaded)->index().tree().dimensions(), 6u);
}

TEST_F(PersistenceTest, MissingAndCorruptFilesRejected) {
  EXPECT_EQ(SimilarityEngine::LoadFrom("/nonexistent/prefix").status().code(),
            StatusCode::kIoError);

  SimilarityEngine original(testutil::RandomWalks(10, 64, 63));
  ASSERT_TRUE(original.SaveTo(prefix_).ok());
  const std::string meta_path =
      prefix_ + "." + std::to_string(original.checkpoint_epoch()) + ".meta";
  // Truncate the committed meta file behind the manifest's back: the digest
  // check must reject the checkpoint before anything parses it.
  {
    std::ofstream out(meta_path, std::ios::trunc);
    out << "tsqmeta 2\nlength 64\n";
  }
  EXPECT_EQ(SimilarityEngine::LoadFrom(prefix_).status().code(),
            StatusCode::kCorruption);

  // A truncated manifest is Corruption too.
  ASSERT_TRUE(original.SaveTo(prefix_).ok());
  {
    std::ofstream out(prefix_ + ".manifest", std::ios::trunc);
    out << "tsqckpt 1\n";
  }
  EXPECT_EQ(SimilarityEngine::LoadFrom(prefix_).status().code(),
            StatusCode::kCorruption);
}

TEST_F(PersistenceTest, SaveReplacesCheckpointAtomicallyAndSweepsOldEpochs) {
  SimilarityEngine original(testutil::RandomWalks(12, 64, 64));
  ASSERT_TRUE(original.SaveTo(prefix_).ok());
  const std::uint64_t first = original.checkpoint_epoch();
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(original.Remove(1).ok());
  ASSERT_TRUE(original.SaveTo(prefix_).ok());
  const std::uint64_t second = original.checkpoint_epoch();
  EXPECT_GT(second, first);

  // The superseded epoch's files are garbage-collected after the commit.
  for (const char* suffix : {".records", ".index", ".meta"}) {
    EXPECT_FALSE(std::filesystem::exists(
        prefix_ + "." + std::to_string(first) + suffix))
        << suffix;
    EXPECT_TRUE(std::filesystem::exists(
        prefix_ + "." + std::to_string(second) + suffix))
        << suffix;
  }

  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->checkpoint_epoch(), second);
  EXPECT_TRUE((*loaded)->dataset().removed(1));
}

}  // namespace
}  // namespace tsq::core
