#include "core/knn_query.h"

#include <cmath>
#include <limits>

#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"

namespace tsq::core {
namespace {

struct Workload {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<SequenceIndex> index;
};

Workload MakeWorkload(std::vector<ts::Series> series) {
  Workload w;
  w.dataset = std::make_unique<Dataset>(std::move(series),
                                        transform::FeatureLayout{});
  w.index = std::make_unique<SequenceIndex>(*w.dataset);
  return w;
}

void ExpectSameNeighbors(const std::vector<KnnMatch>& actual,
                         const std::vector<KnnMatch>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    // Distances must agree exactly; ids can differ only on exact ties.
    EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-6) << "rank " << i;
  }
  // The sets of ids must agree up to tie-breaking at equal distance.
  for (std::size_t i = 0; i < actual.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < expected.size(); ++j) {
      if (actual[i].series_id == expected[j].series_id &&
          std::fabs(actual[i].distance - expected[j].distance) < 1e-6) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "unexpected neighbor " << actual[i].series_id;
  }
}

class KnnEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KnnEquivalenceTest, AllAlgorithmsMatchBruteForce) {
  const int seed = GetParam();
  Workload w = MakeWorkload(seed % 2 == 0
                                ? testutil::RandomWalks(100, 128, seed)
                                : testutil::Stocks(100, 128, seed));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(seed % 10));
  spec.k = 1 + seed % 7;
  spec.transforms = transform::MovingAverageRange(128, 5, 15);

  const auto expected = BruteForceKnnQuery(*w.dataset, spec);
  ASSERT_EQ(expected.size(), spec.k);
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunKnnQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameNeighbors(result->matches, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(KnnQueryTest, NearestToDatasetMemberIsItself) {
  Workload w = MakeWorkload(testutil::RandomWalks(50, 64, 10));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(17));
  spec.k = 1;
  spec.transforms = {transform::SpectralTransform::Identity(64)};
  auto result = RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_EQ(result->matches[0].series_id, 17u);
  EXPECT_NEAR(result->matches[0].distance, 0.0, 1e-6);
}

TEST(KnnQueryTest, ResultsSortedAscending) {
  Workload w = MakeWorkload(testutil::Stocks(80, 128, 11));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(0));
  spec.k = 10;
  spec.transforms = transform::MovingAverageRange(128, 3, 9);
  auto result = RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->matches.size(); ++i) {
    EXPECT_LE(result->matches[i - 1].distance, result->matches[i].distance);
  }
}

TEST(KnnQueryTest, KLargerThanDataset) {
  Workload w = MakeWorkload(testutil::RandomWalks(7, 64, 12));
  KnnQuerySpec spec;
  spec.query = testutil::RandomWalks(1, 64, 99)[0];
  spec.k = 20;
  spec.transforms = transform::MovingAverageRange(64, 1, 3);
  auto result = RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches.size(), 7u);
}

TEST(KnnQueryTest, IndexKnnPrunesCandidates) {
  Workload w = MakeWorkload(testutil::RandomWalks(500, 128, 13));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(42));
  spec.k = 5;
  spec.transforms = transform::MovingAverageRange(128, 5, 10);
  auto mt = RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  auto seq =
      RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kSequentialScan);
  ASSERT_TRUE(mt.ok());
  ASSERT_TRUE(seq.ok());
  ExpectSameNeighbors(mt->matches, seq->matches);
  // The branch-and-bound search must not refine every sequence.
  EXPECT_LT(mt->stats.candidates, w.dataset->size());
}

TEST(KnnQueryTest, ReportsBestTransformPerNeighbor) {
  Workload w = MakeWorkload(testutil::Stocks(60, 128, 14));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(1));
  spec.k = 3;
  spec.transforms = transform::MovingAverageRange(128, 1, 20);
  auto result = RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  for (const KnnMatch& m : result->matches) {
    ASSERT_LT(m.transform_index, spec.transforms.size());
    // The reported transform actually achieves the reported distance.
    const double d2 =
        spec.transforms[m.transform_index].TransformedSquaredDistance(
            w.dataset->spectrum(m.series_id),
            w.dataset->plan().Forward(std::span<const double>(
                ts::Normalize(spec.query).values)));
    EXPECT_NEAR(std::sqrt(d2), m.distance, 1e-6);
  }
}

TEST(KnnQueryTest, DataOnlyTargetMatchesBruteForce) {
  Workload w = MakeWorkload(testutil::Stocks(80, 128, 20));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(3));
  spec.k = 5;
  spec.target = TransformTarget::kDataOnly;
  spec.transforms = transform::MovingAverageRange(128, 1, 8);
  for (std::size_t s : {1u, 127u}) {
    spec.transforms.push_back(transform::ShiftTransform(128, s));
  }
  const auto expected = BruteForceKnnQuery(*w.dataset, spec);
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunKnnQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameNeighbors(result->matches, expected);
  }
}

TEST(KnnQueryTest, QueryTransformSupported) {
  Workload w = MakeWorkload(testutil::Stocks(60, 128, 21));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(2));
  spec.k = 4;
  spec.target = TransformTarget::kDataOnly;
  spec.query_transform = transform::MomentumTransform(128);
  std::vector<transform::SpectralTransform> momentum = {
      transform::MomentumTransform(128)};
  spec.transforms = transform::ComposeSpectralSets(
      momentum, transform::ShiftRange(128, 0, 3));
  const auto expected = BruteForceKnnQuery(*w.dataset, spec);
  auto result = RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  ExpectSameNeighbors(result->matches, expected);
  // The query itself (shift 0, momentum == momentum) is the top match.
  EXPECT_EQ(result->matches[0].series_id, 2u);
  EXPECT_NEAR(result->matches[0].distance, 0.0, 1e-6);
}

TEST(KnnQueryTest, InvalidSpecsRejected) {
  Workload w = MakeWorkload(testutil::RandomWalks(10, 64, 15));
  KnnQuerySpec spec;
  spec.query = ts::Series(32, 0.0);
  spec.k = 1;
  spec.transforms = transform::MovingAverageRange(64, 1, 2);
  EXPECT_EQ(RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  spec.query = ts::Series(64, 0.0);
  spec.transforms.clear();
  EXPECT_EQ(RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// Regression: a NaN (or infinite) query value makes every distance NaN, and
// sorting NaN distances with a naive `a < b` comparator is undefined
// behaviour (no strict weak ordering). The spec must be rejected up front,
// on every algorithm, instead of feeding NaN keys to the sort.
TEST(KnnQueryTest, NonFiniteQueryRejected) {
  Workload w = MakeWorkload(testutil::RandomWalks(20, 64, 16));
  KnnQuerySpec spec;
  spec.k = 3;
  spec.transforms = transform::MovingAverageRange(64, 1, 4);
  for (const double poison : {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    spec.query = ts::Series(64, 1.0);
    spec.query[17] = poison;
    for (Algorithm algorithm :
         {Algorithm::kSequentialScan, Algorithm::kStIndex,
          Algorithm::kMtIndex}) {
      EXPECT_EQ(RunKnnQuery(*w.dataset, *w.index, spec, algorithm)
                    .status()
                    .code(),
                StatusCode::kInvalidArgument);
    }
  }
}

// Exact distance ties must break by series id, so results are deterministic
// whatever sort implementation or thread count produced them.
TEST(KnnQueryTest, TiesBreakByseriesId) {
  // Two identical copies of every series: each pair ties exactly.
  auto series = testutil::RandomWalks(10, 64, 17);
  auto twin = series;
  series.insert(series.end(), twin.begin(), twin.end());
  Workload w = MakeWorkload(std::move(series));
  KnnQuerySpec spec;
  spec.query = ts::Denormalize(w.dataset->normal(3));
  spec.k = 4;
  spec.transforms = transform::MovingAverageRange(64, 1, 3);
  auto result =
      RunKnnQuery(*w.dataset, *w.index, spec, Algorithm::kSequentialScan);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->matches.size(); ++i) {
    const KnnMatch& prev = result->matches[i - 1];
    const KnnMatch& cur = result->matches[i];
    EXPECT_TRUE(prev.distance < cur.distance ||
                (prev.distance == cur.distance &&
                 prev.series_id < cur.series_id))
        << "rank " << i;
  }
}

}  // namespace
}  // namespace tsq::core
