// Load-path robustness: every way a checkpoint can be damaged at rest —
// truncation at any 4 KiB boundary, a flipped bit in any region (page-file
// header, checksum table, page body, meta, manifest), a tampered meta field
// behind a fixed-up manifest — must surface as a clean Corruption/IoError
// from SimilarityEngine::LoadFrom. Never a crash, never a bad_alloc, never
// a silently wrong engine.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "storage/atomic_file.h"
#include "test_util.h"
#include "testing/fault_policy.h"
#include "transform/spectral_transform.h"
#include "ts/normal_form.h"

namespace tsq::core {
namespace {

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class CheckpointRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test prefix: gtest_discover_tests runs every test of this suite as
    // its own ctest process, in parallel — a shared prefix would let one
    // test's SaveTo/GC race another's damaged-file edits.
    prefix_ = ::testing::TempDir() + "/tsq_ckpt_robust_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
    engine_ = std::make_unique<SimilarityEngine>(
        testutil::RandomWalks(20, 64, 70));
    ASSERT_TRUE(engine_->Remove(2).ok());  // persist a tombstone too
    ASSERT_TRUE(engine_->SaveTo(prefix_).ok());
    epoch_ = engine_->checkpoint_epoch();
    ASSERT_GT(epoch_, 0u);
    for (const std::string& path : AllFiles()) {
      pristine_.emplace_back(path, ReadAllBytes(path));
    }
  }

  void TearDown() override {
    const std::filesystem::path prefix(prefix_);
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(prefix.parent_path(), ec)) {
      if (entry.path().filename().string().rfind(
              prefix.filename().string(), 0) == 0) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }

  std::string EpochFile(const char* suffix) const {
    return prefix_ + "." + std::to_string(epoch_) + suffix;
  }
  std::string ManifestFile() const { return prefix_ + ".manifest"; }
  std::vector<std::string> AllFiles() const {
    return {ManifestFile(), EpochFile(".records"), EpochFile(".index"),
            EpochFile(".meta")};
  }

  void RestorePristine() {
    for (const auto& [path, bytes] : pristine_) WriteAllBytes(path, bytes);
  }

  // Expects LoadFrom to fail with Corruption or IoError under `context`.
  void ExpectRejected(const std::string& context) {
    const auto loaded = SimilarityEngine::LoadFrom(prefix_);
    ASSERT_FALSE(loaded.ok()) << context << ": damaged checkpoint loaded";
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kIoError)
        << context << ": " << loaded.status().ToString();
  }

  // Applies `edit` to the committed meta file's lines, then patches the
  // manifest so the tampered meta passes the digest check — the test then
  // exercises the field validation behind it, not the checksum in front.
  void TamperMeta(const std::function<void(std::vector<std::string>&)>& edit) {
    std::vector<std::string> lines;
    {
      std::istringstream in(ReadAllBytes(EpochFile(".meta")));
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
    }
    edit(lines);
    std::string text;
    for (const std::string& line : lines) text += line + "\n";
    WriteAllBytes(EpochFile(".meta"), text);

    const auto digest = storage::DigestFile(EpochFile(".meta"));
    ASSERT_TRUE(digest.ok());
    std::string manifest;
    std::istringstream in(ReadAllBytes(ManifestFile()));
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("meta ", 0) == 0) {
        std::ostringstream out;
        out << "meta " << digest->size << " " << digest->fnv1a;
        line = out.str();
      }
      manifest += line + "\n";
    }
    WriteAllBytes(ManifestFile(), manifest);
  }

  // Rewrites the space-separated fields of meta line `index`.
  static void EditFields(std::vector<std::string>& lines, std::size_t index,
                         const std::function<void(std::vector<std::string>&)>&
                             edit) {
    ASSERT_LT(index, lines.size());
    std::vector<std::string> fields;
    std::istringstream in(lines[index]);
    std::string field;
    while (in >> field) fields.push_back(field);
    edit(fields);
    std::string joined;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      joined += (i == 0 ? "" : " ") + fields[i];
    }
    lines[index] = joined;
  }

  std::string prefix_;  // set in SetUp() — unique per test
  std::uint64_t epoch_ = 0;
  std::unique_ptr<SimilarityEngine> engine_;
  std::vector<std::pair<std::string, std::string>> pristine_;
};

TEST_F(CheckpointRobustnessTest, PristineCheckpointLoads) {
  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), engine_->size());
}

TEST_F(CheckpointRobustnessTest, TruncationAtEveryPageBoundaryRejected) {
  for (const std::string& path : AllFiles()) {
    const std::uint64_t size = std::filesystem::file_size(path);
    std::vector<std::uint64_t> cuts;
    for (std::uint64_t at = 0; at < size; at += 4096) cuts.push_back(at);
    cuts.push_back(size - 1);  // off-by-one torn tail
    for (const std::uint64_t at : cuts) {
      RestorePristine();
      std::filesystem::resize_file(path, at);
      ExpectRejected(path + " truncated to " + std::to_string(at));
    }
  }
  RestorePristine();
  EXPECT_TRUE(SimilarityEngine::LoadFrom(prefix_).ok());
}

TEST_F(CheckpointRobustnessTest, BitFlipInEveryRegionRejected) {
  // Offsets hit the page-file header, the checksum table, a page body, the
  // meta text and the manifest text; the tail byte of each file rides along.
  for (const std::string& path : AllFiles()) {
    const std::string bytes = ReadAllBytes(path);
    std::vector<std::size_t> offsets = {0, bytes.size() / 2,
                                        bytes.size() - 1};
    if (bytes.size() > 4300) {
      offsets.push_back(8);     // page-file count field
      offsets.push_back(20);    // checksum table
      offsets.push_back(4200);  // inside the first page body
    }
    for (const std::size_t at : offsets) {
      RestorePristine();
      std::string flipped = bytes;
      flipped[at] = static_cast<char>(flipped[at] ^ 0xFF);
      WriteAllBytes(path, flipped);
      ExpectRejected(path + " bit-flipped at " + std::to_string(at));
    }
  }
  RestorePristine();
  EXPECT_TRUE(SimilarityEngine::LoadFrom(prefix_).ok());
}

TEST_F(CheckpointRobustnessTest, MissingTrioFileRejected) {
  for (const char* suffix : {".records", ".index", ".meta"}) {
    RestorePristine();
    std::filesystem::remove(EpochFile(suffix));
    ExpectRejected(std::string("missing ") + suffix);
  }
}

// The regression the bugfix is named for: a meta file whose tree capacity
// reads 0 used to reach min_fill / capacity and divide by zero.
TEST_F(CheckpointRobustnessTest, ZeroTreeCapacityIsCorruptionNotCrash) {
  TamperMeta([](std::vector<std::string>& lines) {
    EditFields(lines, 3, [](std::vector<std::string>& f) {
      ASSERT_EQ(f[0], "tree");
      f[4] = "0";  // capacity
      f[5] = "0";  // min_fill (<= capacity, so only the capacity check fires)
    });
  });
  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointRobustnessTest, MinFillAboveCapacityRejected) {
  TamperMeta([](std::vector<std::string>& lines) {
    EditFields(lines, 3, [](std::vector<std::string>& f) {
      ASSERT_EQ(f[0], "tree");
      f[5] = std::to_string(std::stoull(f[4]) + 1);
    });
  });
  ExpectRejected("min_fill > capacity");
}

TEST_F(CheckpointRobustnessTest, TreeSizeDisagreeingWithLiveRowsRejected) {
  TamperMeta([](std::vector<std::string>& lines) {
    EditFields(lines, 3, [](std::vector<std::string>& f) {
      ASSERT_EQ(f[0], "tree");
      f[3] = std::to_string(std::stoull(f[3]) + 1);
    });
  });
  ExpectRejected("tree size != live rows");
}

TEST_F(CheckpointRobustnessTest, OutOfRangeRecordLocationRejected) {
  TamperMeta([](std::vector<std::string>& lines) {
    // Line 6 is the first sequence row: "page offset removed mean stddev".
    EditFields(lines, 6, [](std::vector<std::string>& f) {
      f[0] = "999999";
    });
  });
  ExpectRejected("record page out of range");
}

TEST_F(CheckpointRobustnessTest, NonFiniteNormalFormRejected) {
  TamperMeta([](std::vector<std::string>& lines) {
    EditFields(lines, 6, [](std::vector<std::string>& f) {
      f[4] = "nan";  // stddev
    });
  });
  ExpectRejected("non-finite stddev");
}

// A records file whose header claims an absurd page count must be bounded
// against the actual file size — Corruption, not a bad_alloc from
// allocating exabytes. The manifest is fixed up so the digest check in
// front does not mask the count validation.
TEST_F(CheckpointRobustnessTest, HugePageCountIsCorruptionNotBadAlloc) {
  std::string bytes = ReadAllBytes(EpochFile(".records"));
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + 8, &huge, sizeof huge);
  WriteAllBytes(EpochFile(".records"), bytes);
  const auto digest = storage::DigestFile(EpochFile(".records"));
  ASSERT_TRUE(digest.ok());
  std::string manifest;
  std::istringstream in(ReadAllBytes(ManifestFile()));
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("records ", 0) == 0) {
      std::ostringstream out;
      out << "records " << digest->size << " " << digest->fnv1a;
      line = out.str();
    }
    manifest += line + "\n";
  }
  WriteAllBytes(ManifestFile(), manifest);

  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointRobustnessTest, CrashDebrisIsSweptAndCountedOnLoad) {
  // Crash the next save mid-way: the new epoch's partial files are debris,
  // the manifest still commits the old epoch.
  tsq::testing::CrashPolicy policy(9);
  engine_->SetCheckpointFaultHook(&policy);
  ASSERT_FALSE(engine_->SaveTo(prefix_).ok());
  engine_->SetCheckpointFaultHook(nullptr);

  obs::Counter* recoveries = obs::MetricsRegistry::Global().counter(
      "engine.checkpoint.crash_recoveries");
  const std::uint64_t before = recoveries->value();
  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->checkpoint_epoch(), epoch_);
  EXPECT_EQ(recoveries->value(), before + 1);

  // The debris is gone: a second load finds a clean directory.
  const std::uint64_t after = recoveries->value();
  ASSERT_TRUE(SimilarityEngine::LoadFrom(prefix_).ok());
  EXPECT_EQ(recoveries->value(), after);
}

TEST_F(CheckpointRobustnessTest, CheckpointEpochStampedIntoTraces) {
  const auto loaded = SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(loaded.ok());
  RangeQuerySpec spec;
  spec.query = ts::Denormalize((*loaded)->dataset().normal(0));
  spec.transforms = {transform::SpectralTransform::Identity(64)};
  spec.epsilon = 0.5;
  const auto result = (*loaded)->Execute(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace().checkpoint_epoch, epoch_);
  EXPECT_NE(obs::FormatTrace(result->trace()).find(
                "checkpoint e" + std::to_string(epoch_)),
            std::string::npos);
}

}  // namespace
}  // namespace tsq::core
