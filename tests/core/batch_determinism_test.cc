// Determinism and accounting properties of SimilarityEngine::ExecuteBatch:
// batched results must be byte-identical to per-spec sequential Execute()
// and to the brute-force oracle across every algorithm and thread count,
// shared-work optimization must not perturb per-query statistics, and the
// per-entry record-page attribution must reconcile exactly with the
// PageFile's physical read counter — even when ResetIoStats() fires in the
// middle of the batch.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/range_query.h"
#include "storage/fault_injection.h"
#include "test_util.h"
#include "testing/oracle.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"
#include "ts/generate.h"

namespace tsq::core {
namespace {

constexpr double kTol = 1e-6;

bool Near(double a, double b) {
  return std::fabs(a - b) <=
         kTol * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

// Bitwise equality of the match lists, in order — the batch executor's
// exactness contract against sequential execution at the same snapshot.
void ExpectExactlyEqual(const QueryResult& expected, const QueryResult& got) {
  if (const auto* range = expected.range()) {
    ASSERT_NE(got.range(), nullptr);
    ASSERT_EQ(range->matches.size(), got.range()->matches.size());
    for (std::size_t i = 0; i < range->matches.size(); ++i) {
      EXPECT_TRUE(range->matches[i] == got.range()->matches[i]) << "match " << i;
    }
    return;
  }
  if (const auto* knn = expected.knn()) {
    ASSERT_NE(got.knn(), nullptr);
    ASSERT_EQ(knn->matches.size(), got.knn()->matches.size());
    for (std::size_t i = 0; i < knn->matches.size(); ++i) {
      EXPECT_EQ(knn->matches[i].series_id, got.knn()->matches[i].series_id);
      EXPECT_EQ(knn->matches[i].distance, got.knn()->matches[i].distance);
    }
    return;
  }
  ASSERT_NE(expected.join(), nullptr);
  ASSERT_NE(got.join(), nullptr);
  ASSERT_EQ(expected.join()->matches.size(), got.join()->matches.size());
  for (std::size_t i = 0; i < expected.join()->matches.size(); ++i) {
    EXPECT_TRUE(expected.join()->matches[i] == got.join()->matches[i])
        << "pair " << i;
  }
}

// Tolerant comparison against the oracle (membership exact, values near).
void ExpectMatchesOracle(const testing::Oracle& oracle, const QuerySpec& spec,
                         const QueryResult& got, Algorithm algorithm) {
  if (const auto* range = std::get_if<RangeQuerySpec>(&spec)) {
    const std::vector<Match> expected = oracle.Range(*range);
    ASSERT_NE(got.range(), nullptr);
    std::vector<Match> sorted = got.range()->matches;
    SortMatches(&sorted);
    ASSERT_EQ(expected.size(), sorted.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].series_id, sorted[i].series_id) << i;
      EXPECT_EQ(expected[i].transform_index, sorted[i].transform_index) << i;
      EXPECT_TRUE(Near(expected[i].distance, sorted[i].distance)) << i;
    }
    return;
  }
  if (const auto* knn = std::get_if<KnnQuerySpec>(&spec)) {
    const std::vector<KnnMatch> expected = oracle.Knn(*knn);
    ASSERT_NE(got.knn(), nullptr);
    ASSERT_EQ(expected.size(), got.knn()->matches.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].series_id, got.knn()->matches[i].series_id) << i;
      EXPECT_TRUE(Near(expected[i].distance, got.knn()->matches[i].distance))
          << i;
    }
    return;
  }
  const auto& join = std::get<JoinQuerySpec>(spec);
  const std::vector<JoinMatch> expected = oracle.Join(join);
  ASSERT_NE(got.join(), nullptr);
  std::vector<JoinMatch> sorted = got.join()->matches;
  SortJoinMatches(&sorted);
  if (join.mode == JoinMode::kCorrelation &&
      algorithm != Algorithm::kSequentialScan) {
    // Indexed correlation joins may return a subset (documented filter
    // property); every reported pair must still be an oracle pair.
    for (const JoinMatch& m : sorted) {
      bool found = false;
      for (const JoinMatch& e : expected) {
        if (e.a == m.a && e.b == m.b &&
            e.transform_index == m.transform_index) {
          EXPECT_TRUE(Near(e.value, m.value));
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "pair (" << m.a << "," << m.b << ") not in oracle";
    }
    return;
  }
  ASSERT_EQ(expected.size(), sorted.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].a, sorted[i].a) << i;
    EXPECT_EQ(expected[i].b, sorted[i].b) << i;
    EXPECT_TRUE(Near(expected[i].value, sorted[i].value)) << i;
  }
}

class BatchDeterminismTest : public ::testing::Test {
 protected:
  BatchDeterminismTest()
      : engine_(testutil::Stocks(70, 128, 91)), oracle_(engine_.dataset()) {}

  RangeQuerySpec RangeSpec(std::size_t query_id, double correlation) const {
    RangeQuerySpec spec;
    spec.query = ts::Denormalize(engine_.dataset().normal(query_id));
    spec.transforms = transform::MovingAverageRange(128, 4, 14);
    spec.epsilon = ts::CorrelationToDistanceThreshold(correlation, 128);
    return spec;
  }

  // A mixed batch: three range queries sharing one transform set (one with
  // its own partition, so it lands in a different traversal group), a k-NN,
  // a correlation join, and a verbatim duplicate of entry 0.
  std::vector<QuerySpec> MixedBatch() const {
    std::vector<QuerySpec> specs;
    specs.push_back(RangeSpec(0, 0.96));
    specs.push_back(RangeSpec(7, 0.97));
    RangeQuerySpec partitioned = RangeSpec(13, 0.96);
    partitioned.partition =
        transform::PartitionBySize(partitioned.transforms.size(), 4);
    specs.push_back(partitioned);
    KnnQuerySpec knn;
    knn.query = ts::Denormalize(engine_.dataset().normal(21));
    knn.k = 5;
    knn.transforms = transform::MovingAverageRange(128, 4, 14);
    specs.push_back(knn);
    JoinQuerySpec join;
    join.mode = JoinMode::kCorrelation;
    join.min_correlation = 0.99;
    join.transforms = transform::MovingAverageRange(128, 6, 9);
    specs.push_back(join);
    specs.push_back(specs[0]);
    return specs;
  }

  SimilarityEngine engine_;
  testing::Oracle oracle_;
};

TEST_F(BatchDeterminismTest, BatchedEqualsSequentialAndOracleEverywhere) {
  const std::vector<QuerySpec> specs = MixedBatch();
  static constexpr Algorithm kAlgorithms[] = {
      Algorithm::kSequentialScan, Algorithm::kStIndex, Algorithm::kMtIndex,
      Algorithm::kAuto};
  for (const Algorithm algorithm : kAlgorithms) {
    // Per-spec sequential baseline.
    std::vector<QueryResult> sequential;
    for (const QuerySpec& spec : specs) {
      ExecOptions options;
      options.planner.algorithm = algorithm;
      auto result = engine_.Execute(spec, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      sequential.push_back(std::move(*result));
    }
    for (const std::size_t threads : {1, 4, 8}) {
      BatchOptions options;
      options.exec.planner.algorithm = algorithm;
      options.exec.num_threads = threads;
      options.use_result_cache = false;
      const auto batch = engine_.ExecuteBatch(specs, options);
      ASSERT_EQ(batch.size(), specs.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        SCOPED_TRACE(::testing::Message()
                     << AlgorithmName(algorithm) << "/" << threads
                     << "t entry " << i);
        ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
        ExpectExactlyEqual(sequential[i], *batch[i]);
        ExpectMatchesOracle(oracle_, specs[i], *batch[i], algorithm);
        EXPECT_EQ(batch[i]->trace().batch_size, specs.size());
        EXPECT_EQ(batch[i]->trace().snapshot_version,
                  batch[0]->trace().snapshot_version);
      }
    }
  }
}

TEST_F(BatchDeterminismTest, MatchesAreByteIdenticalAcrossThreadCounts) {
  const std::vector<QuerySpec> specs = MixedBatch();
  for (const Algorithm algorithm : {Algorithm::kMtIndex, Algorithm::kAuto}) {
    std::vector<std::vector<QueryResult>> runs;
    for (const std::size_t threads : {1, 4, 8}) {
      BatchOptions options;
      options.exec.planner.algorithm = algorithm;
      options.exec.num_threads = threads;
      options.use_result_cache = false;
      auto batch = engine_.ExecuteBatch(specs, options);
      ASSERT_EQ(batch.size(), specs.size());
      std::vector<QueryResult> results;
      for (auto& entry : batch) {
        ASSERT_TRUE(entry.ok()) << entry.status().ToString();
        results.push_back(std::move(*entry));
      }
      runs.push_back(std::move(results));
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "run " << r << " entry " << i);
        ExpectExactlyEqual(runs[0][i], runs[r][i]);
      }
    }
  }
}

TEST_F(BatchDeterminismTest, SharedTraversalPreservesPerQueryStats) {
  // Entries 0 and 1 share (transform set, effective partition) and must be
  // grouped into one traversal; entry 0's duplicate at index 2 joins them.
  std::vector<QuerySpec> specs;
  specs.push_back(RangeSpec(0, 0.96));
  specs.push_back(RangeSpec(7, 0.97));
  specs.push_back(specs[0]);

  std::vector<QueryResult> solo;
  for (const QuerySpec& spec : specs) {
    ExecOptions options;
    options.planner.algorithm = Algorithm::kMtIndex;
    auto result = engine_.Execute(spec, options);
    ASSERT_TRUE(result.ok());
    solo.push_back(std::move(*result));
  }

  BatchOptions options;
  options.exec.planner.algorithm = Algorithm::kMtIndex;
  options.exec.num_threads = 4;
  options.use_result_cache = false;
  const auto batch = engine_.ExecuteBatch(specs, options);
  ASSERT_EQ(batch.size(), 3u);
  std::uint64_t traversal_reporters = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    const QueryStats& stats = batch[i]->stats();
    // The verification-side counters are the query's own work and must be
    // exactly the sequential numbers; only the traversal-side counters are
    // attributed to the group leader.
    EXPECT_EQ(stats.candidates, solo[i].stats().candidates) << i;
    EXPECT_EQ(stats.comparisons, solo[i].stats().comparisons) << i;
    EXPECT_EQ(stats.output_size, solo[i].stats().output_size) << i;
    EXPECT_TRUE(batch[i]->trace().shared_traversal) << i;
    EXPECT_EQ(batch[i]->trace().batch_group_queries, 3u) << i;
    if (stats.traversals > 0) ++traversal_reporters;
  }
  // One leader carries the union traversal's index I/O; a shared traversal
  // must not multiply it per member.
  EXPECT_EQ(traversal_reporters, 1u);
  const std::uint64_t batch_index_pages =
      (*batch[0]).stats().index_nodes_accessed +
      (*batch[1]).stats().index_nodes_accessed +
      (*batch[2]).stats().index_nodes_accessed;
  const std::uint64_t solo_index_pages =
      solo[0].stats().index_nodes_accessed +
      solo[1].stats().index_nodes_accessed +
      solo[2].stats().index_nodes_accessed;
  EXPECT_LE(batch_index_pages, solo_index_pages);
}

TEST_F(BatchDeterminismTest, RecordPageAttributionReconcilesWithPageFile) {
  std::vector<QuerySpec> specs;
  specs.push_back(RangeSpec(0, 0.96));
  specs.push_back(RangeSpec(7, 0.97));
  specs.push_back(RangeSpec(13, 0.96));
  specs.push_back(specs[0]);

  for (const Algorithm algorithm :
       {Algorithm::kSequentialScan, Algorithm::kMtIndex}) {
    BatchOptions options;
    options.exec.planner.algorithm = algorithm;
    options.exec.num_threads = 4;
    options.use_result_cache = false;

    engine_.ResetIoStats();
    const auto batch = engine_.ExecuteBatch(specs, options);
    const std::uint64_t physical = engine_.dataset().record_io().reads;
    std::uint64_t attributed = 0;
    for (const auto& entry : batch) {
      ASSERT_TRUE(entry.ok());
      attributed += entry->stats().record_pages_read;
    }
    // Deduped fetches are charged to exactly one query: the per-entry
    // attribution sums to the physical page reads, no more, no less.
    EXPECT_EQ(attributed, physical) << AlgorithmName(algorithm);
  }

  // Four sequential scans in one batch touch each record exactly once: the
  // whole batch costs the same physical I/O as ONE solo scan.
  engine_.ResetIoStats();
  ExecOptions solo_options;
  solo_options.planner.algorithm = Algorithm::kSequentialScan;
  ASSERT_TRUE(engine_.Execute(specs[0], solo_options).ok());
  const std::uint64_t one_scan = engine_.dataset().record_io().reads;

  BatchOptions options;
  options.exec.planner.algorithm = Algorithm::kSequentialScan;
  options.exec.num_threads = 4;
  options.use_result_cache = false;
  engine_.ResetIoStats();
  const auto batch = engine_.ExecuteBatch(specs, options);
  for (const auto& entry : batch) ASSERT_TRUE(entry.ok());
  EXPECT_EQ(engine_.dataset().record_io().reads, one_scan);
}

// ResetIoStats() firing mid-batch must not corrupt the fetch-table's dedupe
// accounting: attribution is computed from per-call page counts, never by
// diffing the shared counters the reset zeroes.
class MidBatchResetHook : public storage::FaultHook {
 public:
  explicit MidBatchResetHook(SimilarityEngine* engine) : engine_(engine) {}
  storage::FaultDecision OnRead(std::uint32_t) override {
    if (reads_.fetch_add(1, std::memory_order_relaxed) % 5 == 4) {
      engine_->ResetIoStats();
    }
    return storage::FaultDecision{};
  }

 private:
  SimilarityEngine* engine_;
  std::atomic<std::uint64_t> reads_{0};
};

TEST_F(BatchDeterminismTest, MidBatchResetDoesNotSplitDedupeAccounting) {
  std::vector<QuerySpec> specs;
  specs.push_back(RangeSpec(0, 0.96));
  specs.push_back(RangeSpec(7, 0.97));
  specs.push_back(specs[0]);

  BatchOptions options;
  options.exec.planner.algorithm = Algorithm::kSequentialScan;
  options.exec.num_threads = 4;
  options.use_result_cache = false;

  // Undisturbed baseline: matches and per-entry attribution.
  const auto baseline = engine_.ExecuteBatch(specs, options);
  for (const auto& entry : baseline) ASSERT_TRUE(entry.ok());

  MidBatchResetHook hook(&engine_);
  engine_.SetReadFaultHook(&hook);
  const auto disturbed = engine_.ExecuteBatch(specs, options);
  engine_.SetReadFaultHook(nullptr);

  ASSERT_EQ(disturbed.size(), baseline.size());
  for (std::size_t i = 0; i < disturbed.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "entry " << i);
    ASSERT_TRUE(disturbed[i].ok()) << disturbed[i].status().ToString();
    ExpectExactlyEqual(*baseline[i], *disturbed[i]);
    // The regression this guards: attribution derived from counter diffs
    // would tear across the reset and report garbage here.
    EXPECT_EQ(disturbed[i]->stats().record_pages_read,
              baseline[i]->stats().record_pages_read);
  }
}

}  // namespace
}  // namespace tsq::core
