#include "core/result_cache.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

namespace tsq::core {
namespace {

RangeQuerySpec SmallSpec() {
  RangeQuerySpec spec;
  Rng rng(7);
  spec.query = ts::GenerateRandomWalk(64, 500.0, rng);
  spec.transforms = transform::MovingAverageRange(64, 1, 4);
  spec.epsilon = 1.5;
  return spec;
}

plan::PlanKey KeyAt(std::uint64_t version, std::uint64_t epoch = 0) {
  const ResultCacheKey key =
      ComputeResultCacheKey(SmallSpec(), ExecOptions(), version, epoch);
  EXPECT_TRUE(key.cacheable);
  return key.key;
}

std::shared_ptr<const QueryResult> MakeValue(std::size_t id) {
  QueryResult result;
  RangeQueryResult range;
  range.matches.push_back(Match{id, 0, 0.25});
  result.value = std::move(range);
  return std::make_shared<const QueryResult>(std::move(result));
}

TEST(ResultCacheTest, HitReturnsTheExactPublishedResult) {
  ResultCache cache(8);
  const plan::PlanKey key = KeyAt(1);
  EXPECT_EQ(cache.Lookup(key), nullptr);

  const std::shared_ptr<const QueryResult> value = MakeValue(42);
  cache.Insert(key, value);
  const std::shared_ptr<const QueryResult> hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  // The cache serves the very object it was handed — hits are byte-identical
  // to the computed result by construction, not by copy.
  EXPECT_EQ(hit.get(), value.get());
  ASSERT_NE(hit->range(), nullptr);
  ASSERT_EQ(hit->range()->matches.size(), 1u);
  EXPECT_TRUE(hit->range()->matches[0] == value->range()->matches[0]);
}

TEST(ResultCacheTest, EvictionIsCapacityBoundAndLru) {
  ResultCache cache(3);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    cache.Insert(KeyAt(v), MakeValue(v));
  }
  EXPECT_EQ(cache.size(), 3u);
  // The two oldest are gone, the three newest are present.
  EXPECT_EQ(cache.Lookup(KeyAt(1)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyAt(2)), nullptr);
  EXPECT_NE(cache.Lookup(KeyAt(3)), nullptr);
  EXPECT_NE(cache.Lookup(KeyAt(4)), nullptr);
  EXPECT_NE(cache.Lookup(KeyAt(5)), nullptr);

  // A Lookup refreshes LRU position: touch 3, insert one more, and 4 — now
  // the least recently used — is the one evicted.
  EXPECT_NE(cache.Lookup(KeyAt(3)), nullptr);
  cache.Insert(KeyAt(6), MakeValue(6));
  EXPECT_NE(cache.Lookup(KeyAt(3)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyAt(4)), nullptr);
}

TEST(ResultCacheTest, PinnedInFlightEntriesAreNeverEvicted) {
  ResultCache cache(2);
  const plan::PlanKey pinned = KeyAt(100);
  ASSERT_TRUE(cache.Pin(pinned));
  // A pinned, valueless entry is a miss but holds its slot.
  EXPECT_EQ(cache.Lookup(pinned), nullptr);

  // Heavy eviction pressure while the entry is in flight.
  for (std::uint64_t v = 1; v <= 6; ++v) {
    cache.Insert(KeyAt(v), MakeValue(v));
  }

  // Publishing still works: the reservation survived the pressure.
  cache.Insert(pinned, MakeValue(100));
  cache.Unpin(pinned);
  const std::shared_ptr<const QueryResult> hit = cache.Lookup(pinned);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->range()->matches[0].series_id, 100u);
}

TEST(ResultCacheTest, AbandonedPinIsErasedNotServed) {
  ResultCache cache(4);
  const plan::PlanKey key = KeyAt(9);
  ASSERT_TRUE(cache.Pin(key));
  EXPECT_EQ(cache.size(), 1u);
  // The computation failed: no Insert. Unpin must erase the reservation so
  // later lookups recompute instead of waiting on a corpse.
  cache.Unpin(key);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  // And the key is pinnable again.
  EXPECT_TRUE(cache.Pin(key));
  cache.Unpin(key);
}

TEST(ResultCacheTest, SecondPinOnExistingKeyReturnsFalse) {
  ResultCache cache(4);
  const plan::PlanKey key = KeyAt(11);
  EXPECT_TRUE(cache.Pin(key));
  EXPECT_FALSE(cache.Pin(key));  // someone else owns the computation
  cache.Insert(key, MakeValue(11));
  cache.Unpin(key);
  cache.Unpin(key);
  // Published value survives the unpins.
  EXPECT_NE(cache.Lookup(key), nullptr);
}

TEST(ResultCacheKeyTest, NonFiniteSpecsAreNeverCacheable) {
  const ExecOptions options;
  {
    RangeQuerySpec spec = SmallSpec();
    spec.epsilon = std::nan("");
    EXPECT_FALSE(ComputeResultCacheKey(spec, options, 1, 0).cacheable);
  }
  {
    RangeQuerySpec spec = SmallSpec();
    spec.query[3] = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(ComputeResultCacheKey(spec, options, 1, 0).cacheable);
  }
  {
    KnnQuerySpec spec;
    Rng rng(8);
    spec.query = ts::GenerateRandomWalk(64, 500.0, rng);
    spec.query[0] = std::nan("");
    spec.k = 3;
    spec.transforms = transform::MovingAverageRange(64, 1, 4);
    EXPECT_FALSE(ComputeResultCacheKey(spec, options, 1, 0).cacheable);
  }
}

TEST(ResultCacheKeyTest, KeySeparatesSnapshotEpochAndExecOptions) {
  const RangeQuerySpec spec = SmallSpec();
  const ExecOptions options;
  const plan::PlanKey base = ComputeResultCacheKey(spec, options, 5, 2).key;

  // Snapshot version and config epoch both enter the digest — this is the
  // cache's entire invalidation mechanism.
  EXPECT_FALSE(ComputeResultCacheKey(spec, options, 6, 2).key == base);
  EXPECT_FALSE(ComputeResultCacheKey(spec, options, 5, 3).key == base);

  // So do the execution options that change stats or plans.
  ExecOptions threads = options;
  threads.num_threads = 4;
  EXPECT_FALSE(ComputeResultCacheKey(spec, threads, 5, 2).key == base);
  ExecOptions forced = options;
  forced.planner.algorithm = Algorithm::kSequentialScan;
  EXPECT_FALSE(ComputeResultCacheKey(spec, forced, 5, 2).key == base);

  // And the exact epsilon (not the planner's banded epsilon).
  RangeQuerySpec wider = spec;
  wider.epsilon = spec.epsilon + 1e-9;
  EXPECT_FALSE(ComputeResultCacheKey(wider, options, 5, 2).key == base);

  // Identical inputs reproduce the identical key.
  EXPECT_TRUE(ComputeResultCacheKey(spec, options, 5, 2).key == base);
}

// ---------------------------------------------------------------------------
// Engine-level properties: ExecuteBatch is the cache's only client.

class ResultCacheEngineTest : public ::testing::Test {
 protected:
  ResultCacheEngineTest() : engine_(testutil::Stocks(50, 128, 77)) {}

  std::vector<QuerySpec> OneSpecBatch() {
    RangeQuerySpec spec;
    spec.query = ts::Denormalize(engine_.dataset().normal(0));
    spec.transforms = transform::MovingAverageRange(128, 5, 12);
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);
    return {QuerySpec(spec)};
  }

  static void ExpectSameMatches(const QueryResult& a, const QueryResult& b) {
    ASSERT_NE(a.range(), nullptr);
    ASSERT_NE(b.range(), nullptr);
    ASSERT_EQ(a.range()->matches.size(), b.range()->matches.size());
    for (std::size_t i = 0; i < a.range()->matches.size(); ++i) {
      EXPECT_TRUE(a.range()->matches[i] == b.range()->matches[i]) << i;
    }
  }

  SimilarityEngine engine_;
};

TEST_F(ResultCacheEngineTest, RepeatBatchServesByteIdenticalHit) {
  const std::vector<QuerySpec> specs = OneSpecBatch();
  const auto first = engine_.ExecuteBatch(specs);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].ok());
  EXPECT_FALSE(first[0]->trace().result_cache_hit);

  const auto second = engine_.ExecuteBatch(specs);
  ASSERT_TRUE(second[0].ok());
  EXPECT_TRUE(second[0]->trace().result_cache_hit);
  ExpectSameMatches(*first[0], *second[0]);
}

TEST_F(ResultCacheEngineTest, WritesInvalidateThroughSnapshotVersion) {
  const std::vector<QuerySpec> specs = OneSpecBatch();
  ASSERT_TRUE(engine_.ExecuteBatch(specs)[0].ok());

  // Insert: the snapshot version moves, so the old entry stops being
  // addressable and the next batch recomputes against the new state.
  Rng rng(5);
  ASSERT_TRUE(engine_.Insert(ts::GenerateRandomWalk(128, 500.0, rng)).ok());
  const auto after_insert = engine_.ExecuteBatch(specs);
  ASSERT_TRUE(after_insert[0].ok());
  EXPECT_FALSE(after_insert[0]->trace().result_cache_hit);

  // Remove: same story.
  ASSERT_TRUE(engine_.ExecuteBatch(specs)[0]->trace().result_cache_hit);
  ASSERT_TRUE(engine_.Remove(1).ok());
  const auto after_remove = engine_.ExecuteBatch(specs);
  ASSERT_TRUE(after_remove[0].ok());
  EXPECT_FALSE(after_remove[0]->trace().result_cache_hit);
}

TEST_F(ResultCacheEngineTest, ReconfigurationInvalidatesThroughConfigEpoch) {
  const std::vector<QuerySpec> specs = OneSpecBatch();
  ASSERT_TRUE(engine_.ExecuteBatch(specs)[0].ok());
  ASSERT_TRUE(engine_.ExecuteBatch(specs)[0]->trace().result_cache_hit);

  engine_.SetSimulatedDiskLatency(1000);
  const auto after_latency = engine_.ExecuteBatch(specs);
  ASSERT_TRUE(after_latency[0].ok());
  EXPECT_FALSE(after_latency[0]->trace().result_cache_hit);

  ASSERT_TRUE(engine_.ExecuteBatch(specs)[0]->trace().result_cache_hit);
  engine_.EnableIndexBufferPool(8, 2);
  const auto after_pool = engine_.ExecuteBatch(specs);
  ASSERT_TRUE(after_pool[0].ok());
  EXPECT_FALSE(after_pool[0]->trace().result_cache_hit);
  engine_.EnableIndexBufferPool(0);
  engine_.SetSimulatedDiskLatency(0);
}

TEST_F(ResultCacheEngineTest, CacheOffNeverPopulatesOrServes) {
  const std::vector<QuerySpec> specs = OneSpecBatch();
  BatchOptions options;
  options.use_result_cache = false;
  ASSERT_TRUE(engine_.ExecuteBatch(specs, options)[0].ok());
  EXPECT_EQ(engine_.result_cache().size(), 0u);
  const auto again = engine_.ExecuteBatch(specs, options);
  ASSERT_TRUE(again[0].ok());
  EXPECT_FALSE(again[0]->trace().result_cache_hit);
}

TEST_F(ResultCacheEngineTest, InvalidSpecsAreNeverCached) {
  std::vector<QuerySpec> specs = OneSpecBatch();
  RangeQuerySpec bad = std::get<RangeQuerySpec>(specs[0]);
  bad.epsilon = std::nan("");
  specs[0] = bad;

  const std::size_t before = engine_.result_cache().size();
  const auto batch = engine_.ExecuteBatch(specs);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].ok());
  EXPECT_EQ(engine_.result_cache().size(), before);

  // Same for a NaN hidden in the query samples.
  RangeQuerySpec poisoned = std::get<RangeQuerySpec>(OneSpecBatch()[0]);
  poisoned.query[7] = std::nan("");
  const auto poisoned_batch =
      engine_.ExecuteBatch({QuerySpec(poisoned)});
  if (poisoned_batch[0].ok()) {
    // Even if the executor tolerates it, the result must not be cached.
    EXPECT_FALSE(poisoned_batch[0]->trace().result_cache_hit);
  }
  EXPECT_EQ(engine_.result_cache().size(), before);
}

}  // namespace
}  // namespace tsq::core
