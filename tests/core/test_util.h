#ifndef TSQ_TESTS_CORE_TEST_UTIL_H_
#define TSQ_TESTS_CORE_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "ts/generate.h"
#include "ts/series.h"

namespace tsq::core::testutil {

/// Small synthetic random-walk workload (the paper's recipe, shrunk for unit
/// tests).
inline std::vector<ts::Series> RandomWalks(std::size_t count,
                                           std::size_t length,
                                           std::uint64_t seed) {
  ts::RandomWalkConfig config;
  config.num_series = count;
  config.length = length;
  config.seed = seed;
  return ts::GenerateRandomWalks(config);
}

/// Small correlated stock-market workload.
inline std::vector<ts::Series> Stocks(std::size_t count, std::size_t length,
                                      std::uint64_t seed) {
  ts::StockMarketConfig config;
  config.num_series = count;
  config.length = length;
  config.num_sectors = std::max<std::size_t>(2, count / 8);
  config.seed = seed;
  return ts::GenerateStockMarket(config);
}

}  // namespace tsq::core::testutil

#endif  // TSQ_TESTS_CORE_TEST_UTIL_H_
