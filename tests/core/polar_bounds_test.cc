#include "core/polar_bounds.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::core {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(PolarBoxMinTest, OverlappingBoxesGiveZero) {
  EXPECT_EQ(PolarBoxMinSquaredDistance(1.0, 2.0, 0.0, 1.0,  //
                                       1.5, 3.0, 0.5, 1.5),
            0.0);
}

TEST(PolarBoxMinTest, PureMagnitudeGap) {
  EXPECT_NEAR(PolarBoxMinSquaredDistance(1.0, 2.0, 0.0, 0.0,  //
                                         3.0, 4.0, 0.0, 0.0),
              1.0, 1e-12);
}

TEST(PolarBoxMinTest, PureAngleGapChordDistance) {
  // Points (magnitude fixed at 1), angle gap of pi/2: chord^2 = 2.
  EXPECT_NEAR(PolarBoxMinSquaredDistance(1.0, 1.0, 0.0, 0.0,  //
                                         1.0, 1.0, kPi / 2, kPi / 2),
              2.0, 1e-9);
}

TEST(PolarBoxMinTest, OppositeAnglesCanReachZeroViaOrigin) {
  EXPECT_NEAR(PolarBoxMinSquaredDistance(0.0, 1.0, 0.0, 0.0,  //
                                         0.0, 1.0, kPi, kPi),
              0.0, 1e-12);
}

TEST(PolarBoxMinTest, WrapAroundAngleIntervals) {
  // [3, 3.3] and [-3.3, -3] overlap modulo 2*pi -> zero distance.
  EXPECT_NEAR(PolarBoxMinSquaredDistance(1.0, 1.0, 3.0, 3.3,  //
                                         1.0, 1.0, -3.3, -3.0),
              0.0, 1e-12);
}

TEST(PolarBoxMinTest, LowerBoundsSampledPoints) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const double a_mlo = rng.Uniform(0.0, 3.0);
    const double a_mhi = a_mlo + rng.Uniform(0.0, 2.0);
    const double a_alo = rng.Uniform(-4.0, 4.0);
    const double a_ahi = a_alo + rng.Uniform(0.0, 2.0);
    const double b_mlo = rng.Uniform(0.0, 3.0);
    const double b_mhi = b_mlo + rng.Uniform(0.0, 2.0);
    const double b_alo = rng.Uniform(-4.0, 4.0);
    const double b_ahi = b_alo + rng.Uniform(0.0, 2.0);
    const double bound = PolarBoxMinSquaredDistance(
        a_mlo, a_mhi, a_alo, a_ahi, b_mlo, b_mhi, b_alo, b_ahi);
    for (int sample = 0; sample < 20; ++sample) {
      const std::complex<double> u =
          std::polar(rng.Uniform(a_mlo, a_mhi), rng.Uniform(a_alo, a_ahi));
      const std::complex<double> v =
          std::polar(rng.Uniform(b_mlo, b_mhi), rng.Uniform(b_alo, b_ahi));
      EXPECT_LE(bound, std::norm(u - v) + 1e-9)
          << "A mag[" << a_mlo << "," << a_mhi << "] ang[" << a_alo << ","
          << a_ahi << "] B mag[" << b_mlo << "," << b_mhi << "] ang[" << b_alo
          << "," << b_ahi << "]";
    }
  }
}

TEST(PolarBoxMinTest, TightForPointBoxes) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const double ma = rng.Uniform(0.0, 5.0);
    const double mb = rng.Uniform(0.0, 5.0);
    const double aa = rng.Uniform(-kPi, kPi);
    const double ab = rng.Uniform(-kPi, kPi);
    const double bound =
        PolarBoxMinSquaredDistance(ma, ma, aa, aa, mb, mb, ab, ab);
    const double exact = std::norm(std::polar(ma, aa) - std::polar(mb, ab));
    EXPECT_NEAR(bound, exact, 1e-9);
  }
}

TEST(RectBoundsTest, LayoutWeightingAndDimensions) {
  transform::FeatureLayout layout;  // mean/std + 2 coefficients, symmetry on
  std::vector<double> lo_a = {0.0, 0.0, 1.0, 0.0, 1.0, 0.0};
  std::vector<double> hi_a = lo_a;
  std::vector<double> lo_b = lo_a, hi_b = hi_a;
  lo_b[2] = hi_b[2] = 2.0;
  const rstar::Rect a(lo_a, hi_a), b(lo_b, hi_b);
  EXPECT_NEAR(RectPairSquaredDistanceLowerBound(a, b, layout), 2.0, 1e-12);
  transform::FeatureLayout no_sym = layout;
  no_sym.use_symmetry = false;
  EXPECT_NEAR(RectPairSquaredDistanceLowerBound(a, b, no_sym), 1.0, 1e-12);
}

TEST(RectBoundsTest, MeanStdDimensionsDoNotContribute) {
  transform::FeatureLayout layout;
  std::vector<double> lo_a = {100.0, 5.0, 1.0, 0.0, 1.0, 0.0};
  std::vector<double> lo_b = {-100.0, 50.0, 1.0, 0.0, 1.0, 0.0};
  const rstar::Rect a(lo_a, lo_a), b(lo_b, lo_b);
  EXPECT_EQ(RectPairSquaredDistanceLowerBound(a, b, layout), 0.0);
}

TEST(RectBoundsTest, PointHelpersConsistent) {
  transform::FeatureLayout layout;
  layout.include_mean_std = false;
  const rstar::Point a = {1.0, 0.5, 2.0, -1.0};
  const rstar::Point b = {1.5, 0.7, 2.0, -1.0};
  const double via_points = PointPairSquaredDistanceLowerBound(a, b, layout);
  const double via_rect = RectPointSquaredDistanceLowerBound(
      rstar::Rect::FromPoint(a), b, layout);
  EXPECT_NEAR(via_points, via_rect, 1e-12);
  EXPECT_GT(via_points, 0.0);
}

}  // namespace
}  // namespace tsq::core
