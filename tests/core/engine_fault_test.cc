// Engine-level fault audit: with a fault hook installed on every storage
// layer, Execute() must surface storage errors as a non-OK Status — never
// crash, never return silently wrong results — and a clean rerun right after
// must reproduce the fault-free baseline (pool and page-file state intact).

#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/fault_policy.h"
#include "transform/builders.h"

namespace tsq::core {
namespace {

using tsq::testing::FaultPolicy;
using tsq::testing::FaultPolicyConfig;

class EngineFaultTest : public ::testing::Test {
 protected:
  EngineFaultTest() : series_(testutil::Stocks(24, 16, 7)), engine_(series_) {}

  RangeQuerySpec RangeSpec() const {
    RangeQuerySpec spec;
    spec.query = series_[0];
    spec.transforms = transform::MovingAverageRange(16, 1, 6);
    spec.epsilon = 1.5;
    return spec;
  }

  KnnQuerySpec KnnSpec() const {
    KnnQuerySpec spec;
    spec.query = series_[1];
    spec.transforms = transform::MovingAverageRange(16, 1, 4);
    spec.k = 3;
    return spec;
  }

  JoinQuerySpec JoinSpec() const {
    JoinQuerySpec spec;
    spec.transforms = transform::MovingAverageRange(16, 2, 3);
    spec.epsilon = 1.0;
    return spec;
  }

  std::vector<QuerySpec> AllSpecs() const {
    return {RangeSpec(), KnnSpec(), JoinSpec()};
  }

  static bool SameResult(const QueryResult& a, const QueryResult& b) {
    if (const auto* range = a.range()) {
      auto lhs = range->matches;
      auto rhs = b.range()->matches;
      SortMatches(&lhs);
      SortMatches(&rhs);
      return lhs == rhs;
    }
    if (const auto* knn = a.knn()) {
      const auto& lhs = knn->matches;
      const auto& rhs = b.knn()->matches;
      if (lhs.size() != rhs.size()) return false;
      for (std::size_t i = 0; i < lhs.size(); ++i) {
        if (lhs[i].series_id != rhs[i].series_id ||
            lhs[i].distance != rhs[i].distance) {
          return false;
        }
      }
      return true;
    }
    auto lhs = a.join()->matches;
    auto rhs = b.join()->matches;
    SortJoinMatches(&lhs);
    SortJoinMatches(&rhs);
    if (lhs.size() != rhs.size()) return false;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      if (lhs[i].a != rhs[i].a || lhs[i].b != rhs[i].b ||
          lhs[i].transform_index != rhs[i].transform_index ||
          lhs[i].value != rhs[i].value) {
        return false;
      }
    }
    return true;
  }

  std::vector<ts::Series> series_;
  SimilarityEngine engine_;
};

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSequentialScan, Algorithm::kStIndex, Algorithm::kMtIndex};

TEST_F(EngineFaultTest, FirstReadFailureSurfacesOnEveryAlgorithmAndQuery) {
  for (const QuerySpec& spec : AllSpecs()) {
    for (const Algorithm algorithm : kAlgorithms) {
      ExecOptions options;
      options.planner.algorithm = algorithm;
      const auto baseline = engine_.Execute(spec, options);
      ASSERT_TRUE(baseline.ok());

      FaultPolicyConfig config;
      config.fail_nth_read = 1;
      FaultPolicy policy(config);
      engine_.SetReadFaultHook(&policy);
      const auto faulted = engine_.Execute(spec, options);
      engine_.SetReadFaultHook(nullptr);
      ASSERT_FALSE(faulted.ok())
          << "algorithm " << AlgorithmName(algorithm)
          << " swallowed an injected first-read failure";
      EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);
      EXPECT_GE(policy.faults_injected(), 1u);

      const auto rerun = engine_.Execute(spec, options);
      ASSERT_TRUE(rerun.ok());
      EXPECT_TRUE(SameResult(*baseline, *rerun));
    }
  }
}

TEST_F(EngineFaultTest, MidQueryFailureSurfacesUnderParallelExecution) {
  for (const QuerySpec& spec : AllSpecs()) {
    for (const Algorithm algorithm : kAlgorithms) {
      ExecOptions options;
      options.planner.algorithm = algorithm;
      options.num_threads = 4;
      FaultPolicyConfig config;
      config.fail_every_k = 5;
      config.failure_code = StatusCode::kInternal;
      FaultPolicy policy(config);
      engine_.SetReadFaultHook(&policy);
      const auto faulted = engine_.Execute(spec, options);
      engine_.SetReadFaultHook(nullptr);
      // A tiny query can legitimately finish in fewer than 5 reads; the
      // contract is error-or-exact, never a silently wrong result.
      if (policy.faults_injected() > 0) {
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
      } else {
        EXPECT_TRUE(faulted.ok());
      }
    }
  }
}

TEST_F(EngineFaultTest, ChecksumCorruptionMidQueryReturnsCorruption) {
  ExecOptions options;
  options.planner.algorithm = Algorithm::kMtIndex;
  const QuerySpec spec = RangeSpec();
  const auto baseline = engine_.Execute(spec, options);
  ASSERT_TRUE(baseline.ok());

  FaultPolicyConfig config;
  config.corrupt_nth_read = 2;
  FaultPolicy policy(config);
  engine_.SetReadFaultHook(&policy);
  const auto faulted = engine_.Execute(spec, options);
  engine_.SetReadFaultHook(nullptr);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kCorruption);

  // The corruption touched only the delivered copy; storage stays healthy.
  const auto rerun = engine_.Execute(spec, options);
  ASSERT_TRUE(rerun.ok());
  EXPECT_TRUE(SameResult(*baseline, *rerun));
}

TEST_F(EngineFaultTest, ShortReadMidQueryReturnsErrorWithIntactPool) {
  engine_.EnableIndexBufferPool(8, 2);
  ExecOptions options;
  options.planner.algorithm = Algorithm::kMtIndex;
  options.num_threads = 4;
  const QuerySpec spec = KnnSpec();
  const auto baseline = engine_.Execute(spec, options);
  ASSERT_TRUE(baseline.ok());

  FaultPolicyConfig config;
  config.short_nth_read = 3;
  FaultPolicy policy(config);
  engine_.SetReadFaultHook(&policy);
  const auto faulted = engine_.Execute(spec, options);
  engine_.SetReadFaultHook(nullptr);
  ASSERT_FALSE(faulted.ok());

  // The pool must still work after the fault: the in-flight entry of the
  // failed read was cleaned up, nothing wrong was cached.
  const auto rerun = engine_.Execute(spec, options);
  ASSERT_TRUE(rerun.ok());
  EXPECT_TRUE(SameResult(*baseline, *rerun));
  engine_.EnableIndexBufferPool(0);
}

TEST_F(EngineFaultTest, PoolLevelFaultsSurfaceAndPoolSurvives) {
  engine_.EnableIndexBufferPool(8, 2);
  ExecOptions options;
  options.planner.algorithm = Algorithm::kMtIndex;
  const QuerySpec spec = RangeSpec();
  const auto baseline = engine_.Execute(spec, options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_NE(engine_.index_buffer_pool(), nullptr);

  for (int nth = 1; nth <= 4; ++nth) {
    FaultPolicyConfig config;
    config.fail_nth_read = static_cast<std::uint64_t>(nth);
    FaultPolicy policy(config);
    engine_.SetReadFaultHook(&policy);
    const auto faulted = engine_.Execute(spec, options);
    engine_.SetReadFaultHook(nullptr);
    ASSERT_FALSE(faulted.ok()) << "nth=" << nth;

    const auto rerun = engine_.Execute(spec, options);
    ASSERT_TRUE(rerun.ok()) << "nth=" << nth;
    EXPECT_TRUE(SameResult(*baseline, *rerun)) << "nth=" << nth;
  }
  engine_.EnableIndexBufferPool(0);
}

TEST_F(EngineFaultTest, HookInstalledBeforePoolIsInheritedByPool) {
  FaultPolicyConfig config;
  config.fail_every_k = 1;
  FaultPolicy policy(config);
  engine_.SetReadFaultHook(&policy);
  // The pool is created *after* the hook: EnableIndexBufferPool must
  // re-install it on the new pool.
  engine_.EnableIndexBufferPool(8);
  ExecOptions options;
  options.planner.algorithm = Algorithm::kStIndex;
  const auto faulted = engine_.Execute(RangeSpec(), options);
  EXPECT_FALSE(faulted.ok());
  engine_.SetReadFaultHook(nullptr);
  engine_.EnableIndexBufferPool(0);
}

TEST_F(EngineFaultTest, FetchSpectrumOutOfRangeIsStatusNotDeath) {
  // A corrupted index leaf can hand the verifier an arbitrary sequence id;
  // that must come back as a Status, not a CHECK abort.
  const Dataset& dataset = engine_.dataset();
  const auto result = dataset.FetchSpectrum(dataset.size());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  const auto far = dataset.FetchSpectrum(1u << 20);
  ASSERT_FALSE(far.ok());
  EXPECT_EQ(far.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tsq::core
