#include "core/join_query.h"

#include <limits>

#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/ops.h"

namespace tsq::core {
namespace {

struct Workload {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<SequenceIndex> index;
};

Workload MakeWorkload(std::vector<ts::Series> series) {
  Workload w;
  w.dataset = std::make_unique<Dataset>(std::move(series),
                                        transform::FeatureLayout{});
  w.index = std::make_unique<SequenceIndex>(*w.dataset);
  return w;
}

void ExpectSameJoinMatches(std::vector<JoinMatch> a,
                           std::vector<JoinMatch> b) {
  SortJoinMatches(&a);
  SortJoinMatches(&b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a) << i;
    EXPECT_EQ(a[i].b, b[i].b) << i;
    EXPECT_EQ(a[i].transform_index, b[i].transform_index) << i;
    EXPECT_NEAR(a[i].value, b[i].value, 1e-6) << i;
  }
}

TEST(TransformedCorrelationTest, MatchesTimeDomainComputation) {
  const auto series = testutil::Stocks(20, 128, 1);
  Dataset dataset(series, transform::FeatureLayout{});
  const auto t = transform::MovingAverageTransform(128, 9);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      const double via_freq = TransformedCorrelation(t, dataset.spectrum(a),
                                                     dataset.spectrum(b));
      const double via_time = ts::CrossCorrelation(
          t.ApplyToSeries(dataset.normal(a).values),
          t.ApplyToSeries(dataset.normal(b).values));
      EXPECT_NEAR(via_freq, via_time, 1e-9);
    }
  }
}

TEST(TransformedCorrelationTest, IdentityMatchesPlainCorrelation) {
  const auto series = testutil::Stocks(10, 64, 2);
  Dataset dataset(series, transform::FeatureLayout{});
  const auto id = transform::SpectralTransform::Identity(64);
  const double via_freq =
      TransformedCorrelation(id, dataset.spectrum(0), dataset.spectrum(1));
  const double direct = ts::CrossCorrelation(dataset.normal(0).values,
                                             dataset.normal(1).values);
  EXPECT_NEAR(via_freq, direct, 1e-9);
}

// Distance-mode joins are exactly filterable: all three algorithms must
// agree with brute force (the join analogue of Lemma 1).
class DistanceJoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DistanceJoinEquivalenceTest, AllAlgorithmsMatchBruteForce) {
  const int seed = GetParam();
  Workload w = MakeWorkload(testutil::Stocks(60, 128, seed));
  JoinQuerySpec spec;
  spec.mode = JoinMode::kDistance;
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.97, 128);
  spec.transforms = transform::MovingAverageRange(128, 5, 14);

  const auto expected = BruteForceJoinQuery(*w.dataset, spec);
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunJoinQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameJoinMatches(result->matches, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceJoinEquivalenceTest,
                         ::testing::Values(1, 2, 3));

TEST(JoinQueryTest, CorrelationModeSoundAndComplete) {
  // Correlation mode: results must be a subset of brute force with exact
  // values (soundness always); on this workload the filter also achieves
  // full recall.
  Workload w = MakeWorkload(testutil::Stocks(80, 128, 4));
  JoinQuerySpec spec;
  spec.mode = JoinMode::kCorrelation;
  spec.min_correlation = 0.985;
  spec.transforms = transform::MovingAverageRange(128, 5, 14);

  const auto expected = BruteForceJoinQuery(*w.dataset, spec);
  EXPECT_FALSE(expected.empty());
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = RunJoinQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    ExpectSameJoinMatches(result->matches, expected);
  }
}

TEST(JoinQueryTest, PartitionedJoinStillExact) {
  Workload w = MakeWorkload(testutil::Stocks(50, 128, 5));
  JoinQuerySpec spec;
  spec.mode = JoinMode::kDistance;
  spec.epsilon = 1.0;
  spec.transforms = transform::MovingAverageRange(128, 6, 17);
  const auto expected = BruteForceJoinQuery(*w.dataset, spec);
  for (std::size_t per_group : {1u, 3u, 12u}) {
    spec.partition =
        transform::PartitionBySize(spec.transforms.size(), per_group);
    auto result = RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
    ASSERT_TRUE(result.ok());
    ExpectSameJoinMatches(result->matches, expected);
    EXPECT_EQ(result->stats.traversals, spec.partition.size());
  }
}

TEST(JoinQueryTest, PairsAreOrderedAndDistinct) {
  Workload w = MakeWorkload(testutil::Stocks(40, 128, 6));
  JoinQuerySpec spec;
  spec.mode = JoinMode::kDistance;
  spec.epsilon = 2.0;
  spec.transforms = transform::MovingAverageRange(128, 8, 10);
  auto result = RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(result.ok());
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen;
  for (const JoinMatch& m : result->matches) {
    EXPECT_LT(m.a, m.b);
    EXPECT_TRUE(seen.insert({m.a, m.b, m.transform_index}).second)
        << "duplicate pair";
  }
}

TEST(JoinQueryTest, IndexJoinBeatsScanOnIo) {
  Workload w = MakeWorkload(testutil::Stocks(150, 128, 7));
  JoinQuerySpec spec;
  spec.mode = JoinMode::kCorrelation;
  spec.min_correlation = 0.99;
  spec.transforms = transform::MovingAverageRange(128, 5, 14);

  auto seq =
      RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kSequentialScan);
  auto mt = RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(mt.ok());
  // The filter prunes nearly all of the ~11k pairs.
  EXPECT_LT(mt->stats.candidates, seq->stats.candidates / 4);
  EXPECT_LT(mt->stats.comparisons, seq->stats.comparisons / 4);
}

TEST(JoinQueryTest, InvalidSpecsRejected) {
  Workload w = MakeWorkload(testutil::Stocks(10, 64, 8));
  JoinQuerySpec spec;
  EXPECT_EQ(RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // no transforms
  spec.transforms = transform::MovingAverageRange(64, 1, 2);
  spec.mode = JoinMode::kDistance;
  spec.epsilon = -0.5;
  EXPECT_EQ(RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  spec.mode = JoinMode::kCorrelation;
  spec.slack = 0.0;
  EXPECT_EQ(RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // NaN thresholds must be rejected, not silently evaluate to "no pair
  // qualifies" after reading the whole relation.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  spec.mode = JoinMode::kDistance;
  spec.epsilon = nan;
  EXPECT_EQ(RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  spec.mode = JoinMode::kCorrelation;
  spec.slack = 1.0;
  spec.min_correlation = nan;
  EXPECT_EQ(RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  spec.min_correlation = 0.9;
  spec.slack = nan;
  EXPECT_EQ(RunJoinQuery(*w.dataset, *w.index, spec, Algorithm::kMtIndex)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(JoinQueryTest, EmptyResultWhenThresholdImpossible) {
  Workload w = MakeWorkload(testutil::RandomWalks(30, 64, 9));
  JoinQuerySpec spec;
  spec.mode = JoinMode::kCorrelation;
  spec.min_correlation = 1.0;  // above the (n-1)/n ceiling
  spec.transforms = transform::MovingAverageRange(64, 1, 3);
  for (Algorithm algorithm : {Algorithm::kSequentialScan,
                              Algorithm::kMtIndex}) {
    auto result = RunJoinQuery(*w.dataset, *w.index, spec, algorithm);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->matches.empty());
  }
}

}  // namespace
}  // namespace tsq::core
