#include "core/engine.h"

#include "common/rng.h"
#include "test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

TEST(SimilarityEngineTest, EndToEndRangeQuery) {
  SimilarityEngine engine(testutil::Stocks(100, 128, 31));
  EXPECT_EQ(engine.size(), 100u);
  EXPECT_EQ(engine.length(), 128u);

  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(128, 1, 40);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);
  const auto result = engine.Execute(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->range(), nullptr);
  EXPECT_EQ(result->knn(), nullptr);
  EXPECT_EQ(result->join(), nullptr);
  EXPECT_FALSE(result->range()->matches.empty());
  // The query itself qualifies under every window (distance 0).
  std::size_t self_matches = 0;
  for (const Match& m : result->range()->matches) {
    if (m.series_id == 0) ++self_matches;
  }
  EXPECT_EQ(self_matches, spec.transforms.size());
}

TEST(SimilarityEngineTest, AllThreeQueryTypes) {
  SimilarityEngine engine(testutil::Stocks(60, 128, 32));

  RangeQuerySpec range;
  range.query = ts::Denormalize(engine.dataset().normal(5));
  range.transforms = transform::MovingAverageRange(128, 5, 10);
  range.epsilon = 2.0;
  EXPECT_TRUE(engine.Execute(range, {.planner = {.algorithm = Algorithm::kStIndex}}).ok());

  JoinQuerySpec join;
  join.mode = JoinMode::kCorrelation;
  join.min_correlation = 0.99;
  join.transforms = transform::MovingAverageRange(128, 5, 10);
  EXPECT_TRUE(engine.Execute(join).ok());

  KnnQuerySpec knn;
  knn.query = ts::Denormalize(engine.dataset().normal(5));
  knn.k = 3;
  knn.transforms = transform::MovingAverageRange(128, 5, 10);
  const auto neighbors = engine.Execute(knn);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_NE(neighbors->knn(), nullptr);
  EXPECT_EQ(neighbors->knn()->matches.size(), 3u);
  EXPECT_EQ(neighbors->knn()->matches[0].series_id, 5u);
}

TEST(SimilarityEngineTest, CustomOptions) {
  SimilarityEngine::Options options;
  options.layout.num_coefficients = 3;
  options.layout.include_mean_std = false;
  options.layout.use_symmetry = false;
  SimilarityEngine engine(testutil::RandomWalks(50, 64, 33), options);
  EXPECT_EQ(engine.index().tree().dimensions(), 6u);

  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(64, 1, 5);
  spec.epsilon = 1.5;
  const auto via_index =
      engine.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  const auto via_scan =
      engine.Execute(spec, {.planner = {.algorithm = Algorithm::kSequentialScan}});
  ASSERT_TRUE(via_index.ok());
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(via_index->range()->matches.size(),
            via_scan->range()->matches.size());
}

TEST(SimilarityEngineTest, GroupStatsExposedForCostAnalysis) {
  SimilarityEngine engine(testutil::Stocks(80, 128, 34));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(128, 6, 17);
  spec.epsilon = 2.0;
  spec.partition = transform::PartitionBySize(spec.transforms.size(), 4);
  const auto result = engine.Execute(
      spec, {.planner = {.algorithm = Algorithm::kMtIndex}, .collect_group_stats = true});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->group_stats.size(), 3u);
  for (const GroupRunStats& g : result->group_stats) {
    EXPECT_EQ(g.transforms, 4u);
    EXPECT_GE(g.da_all, g.da_leaf);
  }
  // Without the flag, no group stats are collected.
  const auto bare = engine.Execute(spec);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->group_stats.empty());
}

TEST(SimilarityEngineTest, DefaultOptionsPlanAndMatchForcedPlans) {
  // Execute() defaults to Algorithm::kAuto: the planner must pick some plan
  // whose answers agree with every forced algorithm.
  SimilarityEngine engine(testutil::Stocks(40, 128, 39));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(128, 5, 10);
  spec.epsilon = 2.0;
  const auto planned = engine.Execute(spec);
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->trace().planner.planned);
  EXPECT_NE(planned->trace().planner.chosen_candidate(), nullptr);
  const auto forced =
      engine.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  ASSERT_TRUE(forced.ok());
  EXPECT_FALSE(forced->trace().planner.planned);
  EXPECT_EQ(planned->range()->matches.size(),
            forced->range()->matches.size());
}

TEST(SimilarityEngineTest, InsertAndRemoveSequences) {
  SimilarityEngine engine(testutil::Stocks(40, 128, 37));
  const std::size_t before = engine.size();

  // Insert a near-copy of stock 0; it must be findable immediately.
  ts::Series clone = ts::Denormalize(engine.dataset().normal(0));
  clone[5] += 0.01;
  const auto id = engine.Insert(clone);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.size(), before + 1);

  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = {transform::SpectralTransform::Identity(128)};
  spec.epsilon = 1.0;
  auto found = engine.Execute(spec);
  ASSERT_TRUE(found.ok());
  bool has_clone = false;
  for (const Match& m : found->range()->matches) {
    if (m.series_id == *id) has_clone = true;
  }
  EXPECT_TRUE(has_clone);

  // Remove it: gone from every algorithm, and the index stays sound.
  ASSERT_TRUE(engine.Remove(*id).ok());
  EXPECT_EQ(engine.size(), before);
  EXPECT_TRUE(engine.index().tree().CheckInvariants().ok());
  for (Algorithm algorithm : {Algorithm::kSequentialScan, Algorithm::kStIndex,
                              Algorithm::kMtIndex}) {
    auto result = engine.Execute(spec, {.planner = {.algorithm = algorithm}});
    ASSERT_TRUE(result.ok());
    for (const Match& m : result->range()->matches) {
      EXPECT_NE(m.series_id, *id) << AlgorithmName(algorithm);
    }
  }
  // Brute force agrees after mutations (indexed vs scan still equivalent).
  const auto expected = BruteForceRangeQuery(engine.dataset(), spec);
  auto mt = engine.Execute(spec);
  ASSERT_TRUE(mt.ok());
  EXPECT_EQ(mt->range()->matches.size(), expected.size());

  // Double-remove and bad ids are NotFound; wrong length rejected.
  EXPECT_EQ(engine.Remove(*id).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Remove(99999).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Insert(ts::Series(3, 0.0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimilarityEngineTest, ManyInsertionsAndRemovalsStaySound) {
  SimilarityEngine engine(testutil::RandomWalks(30, 64, 38));
  Rng rng(38);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < engine.size(); ++i) live.push_back(i);
  for (int round = 0; round < 60; ++round) {
    if (rng.Bernoulli(0.5) || live.size() < 5) {
      ts::Series s(64);
      double v = 0.0;
      for (double& x : s) {
        v += rng.Uniform(-1.0, 1.0);
        x = v;
      }
      const auto id = engine.Insert(s);
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      ASSERT_TRUE(engine.Remove(live[pick]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(engine.size(), live.size());
  ASSERT_TRUE(engine.index().tree().CheckInvariants().ok());
  // Queries still exact after heavy churn.
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(live.front()));
  spec.transforms = transform::MovingAverageRange(64, 1, 6);
  spec.epsilon = 2.0;
  const auto expected = BruteForceRangeQuery(engine.dataset(), spec);
  auto mt = engine.Execute(spec);
  auto seq = engine.Execute(spec, {.planner = {.algorithm = Algorithm::kSequentialScan}});
  ASSERT_TRUE(mt.ok());
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(mt->range()->matches.size(), expected.size());
  EXPECT_EQ(seq->range()->matches.size(), expected.size());
}

TEST(SimilarityEngineTest, BufferPoolPreservesAnswersAndCutsPhysicalReads) {
  SimilarityEngine engine(testutil::Stocks(120, 128, 36));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(4));
  spec.transforms = transform::MovingAverageRange(128, 5, 20);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);
  const ExecOptions st{.planner = {.algorithm = Algorithm::kStIndex}};

  // Cold baseline: physical reads over two ST queries.
  engine.ResetIoStats();
  const auto cold_a = engine.Execute(spec, st);
  ASSERT_TRUE(cold_a.ok());
  const std::uint64_t cold_reads = engine.index().index_io().reads;
  EXPECT_EQ(engine.index_buffer_pool(), nullptr);

  // Warm: a pool big enough for the whole tree.
  engine.EnableIndexBufferPool(256);
  ASSERT_NE(engine.index_buffer_pool(), nullptr);
  engine.ResetIoStats();
  const auto warm_a = engine.Execute(spec, st);
  const auto warm_b = engine.Execute(spec, st);
  ASSERT_TRUE(warm_a.ok());
  ASSERT_TRUE(warm_b.ok());
  const std::uint64_t warm_reads = engine.index().index_io().reads;

  // Same answers, far fewer physical reads (two queries vs. one cold one).
  EXPECT_EQ(warm_a->range()->matches.size(), cold_a->range()->matches.size());
  EXPECT_EQ(warm_b->range()->matches.size(), cold_a->range()->matches.size());
  EXPECT_LT(warm_reads, cold_reads);
  // Logical accounting unchanged by the pool.
  EXPECT_EQ(warm_a->stats().index_nodes_accessed,
            cold_a->stats().index_nodes_accessed);

  engine.EnableIndexBufferPool(0);
  engine.ResetIoStats();
  const auto detached = engine.Execute(spec, st);
  ASSERT_TRUE(detached.ok());
  EXPECT_EQ(engine.index().index_io().reads,
            detached->stats().index_nodes_accessed);
}

TEST(SimilarityEngineTest, ResetIoStats) {
  SimilarityEngine engine(testutil::RandomWalks(40, 64, 35));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(64, 1, 4);
  spec.epsilon = 3.0;
  ASSERT_TRUE(engine.Execute(spec).ok());
  engine.ResetIoStats();
  EXPECT_EQ(engine.dataset().record_io().reads, 0u);
  EXPECT_EQ(engine.index().index_io().reads, 0u);
}

}  // namespace
}  // namespace tsq::core
