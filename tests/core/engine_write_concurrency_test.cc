// Snapshot-isolation hammer: reader threads Execute() continuously while a
// writer thread commits Insert/Remove. Functionally every query must
// succeed (writes are invisible until committed, so no torn state can leak
// out as an error or a wrong result); under TSAN (scripts/
// tsan_write_tests.sh) the same schedule must also be race-free.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/oracle.h"
#include "transform/builders.h"
#include "ts/generate.h"

namespace tsq::core {
namespace {

RangeQuerySpec MakeSpec(const ts::Series& query) {
  RangeQuerySpec spec;
  spec.query = query;
  spec.transforms = transform::MovingAverageRange(16, 1, 5);
  spec.epsilon = 1.5;
  return spec;
}

// Final-state audit shared by both hammers: the index holds exactly one
// entry per live sequence and the indexed result matches the brute-force
// oracle.
void ExpectFinalConsistency(SimilarityEngine& engine,
                            const RangeQuerySpec& spec) {
  EXPECT_EQ(engine.index().tree().size(), engine.size());
  const testing::Oracle oracle(engine.dataset());
  const std::vector<Match> expected = oracle.Range(spec);
  ExecOptions options;
  options.planner.algorithm = Algorithm::kMtIndex;
  const auto result = engine.Execute(spec, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<Match> got = result->range()->matches;
  SortMatches(&got);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].series_id, expected[i].series_id);
  }
}

TEST(EngineWriteConcurrencyTest, EightExecutorsRaceAContinuousWriter) {
  const std::vector<ts::Series> series = testutil::Stocks(24, 16, 3);
  SimilarityEngine engine(series);
  engine.EnableIndexBufferPool(8, 2);
  const RangeQuerySpec spec = MakeSpec(series[0]);

  constexpr int kReaders = 8;
  constexpr int kQueriesPerReader = 25;
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::kSequentialScan, Algorithm::kStIndex, Algorithm::kMtIndex,
      Algorithm::kAuto};

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> query_failures{0};
  std::atomic<std::size_t> version_regressions{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_version = 0;
      for (int q = 0; q < kQueriesPerReader; ++q) {
        ExecOptions options;
        options.planner.algorithm = kAlgorithms[(r + q) % 4];
        options.num_threads = 1 + static_cast<std::size_t>(r % 2) * 3;
        const auto result = engine.Execute(spec, options);
        if (!result.ok()) {
          ++query_failures;
          continue;
        }
        // Snapshot versions are monotone per thread: a later pin can never
        // observe an earlier write state.
        const std::uint64_t version = result->trace().snapshot_version;
        if (version < last_version) ++version_regressions;
        last_version = version;
      }
    });
  }

  // The writer: alternate inserting a fresh walk and removing the
  // previously inserted one, so both write paths run continuously and the
  // dataset stays near its original size.
  std::size_t writes = 0;
  std::thread writer([&] {
    Rng rng(77);
    std::size_t pending = SIZE_MAX;  // last inserted, not yet removed
    while (!stop.load(std::memory_order_relaxed)) {
      if (pending == SIZE_MAX) {
        const auto id = engine.Insert(ts::GenerateRandomWalk(16, 500.0, rng));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        pending = *id;
      } else {
        ASSERT_TRUE(engine.Remove(pending).ok());
        pending = SIZE_MAX;
      }
      ++writes;
      std::this_thread::yield();
    }
  });

  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(query_failures.load(), 0u);
  EXPECT_EQ(version_regressions.load(), 0u);
  EXPECT_GT(writes, 0u);
  EXPECT_EQ(engine.write_version(), writes);
  ExpectFinalConsistency(engine, spec);
  engine.EnableIndexBufferPool(0);
}

TEST(EngineWriteConcurrencyTest, SaveToAndConfigRaceTheWriter) {
  // Persistence pins a read snapshot and configuration takes the write
  // lock; both must interleave cleanly with a writer and with queries.
  const std::vector<ts::Series> series = testutil::Stocks(20, 16, 5);
  SimilarityEngine engine(series);
  const RangeQuerySpec spec = MakeSpec(series[1]);
  const std::string prefix =
      ::testing::TempDir() + "/engine_write_concurrency";

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(31);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto id = engine.Insert(ts::GenerateRandomWalk(16, 500.0, rng));
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(engine.Remove(*id).ok());
      std::this_thread::yield();
    }
  });
  std::thread querier([&] {
    for (int q = 0; q < 40; ++q) {
      ExecOptions options;
      options.planner.algorithm = Algorithm::kAuto;
      const auto result = engine.Execute(spec, options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
  });
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(engine.SaveTo(prefix).ok());
    engine.EnableIndexBufferPool(i % 2 == 0 ? 8 : 0, 2);
  }
  querier.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  engine.EnableIndexBufferPool(0);

  // The last save is loadable and internally consistent (it captured some
  // committed prefix of the write history).
  const auto loaded = SimilarityEngine::LoadFrom(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->index().tree().size(), (*loaded)->size());
  ExpectFinalConsistency(engine, spec);
}

}  // namespace
}  // namespace tsq::core
