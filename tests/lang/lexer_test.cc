#include "lang/lexer.h"

#include "gtest/gtest.h"

namespace tsq::lang {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  const auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAreLowercased) {
  const auto tokens = Tokenize("FIND Similar tO");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].text, "find");
  EXPECT_EQ((*tokens)[1].text, "similar");
  EXPECT_EQ((*tokens)[2].text, "to");
}

TEST(LexerTest, NumbersIncludingNegativeAndDecimal) {
  const auto tokens = Tokenize("0.96 -2.5 42 1e3");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 0.96);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, -2.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 42.0);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 1000.0);
}

TEST(LexerTest, RangeDotsDoNotEatDecimals) {
  // "1..40" must tokenize as number, '..', number — not "1." then ".40".
  const auto tokens = Tokenize("mv(1..40)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kLParen, TokenKind::kNumber,
                TokenKind::kDotDot, TokenKind::kNumber, TokenKind::kRParen,
                TokenKind::kEnd}));
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 1.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 40.0);
}

TEST(LexerTest, RangeWithDecimalBoundsAndStep) {
  const auto tokens = Tokenize("ema(0.1..0.9:0.2)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kLParen, TokenKind::kNumber,
                TokenKind::kDotDot, TokenKind::kNumber, TokenKind::kColon,
                TokenKind::kNumber, TokenKind::kRParen, TokenKind::kEnd}));
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.1);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 0.9);
  EXPECT_DOUBLE_EQ((*tokens)[6].number, 0.2);
}

TEST(LexerTest, PositionsRecorded) {
  const auto tokens = Tokenize("find  pairs");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 6u);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  const auto tokens = Tokenize("find @ pairs");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(tokens.status().message().find("position 5"), std::string::npos);
}

TEST(LexerTest, UnderscoreIdentifiers) {
  const auto tokens = Tokenize("per_mbr 8");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "per_mbr");
}

}  // namespace
}  // namespace tsq::lang
