// Lang round-trip: every query the workload generator emits as text must
// parse + compile into exactly the spec it built programmatically — same
// transforms (multiplier for multiplier), same thresholds, same options —
// and execute identically. This pins the generator, the grammar and the
// compiler to one another.

#include <complex>
#include <cstddef>
#include <variant>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "lang/compiler.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/workload_generator.h"

namespace tsq::lang {
namespace {

using tsq::testing::Oracle;
using tsq::testing::WorkloadCase;
using tsq::testing::WorkloadGenerator;

void ExpectSameTransforms(
    const std::vector<transform::SpectralTransform>& expected,
    const std::vector<transform::SpectralTransform>& got,
    const std::string& text) {
  ASSERT_EQ(expected.size(), got.size()) << text;
  for (std::size_t t = 0; t < expected.size(); ++t) {
    ASSERT_EQ(expected[t].length(), got[t].length()) << text;
    for (std::size_t f = 0; f < expected[t].length(); ++f) {
      // Exact: the generator mirrors the compiler's expansion arithmetic.
      ASSERT_EQ(expected[t].multiplier(f), got[t].multiplier(f))
          << text << " (transform " << t << ", frequency " << f << ")";
    }
  }
}

void ExpectSameQuery(const ts::Series& expected, const ts::Series& got,
                     const std::string& text) {
  ASSERT_EQ(expected.size(), got.size()) << text;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], got[i]) << text << " (sample " << i << ")";
  }
}

void ExpectSameSpec(const core::QuerySpec& expected,
                    const core::QuerySpec& got, const std::string& text) {
  ASSERT_EQ(expected.index(), got.index()) << text;
  if (const auto* range = std::get_if<core::RangeQuerySpec>(&expected)) {
    const auto& compiled = std::get<core::RangeQuerySpec>(got);
    ExpectSameQuery(range->query, compiled.query, text);
    EXPECT_EQ(range->epsilon, compiled.epsilon) << text;
    ExpectSameTransforms(range->transforms, compiled.transforms, text);
    EXPECT_EQ(range->partition, compiled.partition) << text;
    EXPECT_EQ(range->use_ordering, compiled.use_ordering) << text;
    EXPECT_EQ(range->target, compiled.target) << text;
    ASSERT_EQ(range->query_transform.has_value(),
              compiled.query_transform.has_value())
        << text;
    if (range->query_transform.has_value()) {
      ExpectSameTransforms({*range->query_transform},
                           {*compiled.query_transform}, text);
    }
  } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&expected)) {
    const auto& compiled = std::get<core::KnnQuerySpec>(got);
    ExpectSameQuery(knn->query, compiled.query, text);
    EXPECT_EQ(knn->k, compiled.k) << text;
    ExpectSameTransforms(knn->transforms, compiled.transforms, text);
    EXPECT_EQ(knn->partition, compiled.partition) << text;
    EXPECT_EQ(knn->target, compiled.target) << text;
    ASSERT_EQ(knn->query_transform.has_value(),
              compiled.query_transform.has_value())
        << text;
    if (knn->query_transform.has_value()) {
      ExpectSameTransforms({*knn->query_transform},
                           {*compiled.query_transform}, text);
    }
  } else {
    const auto& join = std::get<core::JoinQuerySpec>(expected);
    const auto& compiled = std::get<core::JoinQuerySpec>(got);
    EXPECT_EQ(join.mode, compiled.mode) << text;
    EXPECT_EQ(join.min_correlation, compiled.min_correlation) << text;
    EXPECT_EQ(join.epsilon, compiled.epsilon) << text;
    ExpectSameTransforms(join.transforms, compiled.transforms, text);
    EXPECT_EQ(join.partition, compiled.partition) << text;
  }
}

TEST(LangRoundTripTest, GeneratedTextCompilesToTheGeneratedSpec) {
  // >= 100 seeds, one case of each query kind per seed.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    WorkloadGenerator generator(seed);
    core::SimilarityEngine engine(generator.MakeSeries());
    const Oracle oracle(engine.dataset());
    for (std::size_t index = 0; index < 3; ++index) {
      const WorkloadCase work = generator.MakeCase(index, engine, oracle);
      const auto compiled = CompileQuery(work.lang_text, engine);
      ASSERT_TRUE(compiled.ok())
          << "seed " << seed << " case " << index << ": \"" << work.lang_text
          << "\": " << compiled.status().ToString();
      ExpectSameSpec(work.spec, compiled->spec,
                     "seed " + std::to_string(seed) + " case " +
                         std::to_string(index) + ": " + work.lang_text);
    }
  }
}

TEST(LangRoundTripTest, CompiledTextExecutesIdenticallyToTheSpec) {
  // Execution-level spot check on a seed subset: byte-identical matches.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadGenerator generator(seed);
    core::SimilarityEngine engine(generator.MakeSeries());
    const Oracle oracle(engine.dataset());
    for (std::size_t index = 0; index < 3; ++index) {
      const WorkloadCase work = generator.MakeCase(index, engine, oracle);
      const auto compiled = CompileQuery(work.lang_text, engine);
      ASSERT_TRUE(compiled.ok()) << work.lang_text;

      core::ExecOptions options;
      options.planner.algorithm = core::Algorithm::kSequentialScan;
      const auto from_spec = engine.Execute(work.spec, options);
      const auto from_text = engine.Execute(compiled->spec, options);
      ASSERT_TRUE(from_spec.ok()) << work.lang_text;
      ASSERT_TRUE(from_text.ok()) << work.lang_text;

      if (const auto* range = from_spec->range()) {
        EXPECT_EQ(range->matches, from_text->range()->matches)
            << work.lang_text;
      } else if (const auto* knn = from_spec->knn()) {
        const auto& lhs = knn->matches;
        const auto& rhs = from_text->knn()->matches;
        ASSERT_EQ(lhs.size(), rhs.size()) << work.lang_text;
        for (std::size_t i = 0; i < lhs.size(); ++i) {
          EXPECT_EQ(lhs[i].series_id, rhs[i].series_id) << work.lang_text;
          EXPECT_EQ(lhs[i].distance, rhs[i].distance) << work.lang_text;
        }
      } else {
        EXPECT_EQ(from_spec->join()->matches, from_text->join()->matches)
            << work.lang_text;
      }
    }
  }
}

TEST(LangRoundTripTest, ThresholdPrintingRoundTripsExactDoubles) {
  // %.17g must survive the lexer bit-for-bit, including awkward values.
  core::SimilarityEngine engine(
      WorkloadGenerator(3).MakeSeries());
  const double epsilon = 0.12345678901234567;
  const auto compiled = CompileQuery(
      "find similar to series 0 under mv(1..2) within distance "
      "0.12345678901234567",
      engine);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(std::get<core::RangeQuerySpec>(compiled->spec).epsilon, epsilon);
}

}  // namespace
}  // namespace tsq::lang
