#include "lang/parser.h"

#include "gtest/gtest.h"

namespace tsq::lang {
namespace {

TEST(ParserTest, RangeQueryBasics) {
  const auto q =
      Parse("find similar to series 17 under mv(1..40) within correlation "
            "0.96");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, QueryKind::kRange);
  EXPECT_EQ(q->series_id, 17u);
  ASSERT_EQ(q->pipelines.size(), 1u);
  ASSERT_EQ(q->pipelines[0].size(), 1u);
  EXPECT_EQ(q->pipelines[0][0].name, "mv");
  ASSERT_EQ(q->pipelines[0][0].args.size(), 1u);
  EXPECT_TRUE(q->pipelines[0][0].args[0].is_range);
  EXPECT_DOUBLE_EQ(q->pipelines[0][0].args[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(q->pipelines[0][0].args[0].hi, 40.0);
  EXPECT_EQ(q->threshold, ThresholdKind::kCorrelation);
  EXPECT_DOUBLE_EQ(q->threshold_value, 0.96);
  EXPECT_EQ(q->algorithm, AlgorithmChoice::kDefault);
}

TEST(ParserTest, KnnQuery) {
  const auto q = Parse("find 5 nearest to series 3 under momentum");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, QueryKind::kKnn);
  EXPECT_EQ(q->k, 5u);
  EXPECT_EQ(q->series_id, 3u);
  EXPECT_TRUE(q->pipelines[0][0].args.empty());
}

TEST(ParserTest, JoinQuery) {
  const auto q =
      Parse("find pairs under mv(5..14) within correlation 0.99 using st");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, QueryKind::kJoin);
  EXPECT_EQ(q->algorithm, AlgorithmChoice::kSt);
}

TEST(ParserTest, ThenPipelinesAndUnions) {
  const auto q = Parse(
      "find similar to series 0 under momentum then shift(0..10), invert "
      "within distance 2.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->pipelines.size(), 2u);
  ASSERT_EQ(q->pipelines[0].size(), 2u);
  EXPECT_EQ(q->pipelines[0][0].name, "momentum");
  EXPECT_EQ(q->pipelines[0][1].name, "shift");
  EXPECT_EQ(q->pipelines[1][0].name, "invert");
  EXPECT_EQ(q->threshold, ThresholdKind::kDistance);
}

TEST(ParserTest, OptionsInAnyOrder) {
  const auto q = Parse(
      "find similar to series 2 under scale(2..100) ordered using scan "
      "within distance 40 apply both per_mbr 8");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->ordered);
  EXPECT_EQ(q->algorithm, AlgorithmChoice::kScan);
  EXPECT_EQ(q->apply, ApplyChoice::kBoth);
  EXPECT_EQ(q->grouping, GroupingChoice::kPerMbr);
  EXPECT_EQ(q->grouping_value, 8u);
}

TEST(ParserTest, RangeStepArgument) {
  const auto q = Parse(
      "find similar to series 1 under scale(2..100:5) within distance 1");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->pipelines[0][0].args[0].step, 5.0);
}

TEST(ParserTest, ClusteredGrouping) {
  const auto q = Parse(
      "find similar to series 1 under mv(6..29), invert then mv(6..29) "
      "within correlation 0.96 clustered");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->grouping, GroupingChoice::kClustered);
}

TEST(ParserTest, ErrorsCarryPositions) {
  const auto missing_under = Parse("find similar to series 1 mv(3)");
  ASSERT_FALSE(missing_under.ok());
  EXPECT_NE(missing_under.status().message().find("expected 'under'"),
            std::string::npos);

  const auto bad_threshold =
      Parse("find similar to series 1 under mv(3) within banana 3");
  ASSERT_FALSE(bad_threshold.ok());
  EXPECT_NE(bad_threshold.status().message().find("DISTANCE or CORRELATION"),
            std::string::npos);

  const auto no_threshold = Parse("find similar to series 1 under mv(3)");
  ASSERT_FALSE(no_threshold.ok());
  EXPECT_NE(no_threshold.status().message().find("WITHIN"),
            std::string::npos);

  const auto trailing =
      Parse("find similar to series 1 under mv(3) within distance 1 banana");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("trailing"), std::string::npos);
}

TEST(ParserTest, KnnNeedsNoThreshold) {
  EXPECT_TRUE(Parse("find 3 nearest to series 0 under mv(1..5)").ok());
}

TEST(ParserTest, RejectsInvertedRanges) {
  const auto q =
      Parse("find similar to series 1 under mv(10..5) within distance 1");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("upper bound"), std::string::npos);
}

TEST(ParserTest, RejectsZeroK) {
  EXPECT_FALSE(Parse("find 0 nearest to series 1 under mv(2)").ok());
}

}  // namespace
}  // namespace tsq::lang
