#include "lang/compiler.h"

#include "../core/test_util.h"
#include "core/range_query.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::lang {
namespace {

core::SimilarityEngine MakeEngine() {
  return core::SimilarityEngine(core::testutil::Stocks(60, 128, 50));
}

TEST(ExpandPipelinesTest, RangesAndLabels) {
  Pipeline pipeline = {Factor{"mv", {Arg{5.0, 8.0, 1.0, true}}, 0}};
  const auto transforms = ExpandPipelines({pipeline}, 128);
  ASSERT_TRUE(transforms.ok()) << transforms.status().ToString();
  ASSERT_EQ(transforms->size(), 4u);
  EXPECT_EQ((*transforms)[0].label(), "mv5");
  EXPECT_EQ((*transforms)[3].label(), "mv8");
}

TEST(ExpandPipelinesTest, ThenComposesEveryPair) {
  Pipeline pipeline = {Factor{"momentum", {}, 0},
                       Factor{"shift", {Arg{0.0, 2.0, 1.0, true}}, 0}};
  const auto transforms = ExpandPipelines({pipeline}, 64);
  ASSERT_TRUE(transforms.ok());
  EXPECT_EQ(transforms->size(), 3u);  // 1 momentum x 3 shifts
}

TEST(ExpandPipelinesTest, AllBuiltinsResolve) {
  for (const char* text :
       {"mv(3)", "ma(3)", "lwma(4)", "ema(0.3)", "momentum", "momentum(2)",
        "shift(5)", "shift(-2)", "pshift(1)", "scale(2.5)", "invert",
        "identity", "band(1, 8)", "diff2"}) {
    Result<ParsedQuery> q = Parse(std::string("find similar to series 0 "
                                              "under ") +
                                  text + " within distance 1");
    ASSERT_TRUE(q.ok()) << text;
    const auto transforms = ExpandPipelines(q->pipelines, 64);
    EXPECT_TRUE(transforms.ok()) << text << ": "
                                 << transforms.status().ToString();
  }
}

TEST(ExpandPipelinesTest, NegativeShiftWrapsCircularly) {
  Pipeline pipeline = {Factor{"shift", {Arg{-2.0, -2.0, 1.0, false}}, 0}};
  const auto transforms = ExpandPipelines({pipeline}, 64);
  ASSERT_TRUE(transforms.ok());
  EXPECT_EQ((*transforms)[0].label(), "shift62");
}

TEST(ExpandPipelinesTest, Errors) {
  EXPECT_FALSE(ExpandPipelines({{Factor{"nope", {}, 7}}}, 64).ok());
  EXPECT_FALSE(
      ExpandPipelines({{Factor{"mv", {Arg{0.0, 0.0, 1.0, false}}, 0}}}, 64)
          .ok());  // window 0
  EXPECT_FALSE(
      ExpandPipelines({{Factor{"mv", {Arg{2.5, 2.5, 1.0, false}}, 0}}}, 64)
          .ok());  // non-integer window
  EXPECT_FALSE(ExpandPipelines({{Factor{"invert",
                                        {Arg{1.0, 1.0, 1.0, false}},
                                        0}}},
                               64)
                   .ok());  // unexpected arg
}

TEST(CompilerTest, RangeQueryEndToEnd) {
  const auto engine = MakeEngine();
  const auto compiled = CompileQuery(
      "find similar to series 7 under mv(1..40) within correlation 0.96",
      engine);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const auto* spec = std::get_if<core::RangeQuerySpec>(&compiled->spec);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->transforms.size(), 40u);
  EXPECT_NEAR(spec->epsilon,
              ts::CorrelationToDistanceThreshold(0.96, 128), 1e-12);

  // And it runs, agreeing with a hand-built spec.
  const auto via_lang = engine.Execute(*spec, compiled->options);
  ASSERT_TRUE(via_lang.ok());
  core::RangeQuerySpec manual;
  manual.query = ts::Denormalize(engine.dataset().normal(7));
  manual.transforms = transform::MovingAverageRange(128, 1, 40);
  manual.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);
  const auto via_api =
      engine.Execute(manual, {.planner = {.algorithm = core::Algorithm::kMtIndex}});
  ASSERT_TRUE(via_api.ok());
  EXPECT_EQ(via_lang->range()->matches.size(),
            via_api->range()->matches.size());
}

TEST(CompilerTest, KnnQueryEndToEnd) {
  const auto engine = MakeEngine();
  const auto compiled = CompileQuery(
      "find 4 nearest to series 2 under mv(1..10) using scan", engine);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->options.planner.algorithm, core::Algorithm::kSequentialScan);
  const auto* spec = std::get_if<core::KnnQuerySpec>(&compiled->spec);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->k, 4u);
  const auto result = engine.Execute(*spec, compiled->options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->knn()->matches.size(), 4u);
  EXPECT_EQ(result->knn()->matches[0].series_id, 2u);
}

TEST(CompilerTest, JoinQueryEndToEnd) {
  const auto engine = MakeEngine();
  const auto compiled = CompileQuery(
      "find pairs under mv(5..14) within correlation 0.99", engine);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const auto* spec = std::get_if<core::JoinQuerySpec>(&compiled->spec);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->mode, core::JoinMode::kCorrelation);
  EXPECT_TRUE(engine.Execute(*spec, compiled->options).ok());
}

TEST(CompilerTest, GroupingOptions) {
  const auto engine = MakeEngine();
  const auto per_mbr = CompileQuery(
      "find similar to series 0 under mv(6..29) within correlation 0.96 "
      "per_mbr 8",
      engine);
  ASSERT_TRUE(per_mbr.ok());
  EXPECT_EQ(std::get<core::RangeQuerySpec>(per_mbr->spec).partition.size(),
            3u);

  const auto clustered = CompileQuery(
      "find similar to series 0 under mv(6..29), invert then mv(6..29) "
      "within correlation 0.96 clustered",
      engine);
  ASSERT_TRUE(clustered.ok());
  EXPECT_GE(std::get<core::RangeQuerySpec>(clustered->spec).partition.size(),
            2u);
}

TEST(CompilerTest, ApplyDataAndOrdered) {
  const auto engine = MakeEngine();
  const auto data_only = CompileQuery(
      "find similar to series 1 under shift(0..5) within distance 2 apply "
      "data",
      engine);
  ASSERT_TRUE(data_only.ok());
  EXPECT_EQ(std::get<core::RangeQuerySpec>(data_only->spec).target,
            core::TransformTarget::kDataOnly);

  const auto ordered = CompileQuery(
      "find similar to series 1 under scale(2..50) within distance 30 "
      "ordered",
      engine);
  ASSERT_TRUE(ordered.ok());
  EXPECT_TRUE(std::get<core::RangeQuerySpec>(ordered->spec).use_ordering);
}

TEST(CompilerTest, SemanticErrors) {
  const auto engine = MakeEngine();
  EXPECT_EQ(CompileQuery("find similar to series 9999 under mv(3) within "
                         "distance 1",
                         engine)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(CompileQuery("find similar to series 0 under mv(3) within "
                         "correlation 1.5",
                         engine)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CompileQuery("find pairs under mv(3) within correlation 0.9 "
                         "ordered",
                         engine)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CompileQuery("find similar to series 0 under mv(2..4) within "
                         "distance 1 groups 9",
                         engine)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CompilerTest, AllDocumentedExamplesCompile) {
  // Every complete example in docs/QUERY_LANGUAGE.md must compile.
  const auto engine = MakeEngine();
  const char* examples[] = {
      "find similar to series 17 under mv(1..40) within correlation 0.96",
      "find similar to series 3 under mv(6..29), invert then mv(6..29) "
      "within correlation 0.96 clustered",
      "find similar to series 2 under scale(2..100) within distance 40 "
      "ordered using scan",
      "find 5 nearest to series 3 under momentum then shift(-5..5) apply "
      "data",
      "find pairs under mv(5..14) within correlation 0.99 using st",
  };
  for (const char* text : examples) {
    const auto compiled = CompileQuery(text, engine);
    EXPECT_TRUE(compiled.ok())
        << text << ": " << compiled.status().ToString();
  }
}

TEST(CompilerTest, ExecuteRendersJoinSummary) {
  const auto engine = MakeEngine();
  const auto join = CompileQuery(
      "find pairs under mv(5..9) within correlation 0.99", engine);
  ASSERT_TRUE(join.ok());
  const auto rendered = Execute(*join, engine, 5);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("pair match(es)"), std::string::npos);
}

TEST(CompilerTest, ExecuteRendersSummaries) {
  const auto engine = MakeEngine();
  const auto compiled = CompileQuery(
      "find similar to series 7 under mv(1..10) within correlation 0.96",
      engine);
  ASSERT_TRUE(compiled.ok());
  const auto rendered = Execute(*compiled, engine, 3);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("match(es)"), std::string::npos);
  EXPECT_NE(rendered->find("series 7"), std::string::npos);  // self match

  const auto knn = CompileQuery(
      "find 2 nearest to series 0 under identity", engine);
  ASSERT_TRUE(knn.ok());
  const auto knn_text = Execute(*knn, engine);
  ASSERT_TRUE(knn_text.ok());
  EXPECT_NE(knn_text->find("neighbour"), std::string::npos);
}

}  // namespace
}  // namespace tsq::lang
