// Reproduces the *structure* of the paper's motivating examples
// (Section 1) on synthetic analogues of the dead stock-data archive: the
// point of each example is which transformation reveals the hidden
// similarity, not the exact closing prices.

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/normal_form.h"
#include "ts/ops.h"

namespace tsq {
namespace {

// Two "volume index" analogues (COMPV / NYV): the same slow trend observed
// through different scalings plus independent day-to-day noise.
struct VolumePair {
  ts::Series a;
  ts::Series b;
};

VolumePair MakeVolumePair(std::size_t n, double noise, Rng& rng) {
  ts::Series trend(n);
  double level = 0.0;
  for (double& v : trend) {
    level += rng.Uniform(-1.0, 1.0);
    v = level;
  }
  VolumePair pair;
  pair.a.resize(n);
  pair.b.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    pair.a[t] = 40.0 + 3.0 * trend[t] + noise * rng.NextGaussian();
    pair.b[t] = 300.0 + 11.0 * trend[t] + noise * 4.0 * rng.NextGaussian();
  }
  return pair;
}

TEST(Example11Test, MovingAverageRevealsSimilarity) {
  // Example 1.1: raw distance is huge; normalize + m-day MA brings it under
  // the rho = 0.96 threshold (~2.87 for n = 128).
  Rng rng(1999);
  const std::size_t n = 128;
  const VolumePair pair = MakeVolumePair(n, 1.0, rng);

  const double raw = ts::EuclideanDistance(pair.a, pair.b);
  EXPECT_GT(raw, 1000.0);  // like COMPV vs NYV: 2873

  const ts::Series na = ts::Normalize(pair.a).values;
  const ts::Series nb = ts::Normalize(pair.b).values;
  const double normalized = ts::EuclideanDistance(na, nb);
  const double smoothed = ts::EuclideanDistance(
      ts::CircularMovingAverage(na, 9), ts::CircularMovingAverage(nb, 9));
  EXPECT_LT(smoothed, normalized);
  EXPECT_LT(smoothed, 3.0);
}

TEST(Example11Test, ShortestQualifyingMovingAverageExists) {
  // "We are often interested in the shortest moving average" — sweep w and
  // find the first window that crosses the threshold; noisier pairs need
  // longer windows (the 9-day vs 19-day contrast of Fig. 1).
  Rng rng(42);
  const std::size_t n = 128;
  const double threshold = 3.0;
  const VolumePair clean = MakeVolumePair(n, 0.8, rng);
  const VolumePair noisy = MakeVolumePair(n, 2.4, rng);

  const auto shortest_window = [&](const VolumePair& pair) -> std::size_t {
    const ts::Series na = ts::Normalize(pair.a).values;
    const ts::Series nb = ts::Normalize(pair.b).values;
    for (std::size_t w = 1; w <= 40; ++w) {
      const double d = ts::EuclideanDistance(ts::CircularMovingAverage(na, w),
                                             ts::CircularMovingAverage(nb, w));
      if (d < threshold) return w;
    }
    return 0;
  };
  const std::size_t clean_w = shortest_window(clean);
  const std::size_t noisy_w = shortest_window(noisy);
  ASSERT_GT(clean_w, 0u);
  ASSERT_GT(noisy_w, 0u);
  EXPECT_LT(clean_w, noisy_w);
}

TEST(Example12Test, ShiftAlignsOffsetSpikes) {
  // Example 1.2 (PCG vs PCL): two price series whose momenta match except
  // for spikes offset by two days; shifting one momentum two days right
  // roughly halves the distance (13.01 -> 5.65 in the paper).
  Rng rng(94);
  const std::size_t n = 128;
  ts::Series pcg(n), pcl(n);
  double a = 20.0, b = 25.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double shared = 0.2 * rng.NextGaussian();
    a += shared + 0.05 * rng.NextGaussian();
    b += shared + 0.05 * rng.NextGaussian();
    pcg[t] = a;
    pcl[t] = b;
  }
  // Spike in PCG at day 60, in PCL at day 62 (the "February 3 vs 8" gap).
  pcg[60] += 6.0;
  pcl[62] += 6.0;

  const ts::Series momentum_g =
      ts::CircularMomentum(ts::Normalize(pcg).values);
  const ts::Series momentum_l =
      ts::CircularMomentum(ts::Normalize(pcl).values);
  const double unshifted = ts::EuclideanDistance(momentum_g, momentum_l);
  const double shifted = ts::EuclideanDistance(
      ts::CircularShift(momentum_g, 2), momentum_l);
  EXPECT_LT(shifted, 0.6 * unshifted);

  // And the best alignment over shifts 0..10 is exactly 2 days.
  std::size_t best_shift = 0;
  double best = unshifted;
  for (std::size_t s = 0; s <= 10; ++s) {
    const double d = ts::EuclideanDistance(ts::CircularShift(momentum_g, s),
                                           momentum_l);
    if (d < best) {
      best = d;
      best_shift = s;
    }
  }
  EXPECT_EQ(best_shift, 2u);
}

TEST(Example12Test, SpectralPipelineMatchesTimeDomainPipeline) {
  // The composed spectral transform (shift o momentum) must reproduce the
  // time-domain computation of Example 1.2.
  Rng rng(7);
  const std::size_t n = 64;
  ts::Series x(n);
  double level = 0.0;
  for (double& v : x) {
    level += rng.Uniform(-1.0, 1.0);
    v = level;
  }
  const auto momentum = transform::MomentumTransform(n);
  const auto shift = transform::ShiftTransform(n, 2);
  const auto pipeline = shift.Compose(momentum);
  const ts::Series via_spectral = pipeline.ApplyToSeries(x);
  const ts::Series via_time =
      ts::CircularShift(ts::CircularMomentum(x), 2);
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_NEAR(via_spectral[t], via_time[t], 1e-8);
  }
}

TEST(Section32Test, CorrelationThresholdDrivesDistanceThreshold) {
  // The experiments fix rho = 0.96 and derive epsilon via Eq. 9; verify the
  // derived threshold classifies pairs exactly like the correlation itself
  // on normal forms.
  Rng rng(3);
  const std::size_t n = 128;
  const double rho_threshold = 0.96;
  const double eps = ts::CorrelationToDistanceThreshold(rho_threshold, n);
  for (int trial = 0; trial < 100; ++trial) {
    ts::Series x(n), y(n);
    double vx = 0.0, vy = 0.0;
    const double coupling = rng.Uniform(0.0, 1.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double shared = rng.Uniform(-1.0, 1.0);
      vx += shared;
      vy += coupling * shared + (1.0 - coupling) * rng.Uniform(-1.0, 1.0);
      x[t] = vx;
      y[t] = vy;
    }
    const ts::Series nx = ts::Normalize(x).values;
    const ts::Series ny = ts::Normalize(y).values;
    const bool by_rho = ts::CrossCorrelation(nx, ny) > rho_threshold;
    const bool by_distance = ts::EuclideanDistance(nx, ny) < eps;
    EXPECT_EQ(by_rho, by_distance);
  }
}

}  // namespace
}  // namespace tsq
