// Verifies, at moderate scale and across workloads, the quantified claim the
// paper makes in Section 2.1 about the thesis' symmetry-property
// improvement: "using the symmetry property improves the search time of the
// index by more than a factor of 2 without increasing its dimensionality" —
// measured here in the hardware-independent unit (candidates that survive
// the index filter), plus the prerequisite soundness on both layouts.

#include "core/engine.h"
#include "core/range_query.h"
#include "../core/test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

struct FilterMeasurement {
  double candidates = 0.0;
  double disk_accesses = 0.0;
  std::size_t output = 0;
};

FilterMeasurement Measure(const SimilarityEngine& engine,
                          const RangeQuerySpec& base, std::size_t queries) {
  FilterMeasurement m;
  RangeQuerySpec spec = base;
  for (std::size_t q = 0; q < queries; ++q) {
    spec.query = ts::Denormalize(engine.dataset().normal(q * 7 % engine.size()));
    const auto result =
        engine.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
    EXPECT_TRUE(result.ok());
    m.candidates += static_cast<double>(result->stats().candidates);
    m.disk_accesses += static_cast<double>(result->stats().disk_accesses());
    m.output += result->range()->matches.size();
  }
  return m;
}

class SymmetryClaimTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetryClaimTest, DoublingCutsCandidatesWithIdenticalAnswers) {
  const int seed = GetParam();
  const auto series = seed % 2 == 0 ? testutil::Stocks(300, 128, seed)
                                    : testutil::RandomWalks(300, 128, seed);

  SimilarityEngine::Options with, without;
  with.layout.use_symmetry = true;
  without.layout.use_symmetry = false;
  SimilarityEngine engine_with(series, with);
  SimilarityEngine engine_without(series, without);
  // Same dimensionality either way — the improvement is free.
  EXPECT_EQ(engine_with.index().tree().dimensions(),
            engine_without.index().tree().dimensions());

  RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(128, 5, 20);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  const FilterMeasurement on = Measure(engine_with, spec, 10);
  const FilterMeasurement off = Measure(engine_without, spec, 10);

  // Identical answer sets (soundness of the doubling)...
  EXPECT_EQ(on.output, off.output);
  // ...with a substantially sharper filter: at least 25% fewer candidates
  // and disk accesses on every workload (typically ~40%, i.e. the claimed
  // ~2x fewer false positives among non-answers).
  EXPECT_LT(on.candidates, 0.75 * off.candidates) << "seed " << seed;
  EXPECT_LT(on.disk_accesses, 0.75 * off.disk_accesses) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Workloads, SymmetryClaimTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tsq::core
