// A full-system scenario: generate a market, run language-level queries,
// mutate the data set, persist, reload, and keep querying — the lifecycle a
// downstream user would exercise.

#include <cstdio>
#include <fstream>

#include "../core/test_util.h"
#include "core/engine.h"
#include "core/range_query.h"
#include "gtest/gtest.h"
#include "lang/compiler.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/io.h"

namespace tsq {
namespace {

class GrandTourTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* suffix : {".meta", ".records", ".index"}) {
      std::remove((prefix_ + suffix).c_str());
    }
    std::remove(csv_.c_str());
  }
  std::string prefix_ = ::testing::TempDir() + "/tsq_tour";
  std::string csv_ = ::testing::TempDir() + "/tsq_tour.csv";
};

TEST_F(GrandTourTest, FullLifecycle) {
  // 1. Data arrives as a CSV (round-trip through the I/O layer).
  const auto generated = core::testutil::Stocks(150, 128, 70);
  ASSERT_TRUE(ts::WriteCsv(csv_, generated).ok());
  auto loaded_csv = ts::ReadCsv(csv_);
  ASSERT_TRUE(loaded_csv.ok());
  core::SimilarityEngine engine(std::move(*loaded_csv));
  ASSERT_EQ(engine.size(), 150u);

  // 2. Language-level range query; cross-check against the API.
  const auto range = lang::CompileQuery(
      "find similar to series 12 under mv(1..25) within correlation 0.96",
      engine);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  const auto& spec = std::get<core::RangeQuerySpec>(range->spec);
  const auto lang_result = engine.Execute(spec, range->options);
  ASSERT_TRUE(lang_result.ok());
  const auto brute = core::BruteForceRangeQuery(engine.dataset(), spec);
  EXPECT_EQ(lang_result->range()->matches.size(), brute.size());

  // 3. Mutations: drop the best non-self match, insert a fresh series.
  std::size_t victim = SIZE_MAX;
  for (const core::Match& m : lang_result->range()->matches) {
    if (m.series_id != 12) {
      victim = m.series_id;
      break;
    }
  }
  if (victim != SIZE_MAX) {
    ASSERT_TRUE(engine.Remove(victim).ok());
  }
  const auto inserted =
      engine.Insert(core::testutil::Stocks(1, 128, 71)[0]);
  ASSERT_TRUE(inserted.ok());

  // 4. Persist, reload, and verify the language query still compiles and
  // returns brute-force-exact answers on the mutated relation.
  ASSERT_TRUE(engine.SaveTo(prefix_).ok());
  auto reopened = core::SimilarityEngine::LoadFrom(prefix_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), engine.size());

  const auto again = lang::CompileQuery(
      "find similar to series 12 under mv(1..25) within correlation 0.96 "
      "per_mbr 5",
      **reopened);
  ASSERT_TRUE(again.ok());
  const auto& spec2 = std::get<core::RangeQuerySpec>(again->spec);
  const auto reopened_result = (*reopened)->Execute(spec2, again->options);
  ASSERT_TRUE(reopened_result.ok());
  const auto reopened_brute =
      core::BruteForceRangeQuery((*reopened)->dataset(), spec2);
  EXPECT_EQ(reopened_result->range()->matches.size(), reopened_brute.size());
  if (victim != SIZE_MAX) {
    for (const core::Match& m : reopened_result->range()->matches) {
      EXPECT_NE(m.series_id, victim);
    }
  }

  // 5. A join and a k-NN through the language on the reopened engine.
  const auto join = lang::CompileQuery(
      "find pairs under mv(5..10) within correlation 0.99", **reopened);
  ASSERT_TRUE(join.ok());
  EXPECT_TRUE(lang::Execute(*join, **reopened).ok());
  const auto knn = lang::CompileQuery(
      "find 3 nearest to series 12 under mv(1..10)", **reopened);
  ASSERT_TRUE(knn.ok());
  const auto knn_text = lang::Execute(*knn, **reopened);
  ASSERT_TRUE(knn_text.ok());
  EXPECT_NE(knn_text->find("series 12"), std::string::npos);
}

}  // namespace
}  // namespace tsq
