#include "core/engine.h"
#include "core/range_query.h"
#include "../core/test_util.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"

namespace tsq::core {
namespace {

// Randomized cross-algorithm equivalence sweep over mixed transformation
// sets, layouts and partitionings — the paper's Lemma 1 plus our safe query
// region, exercised end to end through the engine facade.
class EndToEndSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndSweepTest, EverythingAgreesWithBruteForce) {
  const int seed = GetParam();
  Rng rng(seed * 7919);
  const std::size_t n = (seed % 2 == 0) ? 128 : 64;
  const std::size_t count = 80 + 10 * (seed % 4);

  SimilarityEngine::Options options;
  options.layout.use_symmetry = seed % 2 == 0;
  options.layout.include_mean_std = seed % 3 != 0;
  options.layout.num_coefficients = 2 + seed % 2;
  SimilarityEngine engine(seed % 2 == 0 ? testutil::Stocks(count, n, seed)
                                        : testutil::RandomWalks(count, n, seed),
                          options);

  // Random mixed transformation set.
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(seed % count));
  for (int i = 0; i < 3 + seed % 4; ++i) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        spec.transforms.push_back(transform::MovingAverageTransform(
            n, 1 + rng.UniformInt(0, static_cast<std::int64_t>(n) / 3)));
        break;
      case 1:
        spec.transforms.push_back(transform::ShiftTransform(
            n, rng.UniformInt(0, static_cast<std::int64_t>(n) - 1)));
        break;
      case 2:
        spec.transforms.push_back(transform::MomentumTransform(n));
        break;
      default:
        spec.transforms.push_back(
            transform::Inverted(transform::MovingAverageTransform(
                n, 1 + rng.UniformInt(0, 20))));
        break;
    }
  }
  spec.epsilon = rng.Uniform(0.5, 6.0);

  const std::vector<Match> expected =
      BruteForceRangeQuery(engine.dataset(), spec);

  auto check = [&](Algorithm algorithm, const transform::Partition& partition) {
    RangeQuerySpec run_spec = spec;
    run_spec.partition = partition;
    auto result = engine.Execute(run_spec, {.planner = {.algorithm = algorithm}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Match> actual = result->range()->matches;
    std::vector<Match> want = expected;
    SortMatches(&actual);
    SortMatches(&want);
    ASSERT_EQ(actual.size(), want.size())
        << AlgorithmName(algorithm) << " seed " << seed;
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].series_id, want[i].series_id);
      EXPECT_EQ(actual[i].transform_index, want[i].transform_index);
    }
  };

  check(Algorithm::kSequentialScan, {});
  check(Algorithm::kStIndex, {});
  check(Algorithm::kMtIndex, {});
  check(Algorithm::kMtIndex,
        transform::PartitionBySize(spec.transforms.size(), 2));
  check(Algorithm::kMtIndex,
        transform::PartitionByClusters(
            [&] {
              std::vector<transform::FeatureTransform> fts;
              for (const auto& t : spec.transforms) {
                fts.push_back(t.ToFeatureTransform(options.layout));
              }
              return fts;
            }(),
            3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndSweepTest,
                         ::testing::Range(1, 11));

TEST(EndToEndTest, TwoClusterWorkloadAllPartitionings) {
  // The Fig. 9 workload shape: MAs plus inverted MAs (two clusters), checked
  // for exactness under every per-MBR packing the figure sweeps.
  const std::size_t n = 128;
  SimilarityEngine engine(testutil::Stocks(120, n, 77));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(3));
  const auto mvs = transform::MovingAverageRange(n, 6, 17);
  spec.transforms = mvs;
  for (const auto& t : mvs) {
    spec.transforms.push_back(transform::Inverted(t));
  }
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);

  const std::vector<Match> expected =
      BruteForceRangeQuery(engine.dataset(), spec);
  for (std::size_t per_group : {1u, 4u, 8u, 12u, 24u}) {
    RangeQuerySpec run_spec = spec;
    run_spec.partition =
        transform::PartitionBySize(spec.transforms.size(), per_group);
    auto result =
        engine.Execute(run_spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->range()->matches.size(), expected.size())
        << "per_group=" << per_group;
  }
}

TEST(EndToEndTest, FilteringActuallyPrunes) {
  // Sanity on the whole pipeline's efficiency claims: MT-index reads far
  // fewer pages than a sequential scan on a selective query over a larger
  // dataset.
  SimilarityEngine engine(testutil::Stocks(600, 128, 88));
  RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = transform::MovingAverageRange(128, 10, 25);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, 128);

  auto seq = engine.Execute(spec, {.planner = {.algorithm = Algorithm::kSequentialScan}});
  auto st = engine.Execute(spec, {.planner = {.algorithm = Algorithm::kStIndex}});
  auto mt = engine.Execute(spec, {.planner = {.algorithm = Algorithm::kMtIndex}});
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(mt.ok());
  EXPECT_EQ(seq->range()->matches.size(), mt->range()->matches.size());
  EXPECT_EQ(st->range()->matches.size(), mt->range()->matches.size());

  // MT: single traversal, fewer total disk accesses than both competitors.
  EXPECT_LT(mt->stats().disk_accesses(), seq->stats().disk_accesses());
  EXPECT_LT(mt->stats().disk_accesses(), st->stats().disk_accesses());
  EXPECT_LT(mt->stats().comparisons, seq->stats().comparisons);
}

TEST(EndToEndTest, CompositionQueryRewriting) {
  // Section 3.3: a query over "s-day shift followed by w-day MA" rewrites to
  // a flat transformation set and must return the same answers as applying
  // the two steps explicitly.
  const std::size_t n = 64;
  SimilarityEngine engine(testutil::Stocks(60, n, 99));
  const auto shifts = transform::ShiftRange(n, 0, 3);
  const auto mvs = transform::MovingAverageRange(n, 2, 4);

  RangeQuerySpec composed;
  composed.query = ts::Denormalize(engine.dataset().normal(7));
  composed.transforms = transform::ComposeSpectralSets(shifts, mvs);
  composed.epsilon = 1.5;
  auto result = engine.Execute(composed, {.planner = {.algorithm = Algorithm::kMtIndex}});
  ASSERT_TRUE(result.ok());

  // Ground truth: apply shift then MA by hand over in-memory data.
  std::vector<Match> expected;
  const ts::NormalForm qn = ts::Normalize(composed.query);
  std::size_t index = 0;
  for (const auto& shift : shifts) {
    for (const auto& mv : mvs) {
      for (std::size_t i = 0; i < engine.size(); ++i) {
        const ts::Series a =
            mv.ApplyToSeries(shift.ApplyToSeries(engine.dataset().normal(i).values));
        const ts::Series b = mv.ApplyToSeries(shift.ApplyToSeries(qn.values));
        const double d = ts::EuclideanDistance(a, b);
        if (d < composed.epsilon) {
          expected.push_back(Match{i, index, d});
        }
      }
      ++index;
    }
  }
  std::vector<Match> actual = result->range()->matches;
  SortMatches(&actual);
  SortMatches(&expected);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].series_id, expected[i].series_id);
    EXPECT_EQ(actual[i].transform_index, expected[i].transform_index);
    EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-6);
  }
}

}  // namespace
}  // namespace tsq::core
