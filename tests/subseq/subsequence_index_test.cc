#include "subseq/subsequence_index.h"

#include <algorithm>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/generate.h"
#include "ts/normal_form.h"
#include "ts/ops.h"

namespace tsq::subseq {
namespace {

ts::Series RandomWalk(std::size_t n, Rng& rng) {
  ts::Series x(n);
  double v = 0.0;
  for (double& value : x) {
    v += rng.Uniform(-1.0, 1.0);
    value = v;
  }
  return x;
}

void ExpectSameMatches(std::vector<SubseqMatch> a,
                       std::vector<SubseqMatch> b) {
  const auto order = [](const SubseqMatch& x, const SubseqMatch& y) {
    if (x.sequence != y.sequence) return x.sequence < y.sequence;
    if (x.offset != y.offset) return x.offset < y.offset;
    return x.transform_index < y.transform_index;
  };
  std::sort(a.begin(), a.end(), order);
  std::sort(b.begin(), b.end(), order);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b[i].sequence) << i;
    EXPECT_EQ(a[i].offset, b[i].offset) << i;
    EXPECT_EQ(a[i].transform_index, b[i].transform_index) << i;
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-6) << i;
  }
}

TEST(SubsequenceIndexTest, RejectsBadInputs) {
  SubsequenceOptions options;
  options.window = 16;
  SubsequenceIndex index(options);
  EXPECT_EQ(index.AddSequence(ts::Series(10, 1.0)).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(index.AddSequence(ts::Series{RandomWalk(
      64, *std::make_unique<Rng>(1))}).ok());
  EXPECT_EQ(index.RangeSearch(ts::Series(8, 0.0), 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index.RangeSearch(ts::Series(16, 0.0), -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SubsequenceIndexTest, FindsPlantedOccurrences) {
  Rng rng(2);
  SubsequenceOptions options;
  options.window = 32;
  SubsequenceIndex index(options);

  // A distinctive pattern planted at known offsets in two sequences.
  const ts::Series pattern = RandomWalk(32, rng);
  ts::Series host_a = RandomWalk(300, rng);
  ts::Series host_b = RandomWalk(200, rng);
  for (std::size_t i = 0; i < 32; ++i) {
    host_a[100 + i] = 5.0 * pattern[i] + 2.0;  // scaled + shifted copy
    host_b[50 + i] = pattern[i];
  }
  ASSERT_TRUE(index.AddSequence(host_a).ok());
  ASSERT_TRUE(index.AddSequence(host_b).ok());
  EXPECT_EQ(index.sequence_count(), 2u);
  EXPECT_EQ(index.window_count(), (300 - 31) + (200 - 31));
  // Sub-trails compress the windows.
  EXPECT_LT(index.subtrail_count(), index.window_count());

  const auto result = index.RangeSearch(pattern, 0.5);
  ASSERT_TRUE(result.ok());
  bool found_a = false, found_b = false;
  for (const SubseqMatch& m : result.value()) {
    if (m.sequence == 0 && m.offset == 100) found_a = true;
    if (m.sequence == 1 && m.offset == 50) found_b = true;
  }
  // Normalized matching is scale/shift invariant: both copies found.
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
}

class SubseqEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SubseqEquivalenceTest, IndexMatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(seed);
  SubsequenceOptions options;
  options.window = 32;
  options.max_subtrail = 16 + seed;
  SubsequenceIndex index(options);
  for (int s = 0; s < 6; ++s) {
    ASSERT_TRUE(
        index.AddSequence(RandomWalk(100 + 40 * s, rng)).ok());
  }
  for (int trial = 0; trial < 5; ++trial) {
    const ts::Series query = RandomWalk(32, rng);
    const double epsilon = rng.Uniform(1.0, 6.0);
    const auto indexed = index.RangeSearch(query, epsilon);
    ASSERT_TRUE(indexed.ok());
    ExpectSameMatches(indexed.value(), index.BruteForce(query, epsilon));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubseqEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SubsequenceIndexTest, TransformedSearchMatchesBruteForce) {
  Rng rng(7);
  SubsequenceOptions options;
  options.window = 32;
  SubsequenceIndex index(options);
  for (int s = 0; s < 5; ++s) {
    ASSERT_TRUE(index.AddSequence(RandomWalk(150, rng)).ok());
  }
  const auto transforms = transform::MovingAverageRange(32, 1, 8);
  for (int trial = 0; trial < 3; ++trial) {
    const ts::Series query = RandomWalk(32, rng);
    const double epsilon = rng.Uniform(1.5, 4.0);
    const auto indexed = index.RangeSearch(query, epsilon, transforms);
    ASSERT_TRUE(indexed.ok());
    ExpectSameMatches(indexed.value(),
                      index.BruteForce(query, epsilon, transforms));
  }
}

TEST(SubsequenceIndexTest, SmoothedPatternFoundViaTransformations) {
  // A noisy copy of the pattern only matches after smoothing — the paper's
  // machinery (MA transformation set) applied at the subsequence level.
  Rng rng(8);
  SubsequenceOptions options;
  options.window = 32;
  SubsequenceIndex index(options);
  const ts::Series pattern = RandomWalk(32, rng);
  ts::Series host = RandomWalk(256, rng);
  for (std::size_t i = 0; i < 32; ++i) {
    host[80 + i] = pattern[i] + 0.35 * rng.NextGaussian();
  }
  ASSERT_TRUE(index.AddSequence(host).ok());

  const double epsilon = 1.4;
  const auto plain = index.RangeSearch(pattern, epsilon);
  ASSERT_TRUE(plain.ok());
  bool plain_found = false;
  for (const SubseqMatch& m : plain.value()) {
    if (m.offset == 80) plain_found = true;
  }

  const auto mas = transform::MovingAverageRange(32, 1, 8);
  const auto smoothed = index.RangeSearch(pattern, epsilon, mas);
  ASSERT_TRUE(smoothed.ok());
  bool smoothed_found = false;
  std::size_t found_window = 0;
  for (const SubseqMatch& m : smoothed.value()) {
    if (m.offset == 80 && m.transform_index > 0) {
      smoothed_found = true;
      found_window = m.transform_index + 1;
    }
  }
  EXPECT_TRUE(smoothed_found) << "no smoothing window rescued the match";
  EXPECT_FALSE(plain_found && smoothed_found && found_window == 0);
}

TEST(SubsequenceIndexTest, StatsAccounting) {
  Rng rng(9);
  SubsequenceOptions options;
  options.window = 32;
  SubsequenceIndex index(options);
  for (int s = 0; s < 8; ++s) {
    ASSERT_TRUE(index.AddSequence(RandomWalk(200, rng)).ok());
  }
  const ts::Series query = RandomWalk(32, rng);
  SubseqStats stats;
  const auto result = index.RangeSearch(query, 2.0, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(stats.index_nodes_accessed, 1u);
  EXPECT_GE(stats.comparisons, stats.candidate_windows);
  // Filtering: candidates far below the total window population.
  EXPECT_LT(stats.candidate_windows, index.window_count());
  EXPECT_GE(stats.candidate_windows, result.value().size());
}

TEST(SubsequenceIndexTest, SequenceExactlyOneWindow) {
  Rng rng(10);
  SubsequenceOptions options;
  options.window = 16;
  SubsequenceIndex index(options);
  const ts::Series only = RandomWalk(16, rng);
  ASSERT_TRUE(index.AddSequence(only).ok());
  EXPECT_EQ(index.window_count(), 1u);
  const auto result = index.RangeSearch(only, 0.1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].offset, 0u);
  EXPECT_NEAR(result.value()[0].distance, 0.0, 1e-6);
}

TEST(SubsequenceIndexTest, ConstantWindowsHandled) {
  SubsequenceOptions options;
  options.window = 8;
  SubsequenceIndex index(options);
  ts::Series flat(64, 3.0);
  ASSERT_TRUE(index.AddSequence(flat).ok());
  // Constant windows normalize to zero; a constant query matches them all
  // at distance 0.
  const auto result = index.RangeSearch(ts::Series(8, 9.0), 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 64u - 8u + 1u);
}

TEST(SubsequenceIndexTest, ShiftTransformsWrapCorrectly) {
  // Pure phase transforms exercise the angle-wrap machinery at the
  // subsequence level; indexed answers must match brute force exactly.
  Rng rng(12);
  SubsequenceOptions options;
  options.window = 32;
  SubsequenceIndex index(options);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(index.AddSequence(RandomWalk(120, rng)).ok());
  }
  std::vector<transform::SpectralTransform> shifts;
  for (std::size_t s : {0u, 1u, 15u, 30u, 31u}) {
    shifts.push_back(transform::ShiftTransform(32, s));
  }
  const ts::Series query = RandomWalk(32, rng);
  const auto indexed = index.RangeSearch(query, 3.0, shifts);
  ASSERT_TRUE(indexed.ok());
  ExpectSameMatches(indexed.value(), index.BruteForce(query, 3.0, shifts));
}

TEST(SubsequenceIndexTest, NoStatsLayoutSupported) {
  Rng rng(13);
  SubsequenceOptions options;
  options.window = 16;
  options.layout.include_mean_std = false;
  options.layout.num_coefficients = 3;
  SubsequenceIndex index(options);
  ASSERT_TRUE(index.AddSequence(RandomWalk(100, rng)).ok());
  EXPECT_EQ(index.tree().dimensions(), 6u);
  const ts::Series query = RandomWalk(16, rng);
  const auto indexed = index.RangeSearch(query, 2.0);
  ASSERT_TRUE(indexed.ok());
  ExpectSameMatches(indexed.value(), index.BruteForce(query, 2.0));
}

TEST(SubsequenceIndexTest, MaxSubtrailCapRespected) {
  Rng rng(11);
  SubsequenceOptions options;
  options.window = 16;
  options.max_subtrail = 4;
  SubsequenceIndex index(options);
  ASSERT_TRUE(index.AddSequence(RandomWalk(200, rng)).ok());
  // 185 windows, at most 4 per sub-trail -> at least 47 sub-trails.
  EXPECT_GE(index.subtrail_count(), 47u);
}

}  // namespace
}  // namespace tsq::subseq
