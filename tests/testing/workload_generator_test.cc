#include "testing/workload_generator.h"

#include <cmath>
#include <set>
#include <variant>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "testing/differential.h"
#include "testing/oracle.h"

namespace tsq::testing {
namespace {

class WorkloadGeneratorTest : public ::testing::Test {
 protected:
  WorkloadGeneratorTest()
      : generator_(11), engine_(generator_.MakeSeries()),
        oracle_(engine_.dataset()) {}

  WorkloadGenerator generator_;
  core::SimilarityEngine engine_;
  Oracle oracle_;
};

TEST_F(WorkloadGeneratorTest, DatasetIsDeterministicInTheSeed) {
  const auto a = WorkloadGenerator(11).MakeSeries();
  const auto b = WorkloadGenerator(11).MakeSeries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // Different seeds vary the recipe (size or length or values).
  const auto c = WorkloadGenerator(12).MakeSeries();
  EXPECT_TRUE(a.size() != c.size() || a[0].size() != c[0].size() ||
              a[0] != c[0]);
}

TEST_F(WorkloadGeneratorTest, CasesAreDeterministicInSeedAndIndex) {
  for (std::size_t index = 0; index < 6; ++index) {
    const WorkloadCase once = generator_.MakeCase(index, engine_, oracle_);
    const WorkloadCase twice = generator_.MakeCase(index, engine_, oracle_);
    EXPECT_EQ(once.lang_text, twice.lang_text);
    EXPECT_EQ(once.description, twice.description);
    EXPECT_EQ(once.spec.index(), twice.spec.index());
  }
}

TEST_F(WorkloadGeneratorTest, CyclesThroughAllThreeQueryKinds) {
  std::set<std::size_t> kinds;
  for (std::size_t index = 0; index < 6; ++index) {
    kinds.insert(generator_.MakeCase(index, engine_, oracle_).spec.index());
  }
  EXPECT_EQ(kinds.size(), 3u);  // range, k-NN and join all appear
}

TEST_F(WorkloadGeneratorTest, RangeThresholdsAreBoundaryFree) {
  // The chosen epsilon must sit in a clean gap of the oracle's distance
  // curve: no candidate distance may be anywhere near the threshold, so
  // engine-vs-oracle floating-point noise cannot flip a match.
  for (std::size_t index = 0; index < 30; index += 3) {
    const WorkloadCase work = generator_.MakeCase(index, engine_, oracle_);
    const auto* spec = std::get_if<core::RangeQuerySpec>(&work.spec);
    ASSERT_NE(spec, nullptr);
    for (const double d : oracle_.RangeDistances(*spec)) {
      EXPECT_GT(std::fabs(d - spec->epsilon), 1e-9 * (1.0 + spec->epsilon))
          << work.lang_text;
    }
  }
}

TEST_F(WorkloadGeneratorTest, OracleAgreesWithSequentialScan) {
  // The oracle is the ground truth of the differential fuzzer; pin it to the
  // engine's sequential scan (no index, no pruning on either side).
  core::ExecOptions options;
  options.planner.algorithm = core::Algorithm::kSequentialScan;
  for (std::size_t index = 0; index < 9; ++index) {
    const WorkloadCase work = generator_.MakeCase(index, engine_, oracle_);
    const auto result = engine_.Execute(work.spec, options);
    ASSERT_TRUE(result.ok()) << work.lang_text;
    if (const auto* spec = std::get_if<core::RangeQuerySpec>(&work.spec)) {
      auto got = result->range()->matches;
      core::SortMatches(&got);
      const auto expected = oracle_.Range(*spec);
      ASSERT_EQ(expected.size(), got.size()) << work.lang_text;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(expected[i].series_id, got[i].series_id) << work.lang_text;
        EXPECT_EQ(expected[i].transform_index, got[i].transform_index)
            << work.lang_text;
        EXPECT_NEAR(expected[i].distance, got[i].distance, 1e-9)
            << work.lang_text;
      }
    } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&work.spec)) {
      const auto expected = oracle_.Knn(*knn);
      const auto& got = result->knn()->matches;
      ASSERT_EQ(expected.size(), got.size()) << work.lang_text;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(expected[i].series_id, got[i].series_id) << work.lang_text;
        EXPECT_NEAR(expected[i].distance, got[i].distance, 1e-9)
            << work.lang_text;
      }
    } else {
      const auto& spec = std::get<core::JoinQuerySpec>(work.spec);
      auto got = result->join()->matches;
      core::SortJoinMatches(&got);
      const auto expected = oracle_.Join(spec);
      ASSERT_EQ(expected.size(), got.size()) << work.lang_text;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(expected[i].a, got[i].a) << work.lang_text;
        EXPECT_EQ(expected[i].b, got[i].b) << work.lang_text;
        EXPECT_EQ(expected[i].transform_index, got[i].transform_index)
            << work.lang_text;
        EXPECT_NEAR(expected[i].value, got[i].value, 1e-9) << work.lang_text;
      }
    }
  }
}

TEST(DifferentialRunnerTest, CleanSweepPassesOnAFreshSeed) {
  DifferentialRunner runner(42);
  DiffConfig config;
  config.with_faults = false;
  for (std::size_t index = 0; index < 3; ++index) {
    const CaseOutcome outcome = runner.RunCase(index, config);
    EXPECT_TRUE(outcome.passed) << outcome.failure;
    EXPECT_EQ(outcome.runs, 24u);  // 4 algorithms x 3 thread counts x 2 pools
    EXPECT_EQ(outcome.fault_runs, 0u);
  }
}

TEST(DifferentialRunnerTest, FaultSweepInjectsAndSurvives) {
  DifferentialRunner runner(43);
  const CaseOutcome outcome = runner.RunCase(0);
  EXPECT_TRUE(outcome.passed) << outcome.failure;
  // 7 policies x 2 configurations.
  EXPECT_EQ(outcome.fault_runs, 14u);
  // At least the fail-nth(1) policies must have surfaced errors; the delay
  // policy never errors.
  EXPECT_GE(outcome.fault_errors, 2u);
  EXPECT_LT(outcome.fault_errors, outcome.fault_runs);
}

}  // namespace
}  // namespace tsq::testing
