#include "storage/buffer_pool.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tsq::storage {
namespace {

Page MakePage(std::uint8_t fill) {
  Page page;
  page.bytes.fill(fill);
  return page;
}

TEST(BufferPoolTest, FirstReadMissesSecondHits) {
  PageFile file;
  const PageId id = file.Allocate();
  ASSERT_TRUE(file.Write(id, MakePage(7)).ok());
  file.ResetStats();

  BufferPool pool(&file, 4);
  Page page;
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(page.bytes[0], 7);
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(file.stats().reads, 1u);  // only the miss touched the file
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  PageFile file;
  for (int i = 0; i < 3; ++i) {
    const PageId id = file.Allocate();
    ASSERT_TRUE(file.Write(id, MakePage(static_cast<std::uint8_t>(i))).ok());
  }
  // One shard: a single global LRU order, so the eviction sequence is exact.
  BufferPool pool(&file, 2, 1);
  Page page;
  ASSERT_TRUE(pool.Read(0, &page).ok());
  ASSERT_TRUE(pool.Read(1, &page).ok());
  ASSERT_TRUE(pool.Read(0, &page).ok());  // 0 becomes MRU
  ASSERT_TRUE(pool.Read(2, &page).ok());  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  // 0 still cached (hit), 1 evicted (miss).
  ASSERT_TRUE(pool.Read(0, &page).ok());
  EXPECT_EQ(pool.stats().hits, 2u);
  ASSERT_TRUE(pool.Read(1, &page).ok());
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPoolTest, WriteThroughUpdatesFileAndCache) {
  PageFile file;
  const PageId id = file.Allocate();
  BufferPool pool(&file, 2);
  ASSERT_TRUE(pool.Write(id, MakePage(9)).ok());
  // The backing file has the data even before any pool read.
  Page direct;
  ASSERT_TRUE(file.Read(id, &direct).ok());
  EXPECT_EQ(direct.bytes[0], 9);
  // And the pool serves it from cache.
  file.ResetStats();
  Page cached;
  ASSERT_TRUE(pool.Read(id, &cached).ok());
  EXPECT_EQ(cached.bytes[0], 9);
  EXPECT_EQ(file.stats().reads, 0u);
}

TEST(BufferPoolTest, ClearDropsCache) {
  PageFile file;
  const PageId id = file.Allocate();
  BufferPool pool(&file, 2);
  Page page;
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.cached_pages(), 1u);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPoolTest, PropagatesReadErrors) {
  PageFile file;
  BufferPool pool(&file, 2);
  Page page;
  EXPECT_EQ(pool.Read(3, &page).code(), StatusCode::kOutOfRange);
}

TEST(BufferPoolTest, CapacityRespected) {
  PageFile file;
  for (int i = 0; i < 10; ++i) file.Allocate();
  BufferPool pool(&file, 3);
  Page page;
  for (PageId id = 0; id < 10; ++id) {
    ASSERT_TRUE(pool.Read(id, &page).ok());
    EXPECT_LE(pool.cached_pages(), 3u);
  }
}

TEST(ShardedBufferPoolTest, ShardCapacitiesSumToTotal) {
  PageFile file;
  file.Allocate();
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{3},
                                     std::size_t{8}, std::size_t{17}}) {
    for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                     std::size_t{4}, std::size_t{64}}) {
      BufferPool pool(&file, capacity, shards);
      EXPECT_GE(pool.shard_count(), 1u);
      EXPECT_LE(pool.shard_count(), capacity);
      std::size_t total = 0;
      for (std::size_t s = 0; s < pool.shard_count(); ++s) {
        EXPECT_GE(pool.shard_capacity(s), 1u);
        total += pool.shard_capacity(s);
      }
      EXPECT_EQ(total, capacity);
    }
  }
}

TEST(ShardedBufferPoolTest, PerShardCapacityEnforced) {
  PageFile file;
  for (int i = 0; i < 64; ++i) file.Allocate();
  BufferPool pool(&file, 8, 4);
  ASSERT_EQ(pool.shard_count(), 4u);
  // Collect three pages that map to the same shard; its capacity is 2, so
  // the third read must evict within that shard even though the pool as a
  // whole is nowhere near full.
  const std::size_t target = pool.ShardOf(0);
  std::vector<PageId> same_shard;
  for (PageId id = 0; id < 64 && same_shard.size() < 3; ++id) {
    if (pool.ShardOf(id) == target) same_shard.push_back(id);
  }
  ASSERT_EQ(same_shard.size(), 3u);
  Page page;
  for (const PageId id : same_shard) {
    ASSERT_TRUE(pool.Read(id, &page).ok());
  }
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.cached_pages(), 2u);
  // The evicted page was the least recently used of that shard.
  ASSERT_TRUE(pool.Read(same_shard[0], &page).ok());
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(ShardedBufferPoolTest, StatsTotalsInvariantAcrossShardCounts) {
  // With capacity >= working set no shard ever evicts, so the aggregated
  // hit/miss totals must be identical whatever the shard count.
  PageFile file;
  constexpr PageId kPages = 16;
  for (PageId id = 0; id < kPages; ++id) {
    file.Allocate();
    ASSERT_TRUE(file.Write(id, MakePage(static_cast<std::uint8_t>(id))).ok());
  }
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    file.ResetStats();
    BufferPool pool(&file, kPages, shards);
    Page page;
    for (int round = 0; round < 3; ++round) {
      for (PageId id = 0; id < kPages; ++id) {
        ASSERT_TRUE(pool.Read(id, &page).ok());
        EXPECT_EQ(page.bytes[0], static_cast<std::uint8_t>(id));
      }
    }
    const BufferPoolStats stats = pool.stats();
    EXPECT_EQ(stats.misses, kPages) << "shards=" << shards;
    EXPECT_EQ(stats.hits, 2u * kPages) << "shards=" << shards;
    EXPECT_EQ(stats.evictions, 0u) << "shards=" << shards;
    EXPECT_EQ(stats.coalesced, 0u) << "shards=" << shards;
    EXPECT_EQ(file.stats().reads, kPages) << "shards=" << shards;
  }
}

TEST(ShardedBufferPoolTest, CoalescesConcurrentMissesOnOnePage) {
  PageFile file;
  const PageId id = file.Allocate();
  ASSERT_TRUE(file.Write(id, MakePage(42)).ok());
  file.ResetStats();
  // A wide read-latency window so every thread arrives while the leader's
  // physical read is still in flight (or after it completed — either way
  // exactly one physical read may happen).
  file.set_read_delay_nanos(5'000'000);  // 5ms

  BufferPool pool(&file, 8, 4);
  constexpr std::size_t kThreads = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Page page;
      if (!pool.Read(id, &page).ok() || page.bytes[0] != 42) {
        bad.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(file.stats().reads, 1u);  // one physical read, not eight
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

TEST(ShardedBufferPoolTest, EightThreadHammerReadsEachPageOnce) {
  // 8 threads x 16 pages, capacity covering everything: coalescing plus
  // caching must keep the physical read count at exactly one per page, and
  // every read must observe the right bytes.
  PageFile file;
  constexpr PageId kPages = 16;
  for (PageId id = 0; id < kPages; ++id) {
    file.Allocate();
    ASSERT_TRUE(file.Write(id, MakePage(static_cast<std::uint8_t>(id))).ok());
  }
  file.ResetStats();
  file.set_read_delay_nanos(100'000);  // 100us to widen the miss window

  BufferPool pool(&file, kPages, 4);
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 4;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Page page;
      for (int round = 0; round < kRounds; ++round) {
        for (PageId i = 0; i < kPages; ++i) {
          const PageId id = (i + static_cast<PageId>(t)) % kPages;
          if (!pool.Read(id, &page).ok() ||
              page.bytes[0] != static_cast<std::uint8_t>(id)) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(file.stats().reads, kPages);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, kPages);
  EXPECT_EQ(stats.hits + stats.coalesced + stats.misses,
            kThreads * kRounds * kPages);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedBufferPoolTest, CoalescedReadersSeeLeaderErrors) {
  PageFile file;
  file.Allocate();
  file.set_read_delay_nanos(1'000'000);  // 1ms
  BufferPool pool(&file, 4, 1);
  constexpr std::size_t kThreads = 4;
  std::atomic<int> out_of_range{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Page page;
      if (pool.Read(77, &page).code() == StatusCode::kOutOfRange) {
        out_of_range.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every reader — leader and coalesced followers alike — gets the error,
  // and the failed page is never admitted to the cache.
  EXPECT_EQ(out_of_range.load(), static_cast<int>(kThreads));
  EXPECT_EQ(pool.cached_pages(), 0u);
}

}  // namespace
}  // namespace tsq::storage
