#include "storage/buffer_pool.h"

#include "gtest/gtest.h"

namespace tsq::storage {
namespace {

Page MakePage(std::uint8_t fill) {
  Page page;
  page.bytes.fill(fill);
  return page;
}

TEST(BufferPoolTest, FirstReadMissesSecondHits) {
  PageFile file;
  const PageId id = file.Allocate();
  ASSERT_TRUE(file.Write(id, MakePage(7)).ok());
  file.ResetStats();

  BufferPool pool(&file, 4);
  Page page;
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(page.bytes[0], 7);
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(file.stats().reads, 1u);  // only the miss touched the file
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  PageFile file;
  for (int i = 0; i < 3; ++i) {
    const PageId id = file.Allocate();
    ASSERT_TRUE(file.Write(id, MakePage(static_cast<std::uint8_t>(i))).ok());
  }
  BufferPool pool(&file, 2);
  Page page;
  ASSERT_TRUE(pool.Read(0, &page).ok());
  ASSERT_TRUE(pool.Read(1, &page).ok());
  ASSERT_TRUE(pool.Read(0, &page).ok());  // 0 becomes MRU
  ASSERT_TRUE(pool.Read(2, &page).ok());  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  // 0 still cached (hit), 1 evicted (miss).
  ASSERT_TRUE(pool.Read(0, &page).ok());
  EXPECT_EQ(pool.stats().hits, 2u);
  ASSERT_TRUE(pool.Read(1, &page).ok());
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPoolTest, WriteThroughUpdatesFileAndCache) {
  PageFile file;
  const PageId id = file.Allocate();
  BufferPool pool(&file, 2);
  ASSERT_TRUE(pool.Write(id, MakePage(9)).ok());
  // The backing file has the data even before any pool read.
  Page direct;
  ASSERT_TRUE(file.Read(id, &direct).ok());
  EXPECT_EQ(direct.bytes[0], 9);
  // And the pool serves it from cache.
  file.ResetStats();
  Page cached;
  ASSERT_TRUE(pool.Read(id, &cached).ok());
  EXPECT_EQ(cached.bytes[0], 9);
  EXPECT_EQ(file.stats().reads, 0u);
}

TEST(BufferPoolTest, ClearDropsCache) {
  PageFile file;
  const PageId id = file.Allocate();
  BufferPool pool(&file, 2);
  Page page;
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.cached_pages(), 1u);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  ASSERT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPoolTest, PropagatesReadErrors) {
  PageFile file;
  BufferPool pool(&file, 2);
  Page page;
  EXPECT_EQ(pool.Read(3, &page).code(), StatusCode::kOutOfRange);
}

TEST(BufferPoolTest, CapacityRespected) {
  PageFile file;
  for (int i = 0; i < 10; ++i) file.Allocate();
  BufferPool pool(&file, 3);
  Page page;
  for (PageId id = 0; id < 10; ++id) {
    ASSERT_TRUE(pool.Read(id, &page).ok());
    EXPECT_LE(pool.cached_pages(), 3u);
  }
}

}  // namespace
}  // namespace tsq::storage
