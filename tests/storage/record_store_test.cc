#include "storage/record_store.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::storage {
namespace {

TEST(RecordStoreTest, SmallRecordRoundTrip) {
  PageFile file;
  RecordStore store(&file);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto id = store.Append(payload);
  ASSERT_TRUE(id.ok());
  const auto read = store.Get(*id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(RecordStoreTest, EmptyRecord) {
  PageFile file;
  RecordStore store(&file);
  const auto id = store.Append(std::vector<std::uint8_t>{});
  ASSERT_TRUE(id.ok());
  const auto read = store.Get(*id);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(RecordStoreTest, ManyRecordsPackIntoPages) {
  PageFile file;
  RecordStore store(&file);
  // 1 KiB records: several fit per 4 KiB page.
  std::vector<RecordId> ids;
  for (int i = 0; i < 12; ++i) {
    std::vector<std::uint8_t> payload(1024, static_cast<std::uint8_t>(i));
    const auto id = store.Append(payload);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_LE(file.page_count(), 5u);  // ~3 KiB of payload per page minimum
  for (int i = 0; i < 12; ++i) {
    const auto read = store.Get(ids[i]);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->size(), 1024u);
    EXPECT_EQ((*read)[0], static_cast<std::uint8_t>(i));
  }
}

TEST(RecordStoreTest, RecordLargerThanPageSpans) {
  PageFile file;
  RecordStore store(&file);
  Rng rng(6);
  std::vector<std::uint8_t> payload(3 * kPageSize + 17);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next64());
  const auto id = store.Append(payload);
  ASSERT_TRUE(id.ok());
  EXPECT_GE(file.page_count(), 4u);
  const auto read = store.Get(*id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(RecordStoreTest, InterleavedSizes) {
  PageFile file;
  RecordStore store(&file);
  Rng rng(7);
  std::vector<std::pair<RecordId, std::vector<std::uint8_t>>> expected;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> payload(rng.UniformInt(0, 6000));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next64());
    const auto id = store.Append(payload);
    ASSERT_TRUE(id.ok());
    expected.emplace_back(*id, std::move(payload));
  }
  EXPECT_EQ(store.record_count(), 100u);
  for (const auto& [id, payload] : expected) {
    const auto read = store.Get(id);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, payload);
  }
}

TEST(RecordStoreTest, SeriesHelpersRoundTrip) {
  PageFile file;
  RecordStore store(&file);
  const ts::Series series = {1.5, -2.25, 3.125, 0.0, 1e100};
  const auto id = store.AppendSeries(series);
  ASSERT_TRUE(id.ok());
  const auto read = store.GetSeries(*id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, series);
}

TEST(RecordStoreTest, GetCountsPageReads) {
  PageFile file;
  RecordStore store(&file);
  const auto small = store.AppendSeries(ts::Series(100, 1.0));  // 800 B
  ASSERT_TRUE(small.ok());
  const auto big = store.AppendSeries(ts::Series(1000, 2.0));  // ~8 KiB
  ASSERT_TRUE(big.ok());
  file.ResetStats();
  ASSERT_TRUE(store.GetSeries(*small).ok());
  const std::uint64_t small_reads = file.stats().reads;
  ASSERT_TRUE(store.GetSeries(*big).ok());
  const std::uint64_t big_reads = file.stats().reads - small_reads;
  EXPECT_EQ(small_reads, 1u);
  EXPECT_GE(big_reads, 2u);  // spans multiple pages
}

TEST(RecordStoreTest, GetRangeMatchesFullGet) {
  PageFile file;
  RecordStore store(&file);
  Rng rng(17);
  // Several records of varied sizes, then random range reads.
  std::vector<std::pair<RecordId, std::vector<std::uint8_t>>> records;
  for (int i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> payload(rng.UniformInt(1, 12000));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next64());
    const auto id = store.Append(payload);
    ASSERT_TRUE(id.ok());
    records.emplace_back(*id, std::move(payload));
  }
  for (const auto& [id, payload] : records) {
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t offset = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(payload.size()) - 1));
      const std::size_t length = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(payload.size() - offset)));
      const auto range = store.GetRange(id, offset, length);
      ASSERT_TRUE(range.ok()) << range.status().ToString();
      ASSERT_EQ(range->size(), length);
      for (std::size_t i = 0; i < length; ++i) {
        ASSERT_EQ((*range)[i], payload[offset + i]);
      }
    }
  }
}

TEST(RecordStoreTest, GetRangeRejectsOverrun) {
  PageFile file;
  RecordStore store(&file);
  const auto id = store.Append(std::vector<std::uint8_t>(100, 1));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.GetRange(*id, 50, 51).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store.GetRange(*id, 101, 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(store.GetRange(*id, 100, 0).ok());
}

TEST(RecordStoreTest, GetRangeReadsFewerPagesThanFullGet) {
  PageFile file;
  RecordStore store(&file);
  const auto id = store.AppendSeries(ts::Series(4000, 1.5));  // ~32 KiB
  ASSERT_TRUE(id.ok());
  file.ResetStats();
  ASSERT_TRUE(store.GetSeries(*id).ok());
  const std::uint64_t full_reads = file.stats().reads;
  file.ResetStats();
  const auto range = store.GetSeriesRange(*id, 2000, 64);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 64u);
  for (double v : *range) EXPECT_EQ(v, 1.5);
  EXPECT_LT(file.stats().reads, full_reads / 2);
}

TEST(RecordStoreTest, CorruptPageSurfacesOnGet) {
  PageFile file;
  RecordStore store(&file);
  const auto id = store.AppendSeries(ts::Series(10, 3.0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(file.CorruptForTesting(id->page, 10).ok());
  EXPECT_EQ(store.GetSeries(*id).status().code(), StatusCode::kCorruption);
}

TEST(RecordStoreTest, GetRejectsBogusOffset) {
  PageFile file;
  RecordStore store(&file);
  ASSERT_TRUE(store.Append(std::vector<std::uint8_t>{1, 2, 3}).ok());
  EXPECT_EQ(store.Get(RecordId{0, kPageSize - 1}).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tsq::storage
