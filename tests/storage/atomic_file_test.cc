#include "storage/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "testing/fault_policy.h"

namespace tsq::storage {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
  }
  // Per-test path: ctest discovers each test as its own process and runs
  // them in parallel, so a shared path would race.
  std::string path_ =
      ::testing::TempDir() + "/tsq_atomic_file_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
};

TEST_F(AtomicFileTest, CommitPublishesExactlyTheAppendedBytes) {
  AtomicFile file(path_);
  ASSERT_TRUE(file.Open().ok());
  ASSERT_TRUE(file.Append(std::string_view("hello ")).ok());
  ASSERT_TRUE(file.Append("world", 5).ok());
  ASSERT_TRUE(file.Commit().ok());
  EXPECT_EQ(ReadAll(path_), "hello world");
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, DigestMatchesDigestFileAfterCommit) {
  AtomicFile file(path_);
  ASSERT_TRUE(file.Open().ok());
  ASSERT_TRUE(file.Append(std::string_view("some checkpoint payload")).ok());
  ASSERT_TRUE(file.Commit().ok());
  const Result<FileDigest> reread = DigestFile(path_);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, file.digest());
  EXPECT_EQ(reread->size, 23u);
}

TEST_F(AtomicFileTest, AbandonedWriterLeavesNoTrace) {
  {
    AtomicFile file(path_);
    ASSERT_TRUE(file.Open().ok());
    ASSERT_TRUE(file.Append(std::string_view("half-written")).ok());
    // destroyed without Commit()
  }
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, CommitOverwritesPreviousContentAtomically) {
  { std::ofstream(path_) << "old content"; }
  AtomicFile file(path_);
  ASSERT_TRUE(file.Open().ok());
  ASSERT_TRUE(file.Append(std::string_view("new")).ok());
  ASSERT_TRUE(file.Commit().ok());
  EXPECT_EQ(ReadAll(path_), "new");
}

TEST_F(AtomicFileTest, InjectedCrashLeavesTargetUntouchedAndTornTmp) {
  { std::ofstream(path_) << "committed"; }
  // Crash at every step up to and including the rename consult (which fires
  // before the rename itself): the published file must keep its old bytes
  // and the torn temp file must survive (a real crash would not clean it up
  // either — recovery has to cope with it).
  for (std::uint64_t step = 1; step <= 4; ++step) {
    testing::CrashPolicy policy(step);
    AtomicFile file(path_, &policy);
    Status status = file.Open();
    if (status.ok()) status = file.Append(std::string_view("replacement"));
    if (status.ok()) status = file.Commit();
    ASSERT_FALSE(status.ok()) << "step " << step;
    EXPECT_EQ(ReadAll(path_), "committed") << "step " << step;
    std::error_code ec;
    std::filesystem::remove(path_ + ".tmp", ec);
  }
  // Crashing right after the rename (dirsync, step 5) must leave the *new*
  // content published.
  testing::CrashPolicy policy(5);
  AtomicFile file(path_, &policy);
  ASSERT_TRUE(file.Open().ok());
  ASSERT_TRUE(file.Append(std::string_view("replacement")).ok());
  ASSERT_FALSE(file.Commit().ok());
  EXPECT_EQ(ReadAll(path_), "replacement");
}

TEST_F(AtomicFileTest, DigestFileMissingFileIsIoError) {
  EXPECT_EQ(DigestFile(path_ + ".does-not-exist").status().code(),
            StatusCode::kIoError);
}

TEST_F(AtomicFileTest, OpenFailsCleanlyInMissingDirectory) {
  AtomicFile file("/nonexistent-dir/tsq/file");
  EXPECT_EQ(file.Open().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tsq::storage
