#include "storage/page_file.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "gtest/gtest.h"
#include "testing/fault_policy.h"

namespace tsq::storage {
namespace {

TEST(PageFileTest, AllocateReturnsSequentialIds) {
  PageFile file;
  EXPECT_EQ(file.Allocate(), 0u);
  EXPECT_EQ(file.Allocate(), 1u);
  EXPECT_EQ(file.Allocate(), 2u);
  EXPECT_EQ(file.page_count(), 3u);
}

TEST(PageFileTest, WriteThenReadRoundTrip) {
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  for (std::size_t i = 0; i < kPageSize; ++i) {
    page.bytes[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(file.Write(id, page).ok());
  Page read;
  ASSERT_TRUE(file.Read(id, &read).ok());
  EXPECT_EQ(read.bytes, page.bytes);
}

TEST(PageFileTest, FreshPageIsZeroed) {
  PageFile file;
  const PageId id = file.Allocate();
  Page read;
  ASSERT_TRUE(file.Read(id, &read).ok());
  for (std::uint8_t b : read.bytes) EXPECT_EQ(b, 0);
}

TEST(PageFileTest, ReadBeyondEndFails) {
  PageFile file;
  file.Allocate();
  Page page;
  EXPECT_EQ(file.Read(5, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file.Write(5, page).code(), StatusCode::kOutOfRange);
}

TEST(PageFileTest, CountsReadsAndWrites) {
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  ASSERT_TRUE(file.Write(id, page).ok());
  ASSERT_TRUE(file.Read(id, &page).ok());
  ASSERT_TRUE(file.Read(id, &page).ok());
  EXPECT_EQ(file.stats().allocations, 1u);
  EXPECT_EQ(file.stats().writes, 1u);
  EXPECT_EQ(file.stats().reads, 2u);
  file.ResetStats();
  EXPECT_EQ(file.stats().reads, 0u);
  EXPECT_EQ(file.stats().writes, 0u);
}

TEST(PageFileTest, SimulatedReadDelaySlowsReads) {
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  // With a 200us delay, 50 reads must take at least 10ms.
  file.set_read_delay_nanos(200000);
  EXPECT_EQ(file.read_delay_nanos(), 200000u);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(file.Read(id, &page).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.010);
  // Disabling restores fast reads (no strict timing assertion needed).
  file.set_read_delay_nanos(0);
  ASSERT_TRUE(file.Read(id, &page).ok());
}

TEST(PageFileTest, DetectsCorruption) {
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  page.bytes[100] = 42;
  ASSERT_TRUE(file.Write(id, page).ok());
  ASSERT_TRUE(file.CorruptForTesting(id, 100).ok());
  Page read;
  EXPECT_EQ(file.Read(id, &read).code(), StatusCode::kCorruption);
}

TEST(PageFileTest, RewriteAfterCorruptionHeals) {
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  ASSERT_TRUE(file.Write(id, page).ok());
  ASSERT_TRUE(file.CorruptForTesting(id, 0).ok());
  // A fresh write recomputes the checksum.
  ASSERT_TRUE(file.Write(id, page).ok());
  Page read;
  EXPECT_TRUE(file.Read(id, &read).ok());
}

class PageFilePersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  // Per-test path: ctest discovers each test as its own process and runs
  // them in parallel, so a shared path would race.
  std::string path_ =
      ::testing::TempDir() + "/tsq_pages_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin";
};

TEST_F(PageFilePersistenceTest, SaveLoadRoundTrip) {
  PageFile file;
  for (int i = 0; i < 5; ++i) {
    const PageId id = file.Allocate();
    Page page;
    for (std::size_t b = 0; b < kPageSize; ++b) {
      page.bytes[b] = static_cast<std::uint8_t>(i * 31 + b);
    }
    ASSERT_TRUE(file.Write(id, page).ok());
  }
  ASSERT_TRUE(file.SaveTo(path_).ok());

  PageFile loaded;
  ASSERT_TRUE(loaded.LoadFrom(path_).ok());
  ASSERT_EQ(loaded.page_count(), 5u);
  for (PageId id = 0; id < 5; ++id) {
    Page original, copy;
    ASSERT_TRUE(file.Read(id, &original).ok());
    ASSERT_TRUE(loaded.Read(id, &copy).ok());
    EXPECT_EQ(original.bytes, copy.bytes);
  }
  // Counters start fresh after a load (minus the reads above).
  loaded.ResetStats();
  EXPECT_EQ(loaded.stats().reads, 0u);
}

TEST_F(PageFilePersistenceTest, EmptyFileRoundTrip) {
  PageFile file;
  ASSERT_TRUE(file.SaveTo(path_).ok());
  PageFile loaded;
  ASSERT_TRUE(loaded.LoadFrom(path_).ok());
  EXPECT_EQ(loaded.page_count(), 0u);
}

TEST_F(PageFilePersistenceTest, RejectsGarbageAndTruncation) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a page file";
  }
  PageFile loaded;
  EXPECT_EQ(loaded.LoadFrom(path_).code(), StatusCode::kCorruption);

  // Valid header claiming more pages than the file holds.
  PageFile file;
  file.Allocate();
  file.Allocate();
  ASSERT_TRUE(file.SaveTo(path_).ok());
  std::error_code ec;
  std::filesystem::resize_file(path_, 16 + kPageSize, ec);
  ASSERT_FALSE(ec);
  EXPECT_EQ(loaded.LoadFrom(path_).code(), StatusCode::kCorruption);

  EXPECT_EQ(loaded.LoadFrom("/nonexistent/nope.bin").code(),
            StatusCode::kIoError);
}

TEST(PageFileTest, FailedIosLeaveCountersUntouched) {
  // Convention: only successful I/Os count. Neither a failed Read
  // (OutOfRange, Corruption) nor a failed Write (OutOfRange) moves the
  // counters.
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  ASSERT_TRUE(file.Write(id, page).ok());
  file.ResetStats();

  EXPECT_EQ(file.Read(99, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file.Write(99, page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file.stats().reads, 0u);
  EXPECT_EQ(file.stats().writes, 0u);

  ASSERT_TRUE(file.CorruptForTesting(id, 5).ok());
  EXPECT_EQ(file.Read(id, &page).code(), StatusCode::kCorruption);
  EXPECT_EQ(file.stats().reads, 0u);

  // A successful read after healing counts exactly once.
  ASSERT_TRUE(file.Write(id, page).ok());
  ASSERT_TRUE(file.Read(id, &page).ok());
  EXPECT_EQ(file.stats().reads, 1u);
  EXPECT_EQ(file.stats().writes, 1u);
}

TEST_F(PageFilePersistenceTest, CorruptionSurvivesSaveAndIsReportedOnLoad) {
  // CorruptForTesting leaves the stored checksum stale; SaveTo persists the
  // checksums, so LoadFrom must flag the corrupted page instead of
  // recomputing a "valid" checksum from the corrupted bytes.
  PageFile file;
  const PageId id = file.Allocate();
  Page page;
  page.bytes[11] = 23;
  ASSERT_TRUE(file.Write(id, page).ok());
  ASSERT_TRUE(file.CorruptForTesting(id, 11).ok());
  ASSERT_TRUE(file.SaveTo(path_).ok());

  PageFile loaded;
  EXPECT_EQ(loaded.LoadFrom(path_).code(), StatusCode::kCorruption);
  EXPECT_EQ(loaded.page_count(), 0u);  // a failed load commits nothing
}

TEST_F(PageFilePersistenceTest, OnDiskCorruptionIsReportedOnLoad) {
  PageFile file;
  for (int i = 0; i < 3; ++i) {
    const PageId id = file.Allocate();
    Page page;
    page.bytes[0] = static_cast<std::uint8_t>(40 + i);
    ASSERT_TRUE(file.Write(id, page).ok());
  }
  ASSERT_TRUE(file.SaveTo(path_).ok());

  // Flip one byte in the middle page's on-disk image (header is
  // magic + count + 3 checksums = 5 * 8 bytes).
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(5 * 8 + kPageSize + 100, std::ios::beg);
    f.put(static_cast<char>(0xEE));
  }
  PageFile loaded;
  const Status status = loaded.LoadFrom(path_);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("page 1"), std::string::npos);

  // An untampered copy still loads and verifies.
  ASSERT_TRUE(file.SaveTo(path_).ok());
  EXPECT_TRUE(loaded.LoadFrom(path_).ok());
  EXPECT_EQ(loaded.page_count(), 3u);
}

TEST_F(PageFilePersistenceTest, RejectsLegacyV1Format) {
  // A v1 file (old magic, no checksum block) cannot be verified; loading it
  // must fail closed rather than re-blessing whatever bytes are present.
  constexpr std::uint64_t kV1Magic = 0x545351504147u;
  const std::uint64_t count = 1;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&kV1Magic), sizeof kV1Magic);
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
    const std::vector<char> zeros(kPageSize, 0);
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  PageFile loaded;
  const Status status = loaded.LoadFrom(path_);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("v1"), std::string::npos);
}

TEST_F(PageFilePersistenceTest, HugePageCountIsCorruptionNotBadAlloc) {
  PageFile file;
  file.Allocate();
  ASSERT_TRUE(file.SaveTo(path_).ok());
  // Patch the header's page count to something no allocator survives; the
  // load must bound it against the file size, not trust it.
  for (const std::uint64_t huge :
       {std::uint64_t{1} << 60, std::uint64_t{0} - 1, std::uint64_t{2}}) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&huge), sizeof huge);
    f.close();
    PageFile loaded;
    EXPECT_EQ(loaded.LoadFrom(path_).code(), StatusCode::kCorruption)
        << "count=" << huge;
  }
}

TEST_F(PageFilePersistenceTest, SaveLeavesOldFileIntactOnInjectedCrash) {
  PageFile first;
  const PageId id = first.Allocate();
  Page page;
  page.bytes[0] = 42;
  ASSERT_TRUE(first.Write(id, page).ok());
  ASSERT_TRUE(first.SaveTo(path_).ok());

  // Crash a bigger save at every write step: the file at `path_` must stay
  // byte-for-byte loadable as the first save's content.
  PageFile second;
  second.Allocate();
  second.Allocate();
  for (std::uint64_t step = 1;; ++step) {
    testing::CrashPolicy policy(step);
    const Status saved = second.SaveTo(path_, &policy);
    PageFile loaded;
    ASSERT_TRUE(loaded.LoadFrom(path_).ok()) << "step " << step;
    if (saved.ok()) {
      EXPECT_EQ(loaded.page_count(), 2u);
      break;
    }
    // Before the rename the old single-page file survives; a crash on the
    // directory sync lands after the rename, so the new file is already
    // (atomically) published. Anything else — a torn or mixed file — fails
    // the LoadFrom above.
    if (loaded.page_count() == 1u) {
      Page check;
      ASSERT_TRUE(loaded.Read(id, &check).ok());
      EXPECT_EQ(check.bytes[0], 42);
    } else {
      EXPECT_EQ(loaded.page_count(), 2u) << "step " << step;
      EXPECT_STREQ(policy.crashed_step().c_str(), "dirsync")
          << "step " << step;
    }
    ASSERT_LT(step, 100u) << "crash sweep did not terminate";
    std::error_code ec;
    std::filesystem::remove(path_ + ".tmp", ec);  // crash debris
  }
}

TEST(PageFileTest, CorruptForTestingValidatesArguments) {
  PageFile file;
  EXPECT_EQ(file.CorruptForTesting(0, 0).code(), StatusCode::kOutOfRange);
  const PageId id = file.Allocate();
  EXPECT_EQ(file.CorruptForTesting(id, kPageSize).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tsq::storage
