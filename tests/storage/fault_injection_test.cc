#include "storage/fault_injection.h"

#include <cstdint>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "testing/fault_policy.h"

namespace tsq::storage {
namespace {

using tsq::testing::FaultPolicy;
using tsq::testing::FaultPolicyConfig;

void FillFile(PageFile* file, std::size_t pages) {
  for (std::size_t i = 0; i < pages; ++i) {
    const PageId id = file->Allocate();
    Page page;
    for (std::size_t b = 0; b < kPageSize; ++b) {
      page.bytes[b] = static_cast<std::uint8_t>(i * 7 + b);
    }
    EXPECT_TRUE(file->Write(id, page).ok());
  }
}

TEST(FaultInjectionTest, FailNthReadUsesChosenCodeAndIsUncounted) {
  PageFile file;
  FillFile(&file, 3);
  file.ResetStats();
  FaultPolicyConfig config;
  config.fail_nth_read = 2;
  config.failure_code = StatusCode::kFailedPrecondition;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);

  Page page;
  EXPECT_TRUE(file.Read(0, &page).ok());
  EXPECT_EQ(file.Read(1, &page).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(file.Read(2, &page).ok());
  // Failed reads never count (same convention as OutOfRange/Corruption).
  EXPECT_EQ(file.stats().reads, 2u);
  EXPECT_EQ(policy.reads_seen(), 3u);
  EXPECT_EQ(policy.faults_injected(), 1u);
  file.SetFaultHook(nullptr);
}

TEST(FaultInjectionTest, FailEveryKthRead) {
  PageFile file;
  FillFile(&file, 1);
  FaultPolicyConfig config;
  config.fail_every_k = 3;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);

  Page page;
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(file.Read(0, &page).ok());
    EXPECT_TRUE(file.Read(0, &page).ok());
    EXPECT_EQ(file.Read(0, &page).code(), StatusCode::kIoError);
  }
  EXPECT_EQ(policy.faults_injected(), 3u);
  file.SetFaultHook(nullptr);
}

TEST(FaultInjectionTest, CorruptionIsCaughtByRealChecksumAndIsTransient) {
  PageFile file;
  FillFile(&file, 2);
  FaultPolicyConfig config;
  config.corrupt_nth_read = 1;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);

  // The injected flip corrupts only the *delivered* copy; the genuine
  // checksum verification rejects it, and the stored page stays healthy.
  Page page;
  EXPECT_EQ(file.Read(0, &page).code(), StatusCode::kCorruption);
  EXPECT_TRUE(file.Read(0, &page).ok());
  EXPECT_EQ(page.bytes[0], 0u);
  EXPECT_EQ(page.bytes[100], 100u);
  file.SetFaultHook(nullptr);
}

TEST(FaultInjectionTest, ShortReadIsCaughtByChecksum) {
  PageFile file;
  FillFile(&file, 1);
  FaultPolicyConfig config;
  config.short_nth_read = 1;
  config.short_read_bytes = 512;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);

  Page page;
  EXPECT_EQ(file.Read(0, &page).code(), StatusCode::kCorruption);
  EXPECT_TRUE(file.Read(0, &page).ok());
  file.SetFaultHook(nullptr);
}

TEST(FaultInjectionTest, FailPrecedesCorruptPrecedesShort) {
  PageFile file;
  FillFile(&file, 1);
  FaultPolicyConfig config;
  config.fail_nth_read = 1;
  config.corrupt_nth_read = 1;
  config.short_nth_read = 1;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);

  Page page;
  EXPECT_EQ(file.Read(0, &page).code(), StatusCode::kIoError);
  EXPECT_EQ(policy.faults_injected(), 1u);
  file.SetFaultHook(nullptr);
}

TEST(FaultInjectionTest, RemovingHookRestoresNormalReads) {
  PageFile file;
  FillFile(&file, 1);
  FaultPolicyConfig config;
  config.fail_every_k = 1;  // every read fails while installed
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);
  Page page;
  EXPECT_FALSE(file.Read(0, &page).ok());
  file.SetFaultHook(nullptr);
  EXPECT_TRUE(file.Read(0, &page).ok());
}

TEST(FaultInjectionTest, PoolHookErrorLeavesPoolStateIntact) {
  PageFile file;
  FillFile(&file, 4);
  BufferPool pool(&file, 4, 2);
  // Warm the cache.
  Page page;
  for (PageId id = 0; id < 4; ++id) ASSERT_TRUE(pool.Read(id, &page).ok());
  ASSERT_EQ(pool.cached_pages(), 4u);
  pool.ResetStats();

  FaultPolicyConfig config;
  config.fail_nth_read = 1;
  FaultPolicy policy(config);
  pool.SetFaultHook(&policy);
  // The hook fires before the shard lock: even a would-be hit fails, and
  // nothing about the cached state changes.
  EXPECT_EQ(pool.Read(0, &page).code(), StatusCode::kIoError);
  pool.SetFaultHook(nullptr);

  EXPECT_EQ(pool.cached_pages(), 4u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 0u);
  // Every page still reads back fine, all as hits.
  for (PageId id = 0; id < 4; ++id) EXPECT_TRUE(pool.Read(id, &page).ok());
  EXPECT_EQ(pool.stats().hits, 4u);
}

TEST(FaultInjectionTest, PoolCorruptAndShortFaultsSurfaceAsStatus) {
  PageFile file;
  FillFile(&file, 1);
  BufferPool pool(&file, 1);
  FaultPolicyConfig config;
  config.corrupt_nth_read = 1;
  config.short_nth_read = 2;
  FaultPolicy policy(config);
  pool.SetFaultHook(&policy);
  Page page;
  EXPECT_EQ(pool.Read(0, &page).code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.Read(0, &page).code(), StatusCode::kIoError);
  pool.SetFaultHook(nullptr);
  EXPECT_TRUE(pool.Read(0, &page).ok());
}

TEST(FaultInjectionTest, BackingFileFaultThroughPoolCleansUpInFlight) {
  // Regression for the miss path: when the *backing file* read fails under
  // the pool, the leader must erase its in-flight entry and not cache the
  // failed page — a retry must succeed and actually populate the cache.
  PageFile file;
  FillFile(&file, 2);
  BufferPool pool(&file, 2);
  FaultPolicyConfig config;
  config.fail_nth_read = 1;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);

  Page page;
  EXPECT_EQ(pool.Read(0, &page).code(), StatusCode::kIoError);
  EXPECT_EQ(pool.cached_pages(), 0u);
  // Same page again: must issue a fresh physical read (not hang on a stale
  // in-flight entry, not serve a cached failure) and succeed.
  EXPECT_TRUE(pool.Read(0, &page).ok());
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_EQ(page.bytes[1], 1u);
  file.SetFaultHook(nullptr);

  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 2u);  // the failed read and the retry
}

TEST(FaultInjectionTest, InjectedDelayDoesNotChangeResults) {
  PageFile file;
  FillFile(&file, 1);
  FaultPolicyConfig config;
  config.delay_nanos = 1000;
  FaultPolicy policy(config);
  file.SetFaultHook(&policy);
  Page page;
  EXPECT_TRUE(file.Read(0, &page).ok());
  EXPECT_EQ(page.bytes[42], 42u);
  EXPECT_EQ(policy.faults_injected(), 0u);  // latency is not a fault
  file.SetFaultHook(nullptr);
}

TEST(FaultInjectionTest, DescribeNamesTheSchedule) {
  FaultPolicyConfig config;
  config.fail_nth_read = 3;
  config.corrupt_nth_read = 2;
  FaultPolicy policy(config);
  EXPECT_EQ(policy.Describe(), "fail-nth(3, IO_ERROR) + corrupt-nth(2)");
  EXPECT_EQ(FaultPolicy().Describe(), "no-faults");
}

}  // namespace
}  // namespace tsq::storage
