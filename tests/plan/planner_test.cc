#include "plan/planner.h"

#include <string>
#include <vector>

#include "../core/test_util.h"
#include "core/cost_model.h"
#include "core/engine.h"
#include "core/explain.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"

namespace tsq::plan {
namespace {

constexpr std::size_t kLength = 128;

// The Fig. 9 workload in miniature: moving averages plus their inversions
// form two well-separated clusters of transformation points, so any single
// rectangle packed across the gap filters terribly.
std::vector<transform::SpectralTransform> TwoClusterTransforms() {
  std::vector<transform::SpectralTransform> transforms =
      transform::MovingAverageRange(kLength, 6, 17);
  const auto plain = transforms;
  for (const auto& t : plain) {
    transforms.push_back(transform::Inverted(t));
  }
  return transforms;
}

core::RangeQuerySpec TwoClusterSpec(const core::SimilarityEngine& engine) {
  core::RangeQuerySpec spec;
  spec.query = ts::Denormalize(engine.dataset().normal(0));
  spec.transforms = TwoClusterTransforms();
  // Tighter than the paper's 0.96: at a selective threshold the clustered
  // rectangles prune on the angle dimensions while the packed MBR (whose
  // angle-add interval spans the inversion gap) cannot — the regime Fig. 9
  // is about.
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.99, kLength);
  return spec;
}

// The paper's constants; pinning them keeps every plan decision in this file
// independent of the machine the test runs on.
constexpr core::CostConstants kPaperConstants{1.0, 0.4};

core::PlannerOptions DeterministicPlannerOptions() {
  core::PlannerOptions options;
  options.cost_constants_override = kPaperConstants;
  return options;
}

// Estimated Eq. 20 cost of running `partition` (sum of Eq. 19 over groups).
double EstimatedCost(const core::SimilarityEngine& engine,
                     const std::vector<transform::SpectralTransform>& set,
                     const transform::Partition& partition, double epsilon) {
  const auto estimator = core::TreeCostEstimator::Create(engine.index());
  EXPECT_TRUE(estimator.ok());
  const transform::FeatureLayout& layout = engine.dataset().layout();
  std::vector<transform::FeatureTransform> fts;
  for (const auto& t : set) fts.push_back(t.ToFeatureTransform(layout));
  double total = 0.0;
  for (const std::vector<std::size_t>& group : partition) {
    std::vector<transform::FeatureTransform> group_fts;
    for (const std::size_t t : group) group_fts.push_back(fts[t]);
    total += core::EstimateGroupCost(*estimator, group_fts, epsilon, layout,
                                     kPaperConstants);
  }
  return total;
}

// Measured Eq. 20 cost of actually running `partition` under forced
// MT-index.
double MeasuredCost(const core::SimilarityEngine& engine,
                    core::RangeQuerySpec spec,
                    const transform::Partition& partition) {
  spec.partition = partition;
  core::ExecOptions options;
  options.planner.algorithm = core::Algorithm::kMtIndex;
  options.collect_group_stats = true;
  const auto result = engine.Execute(spec, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return core::CostEq20(result->group_stats,
                        engine.index().AverageLeafCapacity(), kPaperConstants);
}

TEST(PlannerTest, EstimatorRanksPartitionsLikeMeasuredCost) {
  core::SimilarityEngine engine(core::testutil::Stocks(400, kLength, 91));
  const core::RangeQuerySpec spec = TwoClusterSpec(engine);
  const std::size_t count = spec.transforms.size();

  std::vector<transform::FeatureTransform> fts;
  for (const auto& t : spec.transforms) {
    fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
  }
  const transform::Partition packed = transform::PartitionAll(count);
  const transform::Partition clustered =
      transform::PartitionByClusters(fts, count / 2);
  ASSERT_GE(clustered.size(), 2u);  // the gap was detected

  const double est_packed =
      EstimatedCost(engine, spec.transforms, packed, spec.epsilon);
  const double est_clustered =
      EstimatedCost(engine, spec.transforms, clustered, spec.epsilon);
  const double run_packed = MeasuredCost(engine, spec, packed);
  const double run_clustered = MeasuredCost(engine, spec, clustered);

  // On the two-cluster workload the packed single MBR spans the gap; both
  // the analytic estimate and the measured counters must call it the worse
  // plan — the estimator ranks plans the same way reality does.
  EXPECT_GT(est_packed, est_clustered);
  EXPECT_GT(run_packed, run_clustered);
}

TEST(PlannerTest, AutoNeverPicksPackedMbrOnTwoClusters) {
  core::SimilarityEngine engine(core::testutil::Stocks(400, kLength, 92));
  const core::RangeQuerySpec spec = TwoClusterSpec(engine);

  core::ExecOptions options;
  options.planner = DeterministicPlannerOptions();
  const auto result = engine.Execute(spec, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const obs::PlannerTrace& trace = result->trace().planner;
  ASSERT_TRUE(trace.planned);
  const obs::PlanCandidateTrace* chosen = trace.chosen_candidate();
  ASSERT_NE(chosen, nullptr);
  EXPECT_NE(chosen->label, "MT k=1 packed");
  EXPECT_GT(trace.candidates.size(), 2u);  // scan, ST and MT variants priced

  // Whatever it picked answers exactly like a forced MT run.
  core::ExecOptions forced;
  forced.planner.algorithm = core::Algorithm::kMtIndex;
  const auto reference = engine.Execute(spec, forced);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result->range()->matches.size(),
            reference->range()->matches.size());
}

TEST(PlannerTest, AutoEstimateIsNearMeasuredCostForChosenPlan) {
  core::SimilarityEngine engine(core::testutil::Stocks(400, kLength, 93));
  const core::RangeQuerySpec spec = TwoClusterSpec(engine);

  core::ExecOptions options;
  options.planner = DeterministicPlannerOptions();
  const auto result = engine.Execute(spec, options);
  ASSERT_TRUE(result.ok());
  const obs::PlannerTrace& trace = result->trace().planner;
  ASSERT_TRUE(trace.planned);
  ASSERT_GE(trace.actual_cost, 0.0);
  EXPECT_GT(trace.estimated_cost, 0.0);
  // The analytic estimate needs to rank plans, not predict their cost to the
  // page; an order of magnitude is the sanity band.
  EXPECT_LT(trace.estimated_cost, trace.actual_cost * 10.0);
  EXPECT_GT(trace.estimated_cost, trace.actual_cost / 10.0);
}

TEST(PlannerTest, PlanCacheHitsAndMutationInvalidation) {
  core::SimilarityEngine engine(core::testutil::Stocks(60, kLength, 94));
  const core::RangeQuerySpec spec = TwoClusterSpec(engine);
  core::ExecOptions options;
  options.planner = DeterministicPlannerOptions();

  const auto first = engine.Execute(spec, options);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->trace().planner.cache_hit);
  const auto second = engine.Execute(spec, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->trace().planner.cache_hit);
  // Same decision either way.
  EXPECT_EQ(first->trace().planner.chosen_candidate()->label,
            second->trace().planner.chosen_candidate()->label);

  // An index mutation bumps the epoch and drops every cached plan.
  const std::uint64_t epoch_before = engine.planner().epoch();
  ts::Series extra = ts::Denormalize(engine.dataset().normal(1));
  extra[3] += 0.25;
  ASSERT_TRUE(engine.Insert(extra).ok());
  EXPECT_GT(engine.planner().epoch(), epoch_before);
  const auto third = engine.Execute(spec, options);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->trace().planner.cache_hit);
}

TEST(PlannerTest, ExplainRendersThePlan) {
  core::SimilarityEngine engine(core::testutil::Stocks(60, kLength, 95));
  const core::RangeQuerySpec spec = TwoClusterSpec(engine);
  core::ExecOptions options;
  options.planner = DeterministicPlannerOptions();
  const auto result = engine.Execute(spec, options);
  ASSERT_TRUE(result.ok());

  const std::string json = core::ExplainJson(*result);
  EXPECT_NE(json.find("\"planner\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"chosen\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\""), std::string::npos);

  const std::string text = core::Explain(*result);
  EXPECT_NE(text.find("planner:"), std::string::npos);
  EXPECT_NE(text.find("<= chosen"), std::string::npos);

  // A forced run renders no planner block and keeps the legacy JSON shape.
  core::ExecOptions forced;
  forced.planner.algorithm = core::Algorithm::kSequentialScan;
  const auto plain = engine.Execute(spec, forced);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(core::ExplainJson(*plain).find("\"planner\""), std::string::npos);
}

TEST(PlannerTest, RawExecutorsRejectUnresolvedAuto) {
  core::SimilarityEngine engine(core::testutil::Stocks(30, kLength, 96));
  const core::RangeQuerySpec spec = TwoClusterSpec(engine);
  core::ExecOptions options;  // algorithm left at kAuto
  const auto direct =
      core::RunRangeQuery(engine.dataset(), engine.index(), spec, options);
  EXPECT_EQ(direct.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerTest, ForcedAlgorithmsBypassPlanningAndPartitioningKnobs) {
  core::SimilarityEngine engine(core::testutil::Stocks(30, kLength, 97));
  core::RangeQuerySpec spec = TwoClusterSpec(engine);
  spec.partition = transform::PartitionIntoGroups(spec.transforms.size(), 3);
  core::ExecOptions options;
  options.planner.algorithm = core::Algorithm::kMtIndex;
  options.collect_group_stats = true;
  const auto result = engine.Execute(spec, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->trace().planner.planned);
  EXPECT_EQ(result->group_stats.size(), 3u);  // spec partition untouched
}

}  // namespace
}  // namespace tsq::plan
