#include "ts/series.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::ts {
namespace {

TEST(ComputeStatsTest, SimpleKnownValues) {
  const Series x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SeriesStats stats = ComputeStats(x);
  EXPECT_NEAR(stats.mean, 5.0, 1e-12);
  // Sample variance: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(stats.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(ComputeStatsTest, SingleElement) {
  const SeriesStats stats = ComputeStats(Series{3.0});
  EXPECT_NEAR(stats.mean, 3.0, 1e-12);
  EXPECT_EQ(stats.stddev, 0.0);
}

TEST(ComputeStatsTest, ConstantSeriesHasZeroStddev) {
  const SeriesStats stats = ComputeStats(Series{5.0, 5.0, 5.0, 5.0});
  EXPECT_NEAR(stats.mean, 5.0, 1e-12);
  EXPECT_NEAR(stats.stddev, 0.0, 1e-12);
}

TEST(ComputeStatsTest, ShiftAndScaleBehaviour) {
  Rng rng(99);
  Series x(64);
  for (double& v : x) v = rng.Uniform(-10.0, 10.0);
  const SeriesStats base = ComputeStats(x);
  const Series moved = AffineMap(x, 3.0, 7.0);
  const SeriesStats stats = ComputeStats(moved);
  EXPECT_NEAR(stats.mean, 3.0 * base.mean + 7.0, 1e-9);
  EXPECT_NEAR(stats.stddev, 3.0 * base.stddev, 1e-9);
}

TEST(AffineMapTest, AppliesElementwise) {
  const Series out = AffineMap(Series{1.0, 2.0, 3.0}, 2.0, -1.0);
  EXPECT_EQ(out, (Series{1.0, 3.0, 5.0}));
}

TEST(SubtractTest, Elementwise) {
  const Series out = Subtract(Series{5.0, 6.0}, Series{1.0, 4.0});
  EXPECT_EQ(out, (Series{4.0, 2.0}));
}

TEST(PreviewTest, ShortSeries) {
  EXPECT_EQ(Preview(Series{1.0, 2.0}), "[1, 2]");
}

TEST(PreviewTest, TruncatesLongSeries) {
  const Series x(100, 1.0);
  const std::string preview = Preview(x, 3);
  EXPECT_EQ(preview, "[1, 1, 1, ...]");
}

}  // namespace
}  // namespace tsq::ts
