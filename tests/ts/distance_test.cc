#include "ts/distance.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ts/normal_form.h"
#include "ts/series.h"

namespace tsq::ts {
namespace {

TEST(EuclideanDistanceTest, KnownValues) {
  EXPECT_NEAR(EuclideanDistance(Series{0.0, 0.0}, Series{3.0, 4.0}), 5.0,
              1e-12);
  EXPECT_NEAR(SquaredEuclideanDistance(Series{0.0, 0.0}, Series{3.0, 4.0}),
              25.0, 1e-12);
  EXPECT_NEAR(EuclideanDistance(Series{1.0}, Series{1.0}), 0.0, 1e-12);
}

TEST(CityBlockDistanceTest, KnownValues) {
  EXPECT_NEAR(CityBlockDistance(Series{0.0, 0.0}, Series{3.0, -4.0}), 7.0,
              1e-12);
}

TEST(DistanceTest, MetricProperties) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Series x(16), y(16), z(16);
    for (std::size_t i = 0; i < 16; ++i) {
      x[i] = rng.Uniform(-5.0, 5.0);
      y[i] = rng.Uniform(-5.0, 5.0);
      z[i] = rng.Uniform(-5.0, 5.0);
    }
    // Symmetry and triangle inequality.
    EXPECT_NEAR(EuclideanDistance(x, y), EuclideanDistance(y, x), 1e-12);
    EXPECT_LE(EuclideanDistance(x, z),
              EuclideanDistance(x, y) + EuclideanDistance(y, z) + 1e-9);
    EXPECT_GE(EuclideanDistance(x, y), 0.0);
  }
}

TEST(CrossCorrelationTest, PerfectCorrelationHitsTheConventionCeiling) {
  Rng rng(2);
  Series x(32);
  for (double& v : x) v = rng.Uniform(-3.0, 3.0);
  // Under the paper's footnote-5 convention (sample stddev, 1/n
  // expectation) a perfectly correlated pair scores (n-1)/n, not 1.
  const double ceiling = 31.0 / 32.0;
  EXPECT_NEAR(CrossCorrelation(x, AffineMap(x, 2.0, 5.0)), ceiling, 1e-9);
  EXPECT_NEAR(CrossCorrelation(x, AffineMap(x, -1.0, 0.0)), -ceiling, 1e-9);
}

TEST(CrossCorrelationTest, ConstantSeriesYieldsZero) {
  const Series constant(8, 4.0);
  Series x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  EXPECT_EQ(CrossCorrelation(constant, x), 0.0);
  EXPECT_EQ(CrossCorrelation(x, constant), 0.0);
}

TEST(CrossCorrelationTest, IndependentSeriesNearZero) {
  Rng rng(3);
  Series x(2048), y(2048);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  EXPECT_NEAR(CrossCorrelation(x, y), 0.0, 0.1);
}

TEST(CrossCorrelationTest, IllConditionedLargeMeanTinyVariance) {
  // A huge common mean with a tiny signal riding on it is the worst case for
  // the fused single-pass formulation: the raw sums are ~1e8 while the
  // variances are ~1e-8. Shifting by x[0]/y[0] inside the fused pass keeps
  // the subtraction well-conditioned, so the correlation of two identical
  // tiny signals must still hit the (n-1)/n convention ceiling.
  const std::size_t n = 128;
  Rng rng(6);
  Series x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double signal = 1e-4 * std::sin(0.37 * static_cast<double>(i));
    x[i] = 1.0e8 + signal;
    y[i] = 2.0e8 + 3.0 * signal;  // affine image: perfectly correlated
  }
  // Tolerance: the stored doubles themselves quantize the 1e-4 signal to
  // ~1.5e-8 ulps at a 1e8 mean, which costs a few 1e-9 of correlation; a
  // naive three-pass sum-of-products loses *all* signal bits (sums ~1e18,
  // ulp ~1e2) and returns garbage, so 1e-7 still pins the fused behavior.
  const double ceiling = (static_cast<double>(n) - 1.0) / n;
  EXPECT_NEAR(CrossCorrelation(x, y), ceiling, 1e-7);

  // Anti-correlated affine image lands on the negative ceiling.
  Series z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = 5.0e7 - 2.0 * (x[i] - 1.0e8);
  EXPECT_NEAR(CrossCorrelation(x, z), -ceiling, 1e-7);

  // Independent noise on the same huge mean must stay far from +/-1 — a
  // naive three-pass sum-of-products would lose all signal bits here.
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0e8 + 1e-4 * rng.NextGaussian();
    y[i] = 1.0e8 + 1e-4 * rng.NextGaussian();
  }
  EXPECT_LT(std::abs(CrossCorrelation(x, y)), 0.5);
}

TEST(Equation9Test, IdentityForNormalForms) {
  // Eq. 9: D^2(X, Y) == 2 (n - 1 - n rho(X, Y)) for normal forms.
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 128;
    Series x(n), y(n);
    double vx = 0.0, vy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      vx += rng.Uniform(-1.0, 1.0);
      vy += rng.Uniform(-1.0, 1.0);
      x[i] = vx;
      y[i] = vy;
    }
    const Series nx = Normalize(x).values;
    const Series ny = Normalize(y).values;
    const double d2 = SquaredEuclideanDistance(nx, ny);
    const double rho = CrossCorrelation(nx, ny);
    EXPECT_NEAR(d2, CorrelationToSquaredDistance(rho, n), 1e-6 * (1.0 + d2));
    EXPECT_NEAR(rho, SquaredDistanceToCorrelation(d2, n), 1e-9);
  }
}

TEST(Equation9Test, PaperThresholdRho096) {
  // The paper's experiments: n = 128, rho = 0.96 -> epsilon ~ 2.87 (the
  // "distance less than 3" of Example 1.1).
  const double eps = CorrelationToDistanceThreshold(0.96, 128);
  EXPECT_NEAR(eps, std::sqrt(2.0 * (127.0 - 128.0 * 0.96)), 1e-12);
  EXPECT_GT(eps, 2.8);
  EXPECT_LT(eps, 3.0);
}

TEST(Equation9Test, RhoOneClampsToZero) {
  EXPECT_EQ(CorrelationToSquaredDistance(1.0, 128), 0.0);
  EXPECT_EQ(CorrelationToDistanceThreshold(1.0, 128), 0.0);
}

TEST(Equation9Test, RoundTripThroughBothDirections) {
  for (double rho : {-0.5, 0.0, 0.5, 0.9, 0.96}) {
    const double d2 = CorrelationToSquaredDistance(rho, 64);
    EXPECT_NEAR(SquaredDistanceToCorrelation(d2, 64), rho, 1e-12);
  }
}

TEST(NormalFormMinimizesShiftTest, Property1OfSection32) {
  // Property 1: subtracting the mean minimizes distance over scalar shifts.
  Rng rng(5);
  Series x(64), y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    x[i] = rng.Uniform(0.0, 10.0);
    y[i] = rng.Uniform(5.0, 15.0);
  }
  const SeriesStats sx = ComputeStats(x);
  const SeriesStats sy = ComputeStats(y);
  const double best = SquaredEuclideanDistance(AffineMap(x, 1.0, -sx.mean),
                                               AffineMap(y, 1.0, -sy.mean));
  for (int trial = 0; trial < 20; ++trial) {
    const double dx = rng.Uniform(-3.0, 3.0);
    const double dy = rng.Uniform(-3.0, 3.0);
    const double other = SquaredEuclideanDistance(
        AffineMap(x, 1.0, -sx.mean + dx), AffineMap(y, 1.0, -sy.mean + dy));
    EXPECT_GE(other + 1e-9, best);
  }
}

}  // namespace
}  // namespace tsq::ts
