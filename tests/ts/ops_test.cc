#include "ts/ops.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::ts {
namespace {

// The exact sequences from the paper's Appendix A (Lemmas 3 and 4); our
// moving-average conventions must reproduce the paper's arithmetic.
const Series kS1 = {10.0, 12.0, 10.0, 12.0};
const Series kS2 = {10.0, 11.0, 12.0, 11.0};
const Series kS3 = {11.0, 11.0, 11.0, 11.0};

void ExpectSeriesNear(const Series& actual, const Series& expected,
                      double tolerance = 1e-9) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tolerance) << "i=" << i;
  }
}

TEST(CircularMovingAverageTest, PaperAppendixMv2) {
  ExpectSeriesNear(CircularMovingAverage(kS1, 2), {11.0, 11.0, 11.0, 11.0});
  ExpectSeriesNear(CircularMovingAverage(kS2, 2), {10.5, 10.5, 11.5, 11.5});
  ExpectSeriesNear(CircularMovingAverage(kS3, 2), {11.0, 11.0, 11.0, 11.0});
}

TEST(CircularMovingAverageTest, PaperAppendixMv3) {
  ExpectSeriesNear(CircularMovingAverage(kS1, 3),
                   {32.0 / 3, 34.0 / 3, 32.0 / 3, 34.0 / 3}, 1e-2);
  ExpectSeriesNear(CircularMovingAverage(kS2, 3),
                   {11.0, 32.0 / 3, 11.0, 34.0 / 3}, 1e-2);
  ExpectSeriesNear(CircularMovingAverage(kS3, 3), {11.0, 11.0, 11.0, 11.0});
}

TEST(MovingAverageTest, PaperAppendixNonCircular) {
  // Lemma 4's tables (window slides over full windows only).
  ExpectSeriesNear(MovingAverage(kS1, 2), {11.0, 11.0, 11.0});
  ExpectSeriesNear(MovingAverage(kS2, 2), {10.5, 11.5, 11.5});
  ExpectSeriesNear(MovingAverage(kS3, 2), {11.0, 11.0, 11.0});
  ExpectSeriesNear(MovingAverage(kS1, 3), {32.0 / 3, 34.0 / 3}, 1e-2);
  ExpectSeriesNear(MovingAverage(kS2, 3), {11.0, 34.0 / 3}, 1e-2);
  ExpectSeriesNear(MovingAverage(kS3, 3), {11.0, 11.0});
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  Rng rng(4);
  Series x(16);
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  ExpectSeriesNear(CircularMovingAverage(x, 1), x);
  ExpectSeriesNear(MovingAverage(x, 1), x);
}

TEST(MovingAverageTest, FullWindowIsMean) {
  const Series x = {1.0, 2.0, 3.0, 6.0};
  ExpectSeriesNear(CircularMovingAverage(x, 4), {3.0, 3.0, 3.0, 3.0});
  ExpectSeriesNear(MovingAverage(x, 4), {3.0});
}

TEST(MovingAverageTest, SlidingSumMatchesDirectComputation) {
  Rng rng(5);
  Series x(50);
  for (double& v : x) v = rng.Uniform(-100.0, 100.0);
  for (std::size_t w : {2u, 3u, 7u, 20u, 50u}) {
    const Series fast = CircularMovingAverage(x, w);
    for (std::size_t i = 0; i < x.size(); ++i) {
      double direct = 0.0;
      for (std::size_t k = 0; k < w; ++k) {
        direct += x[(i + x.size() - k) % x.size()];
      }
      EXPECT_NEAR(fast[i], direct / static_cast<double>(w), 1e-9)
          << "w=" << w << " i=" << i;
    }
  }
}

TEST(CircularMomentumTest, MatchesDefinition) {
  const Series x = {1.0, 4.0, 9.0, 16.0};
  // y_i = x_i - x_{i-1 mod n}
  ExpectSeriesNear(CircularMomentum(x), {1.0 - 16.0, 3.0, 5.0, 7.0});
}

TEST(CircularMomentumTest, MultiStep) {
  const Series x = {1.0, 4.0, 9.0, 16.0};
  ExpectSeriesNear(CircularMomentum(x, 2), {1.0 - 9.0, 4.0 - 16.0, 8.0, 12.0});
}

TEST(MomentumTest, NonCircularDiff) {
  ExpectSeriesNear(Momentum(Series{1.0, 4.0, 9.0, 16.0}), {3.0, 5.0, 7.0});
}

TEST(CircularShiftTest, ShiftByOne) {
  ExpectSeriesNear(CircularShift(Series{1.0, 2.0, 3.0, 4.0}, 1),
                   {4.0, 1.0, 2.0, 3.0});
}

TEST(CircularShiftTest, ShiftByLengthIsIdentity) {
  const Series x = {1.0, 2.0, 3.0};
  ExpectSeriesNear(CircularShift(x, 3), x);
  ExpectSeriesNear(CircularShift(x, 0), x);
  ExpectSeriesNear(CircularShift(x, 7), CircularShift(x, 1));
}

TEST(PaddedShiftTest, InsertsZeros) {
  ExpectSeriesNear(PaddedShift(Series{1.0, 2.0, 3.0, 4.0}, 2),
                   {0.0, 0.0, 1.0, 2.0});
}

TEST(PaddedShiftTest, ShiftBeyondLengthIsAllZero) {
  ExpectSeriesNear(PaddedShift(Series{1.0, 2.0}, 5), {0.0, 0.0});
}

TEST(ScaleInvertTest, Basics) {
  ExpectSeriesNear(Scale(Series{1.0, -2.0}, 3.0), {3.0, -6.0});
  ExpectSeriesNear(Invert(Series{1.0, -2.0}), {-1.0, 2.0});
}

// Property sweep: moving average of different windows over random data.
class MovingAveragePropertyTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(MovingAveragePropertyTest, PreservesMeanCircularly) {
  // Circular MA redistributes values but preserves the total sum.
  const std::size_t w = GetParam();
  Rng rng(w);
  Series x(64);
  for (double& v : x) v = rng.Uniform(-10.0, 10.0);
  const Series smoothed = CircularMovingAverage(x, w);
  double sum_x = 0.0, sum_s = 0.0;
  for (double v : x) sum_x += v;
  for (double v : smoothed) sum_s += v;
  EXPECT_NEAR(sum_x, sum_s, 1e-8);
}

TEST_P(MovingAveragePropertyTest, ReducesVariance) {
  // Smoothing never increases the sample variance of a circular signal
  // (spectral gain |M_f| <= 1 on every non-DC coefficient).
  const std::size_t w = GetParam();
  Rng rng(w * 17);
  Series x(64);
  double value = 0.0;
  for (double& v : x) {
    value += rng.Uniform(-1.0, 1.0);
    v = value;
  }
  const SeriesStats before = ComputeStats(x);
  const SeriesStats after = ComputeStats(CircularMovingAverage(x, w));
  EXPECT_LE(after.stddev, before.stddev + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Windows, MovingAveragePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 9, 19, 32, 64));

}  // namespace
}  // namespace tsq::ts
