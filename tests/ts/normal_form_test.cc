#include "ts/normal_form.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::ts {
namespace {

TEST(NormalizeTest, ProducesZeroMeanUnitStddev) {
  Rng rng(1);
  Series x(128);
  for (double& v : x) v = rng.Uniform(-100.0, 100.0);
  const NormalForm normal = Normalize(x);
  const SeriesStats stats = ComputeStats(normal.values);
  EXPECT_NEAR(stats.mean, 0.0, 1e-9);
  EXPECT_NEAR(stats.stddev, 1.0, 1e-9);
}

TEST(NormalizeTest, RecordsOriginalStats) {
  const Series x = {10.0, 20.0, 30.0};
  const NormalForm normal = Normalize(x);
  EXPECT_NEAR(normal.mean, 20.0, 1e-12);
  EXPECT_NEAR(normal.stddev, 10.0, 1e-12);  // sample stddev
}

TEST(NormalizeTest, SumOfSquaresIsNMinusOne) {
  // The convention Eq. 9 needs: sum(x_t^2) == n - 1 for a normal form.
  Rng rng(2);
  Series x(64);
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  const NormalForm normal = Normalize(x);
  double ss = 0.0;
  for (double v : normal.values) ss += v * v;
  EXPECT_NEAR(ss, 63.0, 1e-9);
}

TEST(NormalizeTest, ConstantSeriesMapsToZeros) {
  const NormalForm normal = Normalize(Series{7.0, 7.0, 7.0});
  EXPECT_EQ(normal.values, (Series{0.0, 0.0, 0.0}));
  EXPECT_NEAR(normal.mean, 7.0, 1e-12);
  EXPECT_EQ(normal.stddev, 0.0);
}

TEST(NormalizeTest, ScaleAndShiftInvariance) {
  // Normal form removes affine differences: normal(a*x + b) == normal(x)
  // for a > 0.
  Rng rng(3);
  Series x(32);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  const Series moved = AffineMap(x, 4.2, -17.0);
  const NormalForm a = Normalize(x);
  const NormalForm b = Normalize(moved);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9);
  }
}

TEST(DenormalizeTest, RoundTrip) {
  Rng rng(4);
  Series x(50);
  for (double& v : x) v = rng.Uniform(-1000.0, 1000.0);
  const Series back = Denormalize(Normalize(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-6);
  }
}

TEST(DenormalizeTest, ConstantRoundTrip) {
  const Series x = {5.0, 5.0, 5.0};
  EXPECT_EQ(Denormalize(Normalize(x)), x);
}

}  // namespace
}  // namespace tsq::ts
