#include "ts/io.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"

namespace tsq::ts {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tsq_io_test.csv";
};

TEST_F(IoTest, RoundTrip) {
  const std::vector<Series> data = {
      {1.0, 2.5, -3.75}, {0.0}, {1e-9, 1e9, 123.456789012345}};
  ASSERT_TRUE(WriteCsv(path_, data).ok());
  const auto read = ReadCsv(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 3u);
  for (std::size_t r = 0; r < data.size(); ++r) {
    ASSERT_EQ((*read)[r].size(), data[r].size());
    for (std::size_t c = 0; c < data[r].size(); ++c) {
      EXPECT_DOUBLE_EQ((*read)[r][c], data[r][c]);
    }
  }
}

TEST_F(IoTest, EmptyFile) {
  ASSERT_TRUE(WriteCsv(path_, {}).ok());
  const auto read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_F(IoTest, SkipsBlankLines) {
  std::ofstream out(path_);
  out << "1,2\n\n3,4\n";
  out.close();
  const auto read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
}

TEST_F(IoTest, RejectsNonNumericField) {
  std::ofstream out(path_);
  out << "1,2\n3,potato\n";
  out.close();
  const auto read = ReadCsv(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  EXPECT_NE(read.status().message().find("potato"), std::string::npos);
}

TEST_F(IoTest, MissingFileIsIoError) {
  const auto read = ReadCsv("/nonexistent/nowhere.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, WriteToUnwritablePathFails) {
  EXPECT_EQ(WriteCsv("/nonexistent/dir/file.csv", {}).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace tsq::ts
