#include "ts/generate.h"

#include <algorithm>
#include <cmath>

#include "dft/fft.h"
#include "gtest/gtest.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/normal_form.h"
#include "ts/ops.h"

namespace tsq::ts {
namespace {

TEST(RandomWalkTest, ShapeAndDeterminism) {
  RandomWalkConfig config;
  config.num_series = 10;
  config.length = 128;
  config.seed = 7;
  const auto a = GenerateRandomWalks(config);
  const auto b = GenerateRandomWalks(config);
  ASSERT_EQ(a.size(), 10u);
  for (const Series& s : a) EXPECT_EQ(s.size(), 128u);
  EXPECT_EQ(a, b);  // same seed, same data
}

TEST(RandomWalkTest, DifferentSeedsDiffer) {
  RandomWalkConfig config;
  config.num_series = 1;
  config.seed = 1;
  const auto a = GenerateRandomWalks(config);
  config.seed = 2;
  const auto b = GenerateRandomWalks(config);
  EXPECT_NE(a, b);
}

TEST(RandomWalkTest, StepsBoundedByPaperRecipe) {
  // x_t = x_{t-1} + z_t with z_t in [-500, 500].
  RandomWalkConfig config;
  config.num_series = 5;
  config.length = 256;
  config.step = 500.0;
  for (const Series& s : GenerateRandomWalks(config)) {
    for (std::size_t t = 1; t < s.size(); ++t) {
      EXPECT_LE(std::fabs(s[t] - s[t - 1]), 500.0);
    }
  }
}

TEST(StockMarketTest, ShapeAndDeterminism) {
  StockMarketConfig config;
  config.num_series = 50;
  config.length = 128;
  const auto a = GenerateStockMarket(config);
  const auto b = GenerateStockMarket(config);
  ASSERT_EQ(a.size(), 50u);
  for (const Series& s : a) EXPECT_EQ(s.size(), 128u);
  EXPECT_EQ(a, b);
}

TEST(StockMarketTest, PricesStayPositive) {
  StockMarketConfig config;
  config.num_series = 100;
  for (const Series& s : GenerateStockMarket(config)) {
    for (double price : s) EXPECT_GT(price, 0.0);
  }
}

TEST(StockMarketTest, SectorStructureCreatesCorrelatedPairs) {
  // The point of the generator: a realistic tail of highly-correlated pairs
  // (the paper's join experiment needs output at rho >= 0.99 after
  // smoothing).
  StockMarketConfig config;
  config.num_series = 200;
  config.seed = 1999;
  const auto stocks = GenerateStockMarket(config);
  double best = -1.0;
  int high_pairs = 0;
  for (std::size_t a = 0; a < stocks.size(); ++a) {
    const Series na = Normalize(stocks[a]).values;
    const Series sa = CircularMovingAverage(na, 10);
    for (std::size_t b = a + 1; b < std::min<std::size_t>(stocks.size(), a + 40);
         ++b) {
      const Series nb = Normalize(stocks[b]).values;
      const Series sb = CircularMovingAverage(nb, 10);
      const double rho = CrossCorrelation(sa, sb);
      best = std::max(best, rho);
      if (rho >= 0.99) ++high_pairs;
    }
  }
  EXPECT_GT(best, 0.99);
  EXPECT_GE(high_pairs, 1);
}

TEST(SeasonalTest, EnergyConcentratesAtConfiguredHarmonics) {
  SeasonalConfig config;
  config.num_series = 5;
  config.length = 128;
  config.harmonics = {3, 9};
  config.noise = 0.0;
  const auto series = GenerateSeasonal(config);
  ASSERT_EQ(series.size(), 5u);
  for (const Series& s : series) {
    // All energy at bands 3 and 9 (mirrored at n-3, n-9); none elsewhere.
    const auto spectrum =
        tsq::dft::Forward(std::span<const double>(s));
    double in_band = 0.0, total = 0.0;
    for (std::size_t f = 1; f < 128; ++f) {
      const std::size_t band = std::min(f, 128 - f);
      const double energy = std::norm(spectrum[f]);
      total += energy;
      if (band == 3 || band == 9) in_band += energy;
    }
    EXPECT_GT(total, 1.0);
    EXPECT_NEAR(in_band / total, 1.0, 1e-9);
  }
}

TEST(SeasonalTest, BandPassSeparatesTheHarmonics) {
  SeasonalConfig config;
  config.num_series = 20;
  config.length = 64;
  config.harmonics = {2, 13};
  config.noise = 0.05;
  const auto series = GenerateSeasonal(config);
  // Keeping only the low band leaves a clean 2-cycle wave: its correlation
  // with the full series reflects how much energy the low harmonic carries.
  const auto low = tsq::transform::BandPassTransform(64, 1, 5);
  const auto high = tsq::transform::BandPassTransform(64, 6, 32);
  for (const Series& s : series) {
    const Series l = low.ApplyToSeries(s);
    const Series h = high.ApplyToSeries(s);
    Series sum(64);
    for (std::size_t t = 0; t < 64; ++t) sum[t] = l[t] + h[t];
    // The two bands partition the signal (minus the DC term, which both
    // filters drop).
    const SeriesStats stats = ComputeStats(s);
    for (std::size_t t = 0; t < 64; ++t) {
      EXPECT_NEAR(sum[t], s[t] - stats.mean, 0.05);
    }
  }
}

TEST(SeasonalTest, DeterministicAndNoisy) {
  SeasonalConfig config;
  config.num_series = 3;
  const auto a = GenerateSeasonal(config);
  const auto b = GenerateSeasonal(config);
  EXPECT_EQ(a, b);
  config.seed = 8;
  EXPECT_NE(GenerateSeasonal(config), a);
}

TEST(StockMarketTest, NotAllPairsAreNearDuplicates) {
  StockMarketConfig config;
  config.num_series = 60;
  const auto stocks = GenerateStockMarket(config);
  int low_pairs = 0;
  for (std::size_t a = 0; a < stocks.size(); ++a) {
    for (std::size_t b = a + 1; b < stocks.size(); ++b) {
      if (CrossCorrelation(stocks[a], stocks[b]) < 0.9) ++low_pairs;
    }
  }
  EXPECT_GT(low_pairs, 100);
}

}  // namespace
}  // namespace tsq::ts
