// Negative tests for RStarTree::CheckInvariants: the checker must actually
// *detect* structural damage, not just pass on healthy trees. Damage is
// injected by rewriting node pages directly through the page file.

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "rstar/rstar_tree.h"
#include "storage/page_file.h"

namespace tsq::rstar {
namespace {

constexpr std::size_t kHeaderSize = 8;

// Builds a healthy 2-d tree of `count` points with small capacity.
struct Fixture {
  storage::PageFile file;
  std::unique_ptr<RStarTree> tree;

  explicit Fixture(std::size_t count) {
    TreeOptions options;
    options.capacity_override = 6;
    tree = std::make_unique<RStarTree>(&file, 2, options);
    Rng rng(99);
    for (std::size_t i = 0; i < count; ++i) {
      const Status status = tree->Insert(
          Rect::FromPoint({rng.Uniform(-50.0, 50.0),
                           rng.Uniform(-50.0, 50.0)}),
          i);
      TSQ_CHECK(status.ok()) << status.ToString();
    }
    TSQ_CHECK(tree->CheckInvariants().ok());
  }
};

// Rewrites one double inside the serialized entry `slot` of page `page_id`.
// Entry layout: [u64 id][2 lows][2 highs], after the 8-byte node header.
void PatchEntryBound(storage::PageFile* file, storage::PageId page_id,
                     std::size_t slot, std::size_t double_index,
                     double value) {
  storage::Page page;
  ASSERT_TRUE(file->Read(page_id, &page).ok());
  const std::size_t entry_size = 8 + 4 * sizeof(double);
  const std::size_t offset =
      kHeaderSize + slot * entry_size + 8 + double_index * sizeof(double);
  std::memcpy(page.bytes.data() + offset, &value, sizeof value);
  ASSERT_TRUE(file->Write(page_id, page).ok());
}

TEST(InvariantDetectionTest, DetectsLooseParentRect) {
  Fixture fx(100);
  // Inflate the root's first child rect: parent no longer the *tight* MBR.
  PatchEntryBound(&fx.file, fx.tree->root_page(), 0, 3, 1e6);  // high[1]
  const Status status = fx.tree->CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("tight"), std::string::npos);
}

TEST(InvariantDetectionTest, DetectsShrunkenParentRect) {
  Fixture fx(100);
  // Shrink the root's first child rect: child entries poke out.
  PatchEntryBound(&fx.file, fx.tree->root_page(), 0, 2, -1e6);  // high[0]
  EXPECT_FALSE(fx.tree->CheckInvariants().ok());
}

TEST(InvariantDetectionTest, DetectsCountCorruption) {
  Fixture fx(100);
  storage::Page page;
  ASSERT_TRUE(fx.file.Read(fx.tree->root_page(), &page).ok());
  std::uint32_t bogus_count = 200;  // > capacity + 1
  std::memcpy(page.bytes.data() + 4, &bogus_count, 4);
  ASSERT_TRUE(fx.file.Write(fx.tree->root_page(), page).ok());
  EXPECT_FALSE(fx.tree->CheckInvariants().ok());
}

TEST(InvariantDetectionTest, DetectsBadMagic) {
  Fixture fx(50);
  storage::Page page;
  ASSERT_TRUE(fx.file.Read(fx.tree->root_page(), &page).ok());
  page.bytes[0] = 0x00;
  page.bytes[1] = 0x00;
  ASSERT_TRUE(fx.file.Write(fx.tree->root_page(), page).ok());
  const Status status = fx.tree->CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(InvariantDetectionTest, RestoreForLoadRejectsWrongHeight) {
  Fixture fx(100);
  storage::PageFile copy;
  ASSERT_TRUE(fx.file.SaveTo(::testing::TempDir() + "/tsq_inv.bin").ok());
  ASSERT_TRUE(copy.LoadFrom(::testing::TempDir() + "/tsq_inv.bin").ok());
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree restored(&copy, 2, options);
  EXPECT_EQ(restored
                .RestoreForLoad(fx.tree->root_page(),
                                fx.tree->height() + 1, fx.tree->size())
                .code(),
            StatusCode::kCorruption);
  EXPECT_TRUE(restored
                  .RestoreForLoad(fx.tree->root_page(), fx.tree->height(),
                                  fx.tree->size())
                  .ok());
  EXPECT_TRUE(restored.CheckInvariants().ok());
  std::remove((::testing::TempDir() + "/tsq_inv.bin").c_str());
}

}  // namespace
}  // namespace tsq::rstar
