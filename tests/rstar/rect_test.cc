#include "rstar/rect.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tsq::rstar {
namespace {

Rect MakeRect(std::vector<double> low, std::vector<double> high) {
  return Rect(std::move(low), std::move(high));
}

TEST(RectTest, BasicAccessors) {
  const Rect r = MakeRect({0.0, 1.0}, {2.0, 4.0});
  EXPECT_EQ(r.dimensions(), 2u);
  EXPECT_EQ(r.low(0), 0.0);
  EXPECT_EQ(r.high(1), 4.0);
  EXPECT_EQ(r.Extent(0), 2.0);
  EXPECT_EQ(r.Extent(1), 3.0);
  EXPECT_EQ(r.Area(), 6.0);
  EXPECT_EQ(r.Margin(), 5.0);
  EXPECT_EQ(r.Center(1), 2.5);
}

TEST(RectTest, FromPointIsDegenerate) {
  const Rect r = Rect::FromPoint({1.0, 2.0, 3.0});
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.low(2), r.high(2));
  EXPECT_FALSE(r.empty());
}

TEST(RectTest, EmptyRect) {
  const Rect r = Rect::Empty(3);
  EXPECT_TRUE(r.empty());
  Rect grown = r;
  grown.Enlarge(Rect::FromPoint({1.0, 2.0, 3.0}));
  EXPECT_FALSE(grown.empty());
  EXPECT_EQ(grown, Rect::FromPoint({1.0, 2.0, 3.0}));
}

TEST(RectTest, IntersectionCases) {
  const Rect a = MakeRect({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(a.Intersects(MakeRect({1.0, 1.0}, {3.0, 3.0})));
  EXPECT_TRUE(a.Intersects(MakeRect({2.0, 2.0}, {3.0, 3.0})));  // touching
  EXPECT_FALSE(a.Intersects(MakeRect({2.1, 0.0}, {3.0, 2.0})));
  EXPECT_FALSE(a.Intersects(MakeRect({0.0, -2.0}, {2.0, -0.1})));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(RectTest, Containment) {
  const Rect a = MakeRect({0.0, 0.0}, {4.0, 4.0});
  EXPECT_TRUE(a.Contains(MakeRect({1.0, 1.0}, {2.0, 2.0})));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(MakeRect({1.0, 1.0}, {5.0, 2.0})));
  EXPECT_TRUE(a.ContainsPoint({0.0, 4.0}));
  EXPECT_FALSE(a.ContainsPoint({-0.1, 2.0}));
}

TEST(RectTest, EnlargeAndEnlargement) {
  Rect a = MakeRect({0.0, 0.0}, {1.0, 1.0});
  EXPECT_NEAR(a.Enlargement(MakeRect({2.0, 0.0}, {3.0, 1.0})), 2.0, 1e-12);
  EXPECT_NEAR(a.Enlargement(MakeRect({0.2, 0.2}, {0.8, 0.8})), 0.0, 1e-12);
  a.Enlarge(MakeRect({2.0, 0.0}, {3.0, 1.0}));
  EXPECT_EQ(a, MakeRect({0.0, 0.0}, {3.0, 1.0}));
}

TEST(RectTest, OverlapArea) {
  const Rect a = MakeRect({0.0, 0.0}, {2.0, 2.0});
  EXPECT_NEAR(a.OverlapArea(MakeRect({1.0, 1.0}, {3.0, 3.0})), 1.0, 1e-12);
  EXPECT_EQ(a.OverlapArea(MakeRect({5.0, 5.0}, {6.0, 6.0})), 0.0);
  EXPECT_NEAR(a.OverlapArea(a), 4.0, 1e-12);
}

TEST(RectTest, MinSquaredDistance) {
  const Rect r = MakeRect({0.0, 0.0}, {2.0, 2.0});
  EXPECT_EQ(r.MinSquaredDistance({1.0, 1.0}), 0.0);  // inside
  EXPECT_NEAR(r.MinSquaredDistance({3.0, 1.0}), 1.0, 1e-12);
  EXPECT_NEAR(r.MinSquaredDistance({3.0, 3.0}), 2.0, 1e-12);
  EXPECT_NEAR(r.MinSquaredDistance({-1.0, -1.0}), 2.0, 1e-12);
}

TEST(RectTest, MinDistLowerBoundsContainedPoints) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> low(3), high(3);
    for (int d = 0; d < 3; ++d) {
      const double a = rng.Uniform(-5.0, 5.0);
      const double b = rng.Uniform(-5.0, 5.0);
      low[d] = std::min(a, b);
      high[d] = std::max(a, b);
    }
    const Rect rect(low, high);
    Point q = {rng.Uniform(-8.0, 8.0), rng.Uniform(-8.0, 8.0),
               rng.Uniform(-8.0, 8.0)};
    Point inside(3);
    for (int d = 0; d < 3; ++d) inside[d] = rng.Uniform(low[d], high[d]);
    double d2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      d2 += (inside[d] - q[d]) * (inside[d] - q[d]);
    }
    EXPECT_LE(rect.MinSquaredDistance(q), d2 + 1e-9);
  }
}

TEST(RectTest, MinMaxDistAtLeastMinDist) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> low(2), high(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.Uniform(-5.0, 5.0);
      const double b = rng.Uniform(-5.0, 5.0);
      low[d] = std::min(a, b);
      high[d] = std::max(a, b);
    }
    const Rect rect(low, high);
    const Point q = {rng.Uniform(-8.0, 8.0), rng.Uniform(-8.0, 8.0)};
    EXPECT_GE(rect.MinMaxSquaredDistance(q),
              rect.MinSquaredDistance(q) - 1e-9);
  }
}

TEST(RectTest, MinMaxDistKnownCase) {
  const Rect r = MakeRect({1.0, 0.0}, {2.0, 1.0});
  const Point q = {0.0, 0.5};
  EXPECT_NEAR(r.MinMaxSquaredDistance(q), 1.25, 1e-9);
}

TEST(RectTest, CenterSquaredDistance) {
  const Rect a = MakeRect({0.0, 0.0}, {2.0, 2.0});
  const Rect b = MakeRect({4.0, 1.0}, {6.0, 3.0});
  EXPECT_NEAR(a.CenterSquaredDistance(b), 16.0 + 1.0, 1e-12);
}

TEST(RectTest, BoundingRect) {
  const std::vector<Rect> rects = {MakeRect({0.0}, {1.0}),
                                   MakeRect({5.0}, {6.0}),
                                   MakeRect({-2.0}, {-1.0})};
  EXPECT_EQ(BoundingRect(rects), MakeRect({-2.0}, {6.0}));
}

TEST(RectTest, ToStringIsReadable) {
  EXPECT_EQ(MakeRect({0.0, 1.0}, {2.0, 3.0}).ToString(), "(0..2)x(1..3)");
}

TEST(RectDeathTest, MismatchedBoundsRejected) {
  EXPECT_DEATH(Rect({0.0, 1.0}, {2.0}), "CHECK failed");
}

}  // namespace
}  // namespace tsq::rstar
