#include "rstar/join.h"

#include <cmath>
#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/page_file.h"

namespace tsq::rstar {
namespace {

using Pair = std::pair<std::uint64_t, std::uint64_t>;

Point RandomPoint(Rng& rng, double lo, double hi) {
  return {rng.Uniform(lo, hi), rng.Uniform(lo, hi)};
}

TEST(SpatialJoinTest, EmptyInputsYieldNothing) {
  storage::PageFile fa, fb;
  RStarTree a(&fa, 2), b(&fb, 2);
  int calls = 0;
  ASSERT_TRUE(SpatialJoin(
                  a, b, [](const Rect&, const Rect&) { return true; },
                  [&calls](const Entry&, const Entry&) { ++calls; })
                  .ok());
  EXPECT_EQ(calls, 0);
  ASSERT_TRUE(a.Insert(Rect::FromPoint({0.0, 0.0}), 1).ok());
  ASSERT_TRUE(SpatialJoin(
                  a, b, [](const Rect&, const Rect&) { return true; },
                  [&calls](const Entry&, const Entry&) { ++calls; })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST(SpatialJoinTest, MatchesBruteForceOnDistancePredicate) {
  storage::PageFile fa, fb;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree a(&fa, 2, options), b(&fb, 2, options);
  Rng rng(1);
  std::vector<Point> pa, pb;
  for (std::size_t i = 0; i < 150; ++i) {
    pa.push_back(RandomPoint(rng, -50.0, 50.0));
    ASSERT_TRUE(a.Insert(Rect::FromPoint(pa.back()), i).ok());
  }
  for (std::size_t i = 0; i < 120; ++i) {
    pb.push_back(RandomPoint(rng, -50.0, 50.0));
    ASSERT_TRUE(b.Insert(Rect::FromPoint(pb.back()), i).ok());
  }
  const double radius2 = 25.0;
  const auto predicate = [&](const Rect& ra, const Rect& rb) {
    // Monotone proximity test between rects.
    double d2 = 0.0;
    for (std::size_t d = 0; d < 2; ++d) {
      const double gap =
          std::max({0.0, ra.low(d) - rb.high(d), rb.low(d) - ra.high(d)});
      d2 += gap * gap;
    }
    return d2 <= radius2;
  };
  std::set<Pair> joined;
  ASSERT_TRUE(SpatialJoin(a, b, predicate,
                          [&](const Entry& ea, const Entry& eb) {
                            joined.insert({ea.id, eb.id});
                          })
                  .ok());
  std::set<Pair> expected;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pb.size(); ++j) {
      const double dx = pa[i][0] - pb[j][0];
      const double dy = pa[i][1] - pb[j][1];
      if (dx * dx + dy * dy <= radius2) expected.insert({i, j});
    }
  }
  EXPECT_EQ(joined, expected);
}

TEST(SpatialJoinTest, SelfJoinFindsClusters) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree tree(&file, 2, options);
  Rng rng(2);
  std::vector<Point> points;
  // Two tight clusters of 10 points each, far apart.
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 10; ++i) {
      points.push_back(
          {c * 1000.0 + rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
      ASSERT_TRUE(
          tree.Insert(Rect::FromPoint(points.back()), points.size() - 1).ok());
    }
  }
  const auto predicate = [](const Rect& ra, const Rect& rb) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < 2; ++d) {
      const double gap =
          std::max({0.0, ra.low(d) - rb.high(d), rb.low(d) - ra.high(d)});
      d2 += gap * gap;
    }
    return d2 <= 16.0;
  };
  std::set<Pair> joined;
  ASSERT_TRUE(SpatialJoin(tree, tree, predicate,
                          [&](const Entry& ea, const Entry& eb) {
                            if (ea.id < eb.id) joined.insert({ea.id, eb.id});
                          })
                  .ok());
  // Only intra-cluster pairs: 2 * C(10,2) = 90.
  EXPECT_EQ(joined.size(), 90u);
}

TEST(SpatialJoinTest, DifferentHeightsHandled) {
  storage::PageFile fa, fb;
  TreeOptions options;
  options.capacity_override = 4;
  RStarTree big(&fa, 1, options), small(&fb, 1, options);
  Rng rng(3);
  std::vector<double> xs;
  for (std::size_t i = 0; i < 200; ++i) {
    xs.push_back(rng.Uniform(0.0, 100.0));
    ASSERT_TRUE(big.Insert(Rect::FromPoint({xs.back()}), i).ok());
  }
  ASSERT_TRUE(small.Insert(Rect::FromPoint({50.0}), 0).ok());
  ASSERT_TRUE(small.Insert(Rect::FromPoint({10.0}), 1).ok());
  EXPECT_GT(big.height(), small.height());

  const auto predicate = [](const Rect& ra, const Rect& rb) {
    const double gap =
        std::max({0.0, ra.low(0) - rb.high(0), rb.low(0) - ra.high(0)});
    return gap <= 1.0;
  };
  std::set<Pair> joined;
  ASSERT_TRUE(SpatialJoin(big, small, predicate,
                          [&](const Entry& ea, const Entry& eb) {
                            joined.insert({ea.id, eb.id});
                          })
                  .ok());
  std::set<Pair> expected;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::fabs(xs[i] - 50.0) <= 1.0) expected.insert({i, 0});
    if (std::fabs(xs[i] - 10.0) <= 1.0) expected.insert({i, 1});
  }
  EXPECT_EQ(joined, expected);
  // And the mirrored call works too.
  std::set<Pair> mirrored;
  ASSERT_TRUE(SpatialJoin(small, big, predicate,
                          [&](const Entry& ea, const Entry& eb) {
                            mirrored.insert({eb.id, ea.id});
                          })
                  .ok());
  EXPECT_EQ(mirrored, expected);
}

TEST(SpatialJoinTest, RectMapsAppliedPerEntry) {
  // JoinOptions maps shift each side's rects; with a +100 offset on the left
  // side, the disjoint datasets below become joinable.
  storage::PageFile fa, fb;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree a(&fa, 1, options), b(&fb, 1, options);
  Rng rng(5);
  std::vector<double> xa, xb;
  for (std::size_t i = 0; i < 100; ++i) {
    xa.push_back(rng.Uniform(0.0, 50.0));
    xb.push_back(rng.Uniform(100.0, 150.0));
    ASSERT_TRUE(a.Insert(Rect::FromPoint({xa.back()}), i).ok());
    ASSERT_TRUE(b.Insert(Rect::FromPoint({xb.back()}), i).ok());
  }
  const auto predicate = [](const Rect& ra, const Rect& rb) {
    const double gap =
        std::max({0.0, ra.low(0) - rb.high(0), rb.low(0) - ra.high(0)});
    return gap <= 0.5;
  };
  // Without maps: nothing joins.
  int plain_calls = 0;
  ASSERT_TRUE(SpatialJoin(a, b, predicate,
                          [&](const Entry&, const Entry&) { ++plain_calls; })
                  .ok());
  EXPECT_EQ(plain_calls, 0);
  // With the left side lifted by +100, pairs within 0.5 appear.
  JoinOptions join_options;
  join_options.left_map = [](const Rect& r) {
    return Rect({r.low(0) + 100.0}, {r.high(0) + 100.0});
  };
  std::set<Pair> joined;
  ASSERT_TRUE(SpatialJoin(a, b, predicate,
                          [&](const Entry& ea, const Entry& eb) {
                            joined.insert({ea.id, eb.id});
                          },
                          nullptr, nullptr, join_options)
                  .ok());
  std::set<Pair> expected;
  for (std::size_t i = 0; i < xa.size(); ++i) {
    for (std::size_t j = 0; j < xb.size(); ++j) {
      if (std::fabs(xa[i] + 100.0 - xb[j]) <= 0.5) expected.insert({i, j});
    }
  }
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(joined, expected);
}

TEST(SpatialJoinTest, NodeCacheBoundsPhysicalReads) {
  // Each page is fetched at most once per join, however many node pairs it
  // participates in.
  storage::PageFile fa;
  TreeOptions options;
  options.capacity_override = 4;
  RStarTree tree(&fa, 2, options);
  Rng rng(6);
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(Rect::FromPoint({rng.Uniform(0.0, 10.0),
                                             rng.Uniform(0.0, 10.0)}),
                            i)
                    .ok());
  }
  SearchStats left, right;
  int calls = 0;
  ASSERT_TRUE(SpatialJoin(tree, tree,
                          [](const Rect&, const Rect&) { return true; },
                          [&](const Entry&, const Entry&) { ++calls; }, &left,
                          &right)
                  .ok());
  EXPECT_EQ(calls, 200 * 200);
  EXPECT_LE(left.nodes_accessed, fa.page_count());
  EXPECT_LE(right.nodes_accessed, fa.page_count());
}

TEST(SpatialJoinTest, CountsAccessesPerSide) {
  storage::PageFile fa, fb;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree a(&fa, 2, options), b(&fb, 2, options);
  Rng rng(4);
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(a.Insert(Rect::FromPoint(RandomPoint(rng, 0.0, 10.0)), i).ok());
    ASSERT_TRUE(
        b.Insert(Rect::FromPoint(RandomPoint(rng, 1000.0, 1010.0)), i).ok());
  }
  // Disjoint data: the root pair fails the predicate immediately.
  SearchStats left, right;
  int calls = 0;
  ASSERT_TRUE(SpatialJoin(
                  a, b,
                  [](const Rect& ra, const Rect& rb) {
                    return ra.Intersects(rb);
                  },
                  [&calls](const Entry&, const Entry&) { ++calls; }, &left,
                  &right)
                  .ok());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(left.nodes_accessed, 1u);
  EXPECT_EQ(right.nodes_accessed, 1u);
}

}  // namespace
}  // namespace tsq::rstar
