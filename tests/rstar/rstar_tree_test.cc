#include "rstar/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tsq::rstar {
namespace {

Point RandomPoint(std::size_t dims, Rng& rng, double lo = -100.0,
                  double hi = 100.0) {
  Point p(dims);
  for (double& v : p) v = rng.Uniform(lo, hi);
  return p;
}

// Brute-force window query over raw points.
std::set<std::uint64_t> BruteWindow(const std::vector<Point>& points,
                                    const Rect& window) {
  std::set<std::uint64_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (window.ContainsPoint(points[i])) out.insert(i);
  }
  return out;
}

std::set<std::uint64_t> ResultIds(const std::vector<Entry>& entries) {
  std::set<std::uint64_t> out;
  for (const Entry& e : entries) out.insert(e.id);
  return out;
}

TEST(RStarTreeTest, EmptyTreeBehaviour) {
  storage::PageFile file;
  RStarTree tree(&file, 2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_FALSE(tree.RootRect().has_value());
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(Rect({-1.0, -1.0}, {1.0, 1.0}), &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.Delete(Rect::FromPoint({0.0, 0.0}), 0).code(),
            StatusCode::kNotFound);
}

TEST(RStarTreeTest, SingleInsertAndQuery) {
  storage::PageFile file;
  RStarTree tree(&file, 2);
  ASSERT_TRUE(tree.Insert(Rect::FromPoint({1.0, 2.0}), 7).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(Rect({0.0, 0.0}, {2.0, 3.0}), &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 7u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, CapacityDerivedFromPageSize) {
  storage::PageFile file;
  RStarTree tree(&file, 6);
  // Entry: 8 + 96 bytes; header 8 bytes -> (4096-8)/104 = 39.
  EXPECT_EQ(tree.capacity(), 39u);
  EXPECT_GE(tree.min_fill(), 1u);
  EXPECT_LE(tree.min_fill(), tree.capacity() / 2 + 1);
}

class RStarTreeParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RStarTreeParamTest, BulkInsertInvariantsAndQueries) {
  const auto [dims, count] = GetParam();
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;  // small capacity -> deep trees
  RStarTree tree(&file, dims, options);
  Rng rng(dims * 1000 + count);
  std::vector<Point> points;
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(RandomPoint(dims, rng));
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  EXPECT_EQ(tree.size(), count);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();

  // Random window queries match brute force.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> lo(dims), hi(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double a = rng.Uniform(-120.0, 120.0);
      const double b = rng.Uniform(-120.0, 120.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const Rect window(lo, hi);
    std::vector<Entry> results;
    ASSERT_TRUE(tree.WindowQuery(window, &results).ok());
    EXPECT_EQ(ResultIds(results), BruteWindow(points, window));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RStarTreeParamTest,
    ::testing::Values(std::make_tuple(1, 100), std::make_tuple(2, 200),
                      std::make_tuple(2, 1000), std::make_tuple(4, 500),
                      std::make_tuple(6, 300)));

TEST(RStarTreeTest, RectangleDataSupported) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree tree(&file, 2, options);
  Rng rng(5);
  std::vector<Rect> rects;
  for (std::size_t i = 0; i < 300; ++i) {
    const double x = rng.Uniform(-50.0, 50.0);
    const double y = rng.Uniform(-50.0, 50.0);
    rects.push_back(Rect({x, y}, {x + rng.Uniform(0.0, 5.0),
                                  y + rng.Uniform(0.0, 5.0)}));
    ASSERT_TRUE(tree.Insert(rects.back(), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  const Rect window({-10.0, -10.0}, {10.0, 10.0});
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(window, &results).ok());
  std::set<std::uint64_t> expected;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    if (window.Intersects(rects[i])) expected.insert(i);
  }
  EXPECT_EQ(ResultIds(results), expected);
}

TEST(RStarTreeTest, DuplicatePointsAllowed) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 4;
  RStarTree tree(&file, 2, options);
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(Rect::FromPoint({1.0, 1.0}), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<Entry> results;
  ASSERT_TRUE(
      tree.WindowQuery(Rect({0.0, 0.0}, {2.0, 2.0}), &results).ok());
  EXPECT_EQ(results.size(), 50u);
}

TEST(RStarTreeTest, SearchCountsNodeAccesses) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree tree(&file, 2, options);
  Rng rng(6);
  for (std::size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(RandomPoint(2, rng)), i).ok());
  }
  SearchStats stats;
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(Rect({-5.0, -5.0}, {5.0, 5.0}), &results,
                               &stats)
                  .ok());
  EXPECT_GE(stats.nodes_accessed, 1u);
  EXPECT_GE(stats.nodes_accessed, stats.leaf_nodes_accessed);
  EXPECT_EQ(stats.matches, results.size());
  // A selective query must not read the whole tree.
  SearchStats all_stats;
  std::vector<Entry> all;
  ASSERT_TRUE(tree.WindowQuery(Rect({-200.0, -200.0}, {200.0, 200.0}), &all,
                               &all_stats)
                  .ok());
  EXPECT_EQ(all.size(), 500u);
  EXPECT_LT(stats.nodes_accessed, all_stats.nodes_accessed);
}

TEST(RStarTreeTest, DeleteMaintainsInvariants) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree tree(&file, 2, options);
  Rng rng(7);
  std::vector<Point> points;
  const std::size_t count = 400;
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(RandomPoint(2, rng));
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  // Delete a random half.
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  std::set<std::uint64_t> remaining(order.begin(), order.end());
  for (std::size_t k = 0; k < count / 2; ++k) {
    const std::size_t id = order[k];
    ASSERT_TRUE(tree.Delete(Rect::FromPoint(points[id]), id).ok())
        << "delete " << id;
    remaining.erase(id);
    if (k % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString();
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), count / 2);
  // Queries still match brute force over the survivors.
  const Rect window({-60.0, -60.0}, {60.0, 60.0});
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(window, &results).ok());
  std::set<std::uint64_t> expected;
  for (std::uint64_t id : remaining) {
    if (window.ContainsPoint(points[id])) expected.insert(id);
  }
  EXPECT_EQ(ResultIds(results), expected);
}

TEST(RStarTreeTest, DeleteEverything) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 4;
  RStarTree tree(&file, 1, options);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 60; ++i) {
    points.push_back({static_cast<double>(i)});
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  for (std::size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(tree.Delete(Rect::FromPoint(points[i]), i).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Tree is reusable after emptying.
  ASSERT_TRUE(tree.Insert(Rect::FromPoint({5.0}), 99).ok());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, DeleteMissingEntryIsNotFound) {
  storage::PageFile file;
  RStarTree tree(&file, 2);
  ASSERT_TRUE(tree.Insert(Rect::FromPoint({1.0, 1.0}), 1).ok());
  EXPECT_EQ(tree.Delete(Rect::FromPoint({1.0, 1.0}), 2).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(Rect::FromPoint({9.0, 9.0}), 1).code(),
            StatusCode::kNotFound);
}

TEST(RStarTreeTest, NearestNeighborsMatchBruteForce) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree tree(&file, 3, options);
  Rng rng(8);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 600; ++i) {
    points.push_back(RandomPoint(3, rng));
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = RandomPoint(3, rng, -120.0, 120.0);
    const std::size_t k = 1 + trial;
    std::vector<RStarTree::Neighbor> neighbors;
    ASSERT_TRUE(tree.NearestNeighbors(k, q, &neighbors).ok());
    ASSERT_EQ(neighbors.size(), k);
    // Brute-force the k smallest distances.
    std::vector<double> distances;
    for (const Point& p : points) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < 3; ++d) d2 += (p[d] - q[d]) * (p[d] - q[d]);
      distances.push_back(d2);
    }
    std::sort(distances.begin(), distances.end());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(neighbors[i].squared_distance, distances[i], 1e-9)
          << "rank " << i;
    }
    // Sorted ascending.
    for (std::size_t i = 1; i < k; ++i) {
      EXPECT_LE(neighbors[i - 1].squared_distance,
                neighbors[i].squared_distance);
    }
  }
}

TEST(RStarTreeTest, NearestNeighborsPrunes) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree tree(&file, 2, options);
  Rng rng(9);
  for (std::size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(RandomPoint(2, rng)), i).ok());
  }
  SearchStats stats;
  std::vector<RStarTree::Neighbor> neighbors;
  ASSERT_TRUE(tree.NearestNeighbors(1, {0.0, 0.0}, &neighbors, &stats).ok());
  // Branch-and-bound must touch far fewer pages than the tree holds.
  EXPECT_LT(stats.nodes_accessed, file.page_count() / 2);
}

TEST(RStarTreeTest, KnnWithKLargerThanTree) {
  storage::PageFile file;
  RStarTree tree(&file, 1);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        tree.Insert(Rect::FromPoint({static_cast<double>(i)}), i).ok());
  }
  std::vector<RStarTree::Neighbor> neighbors;
  ASSERT_TRUE(tree.NearestNeighbors(10, {2.0}, &neighbors).ok());
  EXPECT_EQ(neighbors.size(), 5u);
}

TEST(RStarTreeTest, ForcedReinsertOffStillCorrect) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;
  options.forced_reinsert = false;
  RStarTree tree(&file, 2, options);
  Rng rng(10);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 400; ++i) {
    points.push_back(RandomPoint(2, rng));
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  const Rect window({-20.0, -20.0}, {20.0, 20.0});
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(window, &results).ok());
  EXPECT_EQ(ResultIds(results), BruteWindow(points, window));
}

TEST(RStarTreeTest, SortedInsertionOrderStillBalanced) {
  // Monotone insertion is the classic R-tree worst case; R* must stay sound.
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree tree(&file, 2, options);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 500; ++i) {
    points.push_back({static_cast<double>(i), static_cast<double>(i)});
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GE(tree.height(), 3u);
  const Rect window({100.0, 100.0}, {150.0, 150.0});
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(window, &results).ok());
  EXPECT_EQ(results.size(), 51u);
}

TEST(RStarTreeTest, CustomPredicateSearch) {
  // The MT-index hook: predicates other than plain window intersection.
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree tree(&file, 2, options);
  Rng rng(11);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 300; ++i) {
    points.push_back(RandomPoint(2, rng));
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  // Predicate: rect lies within L2 distance 30 of the origin (monotone).
  const Point origin = {0.0, 0.0};
  std::vector<Entry> results;
  ASSERT_TRUE(tree.Search(
                      [&](const Rect& rect) {
                        return rect.MinSquaredDistance(origin) <= 900.0;
                      },
                      &results)
                  .ok());
  std::set<std::uint64_t> expected;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i][0] * points[i][0] + points[i][1] * points[i][1] <= 900.0) {
      expected.insert(i);
    }
  }
  EXPECT_EQ(ResultIds(results), expected);
}

TEST(RStarTreeTest, BufferPoolIntegration) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree tree(&file, 2, options);
  Rng rng(21);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 300; ++i) {
    points.push_back(RandomPoint(2, rng));
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(points.back()), i).ok());
  }
  storage::BufferPool pool(&file, 256);
  tree.SetBufferPool(&pool);

  const Rect window({-30.0, -30.0}, {30.0, 30.0});
  std::vector<Entry> warm1, warm2;
  SearchStats s1, s2;
  file.ResetStats();
  ASSERT_TRUE(tree.WindowQuery(window, &warm1, &s1).ok());
  const std::uint64_t cold_physical = file.stats().reads;
  ASSERT_TRUE(tree.WindowQuery(window, &warm2, &s2).ok());
  const std::uint64_t warm_physical = file.stats().reads - cold_physical;
  // Same answers, same logical accesses, near-zero warm physical reads.
  EXPECT_EQ(ResultIds(warm1), BruteWindow(points, window));
  EXPECT_EQ(ResultIds(warm2), ResultIds(warm1));
  EXPECT_EQ(s1.nodes_accessed, s2.nodes_accessed);
  EXPECT_EQ(warm_physical, 0u);

  // Updates through the pool keep the tree sound and the file coherent.
  ASSERT_TRUE(tree.Insert(Rect::FromPoint({0.5, 0.5}), 999).ok());
  tree.SetBufferPool(nullptr);  // read directly from the file again
  std::vector<Entry> direct;
  ASSERT_TRUE(tree.WindowQuery(Rect({0.0, 0.0}, {1.0, 1.0}), &direct).ok());
  bool found = false;
  for (const Entry& e : direct) {
    if (e.id == 999) found = true;
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, NearestNeighborsOnRectData) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree tree(&file, 2, options);
  Rng rng(22);
  std::vector<Rect> rects;
  for (std::size_t i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-50.0, 50.0);
    const double y = rng.Uniform(-50.0, 50.0);
    rects.push_back(
        Rect({x, y}, {x + rng.Uniform(0.0, 4.0), y + rng.Uniform(0.0, 4.0)}));
    ASSERT_TRUE(tree.Insert(rects.back(), i).ok());
  }
  const Point q = {3.0, -7.0};
  std::vector<RStarTree::Neighbor> neighbors;
  ASSERT_TRUE(tree.NearestNeighbors(3, q, &neighbors).ok());
  ASSERT_EQ(neighbors.size(), 3u);
  // Brute force over rect MINDIST.
  std::vector<double> distances;
  for (const Rect& r : rects) distances.push_back(r.MinSquaredDistance(q));
  std::sort(distances.begin(), distances.end());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(neighbors[i].squared_distance, distances[i], 1e-9);
  }
}

TEST(RStarTreeTest, CorruptedPageSurfacesAsError) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 4;
  RStarTree tree(&file, 2, options);
  Rng rng(12);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(RandomPoint(2, rng)), i).ok());
  }
  ASSERT_TRUE(file.CorruptForTesting(tree.root_page(), 100).ok());
  std::vector<Entry> results;
  EXPECT_EQ(
      tree.WindowQuery(Rect({-200.0, -200.0}, {200.0, 200.0}), &results)
          .code(),
      StatusCode::kCorruption);
}

class BulkLoadTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BulkLoadTest, InvariantsAndQueryEquivalence) {
  const auto [dims, count] = GetParam();
  Rng rng(dims * 131 + count);
  std::vector<Point> points;
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(RandomPoint(dims, rng));
    entries.push_back(Entry{Rect::FromPoint(points.back()), i});
  }
  storage::PageFile bulk_file;
  TreeOptions options;
  options.capacity_override = 8;
  RStarTree bulk(&bulk_file, dims, options);
  ASSERT_TRUE(bulk.BulkLoad(entries).ok());
  EXPECT_EQ(bulk.size(), count);
  ASSERT_TRUE(bulk.CheckInvariants().ok())
      << bulk.CheckInvariants().ToString();

  // Same query answers as an insertion-built tree (and brute force).
  storage::PageFile incr_file;
  RStarTree incremental(&incr_file, dims, options);
  for (const Entry& e : entries) {
    ASSERT_TRUE(incremental.Insert(e.rect, e.id).ok());
  }
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> lo(dims), hi(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double a = rng.Uniform(-120.0, 120.0);
      const double b = rng.Uniform(-120.0, 120.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const Rect window(lo, hi);
    std::vector<Entry> from_bulk, from_incremental;
    ASSERT_TRUE(bulk.WindowQuery(window, &from_bulk).ok());
    ASSERT_TRUE(incremental.WindowQuery(window, &from_incremental).ok());
    EXPECT_EQ(ResultIds(from_bulk), ResultIds(from_incremental));
    EXPECT_EQ(ResultIds(from_bulk), BruteWindow(points, window));
  }
  // Bulk trees are denser: never more pages than the insertion-built tree.
  EXPECT_LE(bulk_file.page_count(), incr_file.page_count());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BulkLoadTest,
    ::testing::Values(std::make_tuple(1, 9), std::make_tuple(2, 100),
                      std::make_tuple(2, 1000), std::make_tuple(4, 500),
                      std::make_tuple(6, 777), std::make_tuple(3, 8),
                      std::make_tuple(2, 65)));

TEST(BulkLoadExtraTest, RequiresEmptyTreeAndSupportsUpdatesAfter) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 6;
  RStarTree tree(&file, 2, options);
  Rng rng(77);
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 200; ++i) {
    entries.push_back(Entry{Rect::FromPoint(RandomPoint(2, rng)), i});
  }
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.BulkLoad(entries).code(), StatusCode::kFailedPrecondition);

  // Inserts and deletes keep working on a bulk-loaded tree.
  ASSERT_TRUE(tree.Insert(Rect::FromPoint({0.0, 0.0}), 999).ok());
  ASSERT_TRUE(tree.Delete(entries[5].rect, 5).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), 200u);
}

TEST(BulkLoadExtraTest, EmptyAndSingleton) {
  storage::PageFile file;
  RStarTree tree(&file, 2);
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.BulkLoad({Entry{Rect::FromPoint({1.0, 2.0}), 7}}).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<Entry> results;
  ASSERT_TRUE(tree.WindowQuery(Rect({0.0, 0.0}, {2.0, 3.0}), &results).ok());
  ASSERT_EQ(results.size(), 1u);
}

TEST(RStarTreeTest, VisitNodesSeesWholeTree) {
  storage::PageFile file;
  TreeOptions options;
  options.capacity_override = 4;
  RStarTree tree(&file, 2, options);
  Rng rng(13);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Rect::FromPoint(RandomPoint(2, rng)), i).ok());
  }
  std::size_t leaf_entries = 0;
  std::size_t max_level = 0;
  ASSERT_TRUE(tree.VisitNodes([&](const RStarTree::NodeView& view) {
                    if (view.is_leaf) leaf_entries += view.entries.size();
                    max_level = std::max<std::size_t>(max_level, view.level);
                  })
                  .ok());
  EXPECT_EQ(leaf_entries, 100u);
  EXPECT_EQ(max_level + 1, tree.height());
}

}  // namespace
}  // namespace tsq::rstar
