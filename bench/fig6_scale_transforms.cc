// Figure 6 of the paper: time per range query (Query 1) as the number of
// transformations grows from 1 to 30 on the stock data set (1068 sequences
// of length 128; ours is the synthetic replacement described in DESIGN.md).
//
// The transformations are moving averages starting at 5 days: |T| = k uses
// windows 5 .. 4+k (the paper: "ranging from 5-day to 34-day"). rho = 0.96.
//
// Paper's result: sequential scan is flat; ST-index grows linearly with |T|;
// MT-index stays below both.
//
// --threads=N runs the parallel executor with N workers (0 = one per
// hardware thread). Counters are identical for every N; only time changes.

#include <cstdio>

#include "bench_util.h"
#include "exec/thread_pool.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  std::vector<std::size_t> counts = {1, 2, 4, 8, 12, 16, 20, 25, 30};
  if (bench::FastMode()) counts = {1, 4, 8};
  const std::size_t threads = bench::ParseThreadsFlag(argc, argv);
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;

  std::printf("Figure 6: time per query vs. number of transformations\n");
  std::printf("(1068 stocks x 128 days, MA 5..4+k, rho = 0.96, "
              "%zu queries/point, %zu worker thread(s))\n\n",
              bench::QueryReps(), exec::EffectiveThreads(threads));

  ts::StockMarketConfig config;  // 1068 x 128 as in the paper
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));
  bench::CalibrateSimulatedDisk(engine);

  bench::Table table({"|T|", "seq-scan(ms)", "ST-index(ms)", "MT-index(ms)",
                      "seq DA", "ST DA", "MT DA", "output"});
  for (const std::size_t k : counts) {
    core::RangeQuerySpec spec;
    spec.transforms = transform::MovingAverageRange(n, 5, 4 + k);
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);

    Rng rng_seq(k), rng_st(k), rng_mt(k);
    const auto seq = bench::MeasureRangeQuery(
        engine, spec, core::Algorithm::kSequentialScan, rng_seq, threads);
    const auto st = bench::MeasureRangeQuery(engine, spec,
                                             core::Algorithm::kStIndex,
                                             rng_st, threads);
    const auto mt = bench::MeasureRangeQuery(engine, spec,
                                             core::Algorithm::kMtIndex,
                                             rng_mt, threads);
    table.AddRow({std::to_string(k), bench::FormatDouble(seq.millis),
                  bench::FormatDouble(st.millis),
                  bench::FormatDouble(mt.millis),
                  bench::FormatDouble(seq.disk_accesses, 0),
                  bench::FormatDouble(st.disk_accesses, 0),
                  bench::FormatDouble(mt.disk_accesses, 0),
                  bench::FormatDouble(mt.output_size, 1)});
    last_trace = mt.last_trace_json;
  }
  table.Print();
  table.WriteCsv("fig6_scale_transforms");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected shape (paper Fig. 6): flat sequential scan, "
              "linear ST-index,\nMT-index below both across the sweep.\n");
  return 0;
}
