// Extension bench: k-nearest-neighbour queries under multiple
// transformations (the nearest-neighbour paragraph of the paper's Section
// 4.1). Measures the branch-and-bound search against the sequential scan
// for growing k and |T|.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "core/explain.h"
#include "transform/builders.h"
#include "ts/generate.h"
#include "ts/normal_form.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;
  std::printf("Extension: k-NN under multiple transformations\n");

  ts::StockMarketConfig config;
  config.num_series = bench::FastMode() ? 300 : 1068;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));
  bench::CalibrateSimulatedDisk(engine);
  const std::size_t queries = bench::FastMode() ? 3 : 50;
  std::printf("(%zu stocks, %zu queries averaged)\n\n", engine.size(),
              queries);

  bench::Table table({"k", "|T|", "scan(ms)", "MT-index(ms)",
                      "MT candidates", "MT index nodes"});
  for (const std::size_t k : {1u, 5u, 20u}) {
    for (const std::size_t transforms : {1u, 8u, 16u}) {
      core::KnnQuerySpec spec;
      spec.k = k;
      spec.transforms = transform::MovingAverageRange(n, 5, 4 + transforms);

      double scan_ms = 0.0, mt_ms = 0.0, candidates = 0.0, nodes = 0.0;
      core::ExecOptions scan_options;
      scan_options.planner.algorithm = core::Algorithm::kSequentialScan;
      core::ExecOptions mt_options;
      mt_options.planner.algorithm = core::Algorithm::kMtIndex;
      Rng rng(k * 100 + transforms);
      for (std::size_t q = 0; q < queries; ++q) {
        const std::size_t id = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(engine.size()) - 1));
        spec.query = ts::Denormalize(engine.dataset().normal(id));
        Stopwatch watch;
        const auto scan = engine.Execute(spec, scan_options);
        scan_ms += watch.ElapsedMillis();
        watch.Reset();
        const auto mt = engine.Execute(spec, mt_options);
        mt_ms += watch.ElapsedMillis();
        if (!scan.ok() || !mt.ok()) return 1;
        if (scan->knn()->matches.size() != mt->knn()->matches.size()) {
          std::printf("MISMATCH\n");
          return 1;
        }
        candidates += static_cast<double>(mt->stats().candidates);
        nodes += static_cast<double>(mt->stats().index_nodes_accessed);
        last_trace = core::ExplainJson(*mt);
      }
      const double d = static_cast<double>(queries);
      table.AddRow({std::to_string(k), std::to_string(transforms),
                    bench::FormatDouble(scan_ms / d),
                    bench::FormatDouble(mt_ms / d),
                    bench::FormatDouble(candidates / d, 0),
                    bench::FormatDouble(nodes / d, 0)});
    }
  }
  table.Print();
  table.WriteCsv("extension_knn");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected: the transformed-MBR bound refines only a small "
              "fraction of the data set\nfor small k, degrading gracefully "
              "as k and the transformation spread grow.\n");
  return 0;
}
