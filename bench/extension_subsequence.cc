// Extension bench: subsequence matching (FRM, the extension the paper's
// Section 2.1 cites) with and without transformations. Compares the
// sub-trail R*-tree index against a full sliding-window scan and reports the
// FRM trail compression.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "subseq/subsequence_index.h"
#include "transform/builders.h"

namespace {

tsq::ts::Series RandomWalk(std::size_t n, tsq::Rng& rng) {
  tsq::ts::Series x(n);
  double v = 0.0;
  for (double& value : x) {
    v += rng.Uniform(-1.0, 1.0);
    value = v;
  }
  return x;
}

}  // namespace

int main() {
  using namespace tsq;
  const std::size_t window = 64;
  const std::size_t sequences = bench::FastMode() ? 10 : 50;
  const std::size_t length = bench::FastMode() ? 500 : 2000;
  const std::size_t queries = bench::FastMode() ? 3 : 20;

  std::printf("Extension: subsequence similarity search (window = %zu)\n",
              window);
  std::printf("(%zu sequences of length %zu, %zu queries averaged)\n\n",
              sequences, length, queries);

  Rng rng(1994);
  subseq::SubsequenceOptions options;
  options.window = window;
  subseq::SubsequenceIndex index(options);
  Stopwatch build;
  for (std::size_t s = 0; s < sequences; ++s) {
    const auto id = index.AddSequence(RandomWalk(length, rng));
    if (!id.ok()) return 1;
  }
  std::printf("build: %.0f ms; %zu windows -> %zu sub-trails (%.1fx "
              "compression)\n\n",
              build.ElapsedMillis(), index.window_count(),
              index.subtrail_count(),
              static_cast<double>(index.window_count()) /
                  static_cast<double>(index.subtrail_count()));

  bench::Table table({"transforms", "epsilon", "indexed(ms)", "scan(ms)",
                      "cand. windows", "index nodes", "matches"});
  const auto mas = transform::MovingAverageRange(window, 1, 6);
  struct Config {
    const char* label;
    std::span<const transform::SpectralTransform> transforms;
    double epsilon;
  };
  const Config configs[] = {
      {"identity", {}, 2.0},
      {"identity", {}, 4.0},
      {"MA 1..6", mas, 2.0},
      {"MA 1..6", mas, 4.0},
  };
  for (const Config& config : configs) {
    double indexed_ms = 0.0, scan_ms = 0.0;
    double candidates = 0.0, nodes = 0.0, matches = 0.0;
    Rng query_rng(7);
    for (std::size_t q = 0; q < queries; ++q) {
      const ts::Series query = RandomWalk(window, query_rng);
      subseq::SubseqStats stats;
      Stopwatch watch;
      const auto fast =
          index.RangeSearch(query, config.epsilon, config.transforms, &stats);
      indexed_ms += watch.ElapsedMillis();
      if (!fast.ok()) return 1;
      watch.Reset();
      const auto slow =
          index.BruteForce(query, config.epsilon, config.transforms);
      scan_ms += watch.ElapsedMillis();
      if (fast->size() != slow.size()) {
        std::printf("MISMATCH: indexed %zu vs scan %zu\n", fast->size(),
                    slow.size());
        return 1;
      }
      candidates += static_cast<double>(stats.candidate_windows);
      nodes += static_cast<double>(stats.index_nodes_accessed);
      matches += static_cast<double>(fast->size());
    }
    const double d = static_cast<double>(queries);
    table.AddRow({config.label, bench::FormatDouble(config.epsilon, 1),
                  bench::FormatDouble(indexed_ms / d),
                  bench::FormatDouble(scan_ms / d),
                  bench::FormatDouble(candidates / d, 0),
                  bench::FormatDouble(nodes / d, 0),
                  bench::FormatDouble(matches / d, 1)});
  }
  table.Print();
  table.WriteCsv("extension_subsequence");
  std::printf("\nExpected: the sub-trail index inspects a small fraction of "
              "the %zu windows and\nbeats the sliding scan by one to two "
              "orders of magnitude, with identical answers.\n",
              index.window_count());
  return 0;
}
