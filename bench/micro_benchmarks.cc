// Micro-benchmarks (google-benchmark) for the building blocks: FFT
// throughput, R*-tree operations, transformation-MBR application, and the
// frequency-domain distance kernel that dominates post-processing.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/polar_bounds.h"
#include "dft/fft.h"
#include "kernels/kernels.h"
#include "rstar/rstar_tree.h"
#include "storage/page_file.h"
#include "transform/builders.h"
#include "transform/transform_mbr.h"
#include "ts/generate.h"

namespace {

using tsq::Rng;

std::vector<double> RandomSignal(std::size_t n, Rng& rng) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  return x;
}

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto x = RandomSignal(n, rng);
  tsq::dft::FftPlan plan(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.Forward(std::span<const double>(x)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FftForward)->Arg(128)->Arg(129)->Arg(1024)->Arg(4096);

void BM_TransformedDistance(benchmark::State& state) {
  const std::size_t n = 128;
  Rng rng(1);
  tsq::dft::FftPlan plan(n);
  const auto x = plan.Forward(std::span<const double>(RandomSignal(n, rng)));
  const auto y = plan.Forward(std::span<const double>(RandomSignal(n, rng)));
  const auto t = tsq::transform::MovingAverageTransform(n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.TransformedSquaredDistance(x, y));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformedDistance);

// Raw per-ISA kernel throughput. Arg(0..2) selects the variant (scalar,
// sse2, avx2); unsupported variants skip. The standalone kernel_suite
// binary runs the full sweep and writes BENCH_kernels.json.
void BM_KernelSquaredDistance(benchmark::State& state) {
  const auto isa = static_cast<tsq::kernels::Isa>(state.range(0));
  if (!tsq::kernels::IsaSupported(isa)) {
    state.SkipWithError("ISA not supported on this machine");
    return;
  }
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(n);
  const auto x = RandomSignal(n, rng);
  const auto y = RandomSignal(n, rng);
  const auto& table = tsq::kernels::TableFor(isa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.squared_distance(x.data(), y.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 16);
  state.SetLabel(tsq::kernels::IsaName(isa));
}
BENCHMARK(BM_KernelSquaredDistance)
    ->ArgsProduct({{0, 1, 2}, {128, 4096}});

void BM_RStarInsert(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<tsq::rstar::Point> points;
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({rng.Uniform(-100.0, 100.0), rng.Uniform(-100.0, 100.0),
                      rng.Uniform(-100.0, 100.0),
                      rng.Uniform(-100.0, 100.0)});
  }
  for (auto _ : state) {
    tsq::storage::PageFile file;
    tsq::rstar::RStarTree tree(&file, 4);
    for (std::size_t i = 0; i < count; ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(tsq::rstar::Rect::FromPoint(points[i]), i).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(5000);

void BM_RStarWindowQuery(benchmark::State& state) {
  Rng rng(8);
  tsq::storage::PageFile file;
  tsq::rstar::RStarTree tree(&file, 4);
  for (std::size_t i = 0; i < 10000; ++i) {
    tsq::rstar::Point p = {rng.Uniform(-100.0, 100.0),
                           rng.Uniform(-100.0, 100.0),
                           rng.Uniform(-100.0, 100.0),
                           rng.Uniform(-100.0, 100.0)};
    (void)tree.Insert(tsq::rstar::Rect::FromPoint(p), i);
  }
  const tsq::rstar::Rect window({-10.0, -10.0, -10.0, -10.0},
                                {10.0, 10.0, 10.0, 10.0});
  for (auto _ : state) {
    std::vector<tsq::rstar::Entry> results;
    benchmark::DoNotOptimize(tree.WindowQuery(window, &results).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RStarWindowQuery);

void BM_MbrApply(benchmark::State& state) {
  tsq::transform::FeatureLayout layout;
  std::vector<tsq::transform::FeatureTransform> fts;
  for (const auto& t : tsq::transform::MovingAverageRange(128, 5, 34)) {
    fts.push_back(t.ToFeatureTransform(layout));
  }
  const tsq::transform::TransformMbr mbr(fts, layout);
  Rng rng(9);
  std::vector<double> lo(layout.dimensions()), hi(layout.dimensions());
  for (std::size_t d = 0; d < layout.dimensions(); ++d) {
    lo[d] = rng.Uniform(-1.0, 1.0);
    hi[d] = lo[d] + rng.Uniform(0.0, 1.0);
  }
  const tsq::rstar::Rect rect(lo, hi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbr.Apply(rect));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MbrApply);

void BM_PolarBoxMin(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsq::core::PolarBoxMinSquaredDistance(
        0.5, 1.5, -0.3, 0.2, 2.0, 3.0, 1.0, 1.4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolarBoxMin);

void BM_StockGeneration(benchmark::State& state) {
  tsq::ts::StockMarketConfig config;
  config.num_series = 1068;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsq::ts::GenerateStockMarket(config));
  }
  state.SetItemsProcessed(state.iterations() * 1068);
}
BENCHMARK(BM_StockGeneration);

}  // namespace

BENCHMARK_MAIN();
