// Ablation: the symmetry-property improvement (Section 2.1). For real
// sequences |X_{n-f}| == |X_f|, so each retained coefficient's contribution
// to the distance lower bound can be doubled, tightening every filter
// without adding index dimensions. The author's thesis claims this improves
// search time by more than a factor of 2; this bench measures candidates,
// disk accesses and time with the doubling on and off.

#include <cstdio>

#include "bench_util.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;
  std::printf("Ablation: symmetry-property distance doubling\n");
  std::printf("(1068 stocks, MA 5..20, rho thresholds swept, "
              "%zu queries/point)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  const auto stocks = ts::GenerateStockMarket(config);

  bench::Table table({"rho", "symmetry", "time(ms)", "disk acc.",
                      "candidates", "output"});
  for (const double rho : {0.90, 0.96, 0.99}) {
    for (const bool use_symmetry : {false, true}) {
      core::SimilarityEngine::Options options;
      options.layout.use_symmetry = use_symmetry;
      core::SimilarityEngine engine(stocks, options);

      core::RangeQuerySpec spec;
      spec.transforms = transform::MovingAverageRange(n, 5, 20);
      spec.epsilon = ts::CorrelationToDistanceThreshold(rho, n);
      Rng rng(static_cast<std::uint64_t>(rho * 1000));
      const auto m = bench::MeasureRangeQuery(engine, spec,
                                              core::Algorithm::kMtIndex, rng);
      table.AddRow({bench::FormatDouble(rho), use_symmetry ? "on" : "off",
                    bench::FormatDouble(m.millis),
                    bench::FormatDouble(m.disk_accesses, 0),
                    bench::FormatDouble(m.candidates, 0),
                    bench::FormatDouble(m.output_size, 1)});
      last_trace = m.last_trace_json;
    }
  }
  table.Print();
  table.WriteCsv("ablation_symmetry");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected: with the doubling on, noticeably fewer candidates "
              "and disk accesses\nat every threshold (the thesis' >2x filter "
              "improvement), identical output sizes.\n");
  return 0;
}
