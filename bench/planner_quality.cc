// Planner quality: how close does Algorithm::kAuto come to the best fixed
// plan on the paper's three headline workloads?
//
// For each workload every fixed plan (sequential scan, ST-index, MT-index
// packed / contiguous k / cluster-aware) is measured, then the planner runs
// the same queries with kAuto. All plans are scored with one uniform
// measured cost — disk accesses + 0.4 * comparisons, the paper's Section 5.2
// cost function on real counters — and the auto row's *regret* is its cost
// relative to the best fixed plan (0% = the planner matched the best plan).
//
// The planner's acceptance bar: regret within 10% on every workload, and on
// the two-cluster workload (Fig. 9) strictly cheaper than the worst fixed
// plan — the packed MBR across the gap it must learn to avoid.
//
// --trace-json=<path> writes the ExplainJson (planner decision included) of
// the last auto query.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"
#include "ts/generate.h"

namespace {

using namespace tsq;

constexpr double kCmpWeight = 0.4;  // the paper's C_cmp / C_DA

double UniformCost(const bench::QueryMeasurement& m) {
  return m.disk_accesses + kCmpWeight * m.comparisons;
}

struct PlanRow {
  std::string label;
  bench::QueryMeasurement measurement;
};

struct WorkloadReport {
  std::string name;
  double auto_cost = 0.0;
  double best_fixed = 0.0;
  double worst_fixed = 0.0;
  std::string best_label;
  std::string auto_trace;
};

core::ExecOptions AutoOptions() {
  core::ExecOptions options;  // algorithm already kAuto
  // Pin the paper's constants: the bench scores with the same weights, so
  // the planner optimizes exactly the metric the table reports.
  options.planner.cost_constants_override =
      core::CostConstants{1.0, kCmpWeight};
  return options;
}

WorkloadReport RunWorkload(const std::string& name,
                           core::SimilarityEngine& engine,
                           core::RangeQuerySpec spec, std::uint64_t seed,
                           bench::Table* table) {
  bench::CalibrateSimulatedDisk(engine);
  const std::size_t count = spec.transforms.size();
  std::vector<transform::FeatureTransform> fts;
  for (const auto& t : spec.transforms) {
    fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
  }

  std::vector<PlanRow> fixed;
  const auto measure_fixed = [&](const std::string& label,
                                 core::Algorithm algorithm,
                                 transform::Partition partition) {
    spec.partition = std::move(partition);
    Rng rng(seed);
    fixed.push_back(
        {label, bench::MeasureRangeQuery(engine, spec, algorithm, rng)});
  };
  measure_fixed("seq-scan", core::Algorithm::kSequentialScan, {});
  measure_fixed("ST-index", core::Algorithm::kStIndex, {});
  measure_fixed("MT packed", core::Algorithm::kMtIndex,
                transform::PartitionAll(count));
  for (const std::size_t k : {2u, 4u, 8u}) {
    if (k >= count) continue;
    measure_fixed("MT contiguous k=" + std::to_string(k),
                  core::Algorithm::kMtIndex,
                  transform::PartitionIntoGroups(count, k));
  }
  {
    const transform::Partition clustered =
        transform::PartitionByClusters(fts, (count + 1) / 2);
    if (!clustered.empty() && clustered.size() < count) {
      measure_fixed("MT clustered k=" + std::to_string(clustered.size()),
                    core::Algorithm::kMtIndex, clustered);
    }
  }

  spec.partition.clear();
  Rng rng(seed);
  const auto auto_m =
      bench::MeasureRangeQuery(engine, spec, AutoOptions(), rng);

  WorkloadReport report;
  report.name = name;
  report.auto_cost = UniformCost(auto_m);
  report.auto_trace = auto_m.last_trace_json;
  report.best_fixed = UniformCost(fixed.front().measurement);
  report.worst_fixed = report.best_fixed;
  report.best_label = fixed.front().label;
  for (const PlanRow& row : fixed) {
    const double cost = UniformCost(row.measurement);
    if (cost < report.best_fixed) {
      report.best_fixed = cost;
      report.best_label = row.label;
    }
    if (cost > report.worst_fixed) report.worst_fixed = cost;
    table->AddRow({name, row.label,
                   bench::FormatDouble(row.measurement.millis),
                   bench::FormatDouble(cost, 0),
                   bench::FormatDouble(row.measurement.disk_accesses, 0),
                   bench::FormatDouble(row.measurement.comparisons, 0)});
  }
  table->AddRow({name, "auto", bench::FormatDouble(auto_m.millis),
                 bench::FormatDouble(report.auto_cost, 0),
                 bench::FormatDouble(auto_m.disk_accesses, 0),
                 bench::FormatDouble(auto_m.comparisons, 0)});
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);

  std::printf("Planner quality: kAuto vs. every fixed plan\n");
  std::printf("(uniform cost = disk accesses + %.1f * comparisons; "
              "%zu queries/point)\n\n",
              kCmpWeight, bench::QueryReps());

  bench::Table table({"workload", "plan", "time(ms)", "cost", "disk", "cmp"});
  std::vector<WorkloadReport> reports;

  {
    // Fig. 5 shape: random walks, 16 contiguous moving averages.
    ts::RandomWalkConfig config;
    config.num_series = bench::FastMode() ? 500 : 2000;
    config.length = n;
    config.seed = 51;
    core::SimilarityEngine engine(ts::GenerateRandomWalks(config));
    core::RangeQuerySpec spec;
    spec.transforms = transform::MovingAverageRange(n, 10, 25);
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
    reports.push_back(RunWorkload("fig5", engine, spec, 51, &table));
  }
  {
    // Fig. 6 shape: the stock market with the full 1..40 window sweep.
    ts::StockMarketConfig config;
    if (bench::FastMode()) config.num_series = 300;
    core::SimilarityEngine engine(ts::GenerateStockMarket(config));
    core::RangeQuerySpec spec;
    spec.transforms = transform::MovingAverageRange(n, 1, 40);
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
    reports.push_back(RunWorkload("fig6", engine, spec, 61, &table));
  }
  {
    // Fig. 9 shape: two transformation clusters (plain + inverted).
    ts::StockMarketConfig config;
    if (bench::FastMode()) config.num_series = 300;
    core::SimilarityEngine engine(ts::GenerateStockMarket(config));
    core::RangeQuerySpec spec;
    spec.transforms = transform::MovingAverageRange(n, 6, 29);
    const auto plain = spec.transforms;
    for (const auto& t : plain) {
      spec.transforms.push_back(transform::Inverted(t));
    }
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
    reports.push_back(RunWorkload("fig9", engine, spec, 91, &table));
  }

  table.Print();
  table.WriteCsv("planner_quality");

  std::printf("\nRegret (auto vs. best fixed plan):\n");
  bool ok = true;
  for (const WorkloadReport& r : reports) {
    const double regret =
        r.best_fixed > 0.0 ? (r.auto_cost / r.best_fixed - 1.0) * 100.0 : 0.0;
    const bool within = r.auto_cost <= r.best_fixed * 1.10;
    const bool beats_worst = r.auto_cost < r.worst_fixed;
    std::printf("  %-5s auto %.0f vs best %.0f (%s)  regret %+.1f%%  %s%s\n",
                r.name.c_str(), r.auto_cost, r.best_fixed,
                r.best_label.c_str(), regret,
                within ? "within 10%" : "OVER 10%",
                beats_worst ? "" : "  [does NOT beat worst fixed plan]");
    ok = ok && within && beats_worst;
  }
  bench::WriteTraceJson(trace_path, reports.back().auto_trace);
  std::printf("\n%s\n", ok ? "planner quality: PASS"
                           : "planner quality: FAIL (see rows above)");
  return ok ? 0 : 1;
}
