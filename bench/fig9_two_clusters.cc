// Figure 9 of the paper: the Fig. 8 sweep repeated after adding the
// *inverted* version of every transformation, creating two clusters of
// transformation points. Packing a rectangle across the inter-cluster gap
// destroys the filter: the paper observes bumps in both running time and
// disk accesses when one third (16) or all (48) of the transformations share
// a rectangle, because exactly those packings straddle the gap.
//
// The fix the paper proposes — detect clusters first, never span the gap —
// is measured as the final rows (cluster-aware partitioning).

#include <cstdio>

#include "bench_util.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;

  std::printf("Figure 9: two transformation clusters (MA 6..29 + inverted)\n");
  std::printf("(|T| = 48; equal contiguous partitions vs. cluster-aware; "
              "%zu queries/point)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));
  bench::CalibrateSimulatedDisk(engine);

  core::RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(n, 6, 29);
  {
    const auto plain = spec.transforms;
    for (const auto& t : plain) {
      spec.transforms.push_back(transform::Inverted(t));
    }
  }
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
  const std::size_t total = spec.transforms.size();

  std::vector<std::size_t> per_group_values = {1,  2,  4,  6,  8,  12,
                                               16, 24, 32, 48};
  if (bench::FastMode()) per_group_values = {4, 16, 48};

  bench::Table table({"partitioning", "per MBR", "rects", "time(ms)",
                      "disk accesses", "candidates"});
  for (const std::size_t per_group : per_group_values) {
    spec.partition = transform::PartitionBySize(total, per_group);
    Rng rng(per_group);
    const auto m = bench::MeasureRangeQuery(engine, spec,
                                            core::Algorithm::kMtIndex, rng);
    // A contiguous group straddles the gap exactly when the group size does
    // not divide the 24-transformation cluster evenly: 16 (one third), 32,
    // and 48 (all) do; 24 happens to split exactly at the cluster boundary.
    const bool spans_gap =
        per_group == 16 || per_group == 32 || per_group == 48;
    table.AddRow({spans_gap ? "contiguous (spans gap)" : "contiguous",
                  std::to_string(per_group),
                  std::to_string(spec.partition.size()),
                  bench::FormatDouble(m.millis),
                  bench::FormatDouble(m.disk_accesses, 0),
                  bench::FormatDouble(m.candidates, 0)});
  }

  // Cluster-aware partitioning: detect the two clusters, then pack within
  // each cluster only.
  std::vector<transform::FeatureTransform> fts;
  for (const auto& t : spec.transforms) {
    fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
  }
  for (const std::size_t per_group : {8u, 24u}) {
    spec.partition = transform::PartitionByClusters(fts, per_group);
    Rng rng(1000 + per_group);
    const auto m = bench::MeasureRangeQuery(engine, spec,
                                            core::Algorithm::kMtIndex, rng);
    table.AddRow({"cluster-aware", std::to_string(per_group),
                  std::to_string(spec.partition.size()),
                  bench::FormatDouble(m.millis),
                  bench::FormatDouble(m.disk_accesses, 0),
                  bench::FormatDouble(m.candidates, 0)});
    last_trace = m.last_trace_json;
  }
  table.Print();
  table.WriteCsv("fig9_two_clusters");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected shape (paper Fig. 9): bumps in time and disk "
              "accesses where a rectangle\nspans the inter-cluster gap "
              "(16+ per MBR with contiguous packing); the cluster-aware\n"
              "partitioning avoids the bumps at the same packing sizes.\n");
  return 0;
}
