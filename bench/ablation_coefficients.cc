// Ablation: index dimensionality. The paper keeps 2 DFT coefficients
// (4 dimensions) plus mean/stddev; this bench sweeps 1..4 coefficients and
// toggles the mean/stddev dimensions, measuring filter power vs. index size
// (more dimensions = fewer entries per page = taller tree).

#include <cstdio>

#include "bench_util.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;
  std::printf("Ablation: retained DFT coefficients and mean/std dimensions\n");
  std::printf("(1068 stocks, MA 5..20, rho = 0.96, %zu queries/point)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  const auto stocks = ts::GenerateStockMarket(config);

  bench::Table table({"coefficients", "mean/std", "index dims",
                      "node capacity", "time(ms)", "disk acc.",
                      "candidates"});
  for (const std::size_t coefficients : {1u, 2u, 3u, 4u}) {
    for (const bool mean_std : {true, false}) {
      core::SimilarityEngine::Options options;
      options.layout.num_coefficients = coefficients;
      options.layout.include_mean_std = mean_std;
      core::SimilarityEngine engine(stocks, options);

      core::RangeQuerySpec spec;
      spec.transforms = transform::MovingAverageRange(n, 5, 20);
      spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
      Rng rng(coefficients * 10 + mean_std);
      const auto m = bench::MeasureRangeQuery(engine, spec,
                                              core::Algorithm::kMtIndex, rng);
      table.AddRow({std::to_string(coefficients), mean_std ? "yes" : "no",
                    std::to_string(engine.index().tree().dimensions()),
                    std::to_string(engine.index().tree().capacity()),
                    bench::FormatDouble(m.millis),
                    bench::FormatDouble(m.disk_accesses, 0),
                    bench::FormatDouble(m.candidates, 0)});
      last_trace = m.last_trace_json;
    }
  }
  table.Print();
  table.WriteCsv("ablation_coefficients");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected: more coefficients cut candidates with diminishing "
              "returns; the paper's\nchoice (2 coefficients) already captures "
              "most of the filter power on stock-like data.\n");
  return 0;
}
