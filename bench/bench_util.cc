#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/cost_model.h"
#include "core/explain.h"
#include "transform/builders.h"
#include "ts/normal_form.h"

namespace tsq::bench {

bool FastMode() {
  const char* value = std::getenv("TSQ_BENCH_FAST");
  return value != nullptr && value[0] == '1';
}

std::size_t QueryReps() {
  if (const char* value = std::getenv("TSQ_BENCH_REPS")) {
    const long reps = std::strtol(value, nullptr, 10);
    if (reps > 0) return static_cast<std::size_t>(reps);
  }
  return FastMode() ? 5 : 100;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  TSQ_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule.append(widths[c] + 2, c + 1 == columns_.size() ? '-' : '-');
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void Table::WriteCsv(const std::string& name) const {
  std::ofstream out(name + ".csv", std::ios::trunc);
  if (!out) return;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << ',';
    out << columns_[c];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  }
}

std::size_t ParseThreadsFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      const long threads = std::strtol(arg.c_str() + 10, &end, 10);
      if (end != nullptr && *end == '\0' && threads >= 0) {
        return static_cast<std::size_t>(threads);
      }
      std::printf("ignoring malformed %s\n", arg.c_str());
    }
  }
  return 1;
}

std::size_t ParsePoolShardsFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pool-shards=", 0) == 0) {
      char* end = nullptr;
      const long shards = std::strtol(arg.c_str() + 14, &end, 10);
      if (end != nullptr && *end == '\0' && shards >= 0) {
        return static_cast<std::size_t>(shards);
      }
      std::printf("ignoring malformed %s\n", arg.c_str());
    }
  }
  return 0;
}

std::string ParseTraceJsonFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-json=", 0) == 0) {
      std::string path = arg.substr(13);
      if (!path.empty()) return path;
      std::printf("ignoring empty %s\n", arg.c_str());
    }
  }
  return "";
}

void WriteTraceJson(const std::string& path, const std::string& json) {
  if (path.empty() || json.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  out << json << '\n';
  out.flush();
  if (!out) {
    std::printf("warning: could not write trace to %s\n", path.c_str());
    return;
  }
  std::printf("trace written to %s\n", path.c_str());
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::uint64_t CalibrateSimulatedDisk(core::SimilarityEngine& engine,
                                     double cmp_to_da_ratio) {
  TSQ_CHECK(cmp_to_da_ratio > 0.0);
  TSQ_CHECK_GE(engine.size(), std::size_t{2});
  const auto t = transform::MovingAverageTransform(engine.length(), 10);
  const auto& x = engine.dataset().spectrum(0);
  const auto& y = engine.dataset().spectrum(1);
  const std::size_t reps = 200000;
  Stopwatch watch;
  double sink = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    sink += t.TransformedSquaredDistance(x, y);
  }
  const double cmp_nanos =
      watch.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
  // Keep the compiler from dropping the loop.
  if (sink < 0.0) std::printf("%f\n", sink);
  const std::uint64_t latency =
      static_cast<std::uint64_t>(cmp_nanos / cmp_to_da_ratio);
  engine.SetSimulatedDiskLatency(latency);
  std::printf("calibrated: comparison ~%.0f ns -> page read ~%llu ns "
              "(C_cmp = %.1f * C_DA)\n\n",
              cmp_nanos, static_cast<unsigned long long>(latency),
              cmp_to_da_ratio);
  return latency;
}

QueryMeasurement MeasureRangeQuery(const core::SimilarityEngine& engine,
                                   core::RangeQuerySpec spec,
                                   core::Algorithm algorithm, Rng& rng,
                                   std::size_t num_threads) {
  core::ExecOptions options;
  options.planner.algorithm = algorithm;
  options.num_threads = num_threads;
  return MeasureRangeQuery(engine, std::move(spec), options, rng);
}

QueryMeasurement MeasureRangeQuery(const core::SimilarityEngine& engine,
                                   core::RangeQuerySpec spec,
                                   core::ExecOptions options, Rng& rng) {
  const std::size_t reps = QueryReps();
  QueryMeasurement m;
  const double leaf_capacity = engine.index().AverageLeafCapacity();
  options.collect_group_stats = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::size_t query_id = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(engine.size()) - 1));
    spec.query = ts::Denormalize(engine.dataset().normal(query_id));
    Stopwatch watch;
    auto result = engine.Execute(spec, options);
    const double elapsed = watch.ElapsedMillis();
    TSQ_CHECK(result.ok()) << result.status().ToString();
    const core::QueryStats& stats = result->stats();
    m.millis += elapsed;
    m.disk_accesses += static_cast<double>(stats.disk_accesses());
    m.index_accesses += static_cast<double>(stats.index_nodes_accessed);
    m.candidates += static_cast<double>(stats.candidates);
    m.comparisons += static_cast<double>(stats.comparisons);
    m.output_size += static_cast<double>(stats.output_size);
    m.cost += core::CostEq20(result->group_stats, leaf_capacity);
    m.last_trace_json = core::ExplainJson(*result);
    m.last_group_stats = std::move(result->group_stats);
  }
  const double d = static_cast<double>(reps);
  m.millis /= d;
  m.disk_accesses /= d;
  m.index_accesses /= d;
  m.candidates /= d;
  m.comparisons /= d;
  m.output_size /= d;
  m.cost /= d;
  return m;
}

}  // namespace tsq::bench
