// Scaling bench for the sharded buffer pool: cached-read (hit-path)
// throughput against a warm pool as the reader count grows. The
// single-mutex configuration (--pool-shards=1) is the PR-1 baseline: every
// hit serializes on one lock, so adding threads adds almost nothing. With
// sharding, hits on different pages take different locks and throughput
// scales with the thread count until memory bandwidth gets in the way.
//
// Flags: --pool-shards=N overrides the sharded configuration's shard count
// (default: the pool's built-in default).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace {

/// One timed run: `num_threads` readers each perform `reads_per_thread`
/// pool reads over `page_count` pre-warmed pages (stride chosen co-prime to
/// the page count so readers sweep different pages at any instant). Returns
/// million reads per second.
double MeasureHitThroughput(tsq::storage::BufferPool& pool,
                            std::uint32_t page_count,
                            std::size_t num_threads,
                            std::size_t reads_per_thread) {
  std::atomic<int> failures{0};
  tsq::Stopwatch stopwatch;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&pool, page_count, reads_per_thread, t,
                          &failures] {
      tsq::storage::Page page;
      std::uint32_t id = static_cast<std::uint32_t>(
          (t * 17u + 1u) % page_count);
      for (std::size_t i = 0; i < reads_per_thread; ++i) {
        if (!pool.Read(id, &page).ok()) failures.fetch_add(1);
        id += 13;  // co-prime to any power-of-two page count
        if (id >= page_count) id -= page_count;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = stopwatch.ElapsedSeconds();
  if (failures.load() != 0) std::printf("WARNING: %d failed reads\n",
                                        failures.load());
  const double total =
      static_cast<double>(num_threads) *
      static_cast<double>(reads_per_thread);
  return total / seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t flag_shards = bench::ParsePoolShardsFlag(argc, argv);
  const std::uint32_t kPages = 256;
  const std::size_t reads_per_thread = bench::FastMode() ? 100'000 : 2'000'000;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Buffer pool hit-path throughput vs. reader count\n");
  std::printf("(%u pages, pool capacity %u, %zu cached reads/thread; "
              "baseline = 1 shard)\n", kPages, kPages, reads_per_thread);
  std::printf("(hardware threads: %u)\n\n", hw);
  if (hw < 4) {
    std::printf("NOTE: fewer than 4 hardware threads — reader threads "
                "timeshare the core(s),\nso wall-clock throughput is "
                "CPU-bound and cannot scale here regardless of\nlocking; "
                "run on a multi-core machine to see the shard effect.\n\n");
  }

  storage::PageFile file;
  for (std::uint32_t i = 0; i < kPages; ++i) {
    const storage::PageId id = file.Allocate();
    storage::Page page;
    page.bytes[0] = static_cast<std::uint8_t>(i);
    if (!file.Write(id, page).ok()) return 1;
  }

  bench::Table table({"threads", "shards", "Mreads/s", "vs 1 shard"});
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    double baseline = 0.0;
    for (const std::size_t shards : {std::size_t{1}, flag_shards}) {
      storage::BufferPool pool(&file, kPages, shards);
      // Warm every page so the timed loop is pure hit path.
      storage::Page page;
      for (std::uint32_t id = 0; id < kPages; ++id) {
        if (!pool.Read(id, &page).ok()) return 1;
      }
      const double mreads =
          MeasureHitThroughput(pool, kPages, threads, reads_per_thread);
      if (shards == 1) baseline = mreads;
      table.AddRow({std::to_string(threads),
                    std::to_string(pool.shard_count()),
                    bench::FormatDouble(mreads, 2),
                    bench::FormatDouble(mreads / baseline, 2) + "x"});
    }
  }
  table.Print();
  table.WriteCsv("pool_scaling");
  std::printf("\nExpected: with 1 shard every hit serializes on one mutex, "
              "so throughput is flat\nin the thread count; sharded, it "
              "scales until the memory bus saturates.\n");
  return 0;
}
