// Kernel-layer benchmark: raw per-ISA throughput of each dispatched kernel
// (GB/s and speedup vs the scalar reference), plus the end-to-end effect on
// the Figure 5 workload's verification phase — the same range queries run
// once under forced-scalar and once under the best supported variant, with
// the match sets and QueryStats checked byte-identical (the kernel layer's
// determinism contract makes the ISA a pure speed knob).
//
// Writes BENCH_kernels.json next to the binary (override the path with
// --json=<path>). Exits non-zero if any cross-ISA result mismatch is seen.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/engine.h"
#include "kernels/kernels.h"
#include "obs/trace.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"
#include "ts/normal_form.h"

namespace {

using tsq::kernels::Isa;
using tsq::kernels::KernelTable;
using tsq::kernels::TableFor;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas;
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (tsq::kernels::IsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

// One raw-kernel measurement: calls `body` repeatedly for ~`budget` seconds
// (after a warmup) and returns seconds per call.
template <typename Body>
double TimePerCall(double budget, Body&& body) {
  for (int i = 0; i < 100; ++i) body();
  std::size_t iters = 0;
  const double start = NowSeconds();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 200; ++i) body();
    iters += 200;
    elapsed = NowSeconds() - start;
  } while (elapsed < budget);
  return elapsed / static_cast<double>(iters);
}

struct KernelCase {
  const char* name;
  std::size_t bytes_per_element;  // input+output traffic per double element
  double (*run)(const KernelTable&, const double*, const double*,
                const double*, const double*, double*, std::size_t);
};

// Uniform adapter signature: (table, a, b, c, d, out, n) -> sink value.
const KernelCase kCases[] = {
    {"squared_distance", 16,
     [](const KernelTable& t, const double* a, const double* b, const double*,
        const double*, double*, std::size_t n) {
       return t.squared_distance(a, b, n);
     }},
    {"weighted_squared_distance", 24,
     [](const KernelTable& t, const double* a, const double* b,
        const double* c, const double*, double*, std::size_t n) {
       return t.weighted_squared_distance(a, b, c, n);
     }},
    {"transformed_to_plain", 32,
     [](const KernelTable& t, const double* a, const double* b,
        const double* c, const double* d, double*, std::size_t n) {
       return t.transformed_to_plain(a, b, c, d, n);
     }},
    {"complex_pointwise_multiply", 32,
     [](const KernelTable& t, const double* a, const double* b,
        const double* c, const double*, double* out, std::size_t n) {
       t.complex_pointwise_multiply(a, b, c, out, n);
       return out[n - 1];
     }},
    {"correlation_sums", 16,
     [](const KernelTable& t, const double* a, const double* b, const double*,
        const double*, double*, std::size_t n) {
       return t.correlation_sums(a, b, n, a[0], b[0]).dxy;
     }},
    {"weighted_dot_sums", 24,
     [](const KernelTable& t, const double* a, const double* b,
        const double* c, const double*, double*, std::size_t n) {
       return t.weighted_dot_sums(a, b, c, n).dot;
     }},
};

std::string ParseJsonFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "BENCH_kernels.json";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsq;
  const std::vector<Isa> isas = SupportedIsas();
  const double budget = bench::FastMode() ? 0.02 : 0.15;
  const std::string json_path = ParseJsonFlag(argc, argv);
  volatile double sink = 0.0;

  std::printf("Kernel suite: per-ISA throughput (best of %zu variants: %s)\n\n",
              isas.size(), kernels::IsaName(kernels::BestSupportedIsa()));

  std::ostringstream json;
  json << "{\"kernels\":[";
  bench::Table table({"kernel", "n", "isa", "GB/s", "speedup"});
  bool first_entry = true;

  for (const std::size_t n : {std::size_t{256}, std::size_t{4096}}) {
    Rng rng(n);
    std::vector<double> a(n), b(n), c(n), d(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-1.0, 1.0);
      b[i] = rng.Uniform(-1.0, 1.0);
      c[i] = rng.Uniform(0.0, 2.0);
      d[i] = rng.Uniform(-1.0, 1.0);
    }
    for (const KernelCase& kc : kCases) {
      double scalar_time = 0.0;
      for (const Isa isa : isas) {
        const KernelTable& t = TableFor(isa);
        const double per_call = TimePerCall(budget, [&] {
          sink = sink + kc.run(t, a.data(), b.data(), c.data(), d.data(),
                               out.data(), n);
        });
        if (isa == Isa::kScalar) scalar_time = per_call;
        const double gbps = static_cast<double>(n * kc.bytes_per_element) /
                            per_call / 1e9;
        const double speedup = scalar_time / per_call;
        table.AddRow({kc.name, std::to_string(n), kernels::IsaName(isa),
                      bench::FormatDouble(gbps), bench::FormatDouble(speedup)});
        if (!first_entry) json << ',';
        first_entry = false;
        json << "{\"kernel\":\"" << kc.name << "\",\"n\":" << n
             << ",\"isa\":\"" << kernels::IsaName(isa)
             << "\",\"gbps\":" << gbps << ",\"speedup_vs_scalar\":" << speedup
             << '}';
      }
    }
  }
  table.Print();
  table.WriteCsv("kernel_suite");

  // --- Figure 5 workload, verification phase, scalar vs best ISA ---
  const std::size_t seq_len = 128;
  ts::RandomWalkConfig config;
  config.num_series = bench::FastMode() ? 1000 : 4000;
  config.length = seq_len;
  config.seed = 5 + config.num_series;
  core::SimilarityEngine engine(ts::GenerateRandomWalks(config));

  core::RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(seq_len, 10, 25);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, seq_len);
  core::ExecOptions options;
  options.planner.algorithm = core::Algorithm::kMtIndex;

  const std::size_t reps = bench::FastMode() ? 5 : 40;
  const Isa best = kernels::BestSupportedIsa();
  bool identical = true;
  double verification_ms[2] = {0.0, 0.0};
  double total_ms[2] = {0.0, 0.0};
  std::vector<std::vector<core::Match>> scalar_matches;
  std::vector<core::QueryStats> scalar_stats;

  const Isa passes[2] = {Isa::kScalar, best};
  for (int pass = 0; pass < 2; ++pass) {
    kernels::ForceIsaForTesting(passes[pass]);
    Rng qrng(99);
    for (std::size_t r = 0; r < reps; ++r) {
      const std::size_t query_id = static_cast<std::size_t>(qrng.UniformInt(
          0, static_cast<std::int64_t>(config.num_series) - 1));
      spec.query = ts::Denormalize(engine.dataset().normal(query_id));
      // Warm run: fault the working set into the buffer pool so the timed
      // run measures CPU phases, not first-touch page reads.
      if (r == 0) (void)engine.Execute(spec, options);
      auto result = engine.Execute(spec, options);
      TSQ_CHECK(result.ok()) << result.status().ToString();
      const obs::QueryTrace& trace = result->trace();
      verification_ms[pass] +=
          static_cast<double>(
              trace.phases[static_cast<std::size_t>(obs::Phase::kVerification)]
                  .nanos) *
          1e-6;
      total_ms[pass] += static_cast<double>(trace.total_nanos) * 1e-6;
      const core::RangeQueryResult* range = result->range();
      TSQ_CHECK(range != nullptr);
      if (pass == 0) {
        scalar_matches.push_back(range->matches);
        scalar_stats.push_back(range->stats);
      } else if (range->matches != scalar_matches[r] ||
                 range->stats != scalar_stats[r]) {
        identical = false;
      }
    }
  }
  kernels::ForceIsaForTesting(best);

  const double speedup = verification_ms[1] > 0.0
                             ? verification_ms[0] / verification_ms[1]
                             : 0.0;
  std::printf(
      "\nFig. 5 workload (%zu series, %zu queries, MT-index): verification "
      "%0.2f ms scalar vs %0.2f ms %s  (%.2fx), results %s\n",
      config.num_series, reps, verification_ms[0], verification_ms[1],
      kernels::IsaName(best), speedup,
      identical ? "byte-identical" : "MISMATCH");

  json << "],\"fig5_verification\":{\"num_series\":" << config.num_series
       << ",\"queries\":" << reps << ",\"best_isa\":\""
       << kernels::IsaName(best)
       << "\",\"scalar_verification_ms\":" << verification_ms[0]
       << ",\"simd_verification_ms\":" << verification_ms[1]
       << ",\"verification_speedup\":" << speedup
       << ",\"scalar_total_ms\":" << total_ms[0]
       << ",\"simd_total_ms\":" << total_ms[1]
       << ",\"results_identical\":" << (identical ? "true" : "false") << "}}";

  std::ofstream file(json_path);
  if (file) {
    file << json.str() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("warning: could not write %s\n", json_path.c_str());
  }
  (void)sink;
  return identical ? 0 : 1;
}
