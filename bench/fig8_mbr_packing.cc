// Figure 8 of the paper: running time, number of disk accesses, and the
// cost function Ck (Eq. 20, C_DA = 1, C_cmp = 0.4 C_DA) as the number of
// transformations packed per MBR varies from 1 (= ST-index) to all 24.
//
// Workload: 1068 x 128 stock data, T = m-day moving averages for
// m = 6..29, equal contiguous partitions, rho = 0.96.
//
// Paper's result: packing all transformations into one rectangle minimizes
// disk accesses but not running time; the best running time sits around
// 6-8 transformations per rectangle, and the cost function tracks the
// running-time curve.

#include <cstdio>

#include "bench_util.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;

  std::printf("Figure 8: varying transformations per MBR\n");
  std::printf("(1068 stocks, MA 6..29 => |T| = 24, rho = 0.96, "
              "%zu queries/point; cost = Eq. 20 with C_DA=1, C_cmp=0.4)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));
  bench::CalibrateSimulatedDisk(engine);

  core::RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(n, 6, 29);
  const std::size_t total = spec.transforms.size();

  std::vector<std::size_t> per_group_values;
  for (std::size_t g = 1; g <= total; ++g) {
    if (!bench::FastMode() || g == 1 || g % 6 == 0 || g == total) {
      per_group_values.push_back(g);
    }
  }

  // Two thresholds: the paper's rho = 0.96, plus a tighter 0.98 where the
  // index filter is sharp enough for the paper's interior optimum to show
  // on this (synthetic) data — see EXPERIMENTS.md for the discussion.
  bench::Table table({"rho", "per MBR", "rects", "time(ms)", "disk accesses",
                      "cost fn Ck", "candidates", "output"});
  for (const double rho : {0.96, 0.98}) {
    spec.epsilon = ts::CorrelationToDistanceThreshold(rho, n);
    double best_time = 1e300;
    std::size_t best_group = 0;
    for (const std::size_t per_group : per_group_values) {
      spec.partition = transform::PartitionBySize(total, per_group);
      Rng rng(per_group);
      const auto m = bench::MeasureRangeQuery(engine, spec,
                                              core::Algorithm::kMtIndex, rng);
      if (m.millis < best_time) {
        best_time = m.millis;
        best_group = per_group;
      }
      table.AddRow({bench::FormatDouble(rho), std::to_string(per_group),
                    std::to_string(spec.partition.size()),
                    bench::FormatDouble(m.millis),
                    bench::FormatDouble(m.disk_accesses, 0),
                    bench::FormatDouble(m.cost, 0),
                    bench::FormatDouble(m.candidates, 0),
                    bench::FormatDouble(m.output_size, 1)});
      last_trace = m.last_trace_json;
    }
    std::printf("rho = %.2f: best running time at %zu transformations per "
                "MBR\n",
                rho, best_group);
  }
  table.Print();
  table.WriteCsv("fig8_mbr_packing");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("Expected shape (paper Fig. 8): disk accesses fall "
              "monotonically as rectangles merge;\nrunning time and the "
              "cost function bottom out at moderate packing, not at the "
              "extremes.\n");
  return 0;
}
