#ifndef TSQ_BENCH_BENCH_UTIL_H_
#define TSQ_BENCH_BENCH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/query.h"

namespace tsq::bench {

/// True when the environment asks for a reduced-size smoke run
/// (TSQ_BENCH_FAST=1).
bool FastMode();

/// Number of random queries averaged per measurement point. The paper uses
/// 100; the default here is 100 (5 in fast mode), overridable with
/// TSQ_BENCH_REPS.
std::size_t QueryReps();

/// Fixed-width console table that doubles as a CSV writer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  /// Renders to stdout with aligned columns.
  void Print() const;
  /// Writes "<name>.csv" next to the binary (best effort; ignored on error).
  void WriteCsv(const std::string& name) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double value, int precision = 2);

/// Averaged measurements of one (workload, algorithm) point: wall-clock time
/// and the paper's counters, averaged over QueryReps() random queries drawn
/// from the dataset.
struct QueryMeasurement {
  double millis = 0.0;
  double disk_accesses = 0.0;
  double index_accesses = 0.0;
  double candidates = 0.0;
  double comparisons = 0.0;
  double output_size = 0.0;
  /// Per-rectangle counters of the *last* query (for the cost function).
  std::vector<core::GroupRunStats> last_group_stats;
  /// ExplainJson document of the *last* query (--trace-json output).
  std::string last_trace_json;
  /// Eq. 20 cost averaged over all queries.
  double cost = 0.0;
};

/// Runs `spec` (with its query replaced by a random dataset member each
/// repetition) under `algorithm` with `num_threads` executor workers and
/// averages time and counters. The counters are identical for every thread
/// count; only the wall-clock changes.
QueryMeasurement MeasureRangeQuery(const core::SimilarityEngine& engine,
                                   core::RangeQuerySpec spec,
                                   core::Algorithm algorithm, Rng& rng,
                                   std::size_t num_threads = 1);

/// Same measurement under full ExecOptions — the way to put the planner
/// (Algorithm::kAuto, partitioning strategies, cost-constant overrides) on
/// the bench. Group-stats collection is forced on so `cost` is always the
/// measured Eq. 20 value.
QueryMeasurement MeasureRangeQuery(const core::SimilarityEngine& engine,
                                   core::RangeQuerySpec spec,
                                   core::ExecOptions options, Rng& rng);

/// Parses a `--threads=N` argument (0 = one worker per hardware thread).
/// Returns 1 when the flag is absent or malformed.
std::size_t ParseThreadsFlag(int argc, char** argv);

/// Parses a `--pool-shards=N` argument selecting the buffer-pool shard
/// count (0 = the pool's default). Returns 0 when absent or malformed.
std::size_t ParsePoolShardsFlag(int argc, char** argv);

/// Parses a `--trace-json=<path>` argument: the file the bench writes the
/// ExplainJson document of its last measured query to. Empty when absent.
std::string ParseTraceJsonFlag(int argc, char** argv);

/// Writes `json` to `path` (no-op when either is empty); prints where the
/// trace went, or a warning when the file cannot be written.
void WriteTraceJson(const std::string& path, const std::string& json);

/// Calibrates the simulated per-page latency so that one full-sequence
/// comparison costs `cmp_to_da_ratio` of one page read — the paper's
/// measured hardware ratio is C_cmp = 0.4 * C_DA (Section 5.2). Measures the
/// comparison cost on this machine, sets the engine's disk latency
/// accordingly, and returns the chosen latency in nanoseconds.
std::uint64_t CalibrateSimulatedDisk(core::SimilarityEngine& engine,
                                     double cmp_to_da_ratio = 0.4);

}  // namespace tsq::bench

#endif  // TSQ_BENCH_BENCH_UTIL_H_
