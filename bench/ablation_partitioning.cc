// Ablation: partitioning strategies on the two-cluster workload of Fig. 9.
// Compares equal contiguous packing (the paper's experiment), the
// cluster-aware partitioning it proposes as a fix, and our cost-based
// dynamic-programming partitioner driven by the analytic R-tree estimator.

#include <cstdio>

#include "bench_util.h"
#include "core/cost_model.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;
  std::printf("Ablation: partitioning strategies (two-cluster workload)\n");
  std::printf("(1068 stocks, MA 6..29 + inverted => |T| = 48, rho = 0.96, "
              "%zu queries/point)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));

  core::RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(n, 6, 29);
  {
    const auto plain = spec.transforms;
    for (const auto& t : plain) {
      spec.transforms.push_back(transform::Inverted(t));
    }
  }
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
  const std::size_t total = spec.transforms.size();

  std::vector<transform::FeatureTransform> fts;
  for (const auto& t : spec.transforms) {
    fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
  }
  const core::TreeCostEstimator estimator(engine.index());

  struct Strategy {
    const char* name;
    transform::Partition partition;
  };
  std::vector<Strategy> strategies;
  strategies.push_back({"one MBR (spans gap)", transform::PartitionAll(total)});
  strategies.push_back(
      {"contiguous, 8/MBR", transform::PartitionBySize(total, 8)});
  strategies.push_back(
      {"contiguous, 16/MBR (spans gap)", transform::PartitionBySize(total, 16)});
  strategies.push_back(
      {"singletons (ST)", transform::PartitionSingletons(total)});
  strategies.push_back(
      {"cluster-aware, 8/MBR", transform::PartitionByClusters(fts, 8)});
  strategies.push_back(
      {"cluster-aware, 24/MBR", transform::PartitionByClusters(fts, 24)});
  strategies.push_back(
      {"cost-based DP",
       transform::PartitionCostBased(
           total, [&](std::size_t first, std::size_t last) {
             const std::span<const transform::FeatureTransform> group(
                 fts.data() + first, last - first + 1);
             return core::EstimateGroupCost(estimator, group, spec.epsilon,
                                            engine.dataset().layout());
           })});

  bench::Table table({"strategy", "rects", "time(ms)", "disk acc.",
                      "candidates", "cost fn"});
  for (Strategy& strategy : strategies) {
    spec.partition = strategy.partition;
    Rng rng(42);
    const auto m = bench::MeasureRangeQuery(engine, spec,
                                            core::Algorithm::kMtIndex, rng);
    table.AddRow({strategy.name, std::to_string(strategy.partition.size()),
                  bench::FormatDouble(m.millis),
                  bench::FormatDouble(m.disk_accesses, 0),
                  bench::FormatDouble(m.candidates, 0),
                  bench::FormatDouble(m.cost, 0)});
    last_trace = m.last_trace_json;
  }
  table.Print();
  table.WriteCsv("ablation_partitioning");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected: gap-spanning rectangles inflate candidates; "
              "cluster-aware packing matches\nthe good contiguous sizes "
              "without needing to know them in advance.\n");
  return 0;
}
