// Figure 7 of the paper: spatial-join running time (Query 2) as the number
// of transformations grows from 1 to 30.
//
// Query 2: "find every pair s1, s2 of stocks and every t in T such that
// rho(t(s1.close), t(s2.close)) >= 0.99", T = moving averages 5..4+k, on the
// 1068 x 128 stock data set.
//
// Paper's result: both indexed joins beat the nested-loop scan by a wide
// margin; MT-join beats ST-join until |T| reaches ~30 where they converge.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "core/explain.h"
#include "transform/builders.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  std::vector<std::size_t> counts = {1, 5, 10, 15, 20, 25, 30};
  if (bench::FastMode()) counts = {1, 5, 10};
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;

  std::printf("Figure 7: join time vs. number of transformations\n");
  std::printf("(1068 stocks x 128 days, rho >= 0.99, MA 5..4+k)\n\n");

  ts::StockMarketConfig config;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));
  bench::CalibrateSimulatedDisk(engine);

  bench::Table table({"|T|", "seq-scan(s)", "ST-index(s)", "MT-index(s)",
                      "ST DA", "MT DA", "pairs out"});
  for (const std::size_t k : counts) {
    core::JoinQuerySpec spec;
    spec.mode = core::JoinMode::kCorrelation;
    spec.min_correlation = 0.99;
    spec.transforms = transform::MovingAverageRange(n, 5, 4 + k);

    double seconds[3] = {0, 0, 0};
    double disk[3] = {0, 0, 0};
    double output = 0;
    const core::Algorithm algorithms[3] = {core::Algorithm::kSequentialScan,
                                           core::Algorithm::kStIndex,
                                           core::Algorithm::kMtIndex};
    for (int a = 0; a < 3; ++a) {
      core::ExecOptions options;
      options.planner.algorithm = algorithms[a];
      Stopwatch watch;
      const auto result = engine.Execute(spec, options);
      seconds[a] = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::printf("join failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      disk[a] = static_cast<double>(result->stats().disk_accesses());
      output = static_cast<double>(result->join()->matches.size());
      if (algorithms[a] == core::Algorithm::kMtIndex) {
        last_trace = core::ExplainJson(*result);
      }
    }
    table.AddRow({std::to_string(k), bench::FormatDouble(seconds[0], 3),
                  bench::FormatDouble(seconds[1], 3),
                  bench::FormatDouble(seconds[2], 3),
                  bench::FormatDouble(disk[1], 0),
                  bench::FormatDouble(disk[2], 0),
                  bench::FormatDouble(output, 0)});
  }
  table.Print();
  table.WriteCsv("fig7_join");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected shape (paper Fig. 7): indexed joins far below the "
              "all-pairs scan;\nMT-join cheaper than ST-join at small |T|, "
              "converging as |T| grows to 30.\n");
  return 0;
}
