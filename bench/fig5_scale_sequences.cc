// Figure 5 of the paper: time per range query (Query 1) as the number of
// sequences grows from 500 to 12,000.
//
// Workload, as in the paper: synthetic random walks of length 128
// (x_t = x_{t-1} + U[-500, 500]), |T| = 16 moving averages (10..25-day),
// correlation threshold 0.96 translated to a Euclidean epsilon via Eq. 9,
// random query sequences drawn from the data set, times averaged.
//
// Paper's result: MT-index fastest at every size; sequential scan grows
// linearly; ST-index pays |T| traversals. (Absolute times differ from the
// 168 MHz UltraSPARC; the ordering and growth shapes are what reproduce.)
//
// --threads=N runs the parallel executor with N workers (0 = one per
// hardware thread). Counters are identical for every N; only time changes.

#include <cstdio>

#include "bench_util.h"
#include "exec/thread_pool.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  std::vector<std::size_t> sizes = {500, 1000, 2000, 4000, 8000, 12000};
  if (bench::FastMode()) sizes = {500, 1000, 2000};
  const std::size_t threads = bench::ParseThreadsFlag(argc, argv);
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;

  std::printf("Figure 5: time per query vs. number of sequences\n");
  std::printf("(synthetic random walks, |T| = 16 moving averages 10..25, "
              "rho = 0.96, %zu queries/point, %zu worker thread(s))\n\n",
              bench::QueryReps(), exec::EffectiveThreads(threads));

  bench::Table table({"sequences", "seq-scan(ms)", "ST-index(ms)",
                      "MT-index(ms)", "seq DA", "ST DA", "MT DA", "output"});

  for (const std::size_t size : sizes) {
    ts::RandomWalkConfig config;
    config.num_series = size;
    config.length = n;
    config.seed = 5 + size;
    core::SimilarityEngine engine(ts::GenerateRandomWalks(config));
    bench::CalibrateSimulatedDisk(engine);

    core::RangeQuerySpec spec;
    spec.transforms = transform::MovingAverageRange(n, 10, 25);
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);

    Rng rng(size);
    const auto seq = bench::MeasureRangeQuery(
        engine, spec, core::Algorithm::kSequentialScan, rng, threads);
    Rng rng_st(size);
    const auto st =
        bench::MeasureRangeQuery(engine, spec, core::Algorithm::kStIndex,
                                 rng_st, threads);
    Rng rng_mt(size);
    const auto mt =
        bench::MeasureRangeQuery(engine, spec, core::Algorithm::kMtIndex,
                                 rng_mt, threads);

    table.AddRow({std::to_string(size), bench::FormatDouble(seq.millis),
                  bench::FormatDouble(st.millis),
                  bench::FormatDouble(mt.millis),
                  bench::FormatDouble(seq.disk_accesses, 0),
                  bench::FormatDouble(st.disk_accesses, 0),
                  bench::FormatDouble(mt.disk_accesses, 0),
                  bench::FormatDouble(mt.output_size, 1)});
    last_trace = mt.last_trace_json;
  }
  table.Print();
  table.WriteCsv("fig5_scale_sequences");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected shape (paper Fig. 5): MT-index below both "
              "competitors at every size,\nsequential scan linear in the "
              "number of sequences.\n");
  return 0;
}
