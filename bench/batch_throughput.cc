// Batched-execution throughput: queries per second as the batch size grows
// on the Figure 5 workload (random walks of length 128, |T| = 16 moving
// averages 10..25, rho = 0.96).
//
// One fixed list of random query sequences is executed three ways — as
// single-query batches, batches of 8, and batches of 64 — with the result
// cache OFF, so the speedup isolates the shared-work machinery: one
// snapshot pin and one planner consultation per batch, one index traversal
// per (transform-set, partition) group, and batch-wide record-fetch
// deduplication. The match sets are verified identical across batch sizes
// before any number is reported.
//
// --threads=N sets the executor workers per batch (0 = one per hardware
// thread); --trace-json=<path> dumps the ExplainJson document of the last
// batch-64 query.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/explain.h"
#include "exec/thread_pool.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::size_t num_series = bench::FastMode() ? 500 : 2000;
  const std::size_t num_queries = 64;  // divisible by every batch size
  static constexpr std::size_t kBatchSizes[] = {1, 8, 64};
  const std::size_t threads = bench::ParseThreadsFlag(argc, argv);
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);

  ts::RandomWalkConfig config;
  config.num_series = num_series;
  config.length = n;
  config.seed = 505;
  core::SimilarityEngine engine(ts::GenerateRandomWalks(config));
  bench::CalibrateSimulatedDisk(engine);

  std::printf("Batched execution: queries/sec vs. batch size\n");
  std::printf("(%zu random walks, |T| = 16 moving averages 10..25, "
              "rho = 0.96, %zu queries, %zu worker thread(s), result cache "
              "off)\n\n",
              num_series, num_queries, exec::EffectiveThreads(threads));

  // The fixed query list every batch size executes.
  std::vector<core::QuerySpec> all_specs;
  Rng rng(num_series);
  for (std::size_t q = 0; q < num_queries; ++q) {
    core::RangeQuerySpec spec;
    const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(engine.size()) - 1));
    spec.query = ts::Denormalize(engine.dataset().normal(pick));
    spec.transforms = transform::MovingAverageRange(n, 10, 25);
    spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);
    all_specs.push_back(std::move(spec));
  }

  // Warm the planner once so its calibration I/O is not on the clock.
  {
    core::BatchOptions warm;
    warm.use_result_cache = false;
    const auto warmup = engine.ExecuteBatch(
        {all_specs.begin(), all_specs.begin() + 1}, warm);
    if (warmup.empty() || !warmup[0].ok()) {
      std::fprintf(stderr, "warmup failed\n");
      return 1;
    }
  }

  bench::Table table({"batch", "total(ms)", "queries/s", "speedup",
                      "record pages", "output"});
  std::string last_trace;
  double base_qps = 0.0;
  bool match_sets_identical = true;
  std::vector<std::vector<core::Match>> reference;  // from batch size 1
  double batch1_qps = 0.0, batch64_qps = 0.0;
  double batch64_speedup = 0.0;

  for (const std::size_t batch_size : kBatchSizes) {
    core::BatchOptions options;
    options.exec.planner.algorithm = core::Algorithm::kMtIndex;
    options.exec.num_threads = threads;
    options.use_result_cache = false;

    engine.ResetIoStats();
    std::vector<std::vector<core::Match>> matches(num_queries);
    std::uint64_t output = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < num_queries; base += batch_size) {
      const std::vector<core::QuerySpec> slice(
          all_specs.begin() + static_cast<std::ptrdiff_t>(base),
          all_specs.begin() + static_cast<std::ptrdiff_t>(base + batch_size));
      const auto batch = engine.ExecuteBatch(slice, options);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!batch[i].ok()) {
          std::fprintf(stderr, "batch entry failed: %s\n",
                       batch[i].status().ToString().c_str());
          return 1;
        }
        matches[base + i] = batch[i]->range()->matches;
        output += batch[i]->stats().output_size;
        if (batch_size == 64 && base + i == num_queries - 1) {
          last_trace = core::ExplainJson(*batch[i]);
        }
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const double millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    const double qps = millis > 0.0
                           ? 1000.0 * static_cast<double>(num_queries) / millis
                           : 0.0;
    const std::uint64_t pages = engine.dataset().record_io().reads;

    if (batch_size == 1) {
      reference = matches;
      base_qps = qps;
      batch1_qps = qps;
    } else {
      for (std::size_t q = 0; q < num_queries; ++q) {
        if (matches[q] != reference[q]) {
          match_sets_identical = false;
          std::fprintf(stderr,
                       "DIVERGENCE: query %zu differs between batch=1 and "
                       "batch=%zu\n",
                       q, batch_size);
        }
      }
    }
    const double speedup = base_qps > 0.0 ? qps / base_qps : 0.0;
    if (batch_size == 64) {
      batch64_qps = qps;
      batch64_speedup = speedup;
    }
    table.AddRow({std::to_string(batch_size), bench::FormatDouble(millis),
                  bench::FormatDouble(qps, 1), bench::FormatDouble(speedup),
                  std::to_string(pages),
                  std::to_string(output / num_queries)});
  }

  table.Print();
  table.WriteCsv("batch_throughput");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nMatch sets across batch sizes: %s\n",
              match_sets_identical ? "identical" : "DIVERGED");
  std::printf("batch-64 vs batch-1: %.2fx (%.1f vs %.1f queries/s)\n",
              batch64_speedup, batch64_qps, batch1_qps);
  std::printf("Expected shape: throughput grows with batch size — shared "
              "traversals amortize the index walk and deduped fetches "
              "amortize the record I/O.\n");
  return match_sets_identical ? 0 : 1;
}
