// Ablation: index buffering. The default configuration reads every index
// page from the (simulated) disk — the cold-cache accounting behind the
// paper's disk-access counts. Attaching an LRU buffer pool shows how much of
// ST-index's |T|-traversal penalty is re-reading the same pages: with a pool
// big enough for the whole tree, ST-index's *physical* reads collapse to one
// tree's worth while its logical accesses (and CPU work) stay |T| times
// MT-index's.

#include <cstdio>

#include "bench_util.h"
#include "transform/builders.h"
#include "ts/distance.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::size_t pool_shards = bench::ParsePoolShardsFlag(argc, argv);
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;
  std::printf("Ablation: index buffer pool (cold vs. warm traversals)\n");
  std::printf("(1068 stocks, MA 5..20, rho = 0.96, %zu queries/point)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));

  core::RangeQuerySpec spec;
  spec.transforms = transform::MovingAverageRange(n, 5, 20);
  spec.epsilon = ts::CorrelationToDistanceThreshold(0.96, n);

  bench::Table table({"algorithm", "pool pages", "logical index acc.",
                      "physical index reads", "pool hit rate"});
  for (const std::size_t pool_pages : {std::size_t{0}, std::size_t{8},
                                       std::size_t{64}}) {
    engine.EnableIndexBufferPool(pool_pages, pool_shards);
    for (const core::Algorithm algorithm :
         {core::Algorithm::kStIndex, core::Algorithm::kMtIndex}) {
      engine.ResetIoStats();
      if (auto* pool = engine.index_buffer_pool()) {
        pool->ResetStats();
        pool->Clear();
      }
      Rng rng(7);
      const auto m = bench::MeasureRangeQuery(engine, spec, algorithm, rng);
      const auto& io = engine.index().index_io();
      std::string hit_rate = "-";
      if (const auto* pool = engine.index().buffer_pool()) {
        const double total =
            static_cast<double>(pool->stats().hits + pool->stats().misses);
        if (total > 0) {
          hit_rate = bench::FormatDouble(
              100.0 * static_cast<double>(pool->stats().hits) / total, 1);
          hit_rate += "%";
        }
      }
      table.AddRow({core::AlgorithmName(algorithm),
                    pool_pages == 0 ? "none" : std::to_string(pool_pages),
                    bench::FormatDouble(m.index_accesses, 0),
                    bench::FormatDouble(
                        static_cast<double>(io.reads) /
                            static_cast<double>(bench::QueryReps()),
                        0),
                    hit_rate});
      last_trace = m.last_trace_json;
    }
  }
  engine.EnableIndexBufferPool(0);
  table.Print();
  table.WriteCsv("ablation_caching");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected: without a pool, physical == logical; with a pool "
              "covering the tree,\nST-index's physical reads collapse while "
              "its logical accesses stay ~|T| x MT-index's.\n");
  return 0;
}
