// Ablation: the ordering optimization of Section 4.4. For an ordered
// transformation family (scale factors, Lemma 2) the post-processing step
// binary-searches the boundary transformation instead of sweeping all |T|:
// |stocks| * log|T| comparisons for the sequential scan, log|T| per
// candidate for the indexed algorithms.

#include <cstdio>

#include "bench_util.h"
#include "transform/builders.h"
#include "ts/generate.h"

int main(int argc, char** argv) {
  using namespace tsq;
  const std::size_t n = 128;
  const std::string trace_path = bench::ParseTraceJsonFlag(argc, argv);
  std::string last_trace;
  std::printf("Ablation: ordered transformations + binary search "
              "(scale factors 2..100)\n");
  std::printf("(1068 stocks, epsilon = 40, %zu queries/point)\n\n",
              bench::QueryReps());

  ts::StockMarketConfig config;
  core::SimilarityEngine engine(ts::GenerateStockMarket(config));

  bench::Table table({"algorithm", "post-processing", "time(ms)",
                      "comparisons", "output"});
  for (const core::Algorithm algorithm :
       {core::Algorithm::kSequentialScan, core::Algorithm::kMtIndex}) {
    for (const bool use_ordering : {false, true}) {
      core::RangeQuerySpec spec;
      spec.transforms = transform::ScaleRange(n, 2.0, 100.0, 1.0);
      spec.epsilon = 40.0;
      spec.use_ordering = use_ordering;
      // Same seed for both modes: identical query samples, identical output.
      Rng rng(algorithm == core::Algorithm::kSequentialScan ? 1 : 2);
      const auto m = bench::MeasureRangeQuery(engine, spec, algorithm, rng);
      table.AddRow({core::AlgorithmName(algorithm),
                    use_ordering ? "binary search" : "linear sweep",
                    bench::FormatDouble(m.millis),
                    bench::FormatDouble(m.comparisons, 0),
                    bench::FormatDouble(m.output_size, 1)});
      last_trace = m.last_trace_json;
    }
  }
  table.Print();
  table.WriteCsv("ablation_ordering");
  bench::WriteTraceJson(trace_path, last_trace);
  std::printf("\nExpected: comparisons collapse from |T| per sequence to "
              "~log|T| (+ one per match);\nno ordering exists for moving "
              "averages (Lemmas 3-4), so this only applies to scale-like "
              "families.\n");
  return 0;
}
