#!/usr/bin/env bash
# The full local gate, in the order a reviewer would want it to fail:
#
#   1. tier-1: configure with -DTSQ_WERROR=ON (library + test sources
#      warning-clean; bench targets are -Werror unconditionally), build
#      everything including the bench drivers, run the whole ctest suite;
#   2. the planner gate — the "-L planner" ctest label re-runs the
#      cost-model/planner regressions on their own, so an estimator
#      drift shows up as its own stage, not a needle in stage 1;
#   3. scripts/fuzz_smoke.sh — fixed-seed differential fuzz against the
#      brute-force oracle, fault injection included;
#   4. scripts/persist_tests.sh — crash-safety gate: the "-L persist"
#      checkpoint robustness suite plus a crash-recovery sweep that aborts
#      SaveTo at every write step and re-loads;
#   5. the batch gate — "-L batch" runs the ExecuteBatch determinism,
#      result-cache and concurrency suites plus the batched differential
#      fuzz slices, then a fast batch-throughput bench run re-verifies
#      that batched and single-query match sets are identical;
#   6. the kernel gate — "-L kernels" runs the cross-ISA bitwise identity
#      and early-abandon property suites, then the whole tier-1 suite is
#      re-run with TSQ_KERNEL_ISA=scalar: every test must pass bit-for-bit
#      on the scalar reference path too, proving SIMD is a pure speed knob;
#   7. scripts/tsan_exec_tests.sh — data-race gate over the executor and
#      the sharded buffer pool;
#   8. scripts/tsan_write_tests.sh — data-race gate over the write path:
#      Execute() threads racing a continuous Insert/Remove writer through
#      the engine's snapshot layer;
#   9. scripts/asan_storage_tests.sh + scripts/kernel_tests.sh —
#      lifetime/UB gate over storage, exec and the SIMD kernel layer
#      (unaligned loads, complex reinterpret casts, blocked-loop tails).
#
# Usage: scripts/check_all.sh [build-dir]   (default: build-check)
# The sanitizer stages use their own build trees (build-tsan, build-asan).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

echo "==> [1/9] tier-1 build (-DTSQ_WERROR=ON) + ctest"
cmake -B "$BUILD_DIR" -S . -DTSQ_WERROR=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "==> [2/9] planner regressions (ctest -L planner)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L planner

echo "==> [3/9] differential fuzz smoke (fixed seeds, oracle-checked)"
scripts/fuzz_smoke.sh "$BUILD_DIR"

echo "==> [4/9] persistence gate (ctest -L persist + crash-recovery sweep)"
scripts/persist_tests.sh "$BUILD_DIR"

echo "==> [5/9] batch gate (ctest -L batch + batch-throughput smoke)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L batch
TSQ_BENCH_FAST=1 "$BUILD_DIR"/bench/batch_throughput --threads=4

echo "==> [6/9] kernel gate (ctest -L kernels + forced-scalar tier-1 pass)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L kernels
TSQ_KERNEL_ISA=scalar ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "==> [7/9] ThreadSanitizer: exec + storage tests"
scripts/tsan_exec_tests.sh

echo "==> [8/9] ThreadSanitizer: engine write path (queries vs writers)"
scripts/tsan_write_tests.sh

echo "==> [9/9] Address/UB sanitizer: storage + exec + kernel tests"
scripts/asan_storage_tests.sh
scripts/kernel_tests.sh

echo "==> all checks passed"
