#!/usr/bin/env bash
# Fixed-seed differential-fuzzer smoke: a ~30 s slice of the full acceptance
# sweep (fuzz_queries --seed=1..50 --iters=200). Every generated query runs
# under {scan, ST-index, MT-index} x {1,4,8} threads x {pool on/off} and is
# checked against the brute-force oracle; the fault slice additionally
# verifies that injected storage errors surface as Status, never as wrong
# results. Deterministic: a failure here reproduces from the printed
# `fuzz_queries --seed=S --case=K` line.
#
# Usage: scripts/fuzz_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/tools/fuzz_queries" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target fuzz_queries
fi

"$BUILD_DIR/tools/fuzz_queries" --seed=1..8 --iters=60
