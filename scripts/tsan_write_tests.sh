#!/usr/bin/env bash
# Builds the engine write-path tests under ThreadSanitizer and runs them.
#
# engine_write_concurrency_test hammers the snapshot layer: eight Execute()
# threads race a continuous Insert/Remove writer (plus SaveTo and
# buffer-pool reconfiguration in a second test), so any missing
# synchronization between the write lock, the read pins and the planner
# epoch shows up as a TSAN report. engine_write_fault_test runs the
# fault-injected commit/compensate paths under the same instrumentation.
# batch_concurrency_test adds the batched path: concurrent ExecuteBatch
# calls (shared result cache, shared fetch tables, one pin per batch)
# racing the same continuous writer.
#
# Usage: scripts/tsan_write_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTSQ_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
  engine_write_fault_test engine_write_concurrency_test \
  batch_concurrency_test

cd "$BUILD_DIR"
ctest --output-on-failure -R 'EngineWriteFault|EngineWriteConcurrency|BatchConcurrency'
