#!/usr/bin/env bash
# Builds the kernel-layer test suites under Address+UB sanitizers and runs
# them.
#
# The kernel TUs do exactly the kind of work sanitizers are good at
# auditing: reinterpret_cast from std::complex to interleaved doubles,
# unaligned vector loads at every offset, and blocked loops whose tail
# handling is easy to get off by one. The property suite already sweeps
# lengths 1..257 at offsets 0..3, so running it under ASan/UBSan turns any
# out-of-bounds lane read into a hard failure instead of a silently
# correct-looking sum.
#
# Usage: scripts/kernel_tests.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DTSQ_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target kernel_property_test kernel_dispatch_test

ctest --test-dir "$BUILD_DIR" --output-on-failure -L kernels
