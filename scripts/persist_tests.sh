#!/usr/bin/env bash
# The persistence gate: crash-safety and at-rest-corruption checks for the
# checkpoint subsystem (storage::AtomicFile, the manifest protocol in
# SimilarityEngine::SaveTo/LoadFrom).
#
#   1. ctest -L persist — the checkpoint robustness suite (truncation at
#      every page boundary, bit flips in every region, tampered meta fields,
#      crash-debris recovery) plus the fuzz_checkpoint_smoke slice;
#   2. a short crash-recovery differential sweep: fuzz_queries --checkpoint
#      aborts SaveTo at every write step in turn and checks that LoadFrom
#      recovers an engine answering exactly at the old or new checkpoint.
#
# Deterministic: a sweep failure reproduces from the printed
# `fuzz_queries --checkpoint --seed=S --iters=K` line.
#
# Usage: scripts/persist_tests.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/tools/fuzz_queries" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target fuzz_queries checkpoint_robustness_test
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -L persist

"$BUILD_DIR/tools/fuzz_queries" --checkpoint --seed=1..4 --iters=4
