#!/usr/bin/env bash
# Builds the storage and executor tests under Address+UB sanitizers and runs
# them.
#
# TSan finds the races; ASan/UBSan find the lifetime bugs the sharded
# buffer pool's lock-dropping miss path could introduce (a leader
# publishing into a freed in-flight slot, a follower reading a dead page
# buffer). Run this alongside scripts/tsan_exec_tests.sh when touching
# src/storage or src/exec.
#
# Usage: scripts/asan_storage_tests.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DTSQ_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
  page_file_test atomic_file_test buffer_pool_test record_store_test \
  persistence_test checkpoint_robustness_test \
  parallel_test exec_determinism_test exec_concurrency_test \
  batch_concurrency_test result_cache_test

cd "$BUILD_DIR"
ctest --output-on-failure -R 'PageFile|AtomicFile|BufferPool|ShardedBufferPool|RecordStore|Persistence|CheckpointRobustness|EffectiveThreads|ThreadPool|ParallelFor|Chunk|ExecutorDeterminism|ExecutorConcurrency|BatchConcurrency|ResultCache'
