#!/usr/bin/env bash
# Builds the executor and storage tests under ThreadSanitizer and runs them.
#
# The exec tests (parallel_test, exec_determinism_test,
# exec_concurrency_test) exercise the concurrent query path; the storage
# tests (page_file_test, buffer_pool_test, record_store_test) exercise the
# sharded buffer pool's drop-the-lock miss path and in-flight read
# coalescing. Together they are the repo's data-race gate.
#
# Usage: scripts/tsan_exec_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTSQ_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
  parallel_test exec_determinism_test exec_concurrency_test \
  page_file_test buffer_pool_test record_store_test

cd "$BUILD_DIR"
ctest --output-on-failure -R 'EffectiveThreads|ThreadPool|ParallelFor|Chunk|ExecutorDeterminism|ExecutorConcurrency|PageFile|BufferPool|ShardedBufferPool|RecordStore'
