#!/usr/bin/env bash
# Builds the executor tests under ThreadSanitizer and runs them.
#
# The exec tests (parallel_test, exec_determinism_test,
# exec_concurrency_test) are the ones that exercise the concurrent read
# path; running them under TSan is the repo's data-race gate for the
# parallel query executor.
#
# Usage: scripts/tsan_exec_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTSQ_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
  parallel_test exec_determinism_test exec_concurrency_test

cd "$BUILD_DIR"
ctest --output-on-failure -R 'EffectiveThreads|ThreadPool|ParallelFor|Chunk|ExecutorDeterminism|ExecutorConcurrency'
