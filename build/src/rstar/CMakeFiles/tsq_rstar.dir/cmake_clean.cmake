file(REMOVE_RECURSE
  "CMakeFiles/tsq_rstar.dir/join.cc.o"
  "CMakeFiles/tsq_rstar.dir/join.cc.o.d"
  "CMakeFiles/tsq_rstar.dir/rect.cc.o"
  "CMakeFiles/tsq_rstar.dir/rect.cc.o.d"
  "CMakeFiles/tsq_rstar.dir/rstar_tree.cc.o"
  "CMakeFiles/tsq_rstar.dir/rstar_tree.cc.o.d"
  "libtsq_rstar.a"
  "libtsq_rstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_rstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
