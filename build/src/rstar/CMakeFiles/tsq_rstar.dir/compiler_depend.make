# Empty compiler generated dependencies file for tsq_rstar.
# This may be replaced when dependencies are built.
