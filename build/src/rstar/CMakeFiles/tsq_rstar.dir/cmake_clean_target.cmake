file(REMOVE_RECURSE
  "libtsq_rstar.a"
)
