
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dft/fft.cc" "src/dft/CMakeFiles/tsq_dft.dir/fft.cc.o" "gcc" "src/dft/CMakeFiles/tsq_dft.dir/fft.cc.o.d"
  "/root/repo/src/dft/spectrum.cc" "src/dft/CMakeFiles/tsq_dft.dir/spectrum.cc.o" "gcc" "src/dft/CMakeFiles/tsq_dft.dir/spectrum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
