# Empty compiler generated dependencies file for tsq_dft.
# This may be replaced when dependencies are built.
