file(REMOVE_RECURSE
  "CMakeFiles/tsq_dft.dir/fft.cc.o"
  "CMakeFiles/tsq_dft.dir/fft.cc.o.d"
  "CMakeFiles/tsq_dft.dir/spectrum.cc.o"
  "CMakeFiles/tsq_dft.dir/spectrum.cc.o.d"
  "libtsq_dft.a"
  "libtsq_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
