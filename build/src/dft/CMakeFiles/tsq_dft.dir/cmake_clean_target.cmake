file(REMOVE_RECURSE
  "libtsq_dft.a"
)
