file(REMOVE_RECURSE
  "libtsq_subseq.a"
)
