# Empty dependencies file for tsq_subseq.
# This may be replaced when dependencies are built.
