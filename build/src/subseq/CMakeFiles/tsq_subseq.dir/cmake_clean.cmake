file(REMOVE_RECURSE
  "CMakeFiles/tsq_subseq.dir/subsequence_index.cc.o"
  "CMakeFiles/tsq_subseq.dir/subsequence_index.cc.o.d"
  "libtsq_subseq.a"
  "libtsq_subseq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_subseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
