# Empty dependencies file for tsq_storage.
# This may be replaced when dependencies are built.
