file(REMOVE_RECURSE
  "libtsq_storage.a"
)
