file(REMOVE_RECURSE
  "CMakeFiles/tsq_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/tsq_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/tsq_storage.dir/page_file.cc.o"
  "CMakeFiles/tsq_storage.dir/page_file.cc.o.d"
  "CMakeFiles/tsq_storage.dir/record_store.cc.o"
  "CMakeFiles/tsq_storage.dir/record_store.cc.o.d"
  "libtsq_storage.a"
  "libtsq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
