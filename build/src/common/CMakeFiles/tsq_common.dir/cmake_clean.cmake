file(REMOVE_RECURSE
  "CMakeFiles/tsq_common.dir/check.cc.o"
  "CMakeFiles/tsq_common.dir/check.cc.o.d"
  "CMakeFiles/tsq_common.dir/rng.cc.o"
  "CMakeFiles/tsq_common.dir/rng.cc.o.d"
  "CMakeFiles/tsq_common.dir/status.cc.o"
  "CMakeFiles/tsq_common.dir/status.cc.o.d"
  "libtsq_common.a"
  "libtsq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
