file(REMOVE_RECURSE
  "libtsq_common.a"
)
