# Empty compiler generated dependencies file for tsq_common.
# This may be replaced when dependencies are built.
