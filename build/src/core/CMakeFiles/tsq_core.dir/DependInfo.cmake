
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/tsq_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/tsq_core.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/dataset.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/tsq_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/engine.cc.o.d"
  "/root/repo/src/core/feature.cc" "src/core/CMakeFiles/tsq_core.dir/feature.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/feature.cc.o.d"
  "/root/repo/src/core/index.cc" "src/core/CMakeFiles/tsq_core.dir/index.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/index.cc.o.d"
  "/root/repo/src/core/join_query.cc" "src/core/CMakeFiles/tsq_core.dir/join_query.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/join_query.cc.o.d"
  "/root/repo/src/core/knn_query.cc" "src/core/CMakeFiles/tsq_core.dir/knn_query.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/knn_query.cc.o.d"
  "/root/repo/src/core/polar_bounds.cc" "src/core/CMakeFiles/tsq_core.dir/polar_bounds.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/polar_bounds.cc.o.d"
  "/root/repo/src/core/range_query.cc" "src/core/CMakeFiles/tsq_core.dir/range_query.cc.o" "gcc" "src/core/CMakeFiles/tsq_core.dir/range_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/tsq_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/tsq_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tsq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rstar/CMakeFiles/tsq_rstar.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/tsq_transform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
