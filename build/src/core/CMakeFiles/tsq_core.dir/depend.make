# Empty dependencies file for tsq_core.
# This may be replaced when dependencies are built.
