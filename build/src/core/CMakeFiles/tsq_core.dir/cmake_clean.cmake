file(REMOVE_RECURSE
  "CMakeFiles/tsq_core.dir/cost_model.cc.o"
  "CMakeFiles/tsq_core.dir/cost_model.cc.o.d"
  "CMakeFiles/tsq_core.dir/dataset.cc.o"
  "CMakeFiles/tsq_core.dir/dataset.cc.o.d"
  "CMakeFiles/tsq_core.dir/engine.cc.o"
  "CMakeFiles/tsq_core.dir/engine.cc.o.d"
  "CMakeFiles/tsq_core.dir/feature.cc.o"
  "CMakeFiles/tsq_core.dir/feature.cc.o.d"
  "CMakeFiles/tsq_core.dir/index.cc.o"
  "CMakeFiles/tsq_core.dir/index.cc.o.d"
  "CMakeFiles/tsq_core.dir/join_query.cc.o"
  "CMakeFiles/tsq_core.dir/join_query.cc.o.d"
  "CMakeFiles/tsq_core.dir/knn_query.cc.o"
  "CMakeFiles/tsq_core.dir/knn_query.cc.o.d"
  "CMakeFiles/tsq_core.dir/polar_bounds.cc.o"
  "CMakeFiles/tsq_core.dir/polar_bounds.cc.o.d"
  "CMakeFiles/tsq_core.dir/range_query.cc.o"
  "CMakeFiles/tsq_core.dir/range_query.cc.o.d"
  "libtsq_core.a"
  "libtsq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
