file(REMOVE_RECURSE
  "libtsq_core.a"
)
