file(REMOVE_RECURSE
  "CMakeFiles/tsq_ts.dir/distance.cc.o"
  "CMakeFiles/tsq_ts.dir/distance.cc.o.d"
  "CMakeFiles/tsq_ts.dir/generate.cc.o"
  "CMakeFiles/tsq_ts.dir/generate.cc.o.d"
  "CMakeFiles/tsq_ts.dir/io.cc.o"
  "CMakeFiles/tsq_ts.dir/io.cc.o.d"
  "CMakeFiles/tsq_ts.dir/normal_form.cc.o"
  "CMakeFiles/tsq_ts.dir/normal_form.cc.o.d"
  "CMakeFiles/tsq_ts.dir/ops.cc.o"
  "CMakeFiles/tsq_ts.dir/ops.cc.o.d"
  "CMakeFiles/tsq_ts.dir/series.cc.o"
  "CMakeFiles/tsq_ts.dir/series.cc.o.d"
  "libtsq_ts.a"
  "libtsq_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
