# Empty compiler generated dependencies file for tsq_ts.
# This may be replaced when dependencies are built.
