file(REMOVE_RECURSE
  "libtsq_ts.a"
)
