
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/distance.cc" "src/ts/CMakeFiles/tsq_ts.dir/distance.cc.o" "gcc" "src/ts/CMakeFiles/tsq_ts.dir/distance.cc.o.d"
  "/root/repo/src/ts/generate.cc" "src/ts/CMakeFiles/tsq_ts.dir/generate.cc.o" "gcc" "src/ts/CMakeFiles/tsq_ts.dir/generate.cc.o.d"
  "/root/repo/src/ts/io.cc" "src/ts/CMakeFiles/tsq_ts.dir/io.cc.o" "gcc" "src/ts/CMakeFiles/tsq_ts.dir/io.cc.o.d"
  "/root/repo/src/ts/normal_form.cc" "src/ts/CMakeFiles/tsq_ts.dir/normal_form.cc.o" "gcc" "src/ts/CMakeFiles/tsq_ts.dir/normal_form.cc.o.d"
  "/root/repo/src/ts/ops.cc" "src/ts/CMakeFiles/tsq_ts.dir/ops.cc.o" "gcc" "src/ts/CMakeFiles/tsq_ts.dir/ops.cc.o.d"
  "/root/repo/src/ts/series.cc" "src/ts/CMakeFiles/tsq_ts.dir/series.cc.o" "gcc" "src/ts/CMakeFiles/tsq_ts.dir/series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
