# Empty dependencies file for tsq_transform.
# This may be replaced when dependencies are built.
