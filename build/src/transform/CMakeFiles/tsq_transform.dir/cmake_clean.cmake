file(REMOVE_RECURSE
  "CMakeFiles/tsq_transform.dir/builders.cc.o"
  "CMakeFiles/tsq_transform.dir/builders.cc.o.d"
  "CMakeFiles/tsq_transform.dir/cluster.cc.o"
  "CMakeFiles/tsq_transform.dir/cluster.cc.o.d"
  "CMakeFiles/tsq_transform.dir/feature_transform.cc.o"
  "CMakeFiles/tsq_transform.dir/feature_transform.cc.o.d"
  "CMakeFiles/tsq_transform.dir/ordering.cc.o"
  "CMakeFiles/tsq_transform.dir/ordering.cc.o.d"
  "CMakeFiles/tsq_transform.dir/partition.cc.o"
  "CMakeFiles/tsq_transform.dir/partition.cc.o.d"
  "CMakeFiles/tsq_transform.dir/spectral_transform.cc.o"
  "CMakeFiles/tsq_transform.dir/spectral_transform.cc.o.d"
  "CMakeFiles/tsq_transform.dir/transform_mbr.cc.o"
  "CMakeFiles/tsq_transform.dir/transform_mbr.cc.o.d"
  "libtsq_transform.a"
  "libtsq_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
