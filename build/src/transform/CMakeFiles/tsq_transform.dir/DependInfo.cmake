
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/builders.cc" "src/transform/CMakeFiles/tsq_transform.dir/builders.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/builders.cc.o.d"
  "/root/repo/src/transform/cluster.cc" "src/transform/CMakeFiles/tsq_transform.dir/cluster.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/cluster.cc.o.d"
  "/root/repo/src/transform/feature_transform.cc" "src/transform/CMakeFiles/tsq_transform.dir/feature_transform.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/feature_transform.cc.o.d"
  "/root/repo/src/transform/ordering.cc" "src/transform/CMakeFiles/tsq_transform.dir/ordering.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/ordering.cc.o.d"
  "/root/repo/src/transform/partition.cc" "src/transform/CMakeFiles/tsq_transform.dir/partition.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/partition.cc.o.d"
  "/root/repo/src/transform/spectral_transform.cc" "src/transform/CMakeFiles/tsq_transform.dir/spectral_transform.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/spectral_transform.cc.o.d"
  "/root/repo/src/transform/transform_mbr.cc" "src/transform/CMakeFiles/tsq_transform.dir/transform_mbr.cc.o" "gcc" "src/transform/CMakeFiles/tsq_transform.dir/transform_mbr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/tsq_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/tsq_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/rstar/CMakeFiles/tsq_rstar.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tsq_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
