file(REMOVE_RECURSE
  "libtsq_transform.a"
)
