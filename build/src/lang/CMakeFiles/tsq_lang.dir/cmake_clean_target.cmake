file(REMOVE_RECURSE
  "libtsq_lang.a"
)
