# Empty dependencies file for tsq_lang.
# This may be replaced when dependencies are built.
