file(REMOVE_RECURSE
  "CMakeFiles/tsq_lang.dir/compiler.cc.o"
  "CMakeFiles/tsq_lang.dir/compiler.cc.o.d"
  "CMakeFiles/tsq_lang.dir/lexer.cc.o"
  "CMakeFiles/tsq_lang.dir/lexer.cc.o.d"
  "CMakeFiles/tsq_lang.dir/parser.cc.o"
  "CMakeFiles/tsq_lang.dir/parser.cc.o.d"
  "libtsq_lang.a"
  "libtsq_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
