# Empty compiler generated dependencies file for fig6_scale_transforms.
# This may be replaced when dependencies are built.
