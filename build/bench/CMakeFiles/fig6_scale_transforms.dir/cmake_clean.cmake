file(REMOVE_RECURSE
  "CMakeFiles/fig6_scale_transforms.dir/fig6_scale_transforms.cc.o"
  "CMakeFiles/fig6_scale_transforms.dir/fig6_scale_transforms.cc.o.d"
  "fig6_scale_transforms"
  "fig6_scale_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scale_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
