file(REMOVE_RECURSE
  "CMakeFiles/fig5_scale_sequences.dir/fig5_scale_sequences.cc.o"
  "CMakeFiles/fig5_scale_sequences.dir/fig5_scale_sequences.cc.o.d"
  "fig5_scale_sequences"
  "fig5_scale_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scale_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
