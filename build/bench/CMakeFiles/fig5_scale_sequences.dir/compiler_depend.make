# Empty compiler generated dependencies file for fig5_scale_sequences.
# This may be replaced when dependencies are built.
