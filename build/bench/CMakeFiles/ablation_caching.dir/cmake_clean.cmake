file(REMOVE_RECURSE
  "CMakeFiles/ablation_caching.dir/ablation_caching.cc.o"
  "CMakeFiles/ablation_caching.dir/ablation_caching.cc.o.d"
  "ablation_caching"
  "ablation_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
