# Empty compiler generated dependencies file for ablation_caching.
# This may be replaced when dependencies are built.
