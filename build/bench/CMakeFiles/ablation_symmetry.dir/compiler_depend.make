# Empty compiler generated dependencies file for ablation_symmetry.
# This may be replaced when dependencies are built.
