file(REMOVE_RECURSE
  "CMakeFiles/ablation_symmetry.dir/ablation_symmetry.cc.o"
  "CMakeFiles/ablation_symmetry.dir/ablation_symmetry.cc.o.d"
  "ablation_symmetry"
  "ablation_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
