file(REMOVE_RECURSE
  "CMakeFiles/extension_subsequence.dir/extension_subsequence.cc.o"
  "CMakeFiles/extension_subsequence.dir/extension_subsequence.cc.o.d"
  "extension_subsequence"
  "extension_subsequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_subsequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
