# Empty dependencies file for extension_subsequence.
# This may be replaced when dependencies are built.
