file(REMOVE_RECURSE
  "CMakeFiles/fig7_join.dir/fig7_join.cc.o"
  "CMakeFiles/fig7_join.dir/fig7_join.cc.o.d"
  "fig7_join"
  "fig7_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
