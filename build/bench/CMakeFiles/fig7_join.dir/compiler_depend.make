# Empty compiler generated dependencies file for fig7_join.
# This may be replaced when dependencies are built.
