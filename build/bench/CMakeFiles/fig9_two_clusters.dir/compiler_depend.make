# Empty compiler generated dependencies file for fig9_two_clusters.
# This may be replaced when dependencies are built.
