file(REMOVE_RECURSE
  "CMakeFiles/fig9_two_clusters.dir/fig9_two_clusters.cc.o"
  "CMakeFiles/fig9_two_clusters.dir/fig9_two_clusters.cc.o.d"
  "fig9_two_clusters"
  "fig9_two_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_two_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
