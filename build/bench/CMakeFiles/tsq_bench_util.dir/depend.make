# Empty dependencies file for tsq_bench_util.
# This may be replaced when dependencies are built.
