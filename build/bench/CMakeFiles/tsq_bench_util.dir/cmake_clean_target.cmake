file(REMOVE_RECURSE
  "libtsq_bench_util.a"
)
