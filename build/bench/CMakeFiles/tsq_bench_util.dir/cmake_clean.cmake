file(REMOVE_RECURSE
  "CMakeFiles/tsq_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/tsq_bench_util.dir/bench_util.cc.o.d"
  "libtsq_bench_util.a"
  "libtsq_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
