file(REMOVE_RECURSE
  "CMakeFiles/ablation_coefficients.dir/ablation_coefficients.cc.o"
  "CMakeFiles/ablation_coefficients.dir/ablation_coefficients.cc.o.d"
  "ablation_coefficients"
  "ablation_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
