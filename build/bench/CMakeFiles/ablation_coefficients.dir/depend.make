# Empty dependencies file for ablation_coefficients.
# This may be replaced when dependencies are built.
