# Empty dependencies file for ablation_partitioning.
# This may be replaced when dependencies are built.
