file(REMOVE_RECURSE
  "CMakeFiles/ablation_partitioning.dir/ablation_partitioning.cc.o"
  "CMakeFiles/ablation_partitioning.dir/ablation_partitioning.cc.o.d"
  "ablation_partitioning"
  "ablation_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
