# Empty compiler generated dependencies file for fig8_mbr_packing.
# This may be replaced when dependencies are built.
