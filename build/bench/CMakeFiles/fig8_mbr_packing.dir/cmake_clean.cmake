file(REMOVE_RECURSE
  "CMakeFiles/fig8_mbr_packing.dir/fig8_mbr_packing.cc.o"
  "CMakeFiles/fig8_mbr_packing.dir/fig8_mbr_packing.cc.o.d"
  "fig8_mbr_packing"
  "fig8_mbr_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mbr_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
