# Empty compiler generated dependencies file for extension_knn.
# This may be replaced when dependencies are built.
