file(REMOVE_RECURSE
  "CMakeFiles/extension_knn.dir/extension_knn.cc.o"
  "CMakeFiles/extension_knn.dir/extension_knn.cc.o.d"
  "extension_knn"
  "extension_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
