add_test([=[GrandTourTest.FullLifecycle]=]  /root/repo/build/tests/grand_tour_test [==[--gtest_filter=GrandTourTest.FullLifecycle]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GrandTourTest.FullLifecycle]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  grand_tour_test_TESTS GrandTourTest.FullLifecycle)
