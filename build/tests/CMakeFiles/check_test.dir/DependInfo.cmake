
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/check_test.cc" "tests/CMakeFiles/check_test.dir/common/check_test.cc.o" "gcc" "tests/CMakeFiles/check_test.dir/common/check_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/tsq_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/subseq/CMakeFiles/tsq_subseq.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/tsq_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/rstar/CMakeFiles/tsq_rstar.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tsq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/tsq_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/tsq_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
