# Empty dependencies file for fft_test.
# This may be replaced when dependencies are built.
