file(REMOVE_RECURSE
  "CMakeFiles/fft_test.dir/dft/fft_test.cc.o"
  "CMakeFiles/fft_test.dir/dft/fft_test.cc.o.d"
  "fft_test"
  "fft_test.pdb"
  "fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
