# Empty compiler generated dependencies file for range_query_test.
# This may be replaced when dependencies are built.
