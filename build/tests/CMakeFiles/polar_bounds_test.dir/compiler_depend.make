# Empty compiler generated dependencies file for polar_bounds_test.
# This may be replaced when dependencies are built.
