file(REMOVE_RECURSE
  "CMakeFiles/polar_bounds_test.dir/core/polar_bounds_test.cc.o"
  "CMakeFiles/polar_bounds_test.dir/core/polar_bounds_test.cc.o.d"
  "polar_bounds_test"
  "polar_bounds_test.pdb"
  "polar_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polar_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
