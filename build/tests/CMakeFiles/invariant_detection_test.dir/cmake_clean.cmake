file(REMOVE_RECURSE
  "CMakeFiles/invariant_detection_test.dir/rstar/invariant_detection_test.cc.o"
  "CMakeFiles/invariant_detection_test.dir/rstar/invariant_detection_test.cc.o.d"
  "invariant_detection_test"
  "invariant_detection_test.pdb"
  "invariant_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
