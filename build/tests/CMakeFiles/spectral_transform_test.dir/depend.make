# Empty dependencies file for spectral_transform_test.
# This may be replaced when dependencies are built.
