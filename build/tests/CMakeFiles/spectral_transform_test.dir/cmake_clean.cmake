file(REMOVE_RECURSE
  "CMakeFiles/spectral_transform_test.dir/transform/spectral_transform_test.cc.o"
  "CMakeFiles/spectral_transform_test.dir/transform/spectral_transform_test.cc.o.d"
  "spectral_transform_test"
  "spectral_transform_test.pdb"
  "spectral_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
