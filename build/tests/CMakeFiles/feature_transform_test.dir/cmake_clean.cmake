file(REMOVE_RECURSE
  "CMakeFiles/feature_transform_test.dir/transform/feature_transform_test.cc.o"
  "CMakeFiles/feature_transform_test.dir/transform/feature_transform_test.cc.o.d"
  "feature_transform_test"
  "feature_transform_test.pdb"
  "feature_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
