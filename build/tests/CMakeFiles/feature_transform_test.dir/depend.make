# Empty dependencies file for feature_transform_test.
# This may be replaced when dependencies are built.
