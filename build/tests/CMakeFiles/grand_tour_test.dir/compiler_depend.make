# Empty compiler generated dependencies file for grand_tour_test.
# This may be replaced when dependencies are built.
