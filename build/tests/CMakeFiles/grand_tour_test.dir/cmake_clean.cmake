file(REMOVE_RECURSE
  "CMakeFiles/grand_tour_test.dir/integration/grand_tour_test.cc.o"
  "CMakeFiles/grand_tour_test.dir/integration/grand_tour_test.cc.o.d"
  "grand_tour_test"
  "grand_tour_test.pdb"
  "grand_tour_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grand_tour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
