# Empty dependencies file for rtree_join_test.
# This may be replaced when dependencies are built.
