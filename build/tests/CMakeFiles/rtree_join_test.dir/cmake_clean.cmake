file(REMOVE_RECURSE
  "CMakeFiles/rtree_join_test.dir/rstar/join_test.cc.o"
  "CMakeFiles/rtree_join_test.dir/rstar/join_test.cc.o.d"
  "rtree_join_test"
  "rtree_join_test.pdb"
  "rtree_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
