file(REMOVE_RECURSE
  "CMakeFiles/feature_layout_test.dir/transform/feature_layout_test.cc.o"
  "CMakeFiles/feature_layout_test.dir/transform/feature_layout_test.cc.o.d"
  "feature_layout_test"
  "feature_layout_test.pdb"
  "feature_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
