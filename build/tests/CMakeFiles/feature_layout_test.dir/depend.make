# Empty dependencies file for feature_layout_test.
# This may be replaced when dependencies are built.
