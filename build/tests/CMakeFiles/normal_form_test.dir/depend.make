# Empty dependencies file for normal_form_test.
# This may be replaced when dependencies are built.
