file(REMOVE_RECURSE
  "CMakeFiles/normal_form_test.dir/ts/normal_form_test.cc.o"
  "CMakeFiles/normal_form_test.dir/ts/normal_form_test.cc.o.d"
  "normal_form_test"
  "normal_form_test.pdb"
  "normal_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normal_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
