file(REMOVE_RECURSE
  "CMakeFiles/rect_test.dir/rstar/rect_test.cc.o"
  "CMakeFiles/rect_test.dir/rstar/rect_test.cc.o.d"
  "rect_test"
  "rect_test.pdb"
  "rect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
