# Empty dependencies file for rect_test.
# This may be replaced when dependencies are built.
