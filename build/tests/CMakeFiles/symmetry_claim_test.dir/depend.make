# Empty dependencies file for symmetry_claim_test.
# This may be replaced when dependencies are built.
