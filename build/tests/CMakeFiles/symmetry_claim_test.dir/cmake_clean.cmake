file(REMOVE_RECURSE
  "CMakeFiles/symmetry_claim_test.dir/integration/symmetry_claim_test.cc.o"
  "CMakeFiles/symmetry_claim_test.dir/integration/symmetry_claim_test.cc.o.d"
  "symmetry_claim_test"
  "symmetry_claim_test.pdb"
  "symmetry_claim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_claim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
