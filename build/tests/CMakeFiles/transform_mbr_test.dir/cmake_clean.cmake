file(REMOVE_RECURSE
  "CMakeFiles/transform_mbr_test.dir/transform/transform_mbr_test.cc.o"
  "CMakeFiles/transform_mbr_test.dir/transform/transform_mbr_test.cc.o.d"
  "transform_mbr_test"
  "transform_mbr_test.pdb"
  "transform_mbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_mbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
