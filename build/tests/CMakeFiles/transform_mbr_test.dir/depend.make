# Empty dependencies file for transform_mbr_test.
# This may be replaced when dependencies are built.
