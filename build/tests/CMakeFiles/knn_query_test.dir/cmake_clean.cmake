file(REMOVE_RECURSE
  "CMakeFiles/knn_query_test.dir/core/knn_query_test.cc.o"
  "CMakeFiles/knn_query_test.dir/core/knn_query_test.cc.o.d"
  "knn_query_test"
  "knn_query_test.pdb"
  "knn_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
