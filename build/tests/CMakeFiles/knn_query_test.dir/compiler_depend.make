# Empty compiler generated dependencies file for knn_query_test.
# This may be replaced when dependencies are built.
