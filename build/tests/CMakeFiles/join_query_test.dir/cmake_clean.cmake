file(REMOVE_RECURSE
  "CMakeFiles/join_query_test.dir/core/join_query_test.cc.o"
  "CMakeFiles/join_query_test.dir/core/join_query_test.cc.o.d"
  "join_query_test"
  "join_query_test.pdb"
  "join_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
