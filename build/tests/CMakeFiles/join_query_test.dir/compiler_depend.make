# Empty compiler generated dependencies file for join_query_test.
# This may be replaced when dependencies are built.
