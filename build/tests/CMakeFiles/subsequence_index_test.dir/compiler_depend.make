# Empty compiler generated dependencies file for subsequence_index_test.
# This may be replaced when dependencies are built.
