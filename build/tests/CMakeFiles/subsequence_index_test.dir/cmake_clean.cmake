file(REMOVE_RECURSE
  "CMakeFiles/subsequence_index_test.dir/subseq/subsequence_index_test.cc.o"
  "CMakeFiles/subsequence_index_test.dir/subseq/subsequence_index_test.cc.o.d"
  "subsequence_index_test"
  "subsequence_index_test.pdb"
  "subsequence_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsequence_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
