# Empty dependencies file for momentum_shift.
# This may be replaced when dependencies are built.
