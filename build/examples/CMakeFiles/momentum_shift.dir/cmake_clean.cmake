file(REMOVE_RECURSE
  "CMakeFiles/momentum_shift.dir/momentum_shift.cc.o"
  "CMakeFiles/momentum_shift.dir/momentum_shift.cc.o.d"
  "momentum_shift"
  "momentum_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/momentum_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
