file(REMOVE_RECURSE
  "CMakeFiles/compose_rewrite.dir/compose_rewrite.cc.o"
  "CMakeFiles/compose_rewrite.dir/compose_rewrite.cc.o.d"
  "compose_rewrite"
  "compose_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compose_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
