# Empty compiler generated dependencies file for compose_rewrite.
# This may be replaced when dependencies are built.
