# Empty compiler generated dependencies file for market_indices.
# This may be replaced when dependencies are built.
