file(REMOVE_RECURSE
  "CMakeFiles/market_indices.dir/market_indices.cc.o"
  "CMakeFiles/market_indices.dir/market_indices.cc.o.d"
  "market_indices"
  "market_indices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_indices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
