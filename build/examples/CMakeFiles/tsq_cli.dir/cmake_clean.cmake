file(REMOVE_RECURSE
  "CMakeFiles/tsq_cli.dir/tsq_cli.cc.o"
  "CMakeFiles/tsq_cli.dir/tsq_cli.cc.o.d"
  "tsq_cli"
  "tsq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
