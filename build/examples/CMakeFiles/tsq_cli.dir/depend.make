# Empty dependencies file for tsq_cli.
# This may be replaced when dependencies are built.
