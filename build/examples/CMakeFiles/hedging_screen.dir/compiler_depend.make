# Empty compiler generated dependencies file for hedging_screen.
# This may be replaced when dependencies are built.
