file(REMOVE_RECURSE
  "CMakeFiles/hedging_screen.dir/hedging_screen.cc.o"
  "CMakeFiles/hedging_screen.dir/hedging_screen.cc.o.d"
  "hedging_screen"
  "hedging_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedging_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
