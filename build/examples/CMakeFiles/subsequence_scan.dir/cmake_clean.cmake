file(REMOVE_RECURSE
  "CMakeFiles/subsequence_scan.dir/subsequence_scan.cc.o"
  "CMakeFiles/subsequence_scan.dir/subsequence_scan.cc.o.d"
  "subsequence_scan"
  "subsequence_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsequence_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
