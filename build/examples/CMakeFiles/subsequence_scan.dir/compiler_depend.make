# Empty compiler generated dependencies file for subsequence_scan.
# This may be replaced when dependencies are built.
