// Seeded differential fuzzer: generates deterministic datasets and query
// workloads, runs them through every execution configuration and checks each
// result against the brute-force oracle (see src/testing/differential.h).
//
//   fuzz_queries --seed=1..50 --iters=200          # the acceptance sweep
//   fuzz_queries --seed=7 --case=13                # reproduce one failure
//   fuzz_queries --mutate --seed=1..20 --iters=100 # concurrent-write sweep
//   fuzz_queries --checkpoint --seed=1..5 --iters=3 # crash-recovery sweep
//   fuzz_queries --batch --seed=1..20 --iters=100  # batched-execution sweep
//   fuzz_queries --batch --mutate --seed=1..20 --iters=100
//
// Every divergence prints a self-contained repro line and the tool exits
// non-zero.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "testing/differential.h"

namespace {

struct FuzzOptions {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 5;
  std::size_t iters = 50;
  bool have_case = false;
  std::size_t case_index = 0;
  bool mutate = false;
  bool checkpoint = false;
  bool batch = false;
  tsq::testing::DiffConfig diff;
  tsq::testing::MutateConfig mutate_config;
  tsq::testing::CheckpointConfig checkpoint_config;
  tsq::testing::BatchConfig batch_config;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed=N | --seed=A..B] [--iters=N] [--case=K]\n"
      "          [--with-faults | --no-faults] [--tol=X] [--mutate]\n"
      "          [--checkpoint] [--ckpt-dir=PATH] [--batch]\n"
      "\n"
      "Runs seeded query workloads through {scan, ST-index, MT-index,\n"
      "auto} x {1,4,8} threads x {pool on/off} and compares every result\n"
      "against a brute-force oracle; with faults enabled, also checks that\n"
      "injected storage errors surface as Status, never as wrong results.\n"
      "Auto runs additionally assert one deterministic plan per case.\n"
      "\n"
      "--mutate switches to the concurrent-write sweep: a seeded mutator\n"
      "thread commits Insert/Remove while the queries run, and each result\n"
      "is checked against the oracle evaluated at the snapshot version the\n"
      "query pinned (fault injection does not apply in this mode).\n"
      "\n"
      "--checkpoint switches to the crash-recovery sweep: each case saves a\n"
      "baseline checkpoint, commits a few writes, then aborts SaveTo at\n"
      "every write step in turn; after each simulated crash LoadFrom must\n"
      "recover an engine answering exactly at the old or new checkpoint.\n"
      "--ckpt-dir picks the scratch directory (default: a fresh directory\n"
      "under the system temp dir, removed on success).\n"
      "\n"
      "--batch switches to the batched-execution sweep: each case groups\n"
      "several generated specs (plus seeded duplicates) into one\n"
      "ExecuteBatch call and diffs every entry byte-for-byte against the\n"
      "per-spec sequential Execute, against the oracle, and — cache on —\n"
      "against a repeated all-hits batch; faults apply per entry\n"
      "(error-or-exact). Combine with --mutate for concurrent-write batches\n"
      "checked at each batch's single pinned snapshot.\n",
      argv0);
}

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, FuzzOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      const std::string value = arg.substr(7);
      const std::size_t dots = value.find("..");
      if (dots == std::string::npos) {
        if (!ParseUint(value.c_str(), &options->seed_lo)) return false;
        options->seed_hi = options->seed_lo;
      } else {
        if (!ParseUint(value.substr(0, dots).c_str(), &options->seed_lo) ||
            !ParseUint(value.substr(dots + 2).c_str(), &options->seed_hi)) {
          return false;
        }
      }
    } else if (arg.rfind("--iters=", 0) == 0) {
      std::uint64_t value = 0;
      if (!ParseUint(arg.c_str() + 8, &value)) return false;
      options->iters = static_cast<std::size_t>(value);
    } else if (arg.rfind("--case=", 0) == 0) {
      std::uint64_t value = 0;
      if (!ParseUint(arg.c_str() + 7, &value)) return false;
      options->have_case = true;
      options->case_index = static_cast<std::size_t>(value);
    } else if (arg == "--mutate") {
      options->mutate = true;
    } else if (arg == "--batch") {
      options->batch = true;
    } else if (arg == "--checkpoint") {
      options->checkpoint = true;
    } else if (arg.rfind("--ckpt-dir=", 0) == 0) {
      options->checkpoint_config.prefix = arg.substr(11);
      if (options->checkpoint_config.prefix.empty()) return false;
    } else if (arg == "--with-faults") {
      options->diff.with_faults = true;
      options->batch_config.with_faults = true;
    } else if (arg == "--no-faults") {
      options->diff.with_faults = false;
      options->batch_config.with_faults = false;
    } else if (arg.rfind("--tol=", 0) == 0) {
      char* end = nullptr;
      options->diff.tolerance = std::strtod(arg.c_str() + 6, &end);
      if (end == arg.c_str() + 6 || *end != '\0') return false;
      options->mutate_config.tolerance = options->diff.tolerance;
      options->checkpoint_config.tolerance = options->diff.tolerance;
      options->batch_config.tolerance = options->diff.tolerance;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->seed_hi < options->seed_lo) {
    std::fprintf(stderr, "--seed: empty range\n");
    return false;
  }
  if (options->mutate && options->checkpoint) {
    std::fprintf(stderr, "--mutate and --checkpoint are exclusive\n");
    return false;
  }
  if (options->batch && options->checkpoint) {
    std::fprintf(stderr, "--batch and --checkpoint are exclusive\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    Usage(argv[0]);
    return 2;
  }

  // Scratch directory for --checkpoint; per-seed prefixes keep manifests
  // apart. A user-chosen --ckpt-dir is kept, an auto-created one is removed
  // when the sweep passes (failures leave the torn files for inspection).
  bool cleanup_ckpt_dir = false;
  std::filesystem::path ckpt_dir;
  if (options.checkpoint) {
    if (options.checkpoint_config.prefix.empty()) {
      std::error_code ec;
      ckpt_dir = std::filesystem::temp_directory_path(ec);
      if (ec) ckpt_dir = ".";
      ckpt_dir /= "tsq_fuzz_ckpt_" + std::to_string(::getpid());
      cleanup_ckpt_dir = true;
    } else {
      ckpt_dir = options.checkpoint_config.prefix;
    }
    std::error_code ec;
    std::filesystem::create_directories(ckpt_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create checkpoint dir %s: %s\n",
                   ckpt_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  std::size_t cases = 0;
  std::size_t runs = 0;
  std::size_t fault_runs = 0;
  std::size_t fault_errors = 0;
  std::size_t writes = 0;
  std::size_t failures = 0;

  for (std::uint64_t seed = options.seed_lo; seed <= options.seed_hi; ++seed) {
    tsq::testing::DifferentialRunner runner(seed);
    tsq::testing::CheckpointConfig checkpoint_config =
        options.checkpoint_config;
    if (options.checkpoint) {
      checkpoint_config.prefix =
          (ckpt_dir / ("seed" + std::to_string(seed))).string();
    }
    const std::size_t begin = options.have_case ? options.case_index : 0;
    const std::size_t end =
        options.have_case ? options.case_index + 1 : options.iters;
    for (std::size_t index = begin; index < end; ++index) {
      const tsq::testing::CaseOutcome outcome =
          options.checkpoint
              ? runner.RunCheckpointCase(index, checkpoint_config)
              : options.batch
                    ? (options.mutate
                           ? runner.RunBatchMutateCase(index,
                                                       options.batch_config)
                           : runner.RunBatchCase(index, options.batch_config))
                    : options.mutate
                          ? runner.RunMutateCase(index, options.mutate_config)
                          : runner.RunCase(index, options.diff);
      ++cases;
      runs += outcome.runs;
      fault_runs += outcome.fault_runs;
      fault_errors += outcome.fault_errors;
      writes += outcome.writes;
      if (!outcome.passed) {
        ++failures;
        std::fprintf(stderr, "FAIL seed=%llu case=%zu: %s\n",
                     static_cast<unsigned long long>(seed), index,
                     outcome.failure.c_str());
        std::fprintf(stderr, "  query: %s\n", outcome.description.c_str());
        if (options.checkpoint) {
          // Checkpoint cases also mutate the dataset case over case.
          std::fprintf(stderr,
                       "  repro: fuzz_queries --checkpoint --seed=%llu "
                       "--iters=%zu\n",
                       static_cast<unsigned long long>(seed), index + 1);
        } else if (options.mutate) {
          // Mutate cases change the dataset, so case K only reproduces
          // after replaying cases 0..K-1 against the same runner.
          std::fprintf(stderr,
                       "  repro: fuzz_queries %s--mutate --seed=%llu "
                       "--iters=%zu\n",
                       options.batch ? "--batch " : "",
                       static_cast<unsigned long long>(seed), index + 1);
        } else {
          std::fprintf(stderr,
                       "  repro: fuzz_queries %s--seed=%llu --case=%zu\n",
                       options.batch ? "--batch " : "",
                       static_cast<unsigned long long>(seed), index);
        }
      }
    }
  }

  std::printf(
      "fuzz_queries: %zu case(s), %zu engine run(s), %zu fault run(s) "
      "(%zu surfaced errors), %zu concurrent write(s), %zu failure(s)\n",
      cases, runs, fault_runs, fault_errors, writes, failures);
  if (cleanup_ckpt_dir && failures == 0) {
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);  // best-effort
  }
  return failures == 0 ? 0 : 1;
}
