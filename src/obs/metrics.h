#ifndef TSQ_OBS_METRICS_H_
#define TSQ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tsq::obs {

/// Monotonically increasing event count. All methods are lock-free and safe
/// from any thread; hot paths (page reads, pool hits) pay one relaxed
/// fetch_add.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, live workers).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two-bucket histogram of non-negative values (durations in
/// nanoseconds, queue depths): bucket b counts observations in
/// [2^b - 1, 2^(b+1) - 1), i.e. bucket(v) = bit_width(v). Count and sum are
/// exact; the distribution is log2-resolution, which is plenty for "where
/// did the time go" questions.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Observe(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Mean of all observations (0 when empty).
  double mean() const;
  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide registry of named instruments. Components acquire their
/// instruments once (typically in a constructor) and then update them
/// lock-free; the registry mutex is only taken by the get-or-create lookups
/// and the renderers. Returned pointers are stable for the life of the
/// process — instruments are never removed, Reset() only zeroes them.
///
/// Names are dotted paths ("storage.page_file.reads"); one name denotes one
/// instrument of one kind (asking for an existing name with a different kind
/// is a programming error and aborts). The convention used by the engine:
///
///   engine.queries / engine.query_errors    queries executed / failed
///   engine.query_nanos                      per-query wall time (histogram)
///   exec.pool.workers_started               worker threads ever spawned
///   exec.pool.tasks_run                     tasks executed by pool workers
///   exec.pool.queue_depth                   submitted-not-yet-started tasks
///   exec.pool.queue_depth_on_submit         depth seen by Submit (histogram)
///   storage.page_file.{reads,writes,allocations}   successful physical I/Os
///   storage.buffer_pool.{hits,misses,coalesced,evictions}
class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed, safe during static
  /// teardown).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the pointer stays valid forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// One "name kind value" line per instrument, sorted by name.
  std::string RenderText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names sorted.
  std::string RenderJson() const;

  /// Zeroes every instrument (between benchmark epochs / tests). Pointers
  /// handed out earlier remain valid.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& FindOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace tsq::obs

#endif  // TSQ_OBS_METRICS_H_
