#include "obs/metrics.h"

#include <bit>
#include <sstream>

#include "common/check.h"

namespace tsq::obs {

void Histogram::Observe(std::uint64_t value) {
  const std::size_t bucket = std::bit_width(value);  // 0 -> 0, else 1+log2
  buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument& MetricsRegistry::FindOrCreate(
    const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        instrument.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        instrument.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        instrument.histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments_.emplace(name, std::move(instrument)).first;
  }
  TSQ_CHECK(it->second.kind == kind)
      << "metric '" << name << "' already registered with another kind";
  return it->second;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  return FindOrCreate(name, Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  return FindOrCreate(name, Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  return FindOrCreate(name, Kind::kHistogram).histogram.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        os << name << " counter " << instrument.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << name << " gauge " << instrument.gauge->value() << '\n';
        break;
      case Kind::kHistogram:
        os << name << " histogram count=" << instrument.histogram->count()
           << " sum=" << instrument.histogram->sum()
           << " mean=" << instrument.histogram->mean() << '\n';
        break;
    }
  }
  return os.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters, gauges, histograms;
  bool first_counter = true, first_gauge = true, first_histogram = true;
  for (const auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        if (!first_counter) counters << ',';
        first_counter = false;
        counters << '"' << name << "\":" << instrument.counter->value();
        break;
      case Kind::kGauge:
        if (!first_gauge) gauges << ',';
        first_gauge = false;
        gauges << '"' << name << "\":" << instrument.gauge->value();
        break;
      case Kind::kHistogram:
        if (!first_histogram) histograms << ',';
        first_histogram = false;
        histograms << '"' << name
                   << "\":{\"count\":" << instrument.histogram->count()
                   << ",\"sum\":" << instrument.histogram->sum() << '}';
        break;
    }
  }
  return "{\"counters\":{" + counters.str() + "},\"gauges\":{" +
         gauges.str() + "},\"histograms\":{" + histograms.str() + "}}";
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        instrument.counter->Reset();
        break;
      case Kind::kGauge:
        instrument.gauge->Reset();
        break;
      case Kind::kHistogram:
        instrument.histogram->Reset();
        break;
    }
  }
}

}  // namespace tsq::obs
