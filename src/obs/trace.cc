#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsq::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPlan:
      return "plan";
    case Phase::kIndexTraversal:
      return "index-traversal";
    case Phase::kCandidateFetch:
      return "candidate-fetch";
    case Phase::kVerification:
      return "verification";
    case Phase::kMerge:
      return "merge";
  }
  return "unknown";
}

void PhaseStats::AddTask(std::uint64_t task_nanos, std::uint64_t item_count) {
  nanos += task_nanos;
  max_task_nanos = std::max(max_task_nanos, task_nanos);
  ++tasks;
  items += item_count;
}

void PhaseStats::Merge(const PhaseStats& other) {
  nanos += other.nanos;
  max_task_nanos = std::max(max_task_nanos, other.max_task_nanos);
  tasks += other.tasks;
  items += other.items;
}

std::string QueryTrace::DeterministicSignature() const {
  std::ostringstream os;
  os << algorithm;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    os << ';' << PhaseName(static_cast<Phase>(p))
       << " tasks=" << phases[p].tasks << " items=" << phases[p].items;
  }
  return os.str();
}

std::string FormatTrace(const QueryTrace& trace) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line, "%s, %zu thread(s), total %.3f ms\n",
                trace.algorithm.c_str(), trace.num_threads,
                static_cast<double>(trace.total_nanos) * 1e-6);
  os << line;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseStats& phase = trace.phases[p];
    if (phase.empty()) continue;
    std::snprintf(line, sizeof line,
                  "  %-16s %9.3f ms  (tasks %llu, max %.3f ms, items %llu)\n",
                  PhaseName(static_cast<Phase>(p)),
                  static_cast<double>(phase.nanos) * 1e-6,
                  static_cast<unsigned long long>(phase.tasks),
                  static_cast<double>(phase.max_task_nanos) * 1e-6,
                  static_cast<unsigned long long>(phase.items));
    os << line;
  }
  return os.str();
}

std::string TraceToJson(const QueryTrace& trace) {
  std::ostringstream os;
  os << "{\"algorithm\":\"" << trace.algorithm << "\""
     << ",\"num_threads\":" << trace.num_threads
     << ",\"total_nanos\":" << trace.total_nanos << ",\"phases\":[";
  bool first = true;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseStats& phase = trace.phases[p];
    if (phase.empty()) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"phase\":\"" << PhaseName(static_cast<Phase>(p)) << "\""
       << ",\"nanos\":" << phase.nanos
       << ",\"max_task_nanos\":" << phase.max_task_nanos
       << ",\"tasks\":" << phase.tasks << ",\"items\":" << phase.items << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace tsq::obs
