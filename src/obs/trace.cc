#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsq::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPlan:
      return "plan";
    case Phase::kIndexTraversal:
      return "index-traversal";
    case Phase::kCandidateFetch:
      return "candidate-fetch";
    case Phase::kVerification:
      return "verification";
    case Phase::kMerge:
      return "merge";
  }
  return "unknown";
}

void PhaseStats::AddTask(std::uint64_t task_nanos, std::uint64_t item_count) {
  nanos += task_nanos;
  max_task_nanos = std::max(max_task_nanos, task_nanos);
  ++tasks;
  items += item_count;
}

void PhaseStats::Merge(const PhaseStats& other) {
  nanos += other.nanos;
  max_task_nanos = std::max(max_task_nanos, other.max_task_nanos);
  tasks += other.tasks;
  items += other.items;
}

std::string QueryTrace::DeterministicSignature() const {
  std::ostringstream os;
  os << algorithm;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    os << ';' << PhaseName(static_cast<Phase>(p))
       << " tasks=" << phases[p].tasks << " items=" << phases[p].items;
  }
  // Only the decision itself — cache_hit and the cost numbers vary with
  // call order and calibration, the chosen plan must not.
  if (planner.planned) {
    const PlanCandidateTrace* chosen = planner.chosen_candidate();
    os << ";planner chosen=" << (chosen != nullptr ? chosen->label : "?");
  }
  return os.str();
}

std::string FormatTrace(const QueryTrace& trace) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line,
                "%s, %zu thread(s), total %.3f ms, snapshot v%llu, "
                "checkpoint e%llu%s%s\n",
                trace.algorithm.c_str(), trace.num_threads,
                static_cast<double>(trace.total_nanos) * 1e-6,
                static_cast<unsigned long long>(trace.snapshot_version),
                static_cast<unsigned long long>(trace.checkpoint_epoch),
                trace.kernel_isa.empty() ? "" : ", kernels ",
                trace.kernel_isa.c_str());
  os << line;
  if (trace.batch_size > 0) {
    std::snprintf(line, sizeof line,
                  "  batch: %zu queries, group of %zu%s%s, deduped fetches "
                  "%llu\n",
                  trace.batch_size, trace.batch_group_queries,
                  trace.shared_traversal ? ", shared traversal" : "",
                  trace.result_cache_hit ? ", result-cache hit" : "",
                  static_cast<unsigned long long>(trace.deduped_fetches));
    os << line;
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseStats& phase = trace.phases[p];
    if (phase.empty()) continue;
    std::snprintf(line, sizeof line,
                  "  %-16s %9.3f ms  (tasks %llu, max %.3f ms, items %llu)\n",
                  PhaseName(static_cast<Phase>(p)),
                  static_cast<double>(phase.nanos) * 1e-6,
                  static_cast<unsigned long long>(phase.tasks),
                  static_cast<double>(phase.max_task_nanos) * 1e-6,
                  static_cast<unsigned long long>(phase.items));
    os << line;
  }
  if (trace.planner.planned) {
    const PlanCandidateTrace* chosen = trace.planner.chosen_candidate();
    std::snprintf(line, sizeof line, "  planner: chose %s (est %.1f%s, %s)\n",
                  chosen != nullptr ? chosen->label.c_str() : "?",
                  trace.planner.estimated_cost,
                  trace.planner.cache_hit ? "" : ", freshly planned",
                  trace.planner.actual_cost >= 0.0 ? "measured below"
                                                   : "actual cost unknown");
    os << line;
    if (trace.planner.actual_cost >= 0.0) {
      std::snprintf(line, sizeof line, "    actual cost %.1f\n",
                    trace.planner.actual_cost);
      os << line;
    }
    for (const PlanCandidateTrace& c : trace.planner.candidates) {
      std::snprintf(line, sizeof line, "    %-24s est %10.1f%s\n",
                    c.label.c_str(), c.estimated_cost,
                    c.chosen ? "  <= chosen" : "");
      os << line;
    }
  }
  return os.str();
}

std::string TraceToJson(const QueryTrace& trace) {
  std::ostringstream os;
  os << "{\"algorithm\":\"" << trace.algorithm << "\""
     << ",\"num_threads\":" << trace.num_threads
     << ",\"total_nanos\":" << trace.total_nanos
     << ",\"snapshot_version\":" << trace.snapshot_version
     << ",\"checkpoint_epoch\":" << trace.checkpoint_epoch;
  if (!trace.kernel_isa.empty()) {
    os << ",\"kernel_isa\":\"" << trace.kernel_isa << "\"";
  }
  if (trace.batch_size > 0) {
    os << ",\"batch\":{\"size\":" << trace.batch_size
       << ",\"group_queries\":" << trace.batch_group_queries
       << ",\"shared_traversal\":"
       << (trace.shared_traversal ? "true" : "false")
       << ",\"result_cache_hit\":"
       << (trace.result_cache_hit ? "true" : "false")
       << ",\"deduped_fetches\":" << trace.deduped_fetches << '}';
  }
  os << ",\"phases\":[";
  bool first = true;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseStats& phase = trace.phases[p];
    if (phase.empty()) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"phase\":\"" << PhaseName(static_cast<Phase>(p)) << "\""
       << ",\"nanos\":" << phase.nanos
       << ",\"max_task_nanos\":" << phase.max_task_nanos
       << ",\"tasks\":" << phase.tasks << ",\"items\":" << phase.items << '}';
  }
  os << ']';
  if (trace.planner.planned) {
    os << ",\"planner\":{\"planned\":true,\"cache_hit\":"
       << (trace.planner.cache_hit ? "true" : "false")
       << ",\"estimated_cost\":" << trace.planner.estimated_cost
       << ",\"actual_cost\":" << trace.planner.actual_cost
       << ",\"candidates\":[";
    for (std::size_t i = 0; i < trace.planner.candidates.size(); ++i) {
      const PlanCandidateTrace& c = trace.planner.candidates[i];
      if (i > 0) os << ',';
      os << "{\"label\":\"" << c.label
         << "\",\"estimated_cost\":" << c.estimated_cost
         << ",\"chosen\":" << (c.chosen ? "true" : "false") << '}';
    }
    os << "]}";
  }
  os << '}';
  return os.str();
}

}  // namespace tsq::obs
