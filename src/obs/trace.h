#ifndef TSQ_OBS_TRACE_H_
#define TSQ_OBS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace tsq::obs {

/// The phases a query passes through, in execution order. Every executor
/// (range / k-NN / join, any algorithm) reports into this fixed set; a phase
/// an algorithm does not have (e.g. index traversal on a sequential scan)
/// simply stays empty.
enum class Phase : std::size_t {
  /// Spec validation, query normalization/DFT, feature extraction, partition
  /// and transformation-MBR setup.
  kPlan = 0,
  /// R*-tree work: filter traversals, spatial-join passes, best-first page
  /// reads.
  kIndexTraversal,
  /// Fetching candidate records from the record store (the paper's "read
  /// the full database record").
  kCandidateFetch,
  /// Exact distance/correlation evaluation of fetched candidates.
  kVerification,
  /// Deterministic merge of per-task partial results (and the final
  /// sort/truncate of a scan k-NN).
  kMerge,
};
inline constexpr std::size_t kPhaseCount = 5;

/// Stable lowercase name ("plan", "index-traversal", ...), used by both the
/// text and JSON renderings.
const char* PhaseName(Phase phase);

/// Aggregated timing of one phase over the tasks that executed it.
///
/// Determinism rule: `tasks` and `items` depend only on the query and the
/// fixed task decomposition, never on the worker count — they are asserted
/// byte-identical across `num_threads` by the stats-invariance tests. The
/// nanosecond fields are wall-clock measurements: `nanos` sums the per-task
/// spans (total work, stable in expectation across thread counts) and
/// `max_task_nanos` keeps the longest single task (the phase's critical
/// path). Sum + max are both order-independent reductions, so the aggregate
/// does not depend on task completion order either.
struct PhaseStats {
  std::uint64_t nanos = 0;           // summed task spans
  std::uint64_t max_task_nanos = 0;  // longest single task span
  std::uint64_t tasks = 0;           // task spans recorded
  std::uint64_t items = 0;           // deterministic work units (phase-specific)

  /// Records one task's span over `item_count` work units.
  void AddTask(std::uint64_t task_nanos, std::uint64_t item_count);

  /// Folds another aggregate in (sum/sum/sum + max).
  void Merge(const PhaseStats& other);

  bool empty() const { return tasks == 0; }
};

/// One plan the cost-based planner considered: display label ("MT k=4
/// contiguous"), its Eq. 18-20 cost estimate, and whether it won.
struct PlanCandidateTrace {
  std::string label;
  double estimated_cost = 0.0;
  bool chosen = false;
};

/// What the planner did for one query. `planned` stays false when the caller
/// forced a concrete algorithm (no planning happened). The chosen plan and
/// every rejected candidate are kept so Explain()/ExplainJson() can show the
/// decision; `actual_cost` is filled in by the engine after execution from
/// the measured counters (< 0 when unknown).
///
/// Determinism rule: the *decision* (which candidate is chosen) depends only
/// on the query, the index epoch and the cost constants — never on thread
/// count — and is the only part that enters DeterministicSignature().
/// `cache_hit` depends on call order and is excluded.
struct PlannerTrace {
  bool planned = false;
  bool cache_hit = false;
  double estimated_cost = 0.0;  // the chosen candidate's estimate
  double actual_cost = -1.0;    // measured cost of the executed plan
  std::vector<PlanCandidateTrace> candidates;

  const PlanCandidateTrace* chosen_candidate() const {
    for (const PlanCandidateTrace& c : candidates) {
      if (c.chosen) return &c;
    }
    return nullptr;
  }
};

/// Per-query execution trace: where the time of one Execute() call went.
/// Attached to every query result; render with FormatTrace / TraceToJson or
/// the engine-level Explain() helpers.
struct QueryTrace {
  std::string algorithm;        // AlgorithmName() of the executed plan
  std::size_t num_threads = 1;  // ExecOptions::num_threads as requested
  std::uint64_t total_nanos = 0;  // whole executor call, wall clock
  std::array<PhaseStats, kPhaseCount> phases{};
  PlannerTrace planner;  // cost-based planner decision (kAuto only)
  /// Engine write version pinned for this query (number of committed
  /// Insert/Remove operations the snapshot includes). Lets a checker replay
  /// the exact dataset state the query saw while writers run concurrently.
  /// Excluded from DeterministicSignature(): it depends on write timing,
  /// not on the query.
  std::uint64_t snapshot_version = 0;
  /// Epoch of the newest checkpoint the engine wrote or was loaded from
  /// (0 before either) — identifies the on-disk state backing this engine.
  /// Excluded from DeterministicSignature() like snapshot_version: it
  /// depends on persistence history, not on the query.
  std::uint64_t checkpoint_epoch = 0;
  /// Batched execution (SimilarityEngine::ExecuteBatch). All five fields
  /// stay at their defaults for a plain Execute() and are excluded from
  /// DeterministicSignature(): they describe how the work was *shared*
  /// across co-batched queries, not what this query computed.
  std::size_t batch_size = 0;  // queries in the batch; 0 = not batched
  /// Queries whose index traversals this query's traversal group served
  /// (1 = this query traversed alone; 0 = no traversal group, e.g. scan).
  std::size_t batch_group_queries = 0;
  /// True when at least one index traversal of this query was shared with
  /// another query of the batch.
  bool shared_traversal = false;
  /// True when this result was served from the snapshot-keyed ResultCache
  /// (or copied from an identical co-batched query) instead of executed.
  bool result_cache_hit = false;
  /// Candidate record fetches this query requested that the batch-scoped
  /// fetch table had already read for another (or an earlier) request.
  std::uint64_t deduped_fetches = 0;
  /// Active kernel ISA ("scalar", "sse2", "avx2") the distance kernels ran
  /// with — kernels::IsaName(kernels::ActiveIsa()). Excluded from
  /// DeterministicSignature(): every ISA produces bitwise-identical results,
  /// so this is a speed annotation, not part of what the query computed.
  std::string kernel_isa;

  PhaseStats& at(Phase phase) {
    return phases[static_cast<std::size_t>(phase)];
  }
  const PhaseStats& at(Phase phase) const {
    return phases[static_cast<std::size_t>(phase)];
  }

  /// The thread-count-invariant part of the trace rendered to one line per
  /// phase ("plan tasks=1 items=16;..."): algorithm plus every phase's task
  /// and item counts, no timing. Two runs of the same query must produce
  /// byte-identical signatures whatever `num_threads` was.
  std::string DeterministicSignature() const;
};

/// Human-readable multi-line rendering (phase table with times).
std::string FormatTrace(const QueryTrace& trace);

/// JSON object rendering:
/// {"algorithm":...,"num_threads":...,"total_nanos":...,"phases":[...]}.
std::string TraceToJson(const QueryTrace& trace);

/// Times a serial section into `trace.at(phase)` as a single task span.
/// Not for use inside parallel tasks — those record raw nanos into their
/// per-task partials and the merge step calls AddTask in task order.
class ScopedPhase {
 public:
  ScopedPhase(QueryTrace* trace, Phase phase, std::uint64_t items = 0)
      : trace_(trace), phase_(phase), items_(items),
        start_(MonotonicNanos()) {}
  ~ScopedPhase() {
    trace_->at(phase_).AddTask(MonotonicNanos() - start_, items_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  void AddItems(std::uint64_t count) { items_ += count; }

 private:
  QueryTrace* trace_;
  Phase phase_;
  std::uint64_t items_;
  std::uint64_t start_;
};

}  // namespace tsq::obs

#endif  // TSQ_OBS_TRACE_H_
