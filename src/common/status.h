#ifndef TSQ_COMMON_STATUS_H_
#define TSQ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/check.h"

namespace tsq {

/// Coarse error taxonomy for recoverable failures at API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kCorruption,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success/error carrier, modeled after absl::Status.
///
/// Functions that can fail for reasons the caller should handle (bad input,
/// missing data, I/O problems) return Status or Result<T>. Violated internal
/// invariants use TSQ_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return value;` works in functions returning
  /// Result<T>. Implicit conversions are intentional here, mirroring
  /// absl::StatusOr ergonomics.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status: `return Status::NotFound(...)`.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    TSQ_CHECK(!std::get<Status>(payload_).ok())
        << "Result<T> cannot hold an OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Requires ok(); aborts otherwise.
  const T& value() const& {
    TSQ_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    TSQ_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    TSQ_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define TSQ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::tsq::Status _tsq_status = (expr);      \
    if (!_tsq_status.ok()) return _tsq_status; \
  } while (false)

}  // namespace tsq

#endif  // TSQ_COMMON_STATUS_H_
