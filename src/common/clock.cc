#include "common/clock.h"

#include <chrono>

namespace tsq {

std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace tsq
