#include "common/status.h"

namespace tsq {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace tsq
