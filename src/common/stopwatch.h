#ifndef TSQ_COMMON_STOPWATCH_H_
#define TSQ_COMMON_STOPWATCH_H_

#include <cstdint>

#include "common/clock.h"

namespace tsq {

/// Wall-clock stopwatch for benchmark harnesses, on the same monotonic
/// time source (MonotonicNanos) as the query-phase traces.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}

  /// Restarts the watch.
  void Reset() { start_ = MonotonicNanos(); }

  /// Nanoseconds elapsed since construction or last Reset().
  std::uint64_t ElapsedNanos() const { return MonotonicNanos() - start_; }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Milliseconds elapsed since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::uint64_t start_;
};

}  // namespace tsq

#endif  // TSQ_COMMON_STOPWATCH_H_
