#ifndef TSQ_COMMON_STOPWATCH_H_
#define TSQ_COMMON_STOPWATCH_H_

#include <chrono>

namespace tsq {

/// Wall-clock stopwatch for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the watch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsq

#endif  // TSQ_COMMON_STOPWATCH_H_
