#ifndef TSQ_COMMON_CLOCK_H_
#define TSQ_COMMON_CLOCK_H_

#include <cstdint>

namespace tsq {

/// Monotonic nanoseconds since an arbitrary process-local epoch. The single
/// time source for every timer in the system (Stopwatch, query-phase
/// tracing), so all durations are mutually comparable.
std::uint64_t MonotonicNanos();

}  // namespace tsq

#endif  // TSQ_COMMON_CLOCK_H_
