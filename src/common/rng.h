#ifndef TSQ_COMMON_RNG_H_
#define TSQ_COMMON_RNG_H_

#include <cstdint>
#include <limits>

#include "common/check.h"

namespace tsq {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomized code in the library (data generators, randomized tests,
/// benchmark workloads) draws from this generator so that experiments are
/// reproducible from a seed. Satisfies the UniformRandomBitGenerator
/// concept, so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; the same seed always produces the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()() { return Next64(); }
  std::uint64_t Next64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tsq

#endif  // TSQ_COMMON_RNG_H_
