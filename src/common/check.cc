#include "common/check.h"

namespace tsq::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tsq::internal
