#ifndef TSQ_COMMON_CHECK_H_
#define TSQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tsq::internal {

/// Prints a fatal-check failure message and aborts the process.
///
/// Kept out-of-line so that the CHECK macros expand to very little code at
/// each call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-style message collector used by the `CHECK(...) << "msg"` syntax.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace tsq::internal

/// Aborts with a diagnostic when `condition` is false. Always enabled;
/// use for invariants whose violation would corrupt results.
#define TSQ_CHECK(condition)                                          \
  while (!(condition))                                                \
  ::tsq::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define TSQ_CHECK_EQ(a, b) TSQ_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define TSQ_CHECK_NE(a, b) TSQ_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define TSQ_CHECK_LT(a, b) TSQ_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define TSQ_CHECK_LE(a, b) TSQ_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define TSQ_CHECK_GT(a, b) TSQ_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define TSQ_CHECK_GE(a, b) TSQ_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

/// Debug-only variant; compiles to nothing in NDEBUG builds.
#ifdef NDEBUG
#define TSQ_DCHECK(condition) \
  while (false) ::tsq::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#else
#define TSQ_DCHECK(condition) TSQ_CHECK(condition)
#endif

#endif  // TSQ_COMMON_CHECK_H_
