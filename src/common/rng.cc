#include "common/rng.h"

#include <cmath>

namespace tsq {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64, used only to expand the seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // xoshiro must not start in the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::Next64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TSQ_DCHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  TSQ_DCHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = Next64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace tsq
