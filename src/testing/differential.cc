#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "core/join_query.h"
#include "core/range_query.h"
#include "testing/fault_policy.h"
#include "ts/generate.h"

namespace tsq::testing {

namespace {

bool Close(double a, double b, double tol) {
  return std::fabs(a - b) <=
         tol * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

std::string DescribeConfig(core::Algorithm algorithm, std::size_t threads,
                           bool pool_on) {
  std::ostringstream out;
  out << core::AlgorithmName(algorithm) << "/" << threads << "t/"
      << (pool_on ? "pool" : "no-pool");
  return out.str();
}

std::string CompareRange(const std::vector<core::Match>& expected,
                         std::vector<core::Match> got, double tol) {
  core::SortMatches(&got);
  if (expected.size() != got.size()) {
    std::ostringstream out;
    out << "range match count: oracle " << expected.size() << ", engine "
        << got.size();
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const core::Match& e = expected[i];
    const core::Match& g = got[i];
    if (e.series_id != g.series_id || e.transform_index != g.transform_index ||
        !Close(e.distance, g.distance, tol)) {
      std::ostringstream out;
      out << "range match " << i << ": oracle (series " << e.series_id
          << ", t" << e.transform_index << ", D=" << e.distance
          << ") vs engine (series " << g.series_id << ", t"
          << g.transform_index << ", D=" << g.distance << ")";
      return out.str();
    }
  }
  return "";
}

std::string CompareKnn(const std::vector<core::KnnMatch>& expected,
                       const std::vector<core::KnnMatch>& got, double tol) {
  if (expected.size() != got.size()) {
    std::ostringstream out;
    out << "knn result count: oracle " << expected.size() << ", engine "
        << got.size();
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // transform_index is deliberately not compared: unitary transformations
    // (e.g. time shifts under kBoth) produce mathematically equal distances,
    // so the argmin transformation is floating-point noise.
    if (expected[i].series_id != got[i].series_id ||
        !Close(expected[i].distance, got[i].distance, tol)) {
      std::ostringstream out;
      out << "knn rank " << i << ": oracle (series " << expected[i].series_id
          << ", D=" << expected[i].distance << ") vs engine (series "
          << got[i].series_id << ", D=" << got[i].distance << ")";
      return out.str();
    }
  }
  return "";
}

std::string CompareJoin(const std::vector<core::JoinMatch>& expected,
                        std::vector<core::JoinMatch> got, double tol,
                        bool subset_ok) {
  core::SortJoinMatches(&got);
  if (subset_ok) {
    // Indexed correlation joins may miss pairs (documented filter property);
    // every pair they do report must be a correct oracle pair.
    std::unordered_map<std::uint64_t, double> oracle_pairs;
    oracle_pairs.reserve(expected.size() * 2);
    const auto key = [](const core::JoinMatch& m) {
      return (static_cast<std::uint64_t>(m.a) << 40) ^
             (static_cast<std::uint64_t>(m.b) << 16) ^
             static_cast<std::uint64_t>(m.transform_index);
    };
    for (const core::JoinMatch& m : expected) oracle_pairs[key(m)] = m.value;
    for (const core::JoinMatch& m : got) {
      auto it = oracle_pairs.find(key(m));
      if (it == oracle_pairs.end()) {
        std::ostringstream out;
        out << "join pair (" << m.a << ", " << m.b << ", t"
            << m.transform_index << ") reported but not an oracle match";
        return out.str();
      }
      if (!Close(it->second, m.value, tol)) {
        std::ostringstream out;
        out << "join pair (" << m.a << ", " << m.b << ", t"
            << m.transform_index << ") value: oracle " << it->second
            << ", engine " << m.value;
        return out.str();
      }
    }
    return "";
  }
  if (expected.size() != got.size()) {
    std::ostringstream out;
    out << "join match count: oracle " << expected.size() << ", engine "
        << got.size();
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const core::JoinMatch& e = expected[i];
    const core::JoinMatch& g = got[i];
    if (e.a != g.a || e.b != g.b || e.transform_index != g.transform_index ||
        !Close(e.value, g.value, tol)) {
      std::ostringstream out;
      out << "join match " << i << ": oracle (" << e.a << ", " << e.b << ", t"
          << e.transform_index << ", v=" << e.value << ") vs engine (" << g.a
          << ", " << g.b << ", t" << g.transform_index << ", v=" << g.value
          << ")";
      return out.str();
    }
  }
  return "";
}

}  // namespace

DifferentialRunner::DifferentialRunner(std::uint64_t seed)
    : generator_(seed),
      engine_(WorkloadGenerator(seed).MakeSeries()),
      oracle_(engine_.dataset()) {}

CaseOutcome DifferentialRunner::RunCase(std::size_t index,
                                        const DiffConfig& config) {
  const WorkloadCase work = generator_.MakeCase(index, engine_, oracle_);
  CaseOutcome outcome;
  outcome.description = work.description;

  // The oracle's verdict, computed once per case.
  std::vector<core::Match> expected_range;
  std::vector<core::KnnMatch> expected_knn;
  std::vector<core::JoinMatch> expected_join;
  bool correlation_join = false;
  if (const auto* range = std::get_if<core::RangeQuerySpec>(&work.spec)) {
    expected_range = oracle_.Range(*range);
  } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&work.spec)) {
    expected_knn = oracle_.Knn(*knn);
  } else {
    const auto& join = std::get<core::JoinQuerySpec>(work.spec);
    expected_join = oracle_.Join(join);
    correlation_join = join.mode == core::JoinMode::kCorrelation;
  }

  const auto check = [&](const core::QueryResult& result,
                         core::Algorithm algorithm) -> std::string {
    if (const auto* range = result.range()) {
      return CompareRange(expected_range, range->matches, config.tolerance);
    }
    if (const auto* knn = result.knn()) {
      return CompareKnn(expected_knn, knn->matches, config.tolerance);
    }
    const bool subset_ok =
        correlation_join && algorithm != core::Algorithm::kSequentialScan;
    return CompareJoin(expected_join, result.join()->matches,
                       config.tolerance, subset_ok);
  };

  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };

  static constexpr core::Algorithm kAlgorithms[] = {
      core::Algorithm::kSequentialScan, core::Algorithm::kStIndex,
      core::Algorithm::kMtIndex, core::Algorithm::kAuto};
  static constexpr std::size_t kThreadCounts[] = {1, 4, 8};

  // Fault-free sweep over the whole configuration cube. kAuto rides along as
  // a fourth algorithm: whatever plan the planner picks, the results must
  // match the oracle, and — because the plan depends only on the spec and
  // the index, never on threads or pool state — every kAuto run of one case
  // must carry the same deterministic signature (same chosen plan included).
  std::string auto_signature;
  for (const bool pool_on : {false, true}) {
    engine_.EnableIndexBufferPool(pool_on ? config.pool_pages : 0,
                                  config.pool_shards);
    for (const core::Algorithm algorithm : kAlgorithms) {
      for (const std::size_t threads : kThreadCounts) {
        core::ExecOptions options;
        options.planner.algorithm = algorithm;
        options.num_threads = threads;
        const Result<core::QueryResult> result =
            engine_.Execute(work.spec, options);
        ++outcome.runs;
        if (!result.ok()) {
          fail("unexpected error status under " +
               DescribeConfig(algorithm, threads, pool_on) + ": " +
               result.status().ToString());
          continue;
        }
        const std::string diff = check(*result, algorithm);
        if (!diff.empty()) {
          fail("divergence under " +
               DescribeConfig(algorithm, threads, pool_on) + ": " + diff);
        }
        if (algorithm == core::Algorithm::kAuto) {
          const std::string signature =
              result->trace().DeterministicSignature();
          if (auto_signature.empty()) {
            auto_signature = signature;
          } else if (signature != auto_signature) {
            fail("kAuto signature varies with " +
                 DescribeConfig(algorithm, threads, pool_on) + ": got\n  " +
                 signature + "\nexpected\n  " + auto_signature);
          }
        }
      }
    }
  }
  engine_.EnableIndexBufferPool(0);
  if (!outcome.passed || !config.with_faults) return outcome;

  // Fault sweep: under every policy each run must either match the oracle
  // exactly or surface a non-OK Status — and a clean rerun right after must
  // match, proving the fault left the pool/file state intact.
  const std::vector<FaultPolicyConfig> policies = [] {
    std::vector<FaultPolicyConfig> list;
    FaultPolicyConfig p;
    p.fail_nth_read = 1;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_nth_read = 5;
    p.failure_code = StatusCode::kCorruption;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_nth_read = 33;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_every_k = 7;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.corrupt_nth_read = 3;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.short_nth_read = 2;
    p.short_read_bytes = 512;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.delay_nanos = 2000;  // latency only: the run must *match*
    list.push_back(p);
    return list;
  }();

  struct FaultRunConfig {
    core::Algorithm algorithm;
    std::size_t threads;
    bool pool_on;
  };
  static constexpr FaultRunConfig kFaultRuns[] = {
      {core::Algorithm::kMtIndex, 4, true},
      {core::Algorithm::kSequentialScan, 4, false},
  };

  for (const FaultPolicyConfig& policy_config : policies) {
    for (const FaultRunConfig& run : kFaultRuns) {
      engine_.EnableIndexBufferPool(run.pool_on ? config.pool_pages : 0,
                                    config.pool_shards);
      core::ExecOptions options;
      options.planner.algorithm = run.algorithm;
      options.num_threads = run.threads;

      FaultPolicy policy(policy_config);
      engine_.SetReadFaultHook(&policy);
      const Result<core::QueryResult> faulted =
          engine_.Execute(work.spec, options);
      engine_.SetReadFaultHook(nullptr);
      ++outcome.fault_runs;
      const std::string config_text =
          DescribeConfig(run.algorithm, run.threads, run.pool_on) +
          " under " + policy.Describe();
      if (!faulted.ok()) {
        ++outcome.fault_errors;
      } else {
        const std::string diff = check(*faulted, run.algorithm);
        if (!diff.empty()) {
          fail("fault run neither matched nor errored (" + config_text +
               "): " + diff);
        }
      }

      // Clean rerun: storage and pool state must have survived the fault.
      const Result<core::QueryResult> clean =
          engine_.Execute(work.spec, options);
      if (!clean.ok()) {
        fail("clean rerun after " + config_text + " failed: " +
             clean.status().ToString());
      } else {
        const std::string diff = check(*clean, run.algorithm);
        if (!diff.empty()) {
          fail("clean rerun after " + config_text + " diverged: " + diff);
        }
      }
      engine_.EnableIndexBufferPool(0);
      if (!outcome.passed) return outcome;
    }
  }
  return outcome;
}

CaseOutcome DifferentialRunner::RunMutateCase(std::size_t index,
                                              const MutateConfig& config) {
  // The dataset grows across mutate cases, so both the case's boundary-free
  // thresholds and the final check need oracles built against the *current*
  // state — the runner's construction-time oracle has stale spectra.
  const WorkloadCase work = [&] {
    const Oracle pre_oracle(engine_.dataset());
    return generator_.MakeCase(index, engine_, pre_oracle);
  }();
  CaseOutcome outcome;
  outcome.description = work.description + " [mutate]";
  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };

  // Liveness at the starting version; the mutation log extends it to any
  // later version a query may pin.
  const std::uint64_t base_version = engine_.write_version();
  std::vector<bool> base_live(engine_.dataset().size());
  for (std::size_t i = 0; i < base_live.size(); ++i) {
    base_live[i] = !engine_.dataset().removed(i);
  }

  // Exercise the pool path on alternate cases; toggling it mid-case would
  // only serialize the sweep behind extra write locks.
  engine_.EnableIndexBufferPool(index % 2 == 1 ? config.pool_pages : 0,
                                config.pool_shards);

  struct WriteOp {
    std::uint64_t version;  // engine write version after this op committed
    bool insert;
    std::size_t id;
  };
  std::vector<WriteOp> log;  // mutator-only until join(), then main-only
  log.reserve(config.inserts + config.removes);
  std::string mutator_failure;

  // The mutator: seeded random-walk inserts interleaved with removes of ids
  // it knows to be live (it is the only writer, so its view is exact). It
  // reads write_version() right after each commit — still exact, same
  // reason.
  std::thread mutator([&] {
    Rng rng(generator_.seed() * 0x9E3779B97F4A7C15ull + index);
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < base_live.size(); ++i) {
      if (base_live[i]) live.push_back(i);
    }
    std::size_t inserts_left = config.inserts;
    std::size_t removes_left = config.removes;
    while (inserts_left + removes_left > 0) {
      const bool do_insert =
          removes_left == 0 || live.empty() ||
          (inserts_left > 0 && rng.Bernoulli(0.5));
      if (do_insert) {
        --inserts_left;
        const ts::Series series =
            ts::GenerateRandomWalk(engine_.length(), 500.0, rng);
        const Result<std::size_t> id = engine_.Insert(series);
        if (!id.ok()) {
          mutator_failure = "insert failed: " + id.status().ToString();
          return;
        }
        live.push_back(*id);
        log.push_back(WriteOp{engine_.write_version(), true, *id});
      } else {
        --removes_left;
        const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1));
        const std::size_t id = live[pick];
        live.erase(live.begin() + pick);
        const Status removed = engine_.Remove(id);
        if (!removed.ok()) {
          mutator_failure = "remove failed: " + removed.ToString();
          return;
        }
        log.push_back(WriteOp{engine_.write_version(), false, id});
      }
      const std::uint64_t version = log.back().version;
      if (version != base_version + log.size()) {
        mutator_failure = "unexpected write version (another writer?)";
        return;
      }
      std::this_thread::yield();  // give queries a chance between commits
    }
  });

  // The concurrent query sweep. Two passes widen the window in which commits
  // can land between (and during) executions.
  static constexpr core::Algorithm kAlgorithms[] = {
      core::Algorithm::kSequentialScan, core::Algorithm::kStIndex,
      core::Algorithm::kMtIndex, core::Algorithm::kAuto};
  static constexpr std::size_t kThreadCounts[] = {1, 4};
  struct Recorded {
    core::Algorithm algorithm;
    std::size_t threads;
    core::QueryResult result;
  };
  std::vector<Recorded> recorded;
  for (int pass = 0; pass < 2; ++pass) {
    for (const core::Algorithm algorithm : kAlgorithms) {
      for (const std::size_t threads : kThreadCounts) {
        core::ExecOptions options;
        options.planner.algorithm = algorithm;
        options.num_threads = threads;
        Result<core::QueryResult> result = engine_.Execute(work.spec, options);
        ++outcome.runs;
        if (!result.ok()) {
          fail("unexpected error status (no faults injected) under " +
               DescribeConfig(algorithm, threads, index % 2 == 1) + ": " +
               result.status().ToString());
          continue;
        }
        recorded.push_back(Recorded{algorithm, threads, std::move(*result)});
      }
    }
  }

  mutator.join();
  engine_.EnableIndexBufferPool(0);
  outcome.writes = log.size();
  if (!mutator_failure.empty()) fail("mutator: " + mutator_failure);

  // Replay each recorded result at the snapshot it pinned: the oracle is
  // built over the final dataset (spectra exist for every id ever appended,
  // tombstoned or not) and the liveness mask comes from the version-ordered
  // mutation log.
  const Oracle post_oracle(engine_.dataset());
  const auto live_at = [&](std::uint64_t version) {
    std::vector<bool> live = base_live;
    live.resize(engine_.dataset().size(), false);
    for (const WriteOp& op : log) {
      if (op.version > version) break;
      live[op.id] = op.insert;
    }
    return live;
  };
  const auto* correlation_join = [&]() -> const core::JoinQuerySpec* {
    const auto* join = std::get_if<core::JoinQuerySpec>(&work.spec);
    return join != nullptr && join->mode == core::JoinMode::kCorrelation
               ? join
               : nullptr;
  }();
  for (const Recorded& run : recorded) {
    const std::uint64_t version = run.result.trace().snapshot_version;
    if (version < base_version || version > base_version + log.size()) {
      std::ostringstream out;
      out << "pinned snapshot v" << version << " outside [" << base_version
          << ", " << base_version + log.size() << "]";
      fail(out.str());
      continue;
    }
    const std::vector<bool> live = live_at(version);
    std::string diff;
    if (const auto* range = std::get_if<core::RangeQuerySpec>(&work.spec)) {
      diff = CompareRange(post_oracle.Range(*range, &live),
                          run.result.range()->matches, config.tolerance);
    } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&work.spec)) {
      diff = CompareKnn(post_oracle.Knn(*knn, &live),
                        run.result.knn()->matches, config.tolerance);
    } else {
      const auto& join = std::get<core::JoinQuerySpec>(work.spec);
      // Same subset rule as RunCase; kAuto counts as indexed because the
      // planner may have picked an index plan.
      const bool subset_ok =
          correlation_join != nullptr &&
          run.algorithm != core::Algorithm::kSequentialScan;
      diff = CompareJoin(post_oracle.Join(join, &live),
                         run.result.join()->matches, config.tolerance,
                         subset_ok);
    }
    if (!diff.empty()) {
      std::ostringstream out;
      out << "divergence at snapshot v" << version << " under "
          << DescribeConfig(run.algorithm, run.threads, index % 2 == 1)
          << ": " << diff;
      fail(out.str());
    }
  }
  return outcome;
}

CaseOutcome DifferentialRunner::RunCheckpointCase(
    std::size_t index, const CheckpointConfig& config) {
  const WorkloadCase work = [&] {
    const Oracle pre_oracle(engine_.dataset());
    return generator_.MakeCase(index, engine_, pre_oracle);
  }();
  CaseOutcome outcome;
  outcome.description = work.description + " [checkpoint]";
  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };
  const std::string prefix = config.prefix + "." + std::to_string(index);

  // Baseline checkpoint: the "old" durable state every pre-commit crash
  // must fall back to.
  if (const Status saved = engine_.SaveTo(prefix); !saved.ok()) {
    fail("baseline SaveTo failed: " + saved.ToString());
    return outcome;
  }
  const std::uint64_t old_epoch = engine_.checkpoint_epoch();
  std::vector<bool> old_live(engine_.dataset().size());
  for (std::size_t i = 0; i < old_live.size(); ++i) {
    old_live[i] = !engine_.dataset().removed(i);
  }

  // Advance the engine past the baseline so old and new answers differ —
  // a recovery that silently serves the wrong state must show up as a
  // divergence, not a coincidence.
  {
    Rng rng(generator_.seed() * 0xD1B54A32D192ED03ull + index);
    std::vector<std::size_t> live_ids;
    for (std::size_t i = 0; i < old_live.size(); ++i) {
      if (old_live[i]) live_ids.push_back(i);
    }
    for (std::size_t n = 0; n < config.inserts; ++n) {
      const ts::Series series =
          ts::GenerateRandomWalk(engine_.length(), 500.0, rng);
      const Result<std::size_t> id = engine_.Insert(series);
      if (!id.ok()) {
        fail("insert failed: " + id.status().ToString());
        return outcome;
      }
      live_ids.push_back(*id);
      ++outcome.writes;
    }
    for (std::size_t n = 0; n < config.removes && !live_ids.empty(); ++n) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const std::size_t id = live_ids[pick];
      live_ids.erase(live_ids.begin() + pick);
      if (const Status removed = engine_.Remove(id); !removed.ok()) {
        fail("remove failed: " + removed.ToString());
        return outcome;
      }
      ++outcome.writes;
    }
  }
  std::vector<bool> new_live(engine_.dataset().size());
  for (std::size_t i = 0; i < new_live.size(); ++i) {
    new_live[i] = !engine_.dataset().removed(i);
  }

  // One oracle over the final dataset serves both states: the liveness mask
  // replays either snapshot (ids past the mask count as dead, so the old
  // mask works against the grown dataset).
  const Oracle post_oracle(engine_.dataset());
  const auto* correlation_join = [&]() -> const core::JoinQuerySpec* {
    const auto* join = std::get_if<core::JoinQuerySpec>(&work.spec);
    return join != nullptr && join->mode == core::JoinMode::kCorrelation
               ? join
               : nullptr;
  }();

  // Queries the recovered engine and diffs it against the oracle at `live`.
  const auto check_loaded = [&](core::SimilarityEngine& loaded,
                                const std::vector<bool>& live,
                                const std::string& context) {
    static constexpr core::Algorithm kLoadedAlgorithms[] = {
        core::Algorithm::kSequentialScan, core::Algorithm::kAuto};
    for (const core::Algorithm algorithm : kLoadedAlgorithms) {
      core::ExecOptions options;
      options.planner.algorithm = algorithm;
      const Result<core::QueryResult> result =
          loaded.Execute(work.spec, options);
      ++outcome.runs;
      if (!result.ok()) {
        fail(context + ": query on recovered engine failed under " +
             DescribeConfig(algorithm, 1, false) + ": " +
             result.status().ToString());
        return;
      }
      std::string diff;
      if (const auto* range = std::get_if<core::RangeQuerySpec>(&work.spec)) {
        diff = CompareRange(post_oracle.Range(*range, &live),
                            result->range()->matches, config.tolerance);
      } else if (const auto* knn =
                     std::get_if<core::KnnQuerySpec>(&work.spec)) {
        diff = CompareKnn(post_oracle.Knn(*knn, &live),
                          result->knn()->matches, config.tolerance);
      } else {
        const auto& join = std::get<core::JoinQuerySpec>(work.spec);
        const bool subset_ok = correlation_join != nullptr &&
                               algorithm != core::Algorithm::kSequentialScan;
        diff = CompareJoin(post_oracle.Join(join, &live),
                           result->join()->matches, config.tolerance,
                           subset_ok);
      }
      if (!diff.empty()) {
        fail(context + ": recovered engine diverged under " +
             DescribeConfig(algorithm, 1, false) + ": " + diff);
        return;
      }
    }
  };

  // The sweep: crash the save at step 1, 2, ... until a save runs out of
  // steps and completes. Every aborted save leaves a genuinely torn on-disk
  // state (the crash closes the file mid-write and skips all cleanup).
  for (std::uint64_t k = 1;; ++k) {
    CrashPolicy policy(k);
    engine_.SetCheckpointFaultHook(&policy);
    const Status saved = engine_.SaveTo(prefix);
    engine_.SetCheckpointFaultHook(nullptr);
    if (saved.ok()) {
      // k exceeded the save's step count: the save committed normally and
      // recovery must see exactly the new state.
      Result<std::unique_ptr<core::SimilarityEngine>> loaded =
          core::SimilarityEngine::LoadFrom(prefix);
      if (!loaded.ok()) {
        fail("load after completed save failed: " +
             loaded.status().ToString());
      } else {
        check_loaded(**loaded, new_live, "after completed save");
      }
      break;
    }
    ++outcome.fault_runs;
    ++outcome.fault_errors;
    const std::string context = "crash at step " + std::to_string(k) + " (" +
                                policy.crashed_step() + ")";
    Result<std::unique_ptr<core::SimilarityEngine>> loaded =
        core::SimilarityEngine::LoadFrom(prefix);
    if (!loaded.ok()) {
      fail(context +
           ": recovery load failed: " + loaded.status().ToString());
      return outcome;
    }
    // The manifest epoch decides which committed state recovery landed on;
    // anything but "the baseline" or "the new checkpoint" is data loss.
    const std::uint64_t epoch = (*loaded)->checkpoint_epoch();
    if (epoch == old_epoch) {
      check_loaded(**loaded, old_live, context + ", recovered old epoch");
    } else if (epoch > old_epoch) {
      check_loaded(**loaded, new_live, context + ", recovered new epoch");
    } else {
      fail(context + ": recovered epoch " + std::to_string(epoch) +
           " older than baseline " + std::to_string(old_epoch));
    }
    if (!outcome.passed) return outcome;
    if (k > 10000) {
      fail("crash sweep did not terminate: SaveTo never ran out of steps");
      return outcome;
    }
  }
  return outcome;
}

}  // namespace tsq::testing
