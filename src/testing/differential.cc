#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "core/join_query.h"
#include "core/range_query.h"
#include "testing/fault_policy.h"
#include "ts/generate.h"

namespace tsq::testing {

namespace {

bool Close(double a, double b, double tol) {
  return std::fabs(a - b) <=
         tol * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

std::string DescribeConfig(core::Algorithm algorithm, std::size_t threads,
                           bool pool_on) {
  std::ostringstream out;
  out << core::AlgorithmName(algorithm) << "/" << threads << "t/"
      << (pool_on ? "pool" : "no-pool");
  return out.str();
}

std::string CompareRange(const std::vector<core::Match>& expected,
                         std::vector<core::Match> got, double tol) {
  core::SortMatches(&got);
  if (expected.size() != got.size()) {
    std::ostringstream out;
    out << "range match count: oracle " << expected.size() << ", engine "
        << got.size();
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const core::Match& e = expected[i];
    const core::Match& g = got[i];
    if (e.series_id != g.series_id || e.transform_index != g.transform_index ||
        !Close(e.distance, g.distance, tol)) {
      std::ostringstream out;
      out << "range match " << i << ": oracle (series " << e.series_id
          << ", t" << e.transform_index << ", D=" << e.distance
          << ") vs engine (series " << g.series_id << ", t"
          << g.transform_index << ", D=" << g.distance << ")";
      return out.str();
    }
  }
  return "";
}

std::string CompareKnn(const std::vector<core::KnnMatch>& expected,
                       const std::vector<core::KnnMatch>& got, double tol) {
  if (expected.size() != got.size()) {
    std::ostringstream out;
    out << "knn result count: oracle " << expected.size() << ", engine "
        << got.size();
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // transform_index is deliberately not compared: unitary transformations
    // (e.g. time shifts under kBoth) produce mathematically equal distances,
    // so the argmin transformation is floating-point noise.
    if (expected[i].series_id != got[i].series_id ||
        !Close(expected[i].distance, got[i].distance, tol)) {
      std::ostringstream out;
      out << "knn rank " << i << ": oracle (series " << expected[i].series_id
          << ", D=" << expected[i].distance << ") vs engine (series "
          << got[i].series_id << ", D=" << got[i].distance << ")";
      return out.str();
    }
  }
  return "";
}

std::string CompareJoin(const std::vector<core::JoinMatch>& expected,
                        std::vector<core::JoinMatch> got, double tol,
                        bool subset_ok) {
  core::SortJoinMatches(&got);
  if (subset_ok) {
    // Indexed correlation joins may miss pairs (documented filter property);
    // every pair they do report must be a correct oracle pair.
    std::unordered_map<std::uint64_t, double> oracle_pairs;
    oracle_pairs.reserve(expected.size() * 2);
    const auto key = [](const core::JoinMatch& m) {
      return (static_cast<std::uint64_t>(m.a) << 40) ^
             (static_cast<std::uint64_t>(m.b) << 16) ^
             static_cast<std::uint64_t>(m.transform_index);
    };
    for (const core::JoinMatch& m : expected) oracle_pairs[key(m)] = m.value;
    for (const core::JoinMatch& m : got) {
      auto it = oracle_pairs.find(key(m));
      if (it == oracle_pairs.end()) {
        std::ostringstream out;
        out << "join pair (" << m.a << ", " << m.b << ", t"
            << m.transform_index << ") reported but not an oracle match";
        return out.str();
      }
      if (!Close(it->second, m.value, tol)) {
        std::ostringstream out;
        out << "join pair (" << m.a << ", " << m.b << ", t"
            << m.transform_index << ") value: oracle " << it->second
            << ", engine " << m.value;
        return out.str();
      }
    }
    return "";
  }
  if (expected.size() != got.size()) {
    std::ostringstream out;
    out << "join match count: oracle " << expected.size() << ", engine "
        << got.size();
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const core::JoinMatch& e = expected[i];
    const core::JoinMatch& g = got[i];
    if (e.a != g.a || e.b != g.b || e.transform_index != g.transform_index ||
        !Close(e.value, g.value, tol)) {
      std::ostringstream out;
      out << "join match " << i << ": oracle (" << e.a << ", " << e.b << ", t"
          << e.transform_index << ", v=" << e.value << ") vs engine (" << g.a
          << ", " << g.b << ", t" << g.transform_index << ", v=" << g.value
          << ")";
      return out.str();
    }
  }
  return "";
}

// Byte-for-byte equality between a batch entry and its per-spec sequential
// baseline. No tolerance and no sorting: both ran at the same snapshot
// through the same deterministic executors, and ExecuteBatch's contract is
// that matches come back in the identical order with identical bits. Stats
// and traces are deliberately NOT compared — attribution legitimately
// differs under shared traversals and deduped fetches.
std::string ExactDiff(const core::QueryResult& expected,
                      const core::QueryResult& got) {
  const auto mismatch = [](const char* kind, std::size_t i,
                           const std::string& detail) {
    std::ostringstream out;
    out << kind << " match " << i << " differs from sequential baseline ("
        << detail << ")";
    return out.str();
  };
  if (const auto* range = expected.range()) {
    const auto* g = got.range();
    if (g == nullptr) return "result kind differs from sequential baseline";
    if (range->matches.size() != g->matches.size()) {
      std::ostringstream out;
      out << "range match count: sequential " << range->matches.size()
          << ", batch " << g->matches.size();
      return out.str();
    }
    for (std::size_t i = 0; i < range->matches.size(); ++i) {
      if (!(range->matches[i] == g->matches[i])) {
        std::ostringstream out;
        out << "series " << range->matches[i].series_id << " vs "
            << g->matches[i].series_id;
        return mismatch("range", i, out.str());
      }
    }
    return "";
  }
  if (const auto* knn = expected.knn()) {
    const auto* g = got.knn();
    if (g == nullptr) return "result kind differs from sequential baseline";
    if (knn->matches.size() != g->matches.size()) {
      std::ostringstream out;
      out << "knn match count: sequential " << knn->matches.size()
          << ", batch " << g->matches.size();
      return out.str();
    }
    for (std::size_t i = 0; i < knn->matches.size(); ++i) {
      const core::KnnMatch& e = knn->matches[i];
      const core::KnnMatch& b = g->matches[i];
      if (e.series_id != b.series_id ||
          e.transform_index != b.transform_index ||
          e.distance != b.distance) {
        std::ostringstream out;
        out << "series " << e.series_id << " vs " << b.series_id;
        return mismatch("knn", i, out.str());
      }
    }
    return "";
  }
  const auto* join = expected.join();
  const auto* g = got.join();
  if (join == nullptr || g == nullptr) {
    return "result kind differs from sequential baseline";
  }
  if (join->matches.size() != g->matches.size()) {
    std::ostringstream out;
    out << "join match count: sequential " << join->matches.size()
        << ", batch " << g->matches.size();
    return out.str();
  }
  for (std::size_t i = 0; i < join->matches.size(); ++i) {
    if (!(join->matches[i] == g->matches[i])) {
      std::ostringstream out;
      out << "(" << join->matches[i].a << "," << join->matches[i].b
          << ") vs (" << g->matches[i].a << "," << g->matches[i].b << ")";
      return mismatch("join", i, out.str());
    }
  }
  return "";
}

// The oracle's verdict for one spec, evaluated once and diffed against many
// batch entries.
struct OracleExpectation {
  std::vector<core::Match> range;
  std::vector<core::KnnMatch> knn;
  std::vector<core::JoinMatch> join;
  bool correlation_join = false;
};

OracleExpectation ExpectedFor(const Oracle& oracle,
                              const core::QuerySpec& spec,
                              const std::vector<bool>* live = nullptr) {
  OracleExpectation expected;
  if (const auto* range = std::get_if<core::RangeQuerySpec>(&spec)) {
    expected.range = oracle.Range(*range, live);
  } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&spec)) {
    expected.knn = oracle.Knn(*knn, live);
  } else {
    const auto& join = std::get<core::JoinQuerySpec>(spec);
    expected.join = oracle.Join(join, live);
    expected.correlation_join = join.mode == core::JoinMode::kCorrelation;
  }
  return expected;
}

std::string OracleDiff(const OracleExpectation& expected,
                       const core::QueryResult& got,
                       core::Algorithm algorithm, double tol) {
  if (const auto* range = got.range()) {
    return CompareRange(expected.range, range->matches, tol);
  }
  if (const auto* knn = got.knn()) {
    return CompareKnn(expected.knn, knn->matches, tol);
  }
  const bool subset_ok = expected.correlation_join &&
                         algorithm != core::Algorithm::kSequentialScan;
  return CompareJoin(expected.join, got.join()->matches, tol, subset_ok);
}

}  // namespace

DifferentialRunner::DifferentialRunner(std::uint64_t seed)
    : generator_(seed),
      engine_(WorkloadGenerator(seed).MakeSeries()),
      oracle_(engine_.dataset()) {}

CaseOutcome DifferentialRunner::RunCase(std::size_t index,
                                        const DiffConfig& config) {
  const WorkloadCase work = generator_.MakeCase(index, engine_, oracle_);
  CaseOutcome outcome;
  outcome.description = work.description;

  // The oracle's verdict, computed once per case.
  std::vector<core::Match> expected_range;
  std::vector<core::KnnMatch> expected_knn;
  std::vector<core::JoinMatch> expected_join;
  bool correlation_join = false;
  if (const auto* range = std::get_if<core::RangeQuerySpec>(&work.spec)) {
    expected_range = oracle_.Range(*range);
  } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&work.spec)) {
    expected_knn = oracle_.Knn(*knn);
  } else {
    const auto& join = std::get<core::JoinQuerySpec>(work.spec);
    expected_join = oracle_.Join(join);
    correlation_join = join.mode == core::JoinMode::kCorrelation;
  }

  const auto check = [&](const core::QueryResult& result,
                         core::Algorithm algorithm) -> std::string {
    if (const auto* range = result.range()) {
      return CompareRange(expected_range, range->matches, config.tolerance);
    }
    if (const auto* knn = result.knn()) {
      return CompareKnn(expected_knn, knn->matches, config.tolerance);
    }
    const bool subset_ok =
        correlation_join && algorithm != core::Algorithm::kSequentialScan;
    return CompareJoin(expected_join, result.join()->matches,
                       config.tolerance, subset_ok);
  };

  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };

  static constexpr core::Algorithm kAlgorithms[] = {
      core::Algorithm::kSequentialScan, core::Algorithm::kStIndex,
      core::Algorithm::kMtIndex, core::Algorithm::kAuto};
  static constexpr std::size_t kThreadCounts[] = {1, 4, 8};

  // Fault-free sweep over the whole configuration cube. kAuto rides along as
  // a fourth algorithm: whatever plan the planner picks, the results must
  // match the oracle, and — because the plan depends only on the spec and
  // the index, never on threads or pool state — every kAuto run of one case
  // must carry the same deterministic signature (same chosen plan included).
  std::string auto_signature;
  for (const bool pool_on : {false, true}) {
    engine_.EnableIndexBufferPool(pool_on ? config.pool_pages : 0,
                                  config.pool_shards);
    for (const core::Algorithm algorithm : kAlgorithms) {
      for (const std::size_t threads : kThreadCounts) {
        core::ExecOptions options;
        options.planner.algorithm = algorithm;
        options.num_threads = threads;
        const Result<core::QueryResult> result =
            engine_.Execute(work.spec, options);
        ++outcome.runs;
        if (!result.ok()) {
          fail("unexpected error status under " +
               DescribeConfig(algorithm, threads, pool_on) + ": " +
               result.status().ToString());
          continue;
        }
        const std::string diff = check(*result, algorithm);
        if (!diff.empty()) {
          fail("divergence under " +
               DescribeConfig(algorithm, threads, pool_on) + ": " + diff);
        }
        if (algorithm == core::Algorithm::kAuto) {
          const std::string signature =
              result->trace().DeterministicSignature();
          if (auto_signature.empty()) {
            auto_signature = signature;
          } else if (signature != auto_signature) {
            fail("kAuto signature varies with " +
                 DescribeConfig(algorithm, threads, pool_on) + ": got\n  " +
                 signature + "\nexpected\n  " + auto_signature);
          }
        }
      }
    }
  }
  engine_.EnableIndexBufferPool(0);
  if (!outcome.passed || !config.with_faults) return outcome;

  // Fault sweep: under every policy each run must either match the oracle
  // exactly or surface a non-OK Status — and a clean rerun right after must
  // match, proving the fault left the pool/file state intact.
  const std::vector<FaultPolicyConfig> policies = [] {
    std::vector<FaultPolicyConfig> list;
    FaultPolicyConfig p;
    p.fail_nth_read = 1;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_nth_read = 5;
    p.failure_code = StatusCode::kCorruption;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_nth_read = 33;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_every_k = 7;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.corrupt_nth_read = 3;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.short_nth_read = 2;
    p.short_read_bytes = 512;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.delay_nanos = 2000;  // latency only: the run must *match*
    list.push_back(p);
    return list;
  }();

  struct FaultRunConfig {
    core::Algorithm algorithm;
    std::size_t threads;
    bool pool_on;
  };
  static constexpr FaultRunConfig kFaultRuns[] = {
      {core::Algorithm::kMtIndex, 4, true},
      {core::Algorithm::kSequentialScan, 4, false},
  };

  for (const FaultPolicyConfig& policy_config : policies) {
    for (const FaultRunConfig& run : kFaultRuns) {
      engine_.EnableIndexBufferPool(run.pool_on ? config.pool_pages : 0,
                                    config.pool_shards);
      core::ExecOptions options;
      options.planner.algorithm = run.algorithm;
      options.num_threads = run.threads;

      FaultPolicy policy(policy_config);
      engine_.SetReadFaultHook(&policy);
      const Result<core::QueryResult> faulted =
          engine_.Execute(work.spec, options);
      engine_.SetReadFaultHook(nullptr);
      ++outcome.fault_runs;
      const std::string config_text =
          DescribeConfig(run.algorithm, run.threads, run.pool_on) +
          " under " + policy.Describe();
      if (!faulted.ok()) {
        ++outcome.fault_errors;
      } else {
        const std::string diff = check(*faulted, run.algorithm);
        if (!diff.empty()) {
          fail("fault run neither matched nor errored (" + config_text +
               "): " + diff);
        }
      }

      // Clean rerun: storage and pool state must have survived the fault.
      const Result<core::QueryResult> clean =
          engine_.Execute(work.spec, options);
      if (!clean.ok()) {
        fail("clean rerun after " + config_text + " failed: " +
             clean.status().ToString());
      } else {
        const std::string diff = check(*clean, run.algorithm);
        if (!diff.empty()) {
          fail("clean rerun after " + config_text + " diverged: " + diff);
        }
      }
      engine_.EnableIndexBufferPool(0);
      if (!outcome.passed) return outcome;
    }
  }
  return outcome;
}

CaseOutcome DifferentialRunner::RunMutateCase(std::size_t index,
                                              const MutateConfig& config) {
  // The dataset grows across mutate cases, so both the case's boundary-free
  // thresholds and the final check need oracles built against the *current*
  // state — the runner's construction-time oracle has stale spectra.
  const WorkloadCase work = [&] {
    const Oracle pre_oracle(engine_.dataset());
    return generator_.MakeCase(index, engine_, pre_oracle);
  }();
  CaseOutcome outcome;
  outcome.description = work.description + " [mutate]";
  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };

  // Liveness at the starting version; the mutation log extends it to any
  // later version a query may pin.
  const std::uint64_t base_version = engine_.write_version();
  std::vector<bool> base_live(engine_.dataset().size());
  for (std::size_t i = 0; i < base_live.size(); ++i) {
    base_live[i] = !engine_.dataset().removed(i);
  }

  // Exercise the pool path on alternate cases; toggling it mid-case would
  // only serialize the sweep behind extra write locks.
  engine_.EnableIndexBufferPool(index % 2 == 1 ? config.pool_pages : 0,
                                config.pool_shards);

  struct WriteOp {
    std::uint64_t version;  // engine write version after this op committed
    bool insert;
    std::size_t id;
  };
  std::vector<WriteOp> log;  // mutator-only until join(), then main-only
  log.reserve(config.inserts + config.removes);
  std::string mutator_failure;

  // The mutator: seeded random-walk inserts interleaved with removes of ids
  // it knows to be live (it is the only writer, so its view is exact). It
  // reads write_version() right after each commit — still exact, same
  // reason.
  std::thread mutator([&] {
    Rng rng(generator_.seed() * 0x9E3779B97F4A7C15ull + index);
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < base_live.size(); ++i) {
      if (base_live[i]) live.push_back(i);
    }
    std::size_t inserts_left = config.inserts;
    std::size_t removes_left = config.removes;
    while (inserts_left + removes_left > 0) {
      const bool do_insert =
          removes_left == 0 || live.empty() ||
          (inserts_left > 0 && rng.Bernoulli(0.5));
      if (do_insert) {
        --inserts_left;
        const ts::Series series =
            ts::GenerateRandomWalk(engine_.length(), 500.0, rng);
        const Result<std::size_t> id = engine_.Insert(series);
        if (!id.ok()) {
          mutator_failure = "insert failed: " + id.status().ToString();
          return;
        }
        live.push_back(*id);
        log.push_back(WriteOp{engine_.write_version(), true, *id});
      } else {
        --removes_left;
        const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1));
        const std::size_t id = live[pick];
        live.erase(live.begin() + pick);
        const Status removed = engine_.Remove(id);
        if (!removed.ok()) {
          mutator_failure = "remove failed: " + removed.ToString();
          return;
        }
        log.push_back(WriteOp{engine_.write_version(), false, id});
      }
      const std::uint64_t version = log.back().version;
      if (version != base_version + log.size()) {
        mutator_failure = "unexpected write version (another writer?)";
        return;
      }
      std::this_thread::yield();  // give queries a chance between commits
    }
  });

  // The concurrent query sweep. Two passes widen the window in which commits
  // can land between (and during) executions.
  static constexpr core::Algorithm kAlgorithms[] = {
      core::Algorithm::kSequentialScan, core::Algorithm::kStIndex,
      core::Algorithm::kMtIndex, core::Algorithm::kAuto};
  static constexpr std::size_t kThreadCounts[] = {1, 4};
  struct Recorded {
    core::Algorithm algorithm;
    std::size_t threads;
    core::QueryResult result;
  };
  std::vector<Recorded> recorded;
  for (int pass = 0; pass < 2; ++pass) {
    for (const core::Algorithm algorithm : kAlgorithms) {
      for (const std::size_t threads : kThreadCounts) {
        core::ExecOptions options;
        options.planner.algorithm = algorithm;
        options.num_threads = threads;
        Result<core::QueryResult> result = engine_.Execute(work.spec, options);
        ++outcome.runs;
        if (!result.ok()) {
          fail("unexpected error status (no faults injected) under " +
               DescribeConfig(algorithm, threads, index % 2 == 1) + ": " +
               result.status().ToString());
          continue;
        }
        recorded.push_back(Recorded{algorithm, threads, std::move(*result)});
      }
    }
  }

  mutator.join();
  engine_.EnableIndexBufferPool(0);
  outcome.writes = log.size();
  if (!mutator_failure.empty()) fail("mutator: " + mutator_failure);

  // Replay each recorded result at the snapshot it pinned: the oracle is
  // built over the final dataset (spectra exist for every id ever appended,
  // tombstoned or not) and the liveness mask comes from the version-ordered
  // mutation log.
  const Oracle post_oracle(engine_.dataset());
  const auto live_at = [&](std::uint64_t version) {
    std::vector<bool> live = base_live;
    live.resize(engine_.dataset().size(), false);
    for (const WriteOp& op : log) {
      if (op.version > version) break;
      live[op.id] = op.insert;
    }
    return live;
  };
  const auto* correlation_join = [&]() -> const core::JoinQuerySpec* {
    const auto* join = std::get_if<core::JoinQuerySpec>(&work.spec);
    return join != nullptr && join->mode == core::JoinMode::kCorrelation
               ? join
               : nullptr;
  }();
  for (const Recorded& run : recorded) {
    const std::uint64_t version = run.result.trace().snapshot_version;
    if (version < base_version || version > base_version + log.size()) {
      std::ostringstream out;
      out << "pinned snapshot v" << version << " outside [" << base_version
          << ", " << base_version + log.size() << "]";
      fail(out.str());
      continue;
    }
    const std::vector<bool> live = live_at(version);
    std::string diff;
    if (const auto* range = std::get_if<core::RangeQuerySpec>(&work.spec)) {
      diff = CompareRange(post_oracle.Range(*range, &live),
                          run.result.range()->matches, config.tolerance);
    } else if (const auto* knn = std::get_if<core::KnnQuerySpec>(&work.spec)) {
      diff = CompareKnn(post_oracle.Knn(*knn, &live),
                        run.result.knn()->matches, config.tolerance);
    } else {
      const auto& join = std::get<core::JoinQuerySpec>(work.spec);
      // Same subset rule as RunCase; kAuto counts as indexed because the
      // planner may have picked an index plan.
      const bool subset_ok =
          correlation_join != nullptr &&
          run.algorithm != core::Algorithm::kSequentialScan;
      diff = CompareJoin(post_oracle.Join(join, &live),
                         run.result.join()->matches, config.tolerance,
                         subset_ok);
    }
    if (!diff.empty()) {
      std::ostringstream out;
      out << "divergence at snapshot v" << version << " under "
          << DescribeConfig(run.algorithm, run.threads, index % 2 == 1)
          << ": " << diff;
      fail(out.str());
    }
  }
  return outcome;
}

CaseOutcome DifferentialRunner::RunBatchCase(std::size_t index,
                                             const BatchConfig& config) {
  CaseOutcome outcome;
  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };

  // Assemble the batch: a few generated base specs (MakeCase cycles the
  // query kinds, so batches mix range / k-NN / join) plus seeded verbatim
  // duplicates of earlier entries. origin[i] names the base entry specs[i]
  // copies (origin[i] == i for base specs).
  Rng rng(generator_.seed() * 0x94D049BB133111EBull + index);
  const std::size_t base_count =
      config.min_specs +
      (config.max_specs > config.min_specs
           ? static_cast<std::size_t>(rng.UniformInt(
                 0, static_cast<std::int64_t>(config.max_specs -
                                              config.min_specs)))
           : 0);
  std::vector<core::QuerySpec> specs;
  std::vector<std::size_t> origin;
  std::ostringstream description;
  description << "batch{";
  for (std::size_t j = 0; j < base_count; ++j) {
    WorkloadCase work = generator_.MakeCase(index * 8 + j, engine_, oracle_);
    if (j > 0) description << "; ";
    description << work.description;
    origin.push_back(specs.size());
    specs.push_back(std::move(work.spec));
  }
  for (std::size_t j = 0; j < base_count; ++j) {
    if (rng.Bernoulli(config.duplicate_probability)) {
      origin.push_back(j);
      specs.push_back(specs[j]);
    }
  }
  description << "} +" << (specs.size() - base_count) << " dup";
  outcome.description = description.str();

  std::vector<OracleExpectation> expected;
  expected.reserve(base_count);
  for (std::size_t j = 0; j < base_count; ++j) {
    expected.push_back(ExpectedFor(oracle_, specs[j]));
  }

  const bool pool_on = index % 2 == 1;
  engine_.EnableIndexBufferPool(pool_on ? config.pool_pages : 0,
                                config.pool_shards);

  static constexpr core::Algorithm kAlgorithms[] = {
      core::Algorithm::kSequentialScan, core::Algorithm::kStIndex,
      core::Algorithm::kMtIndex, core::Algorithm::kAuto};
  static constexpr std::size_t kThreadCounts[] = {1, 4, 8};

  // Per-algorithm sequential baselines: Execute() one spec at a time, check
  // each against the oracle, then hold the results as the exactness
  // reference for every batched configuration of that algorithm.
  std::vector<std::vector<core::QueryResult>> baselines(std::size(kAlgorithms));
  for (std::size_t a = 0; a < std::size(kAlgorithms); ++a) {
    const core::Algorithm algorithm = kAlgorithms[a];
    for (std::size_t i = 0; i < specs.size(); ++i) {
      core::ExecOptions options;
      options.planner.algorithm = algorithm;
      options.num_threads = 1;
      Result<core::QueryResult> result = engine_.Execute(specs[i], options);
      ++outcome.runs;
      if (!result.ok()) {
        fail("sequential baseline failed under " +
             DescribeConfig(algorithm, 1, pool_on) + ": " +
             result.status().ToString());
        engine_.EnableIndexBufferPool(0);
        return outcome;
      }
      const std::string diff = OracleDiff(expected[origin[i]], *result,
                                          algorithm, config.tolerance);
      if (!diff.empty()) {
        fail("sequential baseline diverged from oracle under " +
             DescribeConfig(algorithm, 1, pool_on) + ": " + diff);
      }
      baselines[a].push_back(std::move(*result));
    }
  }

  // The batched sweep: every entry must match its sequential baseline
  // byte-for-byte, every entry of one batch must pin the same snapshot
  // version and report the batch size, and a repeated cache-on batch must
  // serve every entry from the cache with identical matches.
  for (std::size_t a = 0; a < std::size(kAlgorithms) && outcome.passed; ++a) {
    const core::Algorithm algorithm = kAlgorithms[a];
    for (const std::size_t threads : kThreadCounts) {
      for (const bool use_cache : {false, true}) {
        core::BatchOptions options;
        options.exec.planner.algorithm = algorithm;
        options.exec.num_threads = threads;
        options.use_result_cache = use_cache;
        const std::string config_text =
            DescribeConfig(algorithm, threads, pool_on) +
            (use_cache ? "/cache" : "/no-cache");

        const auto check_batch = [&](const char* phase, bool expect_hits) {
          const std::vector<Result<core::QueryResult>> batch =
              engine_.ExecuteBatch(specs, options);
          ++outcome.runs;
          if (batch.size() != specs.size()) {
            fail(std::string(phase) + " returned " +
                 std::to_string(batch.size()) + " results for " +
                 std::to_string(specs.size()) + " specs (" + config_text +
                 ")");
            return;
          }
          std::uint64_t version = 0;
          bool have_version = false;
          for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!batch[i].ok()) {
              fail(std::string(phase) + " entry " + std::to_string(i) +
                   " errored (" + config_text +
                   "): " + batch[i].status().ToString());
              return;
            }
            const core::QueryResult& result = *batch[i];
            const std::string diff = ExactDiff(baselines[a][i], result);
            if (!diff.empty()) {
              fail(std::string(phase) + " entry " + std::to_string(i) +
                   " (" + config_text + "): " + diff);
              return;
            }
            if (result.trace().batch_size != specs.size()) {
              fail(std::string(phase) + " entry " + std::to_string(i) +
                   " reports batch_size " +
                   std::to_string(result.trace().batch_size) + " for a " +
                   std::to_string(specs.size()) + "-spec batch (" +
                   config_text + ")");
              return;
            }
            if (!have_version) {
              version = result.trace().snapshot_version;
              have_version = true;
            } else if (result.trace().snapshot_version != version) {
              fail(std::string(phase) + " pinned two snapshot versions (" +
                   config_text + "): v" + std::to_string(version) + " and v" +
                   std::to_string(result.trace().snapshot_version));
              return;
            }
            if (expect_hits && !result.trace().result_cache_hit) {
              fail(std::string(phase) + " entry " + std::to_string(i) +
                   " was not served from the result cache (" + config_text +
                   ")");
              return;
            }
          }
        };

        check_batch("batch", false);
        if (use_cache && outcome.passed) {
          // Identical batch, same snapshot, same config epoch: every entry
          // must now be a cache hit and still carry identical matches.
          check_batch("cached rerun", true);
        }
        if (!outcome.passed) break;
      }
      if (!outcome.passed) break;
    }
  }
  engine_.EnableIndexBufferPool(0);
  if (!outcome.passed || !config.with_faults) return outcome;

  // Fault sweep: under each policy every batch entry must either surface a
  // non-OK Status or carry the exact fault-free matches (a fault on a shared
  // traversal or a deduped fetch may fail several entries at once — each of
  // them must error, none may silently degrade). A clean rerun right after
  // must fully match: the fault left storage, pool, and cache state intact.
  const std::vector<FaultPolicyConfig> policies = [] {
    std::vector<FaultPolicyConfig> list;
    FaultPolicyConfig p;
    p.fail_nth_read = 1;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_nth_read = 5;
    p.failure_code = StatusCode::kCorruption;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_nth_read = 33;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.fail_every_k = 7;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.corrupt_nth_read = 3;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.short_nth_read = 2;
    p.short_read_bytes = 512;
    list.push_back(p);
    p = FaultPolicyConfig();
    p.delay_nanos = 2000;  // latency only: every entry must *match*
    list.push_back(p);
    return list;
  }();

  struct FaultRunConfig {
    std::size_t algorithm_index;  // into kAlgorithms / baselines
    std::size_t threads;
    bool pool_on;
  };
  static constexpr FaultRunConfig kFaultRuns[] = {
      {2, 4, true},   // MT-index, the shared-traversal path
      {0, 4, false},  // sequential scan, the shared-fetch path
  };

  for (const FaultPolicyConfig& policy_config : policies) {
    for (const FaultRunConfig& run : kFaultRuns) {
      engine_.EnableIndexBufferPool(run.pool_on ? config.pool_pages : 0,
                                    config.pool_shards);
      const core::Algorithm algorithm = kAlgorithms[run.algorithm_index];
      core::BatchOptions options;
      options.exec.planner.algorithm = algorithm;
      options.exec.num_threads = run.threads;
      options.use_result_cache = false;

      FaultPolicy policy(policy_config);
      engine_.SetReadFaultHook(&policy);
      const std::vector<Result<core::QueryResult>> faulted =
          engine_.ExecuteBatch(specs, options);
      engine_.SetReadFaultHook(nullptr);
      ++outcome.fault_runs;
      const std::string config_text =
          DescribeConfig(algorithm, run.threads, run.pool_on) + " under " +
          policy.Describe();
      if (faulted.size() != specs.size()) {
        fail("faulted batch returned " + std::to_string(faulted.size()) +
             " results for " + std::to_string(specs.size()) + " specs (" +
             config_text + ")");
      }
      for (std::size_t i = 0; i < faulted.size() && outcome.passed; ++i) {
        if (!faulted[i].ok()) {
          ++outcome.fault_errors;
          continue;
        }
        const std::string diff =
            ExactDiff(baselines[run.algorithm_index][i], *faulted[i]);
        if (!diff.empty()) {
          fail("fault batch entry " + std::to_string(i) +
               " neither matched nor errored (" + config_text + "): " + diff);
        }
      }

      // Clean rerun: the whole batch must come back exact.
      const std::vector<Result<core::QueryResult>> clean =
          engine_.ExecuteBatch(specs, options);
      for (std::size_t i = 0; i < clean.size() && outcome.passed; ++i) {
        if (!clean[i].ok()) {
          fail("clean batch rerun after " + config_text + " entry " +
               std::to_string(i) + " failed: " + clean[i].status().ToString());
          break;
        }
        const std::string diff =
            ExactDiff(baselines[run.algorithm_index][i], *clean[i]);
        if (!diff.empty()) {
          fail("clean batch rerun after " + config_text + " diverged at entry " +
               std::to_string(i) + ": " + diff);
        }
      }
      engine_.EnableIndexBufferPool(0);
      if (!outcome.passed) return outcome;
    }
  }
  return outcome;
}

CaseOutcome DifferentialRunner::RunBatchMutateCase(std::size_t index,
                                                   const BatchConfig& config) {
  // Batch assembly against the *current* dataset state (the runner's
  // construction-time oracle has stale spectra once mutate cases ran).
  const Oracle pre_oracle(engine_.dataset());
  Rng rng(generator_.seed() * 0xBF58476D1CE4E5B9ull + index);
  const std::size_t base_count =
      config.min_specs +
      (config.max_specs > config.min_specs
           ? static_cast<std::size_t>(rng.UniformInt(
                 0, static_cast<std::int64_t>(config.max_specs -
                                              config.min_specs)))
           : 0);
  std::vector<core::QuerySpec> specs;
  std::vector<std::size_t> origin;
  std::ostringstream description;
  description << "batch{";
  for (std::size_t j = 0; j < base_count; ++j) {
    WorkloadCase work = generator_.MakeCase(index * 8 + j, engine_, pre_oracle);
    if (j > 0) description << "; ";
    description << work.description;
    origin.push_back(specs.size());
    specs.push_back(std::move(work.spec));
  }
  for (std::size_t j = 0; j < base_count; ++j) {
    if (rng.Bernoulli(config.duplicate_probability)) {
      origin.push_back(j);
      specs.push_back(specs[j]);
    }
  }
  description << "} +" << (specs.size() - base_count) << " dup [mutate]";

  CaseOutcome outcome;
  outcome.description = description.str();
  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };

  const std::uint64_t base_version = engine_.write_version();
  std::vector<bool> base_live(engine_.dataset().size());
  for (std::size_t i = 0; i < base_live.size(); ++i) {
    base_live[i] = !engine_.dataset().removed(i);
  }

  engine_.EnableIndexBufferPool(index % 2 == 1 ? config.pool_pages : 0,
                                config.pool_shards);

  struct WriteOp {
    std::uint64_t version;
    bool insert;
    std::size_t id;
  };
  std::vector<WriteOp> log;  // mutator-only until join(), then main-only
  log.reserve(config.inserts + config.removes);
  std::string mutator_failure;

  std::thread mutator([&] {
    Rng mutator_rng(generator_.seed() * 0x2545F4914F6CDD1Dull + index);
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < base_live.size(); ++i) {
      if (base_live[i]) live.push_back(i);
    }
    std::size_t inserts_left = config.inserts;
    std::size_t removes_left = config.removes;
    while (inserts_left + removes_left > 0) {
      const bool do_insert =
          removes_left == 0 || live.empty() ||
          (inserts_left > 0 && mutator_rng.Bernoulli(0.5));
      if (do_insert) {
        --inserts_left;
        const ts::Series series =
            ts::GenerateRandomWalk(engine_.length(), 500.0, mutator_rng);
        const Result<std::size_t> id = engine_.Insert(series);
        if (!id.ok()) {
          mutator_failure = "insert failed: " + id.status().ToString();
          return;
        }
        live.push_back(*id);
        log.push_back(WriteOp{engine_.write_version(), true, *id});
      } else {
        --removes_left;
        const std::size_t pick =
            static_cast<std::size_t>(mutator_rng.UniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
        const std::size_t id = live[pick];
        live.erase(live.begin() + pick);
        const Status removed = engine_.Remove(id);
        if (!removed.ok()) {
          mutator_failure = "remove failed: " + removed.ToString();
          return;
        }
        log.push_back(WriteOp{engine_.write_version(), false, id});
      }
      if (log.back().version != base_version + log.size()) {
        mutator_failure = "unexpected write version (another writer?)";
        return;
      }
      std::this_thread::yield();
    }
  });

  // The concurrent batch sweep: cache off on pass 0, on for pass 1 (hits can
  // only come from in-batch duplicates or an identical snapshot+epoch, so
  // a concurrent writer naturally tests invalidation-by-version). Each batch
  // must pin exactly ONE snapshot for all of its entries, and — since this
  // thread is the only issuer — pinned versions must never go backwards.
  static constexpr core::Algorithm kAlgorithms[] = {
      core::Algorithm::kSequentialScan, core::Algorithm::kStIndex,
      core::Algorithm::kMtIndex, core::Algorithm::kAuto};
  static constexpr std::size_t kThreadCounts[] = {1, 4};
  struct RecordedBatch {
    core::Algorithm algorithm = core::Algorithm::kAuto;
    std::size_t threads = 0;
    std::uint64_t version = 0;
    std::vector<core::QueryResult> results;
  };
  std::vector<RecordedBatch> recorded;
  std::uint64_t last_version = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const core::Algorithm algorithm : kAlgorithms) {
      for (const std::size_t threads : kThreadCounts) {
        core::BatchOptions options;
        options.exec.planner.algorithm = algorithm;
        options.exec.num_threads = threads;
        options.use_result_cache = pass == 1;
        std::vector<Result<core::QueryResult>> batch =
            engine_.ExecuteBatch(specs, options);
        ++outcome.runs;
        const std::string config_text =
            DescribeConfig(algorithm, threads, index % 2 == 1);
        if (batch.size() != specs.size()) {
          fail("batch returned " + std::to_string(batch.size()) +
               " results for " + std::to_string(specs.size()) + " specs (" +
               config_text + ")");
          continue;
        }
        RecordedBatch rec;
        rec.algorithm = algorithm;
        rec.threads = threads;
        bool usable = true;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (!batch[i].ok()) {
            fail("unexpected error status (no faults injected) entry " +
                 std::to_string(i) + " under " + config_text + ": " +
                 batch[i].status().ToString());
            usable = false;
            break;
          }
          const std::uint64_t version = batch[i]->trace().snapshot_version;
          if (i == 0) {
            rec.version = version;
          } else if (version != rec.version) {
            fail("batch pinned two snapshot versions under " + config_text +
                 ": v" + std::to_string(rec.version) + " and v" +
                 std::to_string(version));
            usable = false;
            break;
          }
          rec.results.push_back(std::move(*batch[i]));
        }
        if (!usable) continue;
        if (rec.version < last_version) {
          fail("batch snapshot went backwards under " + config_text + ": v" +
               std::to_string(rec.version) + " after v" +
               std::to_string(last_version));
        }
        last_version = rec.version;
        // Duplicates ran at the same pinned snapshot as their original, so
        // their matches must be bitwise identical.
        for (std::size_t i = 0; i < rec.results.size(); ++i) {
          if (origin[i] == i) continue;
          const std::string diff =
              ExactDiff(rec.results[origin[i]], rec.results[i]);
          if (!diff.empty()) {
            fail("duplicate entry " + std::to_string(i) +
                 " diverged from its original under " + config_text + ": " +
                 diff);
          }
        }
        recorded.push_back(std::move(rec));
      }
    }
  }

  mutator.join();
  engine_.EnableIndexBufferPool(0);
  outcome.writes = log.size();
  if (!mutator_failure.empty()) fail("mutator: " + mutator_failure);

  // Replay each batch against the oracle at the snapshot it pinned. The
  // expectation for one (base spec, version) pair is memoized: duplicates
  // share it, and every batch issued after the mutator drained pins the
  // same final version.
  const Oracle post_oracle(engine_.dataset());
  const auto live_at = [&](std::uint64_t version) {
    std::vector<bool> live = base_live;
    live.resize(engine_.dataset().size(), false);
    for (const WriteOp& op : log) {
      if (op.version > version) break;
      live[op.id] = op.insert;
    }
    return live;
  };
  std::map<std::pair<std::size_t, std::uint64_t>, OracleExpectation> memo;
  for (const RecordedBatch& run : recorded) {
    if (run.version < base_version ||
        run.version > base_version + log.size()) {
      std::ostringstream out;
      out << "pinned snapshot v" << run.version << " outside ["
          << base_version << ", " << base_version + log.size() << "]";
      fail(out.str());
      continue;
    }
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      const std::pair<std::size_t, std::uint64_t> key(origin[i], run.version);
      auto it = memo.find(key);
      if (it == memo.end()) {
        const std::vector<bool> live = live_at(run.version);
        it = memo.emplace(key, ExpectedFor(post_oracle, specs[origin[i]],
                                           &live))
                 .first;
      }
      const std::string diff = OracleDiff(it->second, run.results[i],
                                          run.algorithm, config.tolerance);
      if (!diff.empty()) {
        std::ostringstream out;
        out << "entry " << i << " divergence at snapshot v" << run.version
            << " under "
            << DescribeConfig(run.algorithm, run.threads, index % 2 == 1)
            << ": " << diff;
        fail(out.str());
      }
    }
  }
  return outcome;
}

CaseOutcome DifferentialRunner::RunCheckpointCase(
    std::size_t index, const CheckpointConfig& config) {
  const WorkloadCase work = [&] {
    const Oracle pre_oracle(engine_.dataset());
    return generator_.MakeCase(index, engine_, pre_oracle);
  }();
  CaseOutcome outcome;
  outcome.description = work.description + " [checkpoint]";
  const auto fail = [&](const std::string& what) {
    if (outcome.passed) {
      outcome.passed = false;
      outcome.failure = what;
    }
  };
  const std::string prefix = config.prefix + "." + std::to_string(index);

  // Baseline checkpoint: the "old" durable state every pre-commit crash
  // must fall back to.
  if (const Status saved = engine_.SaveTo(prefix); !saved.ok()) {
    fail("baseline SaveTo failed: " + saved.ToString());
    return outcome;
  }
  const std::uint64_t old_epoch = engine_.checkpoint_epoch();
  std::vector<bool> old_live(engine_.dataset().size());
  for (std::size_t i = 0; i < old_live.size(); ++i) {
    old_live[i] = !engine_.dataset().removed(i);
  }

  // Advance the engine past the baseline so old and new answers differ —
  // a recovery that silently serves the wrong state must show up as a
  // divergence, not a coincidence.
  {
    Rng rng(generator_.seed() * 0xD1B54A32D192ED03ull + index);
    std::vector<std::size_t> live_ids;
    for (std::size_t i = 0; i < old_live.size(); ++i) {
      if (old_live[i]) live_ids.push_back(i);
    }
    for (std::size_t n = 0; n < config.inserts; ++n) {
      const ts::Series series =
          ts::GenerateRandomWalk(engine_.length(), 500.0, rng);
      const Result<std::size_t> id = engine_.Insert(series);
      if (!id.ok()) {
        fail("insert failed: " + id.status().ToString());
        return outcome;
      }
      live_ids.push_back(*id);
      ++outcome.writes;
    }
    for (std::size_t n = 0; n < config.removes && !live_ids.empty(); ++n) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const std::size_t id = live_ids[pick];
      live_ids.erase(live_ids.begin() + pick);
      if (const Status removed = engine_.Remove(id); !removed.ok()) {
        fail("remove failed: " + removed.ToString());
        return outcome;
      }
      ++outcome.writes;
    }
  }
  std::vector<bool> new_live(engine_.dataset().size());
  for (std::size_t i = 0; i < new_live.size(); ++i) {
    new_live[i] = !engine_.dataset().removed(i);
  }

  // One oracle over the final dataset serves both states: the liveness mask
  // replays either snapshot (ids past the mask count as dead, so the old
  // mask works against the grown dataset).
  const Oracle post_oracle(engine_.dataset());
  const auto* correlation_join = [&]() -> const core::JoinQuerySpec* {
    const auto* join = std::get_if<core::JoinQuerySpec>(&work.spec);
    return join != nullptr && join->mode == core::JoinMode::kCorrelation
               ? join
               : nullptr;
  }();

  // Queries the recovered engine and diffs it against the oracle at `live`.
  const auto check_loaded = [&](core::SimilarityEngine& loaded,
                                const std::vector<bool>& live,
                                const std::string& context) {
    static constexpr core::Algorithm kLoadedAlgorithms[] = {
        core::Algorithm::kSequentialScan, core::Algorithm::kAuto};
    for (const core::Algorithm algorithm : kLoadedAlgorithms) {
      core::ExecOptions options;
      options.planner.algorithm = algorithm;
      const Result<core::QueryResult> result =
          loaded.Execute(work.spec, options);
      ++outcome.runs;
      if (!result.ok()) {
        fail(context + ": query on recovered engine failed under " +
             DescribeConfig(algorithm, 1, false) + ": " +
             result.status().ToString());
        return;
      }
      std::string diff;
      if (const auto* range = std::get_if<core::RangeQuerySpec>(&work.spec)) {
        diff = CompareRange(post_oracle.Range(*range, &live),
                            result->range()->matches, config.tolerance);
      } else if (const auto* knn =
                     std::get_if<core::KnnQuerySpec>(&work.spec)) {
        diff = CompareKnn(post_oracle.Knn(*knn, &live),
                          result->knn()->matches, config.tolerance);
      } else {
        const auto& join = std::get<core::JoinQuerySpec>(work.spec);
        const bool subset_ok = correlation_join != nullptr &&
                               algorithm != core::Algorithm::kSequentialScan;
        diff = CompareJoin(post_oracle.Join(join, &live),
                           result->join()->matches, config.tolerance,
                           subset_ok);
      }
      if (!diff.empty()) {
        fail(context + ": recovered engine diverged under " +
             DescribeConfig(algorithm, 1, false) + ": " + diff);
        return;
      }
    }
  };

  // The sweep: crash the save at step 1, 2, ... until a save runs out of
  // steps and completes. Every aborted save leaves a genuinely torn on-disk
  // state (the crash closes the file mid-write and skips all cleanup).
  for (std::uint64_t k = 1;; ++k) {
    CrashPolicy policy(k);
    engine_.SetCheckpointFaultHook(&policy);
    const Status saved = engine_.SaveTo(prefix);
    engine_.SetCheckpointFaultHook(nullptr);
    if (saved.ok()) {
      // k exceeded the save's step count: the save committed normally and
      // recovery must see exactly the new state.
      Result<std::unique_ptr<core::SimilarityEngine>> loaded =
          core::SimilarityEngine::LoadFrom(prefix);
      if (!loaded.ok()) {
        fail("load after completed save failed: " +
             loaded.status().ToString());
      } else {
        check_loaded(**loaded, new_live, "after completed save");
      }
      break;
    }
    ++outcome.fault_runs;
    ++outcome.fault_errors;
    const std::string context = "crash at step " + std::to_string(k) + " (" +
                                policy.crashed_step() + ")";
    Result<std::unique_ptr<core::SimilarityEngine>> loaded =
        core::SimilarityEngine::LoadFrom(prefix);
    if (!loaded.ok()) {
      fail(context +
           ": recovery load failed: " + loaded.status().ToString());
      return outcome;
    }
    // The manifest epoch decides which committed state recovery landed on;
    // anything but "the baseline" or "the new checkpoint" is data loss.
    const std::uint64_t epoch = (*loaded)->checkpoint_epoch();
    if (epoch == old_epoch) {
      check_loaded(**loaded, old_live, context + ", recovered old epoch");
    } else if (epoch > old_epoch) {
      check_loaded(**loaded, new_live, context + ", recovered new epoch");
    } else {
      fail(context + ": recovered epoch " + std::to_string(epoch) +
           " older than baseline " + std::to_string(old_epoch));
    }
    if (!outcome.passed) return outcome;
    if (k > 10000) {
      fail("crash sweep did not terminate: SaveTo never ran out of steps");
      return outcome;
    }
  }
  return outcome;
}

}  // namespace tsq::testing
