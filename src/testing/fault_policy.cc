#include "testing/fault_policy.h"

#include <sstream>

#include "storage/page_file.h"

namespace tsq::testing {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
  }
  return "UNKNOWN";
}

}  // namespace

FaultPolicy::FaultPolicy(FaultPolicyConfig config) : config_(config) {}

Status FaultPolicy::MakeFailure(std::uint32_t page_id,
                                std::uint64_t ordinal) const {
  std::ostringstream msg;
  msg << "injected fault: read #" << ordinal << " of page " << page_id;
  switch (config_.failure_code) {
    case StatusCode::kNotFound:
      return Status::NotFound(msg.str());
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg.str());
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(msg.str());
    case StatusCode::kInternal:
      return Status::Internal(msg.str());
    case StatusCode::kCorruption:
      return Status::Corruption(msg.str());
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg.str());
    case StatusCode::kOk:
    case StatusCode::kIoError:
      break;
  }
  return Status::IoError(msg.str());
}

storage::FaultDecision FaultPolicy::OnRead(std::uint32_t page_id) {
  const std::uint64_t n = reads_.fetch_add(1, std::memory_order_relaxed) + 1;
  storage::FaultDecision decision;
  decision.delay_nanos = config_.delay_nanos;
  const bool fail = (config_.fail_nth_read != 0 && n == config_.fail_nth_read) ||
                    (config_.fail_every_k != 0 && n % config_.fail_every_k == 0);
  if (fail) {
    decision.action = storage::FaultDecision::Action::kFail;
    decision.status = MakeFailure(page_id, n);
  } else if (config_.corrupt_nth_read != 0 && n == config_.corrupt_nth_read) {
    decision.action = storage::FaultDecision::Action::kCorruptBytes;
    // Vary the flipped byte with the page id so different pages tear
    // differently; any offset defeats the checksum equally.
    decision.byte_offset = (static_cast<std::size_t>(page_id) * 97 + 13) %
                           storage::kPageSize;
  } else if (config_.short_nth_read != 0 && n == config_.short_nth_read) {
    decision.action = storage::FaultDecision::Action::kShortRead;
    decision.valid_bytes = config_.short_read_bytes;
  }
  if (decision.action != storage::FaultDecision::Action::kNone) {
    faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultPolicy::Reset() {
  reads_.store(0, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
}

std::string FaultPolicy::Describe() const {
  std::ostringstream out;
  const char* sep = "";
  if (config_.fail_nth_read != 0) {
    out << sep << "fail-nth(" << config_.fail_nth_read << ", "
        << CodeName(config_.failure_code) << ")";
    sep = " + ";
  }
  if (config_.fail_every_k != 0) {
    out << sep << "fail-every(" << config_.fail_every_k << ", "
        << CodeName(config_.failure_code) << ")";
    sep = " + ";
  }
  if (config_.corrupt_nth_read != 0) {
    out << sep << "corrupt-nth(" << config_.corrupt_nth_read << ")";
    sep = " + ";
  }
  if (config_.short_nth_read != 0) {
    out << sep << "short-nth(" << config_.short_nth_read << ", "
        << config_.short_read_bytes << "B)";
    sep = " + ";
  }
  if (config_.delay_nanos != 0) {
    out << sep << "delay(" << config_.delay_nanos << "ns)";
    sep = " + ";
  }
  if (*sep == '\0') out << "no-faults";
  return out.str();
}

}  // namespace tsq::testing
