#ifndef TSQ_TESTING_FAULT_POLICY_H_
#define TSQ_TESTING_FAULT_POLICY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/fault_injection.h"

namespace tsq::testing {

/// Declarative description of a fault schedule over the stream of page
/// reads. Read ordinals are 1-based and counted across every storage layer
/// the policy is installed on (a query that goes pool -> file counts two
/// reads for one logical fetch). A zero field disables that fault kind.
struct FaultPolicyConfig {
  /// Fail exactly the n-th read with `failure_code`.
  std::uint64_t fail_nth_read = 0;
  /// Fail every k-th read (k, 2k, 3k, ...) with `failure_code`.
  std::uint64_t fail_every_k = 0;
  /// Status code used for fail_nth_read / fail_every_k.
  StatusCode failure_code = StatusCode::kIoError;
  /// Deliver the n-th read with one byte flipped (checksum corruption).
  std::uint64_t corrupt_nth_read = 0;
  /// Deliver the n-th read torn: only the first `short_read_bytes` bytes
  /// arrive, the rest of the page reads back as zeros.
  std::uint64_t short_nth_read = 0;
  std::size_t short_read_bytes = 512;
  /// Extra latency injected into every read, faulted or not.
  std::uint64_t delay_nanos = 0;
};

/// A thread-safe storage::FaultHook driven by a FaultPolicyConfig.
///
/// Precedence when several ordinals coincide: fail > corrupt > short read.
/// The policy counts the reads it has seen and the faults it has injected,
/// so tests can assert a fault actually fired.
class FaultPolicy : public storage::FaultHook {
 public:
  explicit FaultPolicy(FaultPolicyConfig config = FaultPolicyConfig());

  storage::FaultDecision OnRead(std::uint32_t page_id) override;

  const FaultPolicyConfig& config() const { return config_; }
  std::uint64_t reads_seen() const {
    return reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

  /// Rewinds the read counter so the schedule replays from the start.
  void Reset();

  /// Human-readable one-liner ("fail-nth(3, IO_ERROR)", "corrupt-nth(2)",
  /// ...) for fuzzer repro output.
  std::string Describe() const;

 private:
  Status MakeFailure(std::uint32_t page_id, std::uint64_t ordinal) const;

  FaultPolicyConfig config_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> faults_{0};
};

/// A storage::FaultHook that "crashes" a checkpoint save at its k-th write
/// step: OnWrite returns crash=true on the k-th consultation, aborting the
/// save right there and leaving whatever files the preceding steps already
/// produced exactly as a real crash would. Read faults are never injected.
///
/// steps_seen() after a completed (uncrashed) save tells the harness how
/// many steps that save had — once k exceeds it, SaveTo runs to completion
/// and the sweep is done.
class CrashPolicy : public storage::FaultHook {
 public:
  /// Crash at the `crash_at_step`-th OnWrite consultation (1-based);
  /// 0 never crashes (pure step counter).
  explicit CrashPolicy(std::uint64_t crash_at_step = 0)
      : crash_at_step_(crash_at_step) {}

  storage::FaultDecision OnRead(std::uint32_t page_id) override {
    (void)page_id;  // never faults reads
    return storage::FaultDecision{};
  }

  storage::WriteFaultDecision OnWrite(const char* step) override {
    const std::uint64_t ordinal =
        steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    storage::WriteFaultDecision decision;
    if (crash_at_step_ != 0 && ordinal == crash_at_step_) {
      decision.crash = true;
      decision.status = Status::IoError("injected crash at write step " +
                                        std::to_string(ordinal) + " (" +
                                        step + ")");
      last_step_name_ = step;
    }
    return decision;
  }

  std::uint64_t steps_seen() const {
    return steps_.load(std::memory_order_relaxed);
  }
  /// Name of the step the crash fired at ("sync", "rename", ...); empty
  /// while no crash has fired.
  const std::string& crashed_step() const { return last_step_name_; }

  void Reset() { steps_.store(0, std::memory_order_relaxed); }

  std::string Describe() const {
    return "crash-at-step(" + std::to_string(crash_at_step_) + ")";
  }

 private:
  std::uint64_t crash_at_step_;
  std::atomic<std::uint64_t> steps_{0};
  std::string last_step_name_;
};

}  // namespace tsq::testing

#endif  // TSQ_TESTING_FAULT_POLICY_H_
