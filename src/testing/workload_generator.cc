#include "testing/workload_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/normal_form.h"

namespace tsq::testing {

namespace {

using transform::SpectralTransform;

/// Formats a double so the lexer parses back the identical value
/// (max_digits10 round-trip).
std::string Num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return std::string(buffer);
}

std::string Num(std::size_t v) { return std::to_string(v); }

/// One pipeline of the emitted query text plus its expansion, built with
/// exactly the argument values the compiler will reconstruct from the text.
struct PipelinePiece {
  std::string text;
  std::vector<SpectralTransform> transforms;
};

std::vector<SpectralTransform> MvRange(std::size_t n, std::size_t lo,
                                       std::size_t hi) {
  std::vector<SpectralTransform> out;
  for (std::size_t w = lo; w <= hi; ++w) {
    out.push_back(transform::MovingAverageTransform(n, w));
  }
  return out;
}

PipelinePiece MakeMvPiece(std::size_t n, std::size_t lo, std::size_t hi) {
  return PipelinePiece{"mv(" + Num(lo) + ".." + Num(hi) + ")",
                       MvRange(n, lo, hi)};
}

PipelinePiece MakeLwmaPiece(std::size_t n, std::size_t lo, std::size_t hi) {
  std::vector<SpectralTransform> out;
  for (std::size_t w = lo; w <= hi; ++w) {
    out.push_back(transform::LinearWeightedMovingAverageTransform(n, w));
  }
  return PipelinePiece{"lwma(" + Num(lo) + ".." + Num(hi) + ")",
                       std::move(out)};
}

/// momentum then shift(0..s) — Example 1.2's pipeline, composed per Eq. 11
/// exactly as the compiler composes factors (shift applied after momentum).
PipelinePiece MakeMomentumShiftPiece(std::size_t n, std::size_t max_shift) {
  std::vector<SpectralTransform> momentum;
  momentum.push_back(transform::MomentumTransform(n));
  std::vector<SpectralTransform> shifts;
  for (std::size_t s = 0; s <= max_shift; ++s) {
    shifts.push_back(transform::ShiftTransform(n, s));
  }
  return PipelinePiece{"momentum then shift(0.." + Num(max_shift) + ")",
                       transform::ComposeSpectralSets(momentum, shifts)};
}

/// invert then mv(lo..hi) — the second cluster of the Fig. 9 construction.
PipelinePiece MakeInvertedMvPiece(std::size_t n, std::size_t lo,
                                  std::size_t hi) {
  std::vector<SpectralTransform> invert;
  invert.push_back(transform::InvertTransform(n));
  return PipelinePiece{
      "invert then mv(" + Num(lo) + ".." + Num(hi) + ")",
      transform::ComposeSpectralSets(invert, MvRange(n, lo, hi))};
}

/// scale(2..last) — the compiler expands a double range by repeated
/// addition, so the programmatic twin must accumulate identically.
PipelinePiece MakeScalePiece(std::size_t n, std::size_t last) {
  std::vector<SpectralTransform> out;
  for (double a = 2.0; a <= static_cast<double>(last) + 1e-9; a += 1.0) {
    out.push_back(transform::ScaleTransform(n, a));
  }
  return PipelinePiece{"scale(2.." + Num(last) + ")", std::move(out)};
}

PipelinePiece MakeEmaPiece(double alpha) {
  // Alphas come from an exact-binary-fraction table, so the printed literal
  // parses back bit-identical.
  return PipelinePiece{"ema(" + Num(alpha) + ")", {}};
}

/// A boundary-free threshold admitting roughly `want` of the ascending
/// `curve`: the midpoint of a clearly separated gap near rank `want`.
/// Returns the fallback (match everything) when no clean gap exists.
double PickAscendingThreshold(const std::vector<double>& curve,
                              std::size_t want) {
  if (curve.empty()) return 1.0;
  if (curve.size() == 1) return curve[0] + 1.0;
  want = std::clamp<std::size_t>(want, 1, curve.size() - 1);
  for (std::size_t off = 0; off < curve.size(); ++off) {
    for (const std::size_t j : {want - off, want + off}) {
      if (j < 1 || j > curve.size() - 1) continue;
      const double gap = curve[j] - curve[j - 1];
      if (gap > 1e-7 * (1.0 + std::fabs(curve[j]))) {
        return curve[j - 1] + gap / 2.0;
      }
    }
  }
  return curve.back() * 2.0 + 1.0;
}

/// Same idea for a descending correlation curve: a min_correlation strictly
/// inside a clean gap, admitting roughly `want` pairs. Returns 2.0 (match
/// nothing is unsafe; caller treats > 1.0 as "no clean gap") — callers fall
/// back to matching everything.
double PickDescendingThreshold(const std::vector<double>& curve,
                               std::size_t want) {
  if (curve.empty()) return -2.0;
  if (curve.size() == 1) return curve[0] - 0.5;
  want = std::clamp<std::size_t>(want, 1, curve.size() - 1);
  for (std::size_t off = 0; off < curve.size(); ++off) {
    for (const std::size_t j : {want - off, want + off}) {
      if (j < 1 || j > curve.size() - 1) continue;
      const double gap = curve[j - 1] - curve[j];
      if (gap > 1e-7 * (1.0 + std::fabs(curve[j]))) {
        return curve[j] + gap / 2.0;
      }
    }
  }
  return curve.back() - 1.0;
}

struct GroupingChoice {
  std::string text;  // "" for the default single-MBR grouping
  transform::Partition partition;
};

/// Mirrors lang::Compile's make_partition for each grouping keyword.
GroupingChoice PickGrouping(Rng& rng, const core::SimilarityEngine& engine,
                            std::span<const SpectralTransform> transforms) {
  const std::size_t count = transforms.size();
  GroupingChoice choice;
  switch (rng.UniformInt(0, 3)) {
    case 0:
      break;  // default: one MBR for all transformations
    case 1: {
      const std::size_t groups = static_cast<std::size_t>(
          rng.UniformInt(1, static_cast<std::int64_t>(std::min<std::size_t>(4, count))));
      choice.text = " groups " + Num(groups);
      choice.partition = transform::PartitionIntoGroups(count, groups);
      break;
    }
    case 2: {
      const std::size_t per = static_cast<std::size_t>(
          rng.UniformInt(1, static_cast<std::int64_t>(std::min<std::size_t>(6, count))));
      choice.text = " per_mbr " + Num(per);
      choice.partition = transform::PartitionBySize(count, per);
      break;
    }
    case 3: {
      std::vector<transform::FeatureTransform> fts;
      fts.reserve(count);
      for (const SpectralTransform& t : transforms) {
        fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
      }
      choice.text = " clustered";
      choice.partition = transform::PartitionByClusters(fts, 8);
      break;
    }
  }
  return choice;
}

std::string AlgorithmSuffix(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 1:
      return " using mt";
    case 2:
      return " using st";
    case 3:
      return " using scan";
    case 4:
      return " using auto";
    default:
      return "";
  }
}

/// The transformation-set menu shared by range and k-NN cases.
struct TransformMenu {
  std::vector<PipelinePiece> pieces;
  core::TransformTarget target = core::TransformTarget::kBoth;
  bool ordered = false;  // scale chains only (dominance chain, Section 4.4)
};

TransformMenu PickPointQueryMenu(Rng& rng, std::size_t n, bool allow_ordered) {
  TransformMenu menu;
  switch (rng.UniformInt(0, 6)) {
    case 0: {
      const std::size_t lo = 1 + static_cast<std::size_t>(rng.UniformInt(0, 2));
      const std::size_t hi =
          std::min(lo + 4 + static_cast<std::size_t>(rng.UniformInt(0, 8)), n);
      menu.pieces.push_back(MakeMvPiece(n, lo, hi));
      break;
    }
    case 1: {
      const std::size_t max_shift = static_cast<std::size_t>(rng.UniformInt(
          2, static_cast<std::int64_t>(std::min<std::size_t>(8, n - 1))));
      menu.pieces.push_back(MakeMomentumShiftPiece(n, max_shift));
      menu.target = core::TransformTarget::kDataOnly;
      break;
    }
    case 2: {
      // Two well-separated clusters (Fig. 9): a moving-average ramp and its
      // inverted copy.
      const std::size_t lo = 2 + static_cast<std::size_t>(rng.UniformInt(0, 2));
      const std::size_t hi =
          std::min(lo + 3 + static_cast<std::size_t>(rng.UniformInt(0, 4)), n);
      menu.pieces.push_back(MakeMvPiece(n, lo, hi));
      menu.pieces.push_back(MakeInvertedMvPiece(n, lo, hi));
      break;
    }
    case 3: {
      const std::size_t last =
          4 + static_cast<std::size_t>(rng.UniformInt(0, 6));
      menu.pieces.push_back(MakeScalePiece(n, last));
      menu.ordered = allow_ordered && rng.Bernoulli(0.6);
      break;
    }
    case 4: {
      const std::size_t lo = 1 + static_cast<std::size_t>(rng.UniformInt(0, 2));
      const std::size_t hi =
          std::min(lo + 3 + static_cast<std::size_t>(rng.UniformInt(0, 5)), n);
      menu.pieces.push_back(MakeLwmaPiece(n, lo, hi));
      break;
    }
    case 5: {
      static constexpr double kAlphas[] = {0.125, 0.25, 0.375, 0.5,
                                           0.625, 0.75};
      const std::size_t count =
          2 + static_cast<std::size_t>(rng.UniformInt(0, 1));
      const std::size_t start =
          static_cast<std::size_t>(rng.UniformInt(0, 2));
      for (std::size_t i = 0; i < count; ++i) {
        PipelinePiece piece = MakeEmaPiece(kAlphas[start + i]);
        piece.transforms.push_back(
            transform::ExponentialMovingAverageTransform(n,
                                                         kAlphas[start + i]));
        menu.pieces.push_back(std::move(piece));
      }
      break;
    }
    case 6: {
      const std::size_t low = static_cast<std::size_t>(rng.UniformInt(0, 1));
      const std::size_t high = std::min(
          low + 1 + static_cast<std::size_t>(rng.UniformInt(0, 5)), n / 2);
      menu.pieces.push_back(
          PipelinePiece{"band(" + Num(low) + ", " + Num(high) + ")",
                        {transform::BandPassTransform(n, low, high)}});
      menu.pieces.push_back(PipelinePiece{
          "diff2", {transform::SecondDifferenceTransform(n)}});
      menu.pieces.push_back(
          PipelinePiece{"identity", {SpectralTransform::Identity(n)}});
      break;
    }
  }
  return menu;
}

TransformMenu PickJoinMenu(Rng& rng, std::size_t n) {
  // Joins evaluate every pair, so their transformation sets stay small.
  TransformMenu menu;
  switch (rng.UniformInt(0, 3)) {
    case 0: {
      const std::size_t lo = 2 + static_cast<std::size_t>(rng.UniformInt(0, 3));
      const std::size_t hi =
          std::min(lo + 1 + static_cast<std::size_t>(rng.UniformInt(0, 3)), n);
      menu.pieces.push_back(MakeMvPiece(n, lo, hi));
      break;
    }
    case 1: {
      menu.pieces.push_back(
          PipelinePiece{"momentum", {transform::MomentumTransform(n)}});
      menu.pieces.push_back(PipelinePiece{
          "diff2", {transform::SecondDifferenceTransform(n)}});
      break;
    }
    case 2: {
      const std::size_t lo = 3 + static_cast<std::size_t>(rng.UniformInt(0, 2));
      const std::size_t hi = std::min(lo + 1, n);
      menu.pieces.push_back(MakeMvPiece(n, lo, hi));
      menu.pieces.push_back(MakeInvertedMvPiece(n, lo, hi));
      break;
    }
    case 3: {
      const std::size_t w = 3 + static_cast<std::size_t>(rng.UniformInt(0, 4));
      menu.pieces.push_back(
          PipelinePiece{"identity", {SpectralTransform::Identity(n)}});
      menu.pieces.push_back(
          PipelinePiece{"mv(" + Num(std::min(w, n)) + ")",
                        {transform::MovingAverageTransform(n, std::min(w, n))}});
      break;
    }
  }
  return menu;
}

std::vector<SpectralTransform> FlattenMenu(const TransformMenu& menu) {
  std::vector<SpectralTransform> all;
  for (const PipelinePiece& piece : menu.pieces) {
    for (const SpectralTransform& t : piece.transforms) all.push_back(t);
  }
  return all;
}

std::string JoinPipelineTexts(const TransformMenu& menu) {
  std::string out;
  for (std::size_t i = 0; i < menu.pieces.size(); ++i) {
    if (i > 0) out += ", ";
    out += menu.pieces[i].text;
  }
  return out;
}

std::vector<std::size_t> LiveIds(const core::Dataset& dataset) {
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (!dataset.removed(i)) live.push_back(i);
  }
  return live;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(std::uint64_t seed) : seed_(seed) {}

ts::StockMarketConfig WorkloadGenerator::dataset_config() const {
  ts::StockMarketConfig config;
  config.num_series = 40 + 16 * (seed_ % 3);
  static constexpr std::size_t kLengths[] = {16, 32, 64};
  config.length = kLengths[(seed_ / 3) % 3];
  config.num_sectors = 8;
  // Tighter idiosyncratic-volatility floor than the default so every seed
  // has a few highly correlated pairs (non-trivial joins at high rho).
  config.idio_vol_min = 0.0005;
  config.seed = seed_ * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  return config;
}

std::vector<ts::Series> WorkloadGenerator::MakeSeries() const {
  return ts::GenerateStockMarket(dataset_config());
}

WorkloadCase WorkloadGenerator::MakeCase(std::size_t index,
                                         const core::SimilarityEngine& engine,
                                         const Oracle& oracle) const {
  Rng rng(seed_ * 1000003ull + index * 7919ull + 17ull);
  const std::size_t n = engine.length();
  const std::vector<std::size_t> live = LiveIds(engine.dataset());
  TSQ_CHECK(!live.empty());
  const std::size_t kind = index % 3;

  WorkloadCase out;
  std::ostringstream desc;

  if (kind == 0 || kind == 1) {
    const std::size_t series_id =
        live[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1))];
    // The compiler resolves "series N" through the normal form, so the
    // programmatic twin must take the identical denormalized series.
    const ts::Series query =
        ts::Denormalize(engine.dataset().normal(series_id));
    TransformMenu menu = PickPointQueryMenu(rng, n, /*allow_ordered=*/kind == 0);
    std::vector<SpectralTransform> transforms = FlattenMenu(menu);
    const GroupingChoice grouping = PickGrouping(rng, engine, transforms);
    const std::string algorithm_text = AlgorithmSuffix(rng);
    const std::string apply_text =
        menu.target == core::TransformTarget::kDataOnly ? " apply data" : "";

    if (kind == 0) {
      core::RangeQuerySpec spec;
      spec.query = query;
      spec.transforms = std::move(transforms);
      spec.partition = grouping.partition;
      spec.target = menu.target;
      spec.use_ordering = menu.ordered;
      const std::size_t want = 1 + static_cast<std::size_t>(
          rng.UniformInt(0, 39));
      spec.epsilon = PickAscendingThreshold(oracle.RangeDistances(spec), want);
      out.lang_text = "find similar to series " + Num(series_id) + " under " +
                      JoinPipelineTexts(menu) + " within distance " +
                      Num(spec.epsilon) + algorithm_text + apply_text +
                      grouping.text + (menu.ordered ? " ordered" : "");
      desc << "range series=" << series_id << " T=" << spec.transforms.size()
           << " eps=" << spec.epsilon;
      out.spec = std::move(spec);
    } else {
      core::KnnQuerySpec spec;
      spec.query = query;
      spec.transforms = std::move(transforms);
      spec.partition = grouping.partition;
      spec.target = menu.target;
      spec.k = 1;
      const std::vector<double> curve = oracle.KnnDistanceCurve(spec);
      const std::size_t kmax = std::min<std::size_t>(8, curve.size());
      std::size_t k = 1 + static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(kmax) - 1));
      // Nudge k to a rank whose distance gap is clean, so the cut between
      // the k-th and (k+1)-th neighbour cannot flip on floating-point noise.
      for (std::size_t off = 0; off < kmax; ++off) {
        for (const std::size_t cand : {k - off, k + off}) {
          if (cand < 1 || cand > kmax) continue;
          if (cand == curve.size() ||
              curve[cand] - curve[cand - 1] >
                  1e-7 * (1.0 + std::fabs(curve[cand]))) {
            k = cand;
            off = kmax;  // break both loops
            break;
          }
        }
      }
      spec.k = k;
      out.lang_text = "find " + Num(k) + " nearest to series " +
                      Num(series_id) + " under " + JoinPipelineTexts(menu) +
                      algorithm_text + apply_text + grouping.text;
      desc << "knn series=" << series_id << " T=" << spec.transforms.size()
           << " k=" << k;
      out.spec = std::move(spec);
    }
  } else {
    TransformMenu menu = PickJoinMenu(rng, n);
    std::vector<SpectralTransform> transforms = FlattenMenu(menu);
    const GroupingChoice grouping = PickGrouping(rng, engine, transforms);
    const std::string algorithm_text = AlgorithmSuffix(rng);

    core::JoinQuerySpec spec;
    spec.transforms = std::move(transforms);
    spec.partition = grouping.partition;
    const bool correlation = rng.Bernoulli(0.4);
    spec.mode = correlation ? core::JoinMode::kCorrelation
                            : core::JoinMode::kDistance;
    const std::vector<double> values = oracle.JoinValues(spec);
    std::string threshold_text;
    if (correlation) {
      const std::size_t want = 1 + static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(
                 std::min<std::size_t>(20, std::max<std::size_t>(
                                               values.size(), 2) - 1)) - 1));
      spec.min_correlation = PickDescendingThreshold(values, want);
      threshold_text = " within correlation " + Num(spec.min_correlation);
    } else {
      const std::size_t want = 1 + static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(
                 std::min<std::size_t>(25, std::max<std::size_t>(
                                               values.size(), 2) - 1)) - 1));
      spec.epsilon = PickAscendingThreshold(values, want);
      threshold_text = " within distance " + Num(spec.epsilon);
    }
    out.lang_text = "find pairs under " + JoinPipelineTexts(menu) +
                    threshold_text + algorithm_text + grouping.text;
    desc << "join " << (correlation ? "rho>=" : "eps=")
         << (correlation ? spec.min_correlation : spec.epsilon)
         << " T=" << spec.transforms.size();
    out.spec = std::move(spec);
  }

  desc << " | " << out.lang_text;
  out.description = desc.str();
  return out;
}

}  // namespace tsq::testing
