#ifndef TSQ_TESTING_WORKLOAD_GENERATOR_H_
#define TSQ_TESTING_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "testing/oracle.h"
#include "ts/generate.h"

namespace tsq::testing {

/// One generated query case: a programmatic spec plus the equivalent query-
/// language text. Parsing and compiling `lang_text` against the same engine
/// must produce a spec that executes identically to `spec` (the lang
/// round-trip test's contract).
struct WorkloadCase {
  core::QuerySpec spec;
  std::string lang_text;
  std::string description;
};

/// Deterministic workload factory: one RNG seed fixes the dataset and the
/// entire case sequence, so any fuzzer failure is reproducible from
/// `--seed=S --case=K` alone.
///
/// Case k cycles through range / k-NN / join queries over a menu of
/// transformation sets that covers the paper's repertoire: moving-average
/// ranges (Fig. 6), composed momentum-then-shift pipelines (Example 1.2,
/// Eq. 11), two-cluster sets built from an inverted copy (Fig. 9, Section
/// 5.2), ordered scale chains (Section 4.4), weighted/exponential moving
/// averages, band-pass and second-difference filters — each optionally
/// partitioned into MBR groups (contiguous, fixed-size or cluster-aware).
///
/// Thresholds are picked *boundary-free*: the case is first evaluated by the
/// Oracle, and epsilon / min_correlation / k are placed in the middle of a
/// clearly separated gap of the sorted distance (or correlation) curve, so
/// engine-vs-oracle floating-point noise can never flip a match across the
/// threshold.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(std::uint64_t seed);

  std::uint64_t seed() const { return seed_; }

  /// The seed-derived dataset recipe (correlated stock-market walks; size
  /// and length vary with the seed so different seeds exercise different
  /// tree shapes and record layouts).
  ts::StockMarketConfig dataset_config() const;

  /// Generates the dataset (deterministic in the seed).
  std::vector<ts::Series> MakeSeries() const;

  /// Builds case `index` against `engine` (which must have been constructed
  /// from MakeSeries()) and `oracle` (built over the same dataset).
  /// Deterministic in (seed, index).
  WorkloadCase MakeCase(std::size_t index,
                        const core::SimilarityEngine& engine,
                        const Oracle& oracle) const;

 private:
  std::uint64_t seed_;
};

}  // namespace tsq::testing

#endif  // TSQ_TESTING_WORKLOAD_GENERATOR_H_
