#ifndef TSQ_TESTING_ORACLE_H_
#define TSQ_TESTING_ORACLE_H_

#include <vector>

#include "core/dataset.h"
#include "core/engine.h"
#include "dft/fft.h"

namespace tsq::testing {

/// Brute-force reference evaluator for the differential fuzzer.
///
/// The oracle shares nothing with the query execution path it is checking:
/// it computes its own spectra from the dataset's normal forms with its own
/// FFT plan, evaluates the Eq. 12 transformed distance with its own loops,
/// and enumerates every live sequence (or pair) directly — no index, no
/// transformation MBR, no pruning, no record-store I/O. Removed sequences
/// are skipped, matching query semantics.
///
/// Contract with the engine (what the fuzzer asserts):
///  * range:  identical (series, transform) match sets; distances within
///    tolerance. Holds for every algorithm.
///  * knn:    identical series ids in rank order; distances within
///    tolerance. Holds for every algorithm.
///  * join:   identical pair sets for kDistance mode and for the sequential
///    scan in either mode. Indexed kCorrelation joins may legitimately
///    return a *subset* (the paper's filter is not a strict lower bound for
///    correlation once transformed variances differ; see join_query.h), so
///    the fuzzer checks subset-plus-exact-values there.
class Oracle {
 public:
  explicit Oracle(const core::Dataset& dataset);

  /// The `live` mask (when non-null) overrides the dataset's tombstones:
  /// sequence i participates iff i < live->size() && (*live)[i]. This is how
  /// the mutate fuzzer re-evaluates a query at the snapshot it was pinned to
  /// — the mask is the liveness at that write version, reconstructed from
  /// the mutation log, while the dataset itself has moved on. Spectra are
  /// computed for every id at construction (tombstoned sequences keep their
  /// normal forms), so an oracle built *after* a mutation phase can replay
  /// any earlier version.
  std::vector<core::Match> Range(const core::RangeQuerySpec& spec,
                                 const std::vector<bool>* live = nullptr) const;
  std::vector<core::KnnMatch> Knn(const core::KnnQuerySpec& spec,
                                  const std::vector<bool>* live = nullptr) const;
  std::vector<core::JoinMatch> Join(const core::JoinQuerySpec& spec,
                                    const std::vector<bool>* live = nullptr) const;

  /// Every live (sequence, transformation) distance of a range query,
  /// sorted ascending and ignoring spec.epsilon — the curve the workload
  /// generator picks boundary-free thresholds from.
  std::vector<double> RangeDistances(const core::RangeQuerySpec& spec) const;

  /// Per-live-sequence best distance (min over transformations), sorted
  /// ascending — the k-NN rank curve, for picking a k with a clean gap.
  std::vector<double> KnnDistanceCurve(const core::KnnQuerySpec& spec) const;

  /// Every live pair's predicate value: distances ascending for kDistance,
  /// correlations descending for kCorrelation.
  std::vector<double> JoinValues(const core::JoinQuerySpec& spec) const;

 private:
  std::vector<dft::Complex> QuerySpectrum(
      const ts::Series& query,
      const std::optional<transform::SpectralTransform>& query_transform) const;
  double Distance2(const transform::SpectralTransform& t,
                   core::TransformTarget target,
                   std::span<const dft::Complex> x,
                   std::span<const dft::Complex> q) const;
  double Correlation(const transform::SpectralTransform& t,
                     std::span<const dft::Complex> x,
                     std::span<const dft::Complex> y) const;
  bool Live(std::size_t i, const std::vector<bool>* live) const {
    if (live == nullptr) return !dataset_->removed(i);
    return i < live->size() && (*live)[i];
  }

  const core::Dataset* dataset_;
  dft::FftPlan plan_;
  /// Spectra recomputed here from the normal forms, independent of both the
  /// dataset's cached spectra and the record store.
  std::vector<std::vector<dft::Complex>> spectra_;
};

}  // namespace tsq::testing

#endif  // TSQ_TESTING_ORACLE_H_
