#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/check.h"
#include "core/join_query.h"
#include "core/knn_query.h"
#include "core/range_query.h"
#include "ts/normal_form.h"

namespace tsq::testing {

Oracle::Oracle(const core::Dataset& dataset)
    : dataset_(&dataset), plan_(dataset.length()) {
  spectra_.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    spectra_.push_back(plan_.Forward(dataset.normal(i).values));
  }
}

std::vector<dft::Complex> Oracle::QuerySpectrum(
    const ts::Series& query,
    const std::optional<transform::SpectralTransform>& query_transform) const {
  TSQ_CHECK_EQ(query.size(), dataset_->length());
  const ts::NormalForm normal = ts::Normalize(query);
  std::vector<dft::Complex> spectrum = plan_.Forward(normal.values);
  if (query_transform.has_value()) {
    TSQ_CHECK_EQ(query_transform->length(), spectrum.size());
    for (std::size_t f = 0; f < spectrum.size(); ++f) {
      spectrum[f] *= query_transform->multiplier(f);
    }
  }
  return spectrum;
}

double Oracle::Distance2(const transform::SpectralTransform& t,
                         core::TransformTarget target,
                         std::span<const dft::Complex> x,
                         std::span<const dft::Complex> q) const {
  // Eq. 12, evaluated directly in the frequency domain (the DFT is unitary,
  // so Parseval needs no extra factors):
  //   kBoth:     D^2 = sum_f |M_f|^2 |X_f - Q_f|^2
  //   kDataOnly: D^2 = sum_f |M_f X_f - Q_f|^2
  double d2 = 0.0;
  for (std::size_t f = 0; f < x.size(); ++f) {
    if (target == core::TransformTarget::kBoth) {
      d2 += std::norm(t.multiplier(f)) * std::norm(x[f] - q[f]);
    } else {
      d2 += std::norm(t.multiplier(f) * x[f] - q[f]);
    }
  }
  return d2;
}

double Oracle::Correlation(const transform::SpectralTransform& t,
                           std::span<const dft::Complex> x,
                           std::span<const dft::Complex> y) const {
  // Both transformed sequences are zero-mean (normal forms have X_0 = 0 and
  // the multiplier keeps it zero), so with U = M.*X, V = M.*Y:
  //   rho = (n-1)/n * sum_f Re(U_f conj(V_f)) / (sigma_u * sigma_v),
  //   (n-1) sigma^2 = sum_f |U_f|^2.
  const std::size_t n = x.size();
  double dot = 0.0;
  double energy_u = 0.0;
  double energy_v = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    const double gain = std::norm(t.multiplier(f));
    dot += gain * (x[f] * std::conj(y[f])).real();
    energy_u += gain * std::norm(x[f]);
    energy_v += gain * std::norm(y[f]);
  }
  if (energy_u <= 0.0 || energy_v <= 0.0) return 0.0;
  return (static_cast<double>(n) - 1.0) * dot /
         (static_cast<double>(n) * std::sqrt(energy_u * energy_v));
}

std::vector<core::Match> Oracle::Range(const core::RangeQuerySpec& spec,
                                       const std::vector<bool>* live) const {
  const std::vector<dft::Complex> query =
      QuerySpectrum(spec.query, spec.query_transform);
  const double eps2 = spec.epsilon * spec.epsilon;
  std::vector<core::Match> matches;
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    if (!Live(i, live)) continue;
    for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
      const double d2 =
          Distance2(spec.transforms[t], spec.target, spectra_[i], query);
      if (d2 < eps2) matches.push_back(core::Match{i, t, std::sqrt(d2)});
    }
  }
  core::SortMatches(&matches);
  return matches;
}

std::vector<double> Oracle::RangeDistances(
    const core::RangeQuerySpec& spec) const {
  const std::vector<dft::Complex> query =
      QuerySpectrum(spec.query, spec.query_transform);
  std::vector<double> distances;
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    if (dataset_->removed(i)) continue;
    for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
      distances.push_back(std::sqrt(
          Distance2(spec.transforms[t], spec.target, spectra_[i], query)));
    }
  }
  std::sort(distances.begin(), distances.end());
  return distances;
}

std::vector<core::KnnMatch> Oracle::Knn(const core::KnnQuerySpec& spec,
                                        const std::vector<bool>* live) const {
  const std::vector<dft::Complex> query =
      QuerySpectrum(spec.query, spec.query_transform);
  std::vector<core::KnnMatch> all;
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    if (!Live(i, live)) continue;
    // Strict < keeps the first argmin transformation, matching the engine.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_t = 0;
    for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
      const double d2 =
          Distance2(spec.transforms[t], spec.target, spectra_[i], query);
      if (d2 < best) {
        best = d2;
        best_t = t;
      }
    }
    all.push_back(core::KnnMatch{i, best_t, std::sqrt(best)});
  }
  std::sort(all.begin(), all.end(),
            [](const core::KnnMatch& a, const core::KnnMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.series_id < b.series_id;
            });
  if (all.size() > spec.k) all.resize(spec.k);
  return all;
}

std::vector<double> Oracle::KnnDistanceCurve(
    const core::KnnQuerySpec& spec) const {
  core::KnnQuerySpec unbounded = spec;
  unbounded.k = dataset_->size();
  const std::vector<core::KnnMatch> all = Knn(unbounded);
  std::vector<double> curve;
  curve.reserve(all.size());
  for (const core::KnnMatch& m : all) curve.push_back(m.distance);
  return curve;
}

std::vector<core::JoinMatch> Oracle::Join(
    const core::JoinQuerySpec& spec, const std::vector<bool>* live) const {
  const double eps2 = spec.epsilon * spec.epsilon;
  std::vector<core::JoinMatch> matches;
  for (std::size_t a = 0; a < dataset_->size(); ++a) {
    if (!Live(a, live)) continue;
    for (std::size_t b = a + 1; b < dataset_->size(); ++b) {
      if (!Live(b, live)) continue;
      for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
        if (spec.mode == core::JoinMode::kDistance) {
          const double d2 =
              Distance2(spec.transforms[t], core::TransformTarget::kBoth,
                        spectra_[a], spectra_[b]);
          if (d2 < eps2) {
            matches.push_back(core::JoinMatch{a, b, t, std::sqrt(d2)});
          }
        } else {
          const double rho =
              Correlation(spec.transforms[t], spectra_[a], spectra_[b]);
          if (rho >= spec.min_correlation) {
            matches.push_back(core::JoinMatch{a, b, t, rho});
          }
        }
      }
    }
  }
  core::SortJoinMatches(&matches);
  return matches;
}

std::vector<double> Oracle::JoinValues(const core::JoinQuerySpec& spec) const {
  std::vector<double> values;
  for (std::size_t a = 0; a < dataset_->size(); ++a) {
    if (dataset_->removed(a)) continue;
    for (std::size_t b = a + 1; b < dataset_->size(); ++b) {
      if (dataset_->removed(b)) continue;
      for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
        if (spec.mode == core::JoinMode::kDistance) {
          values.push_back(std::sqrt(
              Distance2(spec.transforms[t], core::TransformTarget::kBoth,
                        spectra_[a], spectra_[b])));
        } else {
          values.push_back(
              Correlation(spec.transforms[t], spectra_[a], spectra_[b]));
        }
      }
    }
  }
  if (spec.mode == core::JoinMode::kDistance) {
    std::sort(values.begin(), values.end());
  } else {
    std::sort(values.begin(), values.end(), std::greater<double>());
  }
  return values;
}

}  // namespace tsq::testing
