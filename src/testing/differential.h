#ifndef TSQ_TESTING_DIFFERENTIAL_H_
#define TSQ_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "testing/oracle.h"
#include "testing/workload_generator.h"

namespace tsq::testing {

/// Knobs of one differential sweep.
struct DiffConfig {
  /// Also run the fault sweep: under every FaultPolicy the engine must
  /// either return the exact fault-free result or a non-OK Status, and a
  /// clean rerun afterwards must still match (storage state intact).
  bool with_faults = true;
  /// Relative tolerance for comparing distances / correlations; match
  /// membership itself is exact (thresholds are boundary-free by
  /// construction).
  double tolerance = 1e-6;
  /// Index buffer pool used for the pool-on half of the sweep. Deliberately
  /// tiny so eviction and the coalescing miss path are exercised.
  std::size_t pool_pages = 8;
  std::size_t pool_shards = 2;
};

/// Knobs of one mutate-mode case (RunMutateCase): a seeded mutator thread
/// commits Insert/Remove operations while the main thread sweeps the query
/// configurations, and every result is checked against an oracle evaluated
/// at the snapshot version the query pinned.
struct MutateConfig {
  double tolerance = 1e-6;
  /// Pool used on odd-indexed cases (even cases run pool-less).
  std::size_t pool_pages = 8;
  std::size_t pool_shards = 2;
  /// Writes the mutator thread commits while the sweep runs.
  std::size_t inserts = 5;
  std::size_t removes = 4;
};

/// Knobs of one batched-execution case (RunBatchCase / RunBatchMutateCase).
struct BatchConfig {
  double tolerance = 1e-6;
  /// Also repeat a slice of the sweep under each FaultPolicy (RunBatchCase
  /// only): every batch entry must either surface a non-OK Status or carry
  /// the exact fault-free matches, and a clean rerun must fully match.
  bool with_faults = true;
  /// Pool used on odd-indexed cases (even cases run pool-less).
  std::size_t pool_pages = 8;
  std::size_t pool_shards = 2;
  /// Distinct generated specs per batch; the case RNG picks a count in
  /// [min_specs, max_specs].
  std::size_t min_specs = 3;
  std::size_t max_specs = 5;
  /// Per-base-spec chance of re-enqueueing it verbatim later in the batch,
  /// so in-batch duplicate coalescing and cache serving are exercised.
  double duplicate_probability = 0.4;
  /// Writes the mutator thread commits (RunBatchMutateCase only).
  std::size_t inserts = 4;
  std::size_t removes = 3;
};

/// Knobs of one checkpoint crash-recovery case (RunCheckpointCase).
struct CheckpointConfig {
  double tolerance = 1e-6;
  /// Filesystem prefix for the case's checkpoint files (e.g.
  /// "/tmp/tsq_fuzz/ckpt"); the case index is appended so successive cases
  /// never share a manifest. Required.
  std::string prefix;
  /// Writes committed between the baseline checkpoint and the crashing
  /// saves, so the old and new durable states genuinely differ.
  std::size_t inserts = 3;
  std::size_t removes = 2;
};

/// Outcome of one case's sweep.
struct CaseOutcome {
  bool passed = true;
  /// Engine executions compared against the oracle.
  std::size_t runs = 0;
  /// Executions performed with a fault policy installed.
  std::size_t fault_runs = 0;
  /// Of those, how many surfaced a non-OK Status (the rest matched).
  std::size_t fault_errors = 0;
  /// Writes the mutator thread committed (mutate mode only).
  std::size_t writes = 0;
  /// First divergence, self-contained enough to debug from ("config=...,
  /// expected N matches, got M, first diff ...").
  std::string failure;
  std::string description;  // the generated case
};

/// Runs generated cases through the full configuration cube
/// {scan, ST-index, MT-index, auto} x {1, 4, 8} threads x {pool off, pool on}
/// and checks every result against the Oracle; optionally repeats a slice
/// of the cube under each FaultPolicy. One runner per seed: it owns the
/// seed's dataset, engine and oracle.
class DifferentialRunner {
 public:
  explicit DifferentialRunner(std::uint64_t seed);

  CaseOutcome RunCase(std::size_t index, const DiffConfig& config = DiffConfig());

  /// Concurrency-differential case: runs the case's query through
  /// {scan, ST, MT, auto} x {1, 4} threads on the main thread while a seeded
  /// mutator thread interleaves Insert/Remove commits. Each result is checked
  /// against the Oracle evaluated at the snapshot version the query pinned
  /// (reconstructed from the mutation log), so any torn read — a query seeing
  /// an appended record without its index entry, a half-condensed tree, a
  /// stale cached plan — shows up as a divergence. The kAuto
  /// signature-stability check of RunCase does not apply here: plans
  /// legitimately change across write epochs. Mutations persist into later
  /// cases (the dataset grows), which is deliberate — successive cases run
  /// against successively mutated states.
  CaseOutcome RunMutateCase(std::size_t index,
                            const MutateConfig& config = MutateConfig());

  /// Batched-execution differential case. Builds a batch of generated specs
  /// (mixed range / k-NN / join kinds, plus seeded verbatim duplicates) and
  /// sweeps ExecuteBatch over {scan, ST, MT, auto} x {1, 4, 8} threads with
  /// the result cache both off and on, diffing every entry three ways:
  /// byte-for-byte against the per-spec sequential Execute() at the same
  /// configuration (the batch executor's exactness contract), against the
  /// Oracle, and — for duplicates — against their in-batch original. Every
  /// batch entry must report the same pinned snapshot version, and a
  /// repeated cache-on batch must serve hits with identical matches.
  /// Optionally repeats a slice under each FaultPolicy (error-or-exact per
  /// entry, clean rerun must match).
  CaseOutcome RunBatchCase(std::size_t index,
                           const BatchConfig& config = BatchConfig());

  /// Concurrency variant of RunBatchCase: a seeded mutator thread commits
  /// Insert/Remove operations while the main thread issues batches across
  /// {scan, ST, MT, auto} x {1, 4} threads (cache off on the first pass, on
  /// for the second). All entries of one batch must pin ONE snapshot
  /// version, successive batches must pin non-decreasing versions, and every
  /// entry is checked against the Oracle replayed at the batch's pinned
  /// version via the mutation log. Mutations persist into later cases.
  CaseOutcome RunBatchMutateCase(std::size_t index,
                                 const BatchConfig& config = BatchConfig());

  /// Crash-recovery differential case. Writes a baseline checkpoint, commits
  /// a few Insert/Remove operations, then for k = 1, 2, ... reruns SaveTo
  /// with a CrashPolicy that aborts the save at its k-th write step — every
  /// torn on-disk state a crash could leave. After each aborted save,
  /// SimilarityEngine::LoadFrom must succeed, and the loaded engine must
  /// answer the case's query exactly as the oracle evaluated at the state
  /// the recovered checkpoint claims (its manifest epoch decides: the
  /// pre-write baseline or the post-write state — never a mix, never a
  /// third answer). The sweep ends at the first k past the save's step
  /// count, where SaveTo completes and the final load must see the new
  /// state. In the outcome, fault_runs counts crash points swept and
  /// fault_errors the aborted saves (they are equal when all crashes fired).
  CaseOutcome RunCheckpointCase(std::size_t index,
                                const CheckpointConfig& config);

  const WorkloadGenerator& generator() const { return generator_; }
  core::SimilarityEngine& engine() { return engine_; }
  const Oracle& oracle() const { return oracle_; }

 private:
  WorkloadGenerator generator_;
  core::SimilarityEngine engine_;
  Oracle oracle_;
};

}  // namespace tsq::testing

#endif  // TSQ_TESTING_DIFFERENTIAL_H_
