#ifndef TSQ_TESTING_DIFFERENTIAL_H_
#define TSQ_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "testing/oracle.h"
#include "testing/workload_generator.h"

namespace tsq::testing {

/// Knobs of one differential sweep.
struct DiffConfig {
  /// Also run the fault sweep: under every FaultPolicy the engine must
  /// either return the exact fault-free result or a non-OK Status, and a
  /// clean rerun afterwards must still match (storage state intact).
  bool with_faults = true;
  /// Relative tolerance for comparing distances / correlations; match
  /// membership itself is exact (thresholds are boundary-free by
  /// construction).
  double tolerance = 1e-6;
  /// Index buffer pool used for the pool-on half of the sweep. Deliberately
  /// tiny so eviction and the coalescing miss path are exercised.
  std::size_t pool_pages = 8;
  std::size_t pool_shards = 2;
};

/// Outcome of one case's sweep.
struct CaseOutcome {
  bool passed = true;
  /// Engine executions compared against the oracle.
  std::size_t runs = 0;
  /// Executions performed with a fault policy installed.
  std::size_t fault_runs = 0;
  /// Of those, how many surfaced a non-OK Status (the rest matched).
  std::size_t fault_errors = 0;
  /// First divergence, self-contained enough to debug from ("config=...,
  /// expected N matches, got M, first diff ...").
  std::string failure;
  std::string description;  // the generated case
};

/// Runs generated cases through the full configuration cube
/// {scan, ST-index, MT-index, auto} x {1, 4, 8} threads x {pool off, pool on}
/// and checks every result against the Oracle; optionally repeats a slice
/// of the cube under each FaultPolicy. One runner per seed: it owns the
/// seed's dataset, engine and oracle.
class DifferentialRunner {
 public:
  explicit DifferentialRunner(std::uint64_t seed);

  CaseOutcome RunCase(std::size_t index, const DiffConfig& config = DiffConfig());

  const WorkloadGenerator& generator() const { return generator_; }
  core::SimilarityEngine& engine() { return engine_; }
  const Oracle& oracle() const { return oracle_; }

 private:
  WorkloadGenerator generator_;
  core::SimilarityEngine engine_;
  Oracle oracle_;
};

}  // namespace tsq::testing

#endif  // TSQ_TESTING_DIFFERENTIAL_H_
