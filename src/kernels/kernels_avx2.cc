// AVX2 variant: one 4-wide register per reduction carries the 4 lanes
// directly, so element i lands in vector lane (i mod 4) and the horizontal
// reduce matches ReduceLanes exactly. The TU is built with -mavx2 -mfma
// -ffp-contract=off; with contraction off the compiler never fuses the
// explicit mul/add intrinsics below, keeping results bitwise identical to
// the scalar reference (see internal.h for the contract).

#include <immintrin.h>

#include "kernels/internal.h"
#include "kernels/kernels.h"

namespace tsq::kernels {

namespace {

using internal::kAbandonCheckElements;
using internal::ReduceLanes;

inline double Reduce(__m256d acc) {
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  return ReduceLanes(lanes);
}

// One transformed complex pair per 128-bit half: re(M*X) = re*mr - im*mi in
// even slots, im(M*X) = im*mr + re*mi in odd slots. _mm256_permute_pd with
// control 0b0101 swaps (re, im) within each pair; addsub subtracts in even
// slots and adds in odd ones — the same op sequence as the scalar reference
// and the SSE2 xor/add emulation.
inline __m256d TransformedQuad(__m256d x, __m256d mre, __m256d mim) {
  const __m256d a = _mm256_mul_pd(x, mre);
  const __m256d b = _mm256_mul_pd(_mm256_permute_pd(x, 0b0101), mim);
  return _mm256_addsub_pd(a, b);
}

// --- squared distance ---

inline void SquaredDistanceBlocks(__m256d& acc, const double* x,
                                  const double* y, std::size_t first,
                                  std::size_t last) {
  for (std::size_t i = first; i < last; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
}

double SquaredDistanceAvx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  SquaredDistanceBlocks(acc, x, y, 0, n4);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  internal::TailSquaredDistance(lanes, x, y, n4, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult SquaredDistanceWithinAvx2(const double* x, const double* y,
                                             std::size_t n, double bound) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    SquaredDistanceBlocks(acc, x, y, i, i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = Reduce(acc);
    if (partial > bound) return {partial, i};
  }
  SquaredDistanceBlocks(acc, x, y, i, n4);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  internal::TailSquaredDistance(lanes, x, y, n4 > i ? n4 : i, n);
  return {ReduceLanes(lanes), n};
}

// --- weighted squared distance ---

inline void WeightedBlocks(__m256d& acc, const double* x, const double* y,
                           const double* w, std::size_t first,
                           std::size_t last) {
  for (std::size_t i = first; i < last; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(w + i), _mm256_mul_pd(d, d)));
  }
}

double WeightedSquaredDistanceAvx2(const double* x, const double* y,
                                   const double* w, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  WeightedBlocks(acc, x, y, w, 0, n4);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  internal::TailWeightedSquaredDistance(lanes, x, y, w, n4, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult WeightedSquaredDistanceWithinAvx2(const double* x,
                                                     const double* y,
                                                     const double* w,
                                                     std::size_t n,
                                                     double bound) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    WeightedBlocks(acc, x, y, w, i, i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = Reduce(acc);
    if (partial > bound) return {partial, i};
  }
  WeightedBlocks(acc, x, y, w, i, n4);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  internal::TailWeightedSquaredDistance(lanes, x, y, w, n4 > i ? n4 : i, n);
  return {ReduceLanes(lanes), n};
}

// --- transformed-to-plain squared distance ---

inline void TransformedToPlainBlocks(__m256d& acc, const double* x,
                                     const double* q, const double* mre,
                                     const double* mim, std::size_t first,
                                     std::size_t last) {
  for (std::size_t i = first; i < last; i += 4) {
    const __m256d p = TransformedQuad(_mm256_loadu_pd(x + i),
                                      _mm256_loadu_pd(mre + i),
                                      _mm256_loadu_pd(mim + i));
    const __m256d d = _mm256_sub_pd(p, _mm256_loadu_pd(q + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
}

double TransformedToPlainAvx2(const double* x, const double* q,
                              const double* mre, const double* mim,
                              std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  TransformedToPlainBlocks(acc, x, q, mre, mim, 0, n4);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  internal::TailTransformedToPlain(lanes, x, q, mre, mim, n4, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult TransformedToPlainWithinAvx2(const double* x,
                                                const double* q,
                                                const double* mre,
                                                const double* mim,
                                                std::size_t n, double bound) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    TransformedToPlainBlocks(acc, x, q, mre, mim, i,
                             i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = Reduce(acc);
    if (partial > bound) return {partial, i};
  }
  TransformedToPlainBlocks(acc, x, q, mre, mim, i, n4);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  internal::TailTransformedToPlain(lanes, x, q, mre, mim, n4 > i ? n4 : i, n);
  return {ReduceLanes(lanes), n};
}

// --- complex pointwise multiply ---

void ComplexPointwiseMultiplyAvx2(const double* x, const double* mre,
                                  const double* mim, double* out,
                                  std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    _mm256_storeu_pd(out + i,
                     TransformedQuad(_mm256_loadu_pd(x + i),
                                     _mm256_loadu_pd(mre + i),
                                     _mm256_loadu_pd(mim + i)));
  }
  internal::TailComplexMultiply(x, mre, mim, out, n4, n);
}

// --- fused correlation sums ---

CorrelationSums CorrelationSumsAvx2(const double* x, const double* y,
                                    std::size_t n, double x_shift,
                                    double y_shift) {
  const __m256d xs = _mm256_set1_pd(x_shift);
  const __m256d ys = _mm256_set1_pd(y_shift);
  __m256d dx_v = _mm256_setzero_pd();
  __m256d dy_v = _mm256_setzero_pd();
  __m256d dxx_v = _mm256_setzero_pd();
  __m256d dyy_v = _mm256_setzero_pd();
  __m256d dxy_v = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), xs);
    const __m256d e = _mm256_sub_pd(_mm256_loadu_pd(y + i), ys);
    dx_v = _mm256_add_pd(dx_v, d);
    dy_v = _mm256_add_pd(dy_v, e);
    dxx_v = _mm256_add_pd(dxx_v, _mm256_mul_pd(d, d));
    dyy_v = _mm256_add_pd(dyy_v, _mm256_mul_pd(e, e));
    dxy_v = _mm256_add_pd(dxy_v, _mm256_mul_pd(d, e));
  }
  double dx[4], dy[4], dxx[4], dyy[4], dxy[4];
  _mm256_storeu_pd(dx, dx_v);
  _mm256_storeu_pd(dy, dy_v);
  _mm256_storeu_pd(dxx, dxx_v);
  _mm256_storeu_pd(dyy, dyy_v);
  _mm256_storeu_pd(dxy, dxy_v);
  internal::TailCorrelationSums(dx, dy, dxx, dyy, dxy, x, y, x_shift, y_shift,
                                n4, n);
  return {ReduceLanes(dx), ReduceLanes(dy), ReduceLanes(dxx),
          ReduceLanes(dyy), ReduceLanes(dxy)};
}

// --- fused weighted dot/energies ---

WeightedDotSums WeightedDotSumsAvx2(const double* x, const double* y,
                                    const double* w, std::size_t n) {
  __m256d dot_v = _mm256_setzero_pd();
  __m256d ex_v = _mm256_setzero_pd();
  __m256d ey_v = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d wv = _mm256_loadu_pd(w + i);
    dot_v = _mm256_add_pd(dot_v, _mm256_mul_pd(wv, _mm256_mul_pd(xv, yv)));
    ex_v = _mm256_add_pd(ex_v, _mm256_mul_pd(wv, _mm256_mul_pd(xv, xv)));
    ey_v = _mm256_add_pd(ey_v, _mm256_mul_pd(wv, _mm256_mul_pd(yv, yv)));
  }
  double dot[4], ex[4], ey[4];
  _mm256_storeu_pd(dot, dot_v);
  _mm256_storeu_pd(ex, ex_v);
  _mm256_storeu_pd(ey, ey_v);
  internal::TailWeightedDotSums(dot, ex, ey, x, y, w, n4, n);
  return {ReduceLanes(dot), ReduceLanes(ex), ReduceLanes(ey)};
}

}  // namespace

const KernelTable& Avx2KernelTable() {
  static const KernelTable table = {
      SquaredDistanceAvx2,
      WeightedSquaredDistanceAvx2,
      TransformedToPlainAvx2,
      SquaredDistanceWithinAvx2,
      WeightedSquaredDistanceWithinAvx2,
      TransformedToPlainWithinAvx2,
      ComplexPointwiseMultiplyAvx2,
      CorrelationSumsAvx2,
      WeightedDotSumsAvx2,
  };
  return table;
}

}  // namespace tsq::kernels
