// Scalar reference variant. This TU is compiled with no arch extensions and
// -ffp-contract=off; it *defines* the numeric contract (4-lane blocked
// reduction, 64-element abandon checkpoints) the SIMD variants must match
// bitwise — see internal.h for the contract and tests/kernels for the
// property suite that enforces it.

#include "kernels/internal.h"
#include "kernels/kernels.h"

namespace tsq::kernels {

namespace {

using internal::kAbandonCheckElements;
using internal::ReduceLanes;

double SquaredDistanceScalar(const double* x, const double* y,
                             std::size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  internal::TailSquaredDistance(lanes, x, y, 0, n);
  return ReduceLanes(lanes);
}

double WeightedSquaredDistanceScalar(const double* x, const double* y,
                                     const double* w, std::size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  internal::TailWeightedSquaredDistance(lanes, x, y, w, 0, n);
  return ReduceLanes(lanes);
}

double TransformedToPlainScalar(const double* x, const double* q,
                                const double* mul_re, const double* mul_im,
                                std::size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  internal::TailTransformedToPlain(lanes, x, q, mul_re, mul_im, 0, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult SquaredDistanceWithinScalar(const double* x,
                                               const double* y, std::size_t n,
                                               double bound) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    internal::TailSquaredDistance(lanes, x, y, i, i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = ReduceLanes(lanes);
    if (partial > bound) return {partial, i};
  }
  internal::TailSquaredDistance(lanes, x, y, i, n);
  return {ReduceLanes(lanes), n};
}

EarlyAbandonResult WeightedSquaredDistanceWithinScalar(const double* x,
                                                       const double* y,
                                                       const double* w,
                                                       std::size_t n,
                                                       double bound) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    internal::TailWeightedSquaredDistance(lanes, x, y, w, i,
                                          i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = ReduceLanes(lanes);
    if (partial > bound) return {partial, i};
  }
  internal::TailWeightedSquaredDistance(lanes, x, y, w, i, n);
  return {ReduceLanes(lanes), n};
}

EarlyAbandonResult TransformedToPlainWithinScalar(const double* x,
                                                  const double* q,
                                                  const double* mul_re,
                                                  const double* mul_im,
                                                  std::size_t n,
                                                  double bound) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    internal::TailTransformedToPlain(lanes, x, q, mul_re, mul_im, i,
                                     i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = ReduceLanes(lanes);
    if (partial > bound) return {partial, i};
  }
  internal::TailTransformedToPlain(lanes, x, q, mul_re, mul_im, i, n);
  return {ReduceLanes(lanes), n};
}

void ComplexPointwiseMultiplyScalar(const double* x, const double* mul_re,
                                    const double* mul_im, double* out,
                                    std::size_t n) {
  internal::TailComplexMultiply(x, mul_re, mul_im, out, 0, n);
}

CorrelationSums CorrelationSumsScalar(const double* x, const double* y,
                                      std::size_t n, double x_shift,
                                      double y_shift) {
  double dx[4] = {0.0, 0.0, 0.0, 0.0};
  double dy[4] = {0.0, 0.0, 0.0, 0.0};
  double dxx[4] = {0.0, 0.0, 0.0, 0.0};
  double dyy[4] = {0.0, 0.0, 0.0, 0.0};
  double dxy[4] = {0.0, 0.0, 0.0, 0.0};
  internal::TailCorrelationSums(dx, dy, dxx, dyy, dxy, x, y, x_shift, y_shift,
                                0, n);
  return {ReduceLanes(dx), ReduceLanes(dy), ReduceLanes(dxx),
          ReduceLanes(dyy), ReduceLanes(dxy)};
}

WeightedDotSums WeightedDotSumsScalar(const double* x, const double* y,
                                      const double* w, std::size_t n) {
  double dot[4] = {0.0, 0.0, 0.0, 0.0};
  double ex[4] = {0.0, 0.0, 0.0, 0.0};
  double ey[4] = {0.0, 0.0, 0.0, 0.0};
  internal::TailWeightedDotSums(dot, ex, ey, x, y, w, 0, n);
  return {ReduceLanes(dot), ReduceLanes(ex), ReduceLanes(ey)};
}

}  // namespace

const KernelTable& ScalarKernelTable() {
  static const KernelTable table = {
      SquaredDistanceScalar,
      WeightedSquaredDistanceScalar,
      TransformedToPlainScalar,
      SquaredDistanceWithinScalar,
      WeightedSquaredDistanceWithinScalar,
      TransformedToPlainWithinScalar,
      ComplexPointwiseMultiplyScalar,
      CorrelationSumsScalar,
      WeightedDotSumsScalar,
  };
  return table;
}

}  // namespace tsq::kernels
