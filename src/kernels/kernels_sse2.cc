// SSE2 variant: the 4-lane blocked reduction is carried in two 2-wide
// registers — acc01 holds lanes {0,1} (elements 4b, 4b+1), acc23 lanes
// {2,3}. SSE2 lacks addsub, so complex multiplies compute both a-b and a+b
// and blend with a shuffle; a real subtraction (not the xor-sign/add idiom,
// which flips the sign bit of a propagated NaN) is required for bitwise
// identity with the scalar reference and the AVX2 addsub path on NaN
// inputs. Compiled with -msse2 -ffp-contract=off (see internal.h).

#include <emmintrin.h>

#include "kernels/internal.h"
#include "kernels/kernels.h"

namespace tsq::kernels {

namespace {

using internal::kAbandonCheckElements;
using internal::ReduceLanes;

inline void StoreLanes(double lanes[4], __m128d acc01, __m128d acc23) {
  _mm_storeu_pd(lanes, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
}

inline double Reduce(__m128d acc01, __m128d acc23) {
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  return ReduceLanes(lanes);
}

// One transformed complex component pair: re(M*X), im(M*X) for the complex
// value in `x` (interleaved), multiplier components in `mre`/`mim`. The
// even (re) slot needs a - b, the odd (im) slot a + b; compute both and
// blend {sub[0], add[1]} so each slot runs the exact IEEE operation the
// scalar reference runs (NaNs propagate with identical bit patterns).
inline __m128d TransformedPair(__m128d x, __m128d mre, __m128d mim) {
  const __m128d a = _mm_mul_pd(x, mre);
  const __m128d swapped = _mm_shuffle_pd(x, x, 0b01);
  const __m128d b = _mm_mul_pd(swapped, mim);
  const __m128d sub = _mm_sub_pd(a, b);
  const __m128d add = _mm_add_pd(a, b);
  return _mm_shuffle_pd(sub, add, 0b10);
}

// --- squared distance ---

inline void SquaredDistanceBlocks(__m128d& acc01, __m128d& acc23,
                                  const double* x, const double* y,
                                  std::size_t first, std::size_t last) {
  for (std::size_t i = first; i < last; i += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d0, d0));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d1, d1));
  }
}

double SquaredDistanceSse2(const double* x, const double* y, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  SquaredDistanceBlocks(acc01, acc23, x, y, 0, n4);
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  internal::TailSquaredDistance(lanes, x, y, n4, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult SquaredDistanceWithinSse2(const double* x, const double* y,
                                             std::size_t n, double bound) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    SquaredDistanceBlocks(acc01, acc23, x, y, i, i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = Reduce(acc01, acc23);
    if (partial > bound) return {partial, i};
  }
  SquaredDistanceBlocks(acc01, acc23, x, y, i, n4);
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  internal::TailSquaredDistance(lanes, x, y, n4 > i ? n4 : i, n);
  return {ReduceLanes(lanes), n};
}

// --- weighted squared distance ---

inline void WeightedBlocks(__m128d& acc01, __m128d& acc23, const double* x,
                           const double* y, const double* w, std::size_t first,
                           std::size_t last) {
  for (std::size_t i = first; i < last; i += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2));
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_loadu_pd(w + i), _mm_mul_pd(d0, d0)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(w + i + 2), _mm_mul_pd(d1, d1)));
  }
}

double WeightedSquaredDistanceSse2(const double* x, const double* y,
                                   const double* w, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  WeightedBlocks(acc01, acc23, x, y, w, 0, n4);
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  internal::TailWeightedSquaredDistance(lanes, x, y, w, n4, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult WeightedSquaredDistanceWithinSse2(const double* x,
                                                     const double* y,
                                                     const double* w,
                                                     std::size_t n,
                                                     double bound) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    WeightedBlocks(acc01, acc23, x, y, w, i, i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = Reduce(acc01, acc23);
    if (partial > bound) return {partial, i};
  }
  WeightedBlocks(acc01, acc23, x, y, w, i, n4);
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  internal::TailWeightedSquaredDistance(lanes, x, y, w, n4 > i ? n4 : i, n);
  return {ReduceLanes(lanes), n};
}

// --- transformed-to-plain squared distance ---

inline void TransformedToPlainBlocks(__m128d& acc01, __m128d& acc23,
                                     const double* x, const double* q,
                                     const double* mre, const double* mim,
                                     std::size_t first, std::size_t last) {
  for (std::size_t i = first; i < last; i += 4) {
    const __m128d p0 = TransformedPair(_mm_loadu_pd(x + i),
                                       _mm_loadu_pd(mre + i),
                                       _mm_loadu_pd(mim + i));
    const __m128d p1 = TransformedPair(_mm_loadu_pd(x + i + 2),
                                       _mm_loadu_pd(mre + i + 2),
                                       _mm_loadu_pd(mim + i + 2));
    const __m128d d0 = _mm_sub_pd(p0, _mm_loadu_pd(q + i));
    const __m128d d1 = _mm_sub_pd(p1, _mm_loadu_pd(q + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d0, d0));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d1, d1));
  }
}

double TransformedToPlainSse2(const double* x, const double* q,
                              const double* mre, const double* mim,
                              std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  TransformedToPlainBlocks(acc01, acc23, x, q, mre, mim, 0, n4);
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  internal::TailTransformedToPlain(lanes, x, q, mre, mim, n4, n);
  return ReduceLanes(lanes);
}

EarlyAbandonResult TransformedToPlainWithinSse2(const double* x,
                                                const double* q,
                                                const double* mre,
                                                const double* mim,
                                                std::size_t n, double bound) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  while (i + kAbandonCheckElements <= n) {
    TransformedToPlainBlocks(acc01, acc23, x, q, mre, mim, i,
                             i + kAbandonCheckElements);
    i += kAbandonCheckElements;
    const double partial = Reduce(acc01, acc23);
    if (partial > bound) return {partial, i};
  }
  TransformedToPlainBlocks(acc01, acc23, x, q, mre, mim, i, n4);
  double lanes[4];
  StoreLanes(lanes, acc01, acc23);
  internal::TailTransformedToPlain(lanes, x, q, mre, mim, n4 > i ? n4 : i, n);
  return {ReduceLanes(lanes), n};
}

// --- complex pointwise multiply ---

void ComplexPointwiseMultiplySse2(const double* x, const double* mre,
                                  const double* mim, double* out,
                                  std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    _mm_storeu_pd(out + i,
                  TransformedPair(_mm_loadu_pd(x + i), _mm_loadu_pd(mre + i),
                                  _mm_loadu_pd(mim + i)));
  }
  internal::TailComplexMultiply(x, mre, mim, out, n2, n);
}

// --- fused correlation sums ---

CorrelationSums CorrelationSumsSse2(const double* x, const double* y,
                                    std::size_t n, double x_shift,
                                    double y_shift) {
  const __m128d xs = _mm_set1_pd(x_shift);
  const __m128d ys = _mm_set1_pd(y_shift);
  __m128d dx01 = _mm_setzero_pd(), dx23 = _mm_setzero_pd();
  __m128d dy01 = _mm_setzero_pd(), dy23 = _mm_setzero_pd();
  __m128d dxx01 = _mm_setzero_pd(), dxx23 = _mm_setzero_pd();
  __m128d dyy01 = _mm_setzero_pd(), dyy23 = _mm_setzero_pd();
  __m128d dxy01 = _mm_setzero_pd(), dxy23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(x + i), xs);
    const __m128d d1 = _mm_sub_pd(_mm_loadu_pd(x + i + 2), xs);
    const __m128d e0 = _mm_sub_pd(_mm_loadu_pd(y + i), ys);
    const __m128d e1 = _mm_sub_pd(_mm_loadu_pd(y + i + 2), ys);
    dx01 = _mm_add_pd(dx01, d0);
    dx23 = _mm_add_pd(dx23, d1);
    dy01 = _mm_add_pd(dy01, e0);
    dy23 = _mm_add_pd(dy23, e1);
    dxx01 = _mm_add_pd(dxx01, _mm_mul_pd(d0, d0));
    dxx23 = _mm_add_pd(dxx23, _mm_mul_pd(d1, d1));
    dyy01 = _mm_add_pd(dyy01, _mm_mul_pd(e0, e0));
    dyy23 = _mm_add_pd(dyy23, _mm_mul_pd(e1, e1));
    dxy01 = _mm_add_pd(dxy01, _mm_mul_pd(d0, e0));
    dxy23 = _mm_add_pd(dxy23, _mm_mul_pd(d1, e1));
  }
  double dx[4], dy[4], dxx[4], dyy[4], dxy[4];
  StoreLanes(dx, dx01, dx23);
  StoreLanes(dy, dy01, dy23);
  StoreLanes(dxx, dxx01, dxx23);
  StoreLanes(dyy, dyy01, dyy23);
  StoreLanes(dxy, dxy01, dxy23);
  internal::TailCorrelationSums(dx, dy, dxx, dyy, dxy, x, y, x_shift, y_shift,
                                n4, n);
  return {ReduceLanes(dx), ReduceLanes(dy), ReduceLanes(dxx),
          ReduceLanes(dyy), ReduceLanes(dxy)};
}

// --- fused weighted dot/energies ---

WeightedDotSums WeightedDotSumsSse2(const double* x, const double* y,
                                    const double* w, std::size_t n) {
  __m128d dot01 = _mm_setzero_pd(), dot23 = _mm_setzero_pd();
  __m128d ex01 = _mm_setzero_pd(), ex23 = _mm_setzero_pd();
  __m128d ey01 = _mm_setzero_pd(), ey23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128d x0 = _mm_loadu_pd(x + i), x1 = _mm_loadu_pd(x + i + 2);
    const __m128d y0 = _mm_loadu_pd(y + i), y1 = _mm_loadu_pd(y + i + 2);
    const __m128d w0 = _mm_loadu_pd(w + i), w1 = _mm_loadu_pd(w + i + 2);
    dot01 = _mm_add_pd(dot01, _mm_mul_pd(w0, _mm_mul_pd(x0, y0)));
    dot23 = _mm_add_pd(dot23, _mm_mul_pd(w1, _mm_mul_pd(x1, y1)));
    ex01 = _mm_add_pd(ex01, _mm_mul_pd(w0, _mm_mul_pd(x0, x0)));
    ex23 = _mm_add_pd(ex23, _mm_mul_pd(w1, _mm_mul_pd(x1, x1)));
    ey01 = _mm_add_pd(ey01, _mm_mul_pd(w0, _mm_mul_pd(y0, y0)));
    ey23 = _mm_add_pd(ey23, _mm_mul_pd(w1, _mm_mul_pd(y1, y1)));
  }
  double dot[4], ex[4], ey[4];
  StoreLanes(dot, dot01, dot23);
  StoreLanes(ex, ex01, ex23);
  StoreLanes(ey, ey01, ey23);
  internal::TailWeightedDotSums(dot, ex, ey, x, y, w, n4, n);
  return {ReduceLanes(dot), ReduceLanes(ex), ReduceLanes(ey)};
}

}  // namespace

const KernelTable& Sse2KernelTable() {
  static const KernelTable table = {
      SquaredDistanceSse2,
      WeightedSquaredDistanceSse2,
      TransformedToPlainSse2,
      SquaredDistanceWithinSse2,
      WeightedSquaredDistanceWithinSse2,
      TransformedToPlainWithinSse2,
      ComplexPointwiseMultiplySse2,
      CorrelationSumsSse2,
      WeightedDotSumsSse2,
  };
  return table;
}

}  // namespace tsq::kernels
