#ifndef TSQ_KERNELS_KERNELS_H_
#define TSQ_KERNELS_KERNELS_H_

#include <cstddef>
#include <span>

namespace tsq::kernels {

/// The instruction sets the kernel layer can dispatch to. Every variant of
/// every kernel — including the scalar reference — computes the same fixed
/// 4-lane blocked reduction (element i accumulates into lane i mod 4, lanes
/// folded as (L0+L2) + (L1+L3), no fused multiply-add anywhere), so results
/// are **bitwise identical** across ISAs. Switching the active ISA can never
/// change a query result, only its speed.
enum class Isa : int {
  kScalar = 0,  ///< portable reference, compiled without arch extensions
  kSse2 = 1,    ///< 2×2-wide SSE2 (x86-64 baseline)
  kAvx2 = 2,    ///< 4-wide AVX2 (TU built with -mavx2 -mfma)
};
inline constexpr int kIsaCount = 3;

/// Stable lowercase name ("scalar", "sse2", "avx2") used by traces, metrics
/// and the TSQ_KERNEL_ISA environment variable.
const char* IsaName(Isa isa);

/// True when this build + this CPU can run the variant. kScalar is always
/// supported; kSse2/kAvx2 require an x86-64 build and, for AVX2, CPUID
/// confirmation of AVX2+FMA.
bool IsaSupported(Isa isa);

/// The fastest supported variant on this machine.
Isa BestSupportedIsa();

/// Pure resolution rule used at startup (exposed for unit tests):
/// env_value "scalar"/"sse2"/"avx2" selects that variant when supported;
/// nullptr, "", "auto", unknown strings, and unsupported requests all fall
/// back to `best_supported`.
Isa ResolveIsa(const char* env_value, Isa best_supported);

/// The variant every dispatched entry point below uses. Resolved once, on
/// first use, from TSQ_KERNEL_ISA and CPUID; stamped into the
/// `engine.kernels.isa` gauge and every QueryTrace.
Isa ActiveIsa();

/// Overrides the active variant (tests and benchmarks only — e.g. measuring
/// scalar-vs-SIMD verification phases in one process). Aborts if `isa` is
/// not supported. Results are bitwise unaffected by construction.
void ForceIsaForTesting(Isa isa);

/// Result of an early-abandoning reduction. `value` is the exact full sum
/// when `consumed == n` (no abandon); when `consumed < n` the kernel stopped
/// at a 64-element checkpoint whose partial sum already exceeded the bound —
/// `value` is that partial sum, a lower bound of the true result, and
/// `value > bound` holds. Abandon checks are strict (`partial > bound`), so
/// a full sum exactly equal to the bound is never abandoned.
struct EarlyAbandonResult {
  double value = 0.0;
  std::size_t consumed = 0;
};

/// Accumulated sums of the fused correlation pass over shifted values
/// d_i = x_i - x_shift, e_i = y_i - y_shift.
struct CorrelationSums {
  double dx = 0.0;   ///< sum d_i
  double dy = 0.0;   ///< sum e_i
  double dxx = 0.0;  ///< sum d_i^2
  double dyy = 0.0;  ///< sum e_i^2
  double dxy = 0.0;  ///< sum d_i * e_i
};

/// Accumulated sums of the fused weighted dot/energy pass:
/// dot = sum w_i x_i y_i, energy_x = sum w_i x_i^2, energy_y = sum w_i y_i^2.
struct WeightedDotSums {
  double dot = 0.0;
  double energy_x = 0.0;
  double energy_y = 0.0;
};

/// One ISA variant's raw kernel implementations. All pointers take raw
/// double arrays (complex data is passed as its interleaved re,im doubles —
/// `n` always counts doubles, so a length-m complex vector passes n = 2m).
/// `mul_re`/`mul_im` are the *component-duplicated* multiplier arrays
/// ([re0, re0, re1, re1, ...]) cached by transform::SpectralTransform.
struct KernelTable {
  double (*squared_distance)(const double* x, const double* y, std::size_t n);
  double (*weighted_squared_distance)(const double* x, const double* y,
                                      const double* w, std::size_t n);
  double (*transformed_to_plain)(const double* x, const double* q,
                                 const double* mul_re, const double* mul_im,
                                 std::size_t n);
  EarlyAbandonResult (*squared_distance_within)(const double* x,
                                                const double* y,
                                                std::size_t n, double bound);
  EarlyAbandonResult (*weighted_squared_distance_within)(const double* x,
                                                         const double* y,
                                                         const double* w,
                                                         std::size_t n,
                                                         double bound);
  EarlyAbandonResult (*transformed_to_plain_within)(const double* x,
                                                    const double* q,
                                                    const double* mul_re,
                                                    const double* mul_im,
                                                    std::size_t n,
                                                    double bound);
  void (*complex_pointwise_multiply)(const double* x, const double* mul_re,
                                     const double* mul_im, double* out,
                                     std::size_t n);
  CorrelationSums (*correlation_sums)(const double* x, const double* y,
                                      std::size_t n, double x_shift,
                                      double y_shift);
  WeightedDotSums (*weighted_dot_sums)(const double* x, const double* y,
                                       const double* w, std::size_t n);
};

/// The raw table of one variant (aborts if unsupported). Tests use this to
/// compare variants bitwise without touching the process-wide dispatch.
const KernelTable& TableFor(Isa isa);

// ---------------------------------------------------------------------------
// Dispatched entry points. These are what production code calls: they route
// through the active variant and maintain the engine.kernels.* metrics
// (calls, elements processed, early abandons).
// ---------------------------------------------------------------------------

/// sum_i (x_i - y_i)^2. Requires x.size() == y.size().
double SquaredDistance(std::span<const double> x, std::span<const double> y);

/// Early-abandoning SquaredDistance: returns the exact distance when it is
/// <= bound (and often when slightly above); any return value > bound means
/// "no match", whether exact or abandoned partial. See EarlyAbandonResult
/// for the contract.
double SquaredDistanceWithin(std::span<const double> x,
                             std::span<const double> y, double bound);

/// sum_i w_i * (x_i - y_i)^2 — Eq. 12 with precomputed |M_f|^2 weights when
/// called on interleaved complex components with duplicated weights.
double WeightedSquaredDistance(std::span<const double> x,
                               std::span<const double> y,
                               std::span<const double> w);

double WeightedSquaredDistanceWithin(std::span<const double> x,
                                     std::span<const double> y,
                                     std::span<const double> w, double bound);

/// sum_f |M_f * X_f - Q_f|^2 over interleaved complex doubles, with the
/// multiplier passed as duplicated component arrays.
double TransformedToPlainSquaredDistance(std::span<const double> x,
                                         std::span<const double> q,
                                         std::span<const double> mul_re,
                                         std::span<const double> mul_im);

double TransformedToPlainSquaredDistanceWithin(std::span<const double> x,
                                               std::span<const double> q,
                                               std::span<const double> mul_re,
                                               std::span<const double> mul_im,
                                               double bound);

/// out_f = M_f * X_f over interleaved complex doubles (spectrum×multiplier
/// application, Eq. 5). `out` may not alias `x`.
void ComplexPointwiseMultiply(std::span<const double> x,
                              std::span<const double> mul_re,
                              std::span<const double> mul_im,
                              std::span<double> out);

/// Fused single-pass statistics for time-domain cross-correlation: sums of
/// shifted values, their squares and cross products (see CorrelationSums).
/// Shifting by a data value (typically x[0], y[0]) keeps the sums
/// well-conditioned for large-mean/tiny-variance inputs.
CorrelationSums ShiftedCorrelationSums(std::span<const double> x,
                                       std::span<const double> y,
                                       double x_shift, double y_shift);

/// Fused weighted dot + energies in one pass (frequency-domain correlation).
WeightedDotSums WeightedDotEnergies(std::span<const double> x,
                                    std::span<const double> y,
                                    std::span<const double> w);

}  // namespace tsq::kernels

#endif  // TSQ_KERNELS_KERNELS_H_
