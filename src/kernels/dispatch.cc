// Runtime dispatch: the active ISA is resolved once (TSQ_KERNEL_ISA, then
// CPUID) and cached in an atomic; every dispatched entry point routes through
// the selected variant's table and maintains the engine.kernels.* metrics.
// Because all variants are bitwise identical (see internal.h), the choice is
// purely a speed decision and is excluded from deterministic signatures.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "kernels/internal.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"

namespace tsq::kernels {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kX86Build = true;
#else
constexpr bool kX86Build = false;
#endif

struct KernelMetrics {
  obs::Counter* calls;
  obs::Counter* elements;
  obs::Counter* early_abandons;
  obs::Gauge* isa;
};

KernelMetrics& Metrics() {
  static KernelMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return KernelMetrics{reg.counter("engine.kernels.calls"),
                         reg.counter("engine.kernels.elements"),
                         reg.counter("engine.kernels.early_abandons"),
                         reg.gauge("engine.kernels.isa")};
  }();
  return m;
}

inline void Count(std::size_t elements) {
  KernelMetrics& m = Metrics();
  m.calls->Increment();
  m.elements->Increment(elements);
}

// kScalar + 1 etc.; 0 means "not yet resolved".
std::atomic<int> g_active{0};

Isa ResolveActiveIsa() {
  const Isa isa = ResolveIsa(std::getenv("TSQ_KERNEL_ISA"), BestSupportedIsa());
  Metrics().isa->Set(static_cast<std::int64_t>(isa));
  return isa;
}

inline const KernelTable& ActiveTable() {
  return TableFor(ActiveIsa());
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return kX86Build;  // SSE2 is the x86-64 baseline.
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
  }
  return false;
}

Isa BestSupportedIsa() {
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaSupported(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

Isa ResolveIsa(const char* env_value, Isa best_supported) {
  if (env_value == nullptr || *env_value == '\0' ||
      std::strcmp(env_value, "auto") == 0) {
    return best_supported;
  }
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (std::strcmp(env_value, IsaName(isa)) == 0) {
      // Pure function of the arguments: variants are ordered, so a request
      // is satisfiable exactly when it does not exceed best_supported.
      return static_cast<int>(isa) <= static_cast<int>(best_supported)
                 ? isa
                 : best_supported;
    }
  }
  return best_supported;
}

Isa ActiveIsa() {
  int packed = g_active.load(std::memory_order_acquire);
  if (packed == 0) {
    const Isa resolved = ResolveActiveIsa();
    packed = static_cast<int>(resolved) + 1;
    int expected = 0;
    // Racing first callers resolve identically (pure function of env+CPU),
    // so whoever wins the CAS is equivalent.
    g_active.compare_exchange_strong(expected, packed,
                                     std::memory_order_acq_rel);
  }
  return static_cast<Isa>(packed - 1);
}

void ForceIsaForTesting(Isa isa) {
  TSQ_CHECK(IsaSupported(isa))
      << "cannot force unsupported kernel ISA " << IsaName(isa);
  g_active.store(static_cast<int>(isa) + 1, std::memory_order_release);
  Metrics().isa->Set(static_cast<std::int64_t>(isa));
}

const KernelTable& TableFor(Isa isa) {
  TSQ_CHECK(IsaSupported(isa))
      << "kernel ISA " << IsaName(isa) << " not supported on this machine";
  switch (isa) {
    case Isa::kScalar:
      return ScalarKernelTable();
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return Sse2KernelTable();
    case Isa::kAvx2:
      return Avx2KernelTable();
#else
    default:
      break;
#endif
  }
  return ScalarKernelTable();
}

double SquaredDistance(std::span<const double> x, std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  Count(x.size());
  return ActiveTable().squared_distance(x.data(), y.data(), x.size());
}

double SquaredDistanceWithin(std::span<const double> x,
                             std::span<const double> y, double bound) {
  TSQ_CHECK_EQ(x.size(), y.size());
  const EarlyAbandonResult r =
      ActiveTable().squared_distance_within(x.data(), y.data(), x.size(),
                                            bound);
  Count(r.consumed);
  if (r.consumed < x.size()) Metrics().early_abandons->Increment();
  return r.value;
}

double WeightedSquaredDistance(std::span<const double> x,
                               std::span<const double> y,
                               std::span<const double> w) {
  TSQ_CHECK_EQ(x.size(), y.size());
  TSQ_CHECK_EQ(x.size(), w.size());
  Count(x.size());
  return ActiveTable().weighted_squared_distance(x.data(), y.data(), w.data(),
                                                 x.size());
}

double WeightedSquaredDistanceWithin(std::span<const double> x,
                                     std::span<const double> y,
                                     std::span<const double> w, double bound) {
  TSQ_CHECK_EQ(x.size(), y.size());
  TSQ_CHECK_EQ(x.size(), w.size());
  const EarlyAbandonResult r = ActiveTable().weighted_squared_distance_within(
      x.data(), y.data(), w.data(), x.size(), bound);
  Count(r.consumed);
  if (r.consumed < x.size()) Metrics().early_abandons->Increment();
  return r.value;
}

double TransformedToPlainSquaredDistance(std::span<const double> x,
                                         std::span<const double> q,
                                         std::span<const double> mul_re,
                                         std::span<const double> mul_im) {
  TSQ_CHECK_EQ(x.size(), q.size());
  TSQ_CHECK_EQ(x.size(), mul_re.size());
  TSQ_CHECK_EQ(x.size(), mul_im.size());
  Count(x.size());
  return ActiveTable().transformed_to_plain(x.data(), q.data(), mul_re.data(),
                                            mul_im.data(), x.size());
}

double TransformedToPlainSquaredDistanceWithin(std::span<const double> x,
                                               std::span<const double> q,
                                               std::span<const double> mul_re,
                                               std::span<const double> mul_im,
                                               double bound) {
  TSQ_CHECK_EQ(x.size(), q.size());
  TSQ_CHECK_EQ(x.size(), mul_re.size());
  TSQ_CHECK_EQ(x.size(), mul_im.size());
  const EarlyAbandonResult r = ActiveTable().transformed_to_plain_within(
      x.data(), q.data(), mul_re.data(), mul_im.data(), x.size(), bound);
  Count(r.consumed);
  if (r.consumed < x.size()) Metrics().early_abandons->Increment();
  return r.value;
}

void ComplexPointwiseMultiply(std::span<const double> x,
                              std::span<const double> mul_re,
                              std::span<const double> mul_im,
                              std::span<double> out) {
  TSQ_CHECK_EQ(x.size(), mul_re.size());
  TSQ_CHECK_EQ(x.size(), mul_im.size());
  TSQ_CHECK_EQ(x.size(), out.size());
  Count(x.size());
  ActiveTable().complex_pointwise_multiply(x.data(), mul_re.data(),
                                           mul_im.data(), out.data(),
                                           x.size());
}

CorrelationSums ShiftedCorrelationSums(std::span<const double> x,
                                       std::span<const double> y,
                                       double x_shift, double y_shift) {
  TSQ_CHECK_EQ(x.size(), y.size());
  Count(x.size());
  return ActiveTable().correlation_sums(x.data(), y.data(), x.size(), x_shift,
                                        y_shift);
}

WeightedDotSums WeightedDotEnergies(std::span<const double> x,
                                    std::span<const double> y,
                                    std::span<const double> w) {
  TSQ_CHECK_EQ(x.size(), y.size());
  TSQ_CHECK_EQ(x.size(), w.size());
  Count(x.size());
  return ActiveTable().weighted_dot_sums(x.data(), y.data(), w.data(),
                                         x.size());
}

}  // namespace tsq::kernels
