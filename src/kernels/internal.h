#ifndef TSQ_KERNELS_INTERNAL_H_
#define TSQ_KERNELS_INTERNAL_H_

#include <cstddef>

#include "kernels/kernels.h"

// Shared building blocks of the kernel variants. Every TU that includes this
// header is compiled with -ffp-contract=off, so the scalar arithmetic below
// produces identical bit patterns whatever arch flags the enclosing TU uses
// — plain IEEE-754 add/sub/mul are fully determined by their operands.
//
// The determinism contract, implemented identically by every variant:
//   * element i accumulates into lane (i mod 4);
//   * the final result is (L0 + L2) + (L1 + L3) — exactly the horizontal
//     reduction a 4-wide vector (or a pair of 2-wide vectors) performs;
//   * early-abandoning kernels test the partial reduction strictly
//     (`partial > bound`) after every full 64-element chunk of the blocked
//     region, never inside a chunk and never in the scalar tail;
//   * no fused multiply-add anywhere (FMA rounds once where mul+add rounds
//     twice, which would make results ISA-dependent).
//
// SIMD variants run the blocked region with vectors and then feed their
// lanes through the same Tail* helpers for the last n mod 4 elements, so
// scalar and SIMD results agree bitwise — including for NaN, infinity and
// denormal inputs, which propagate through identical op sequences.

namespace tsq::kernels::internal {

/// Elements per early-abandon checkpoint. A multiple of 4 (the lane block)
/// so checkpoints land on identical element positions in every variant.
inline constexpr std::size_t kAbandonCheckElements = 64;

inline double ReduceLanes(const double lanes[4]) {
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

// --- per-kernel element loops over [first, last), lane = index mod 4 ---

inline void TailSquaredDistance(double lanes[4], const double* x,
                                const double* y, std::size_t first,
                                std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const double d = x[i] - y[i];
    lanes[i & 3] += d * d;
  }
}

inline void TailWeightedSquaredDistance(double lanes[4], const double* x,
                                        const double* y, const double* w,
                                        std::size_t first, std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const double d = x[i] - y[i];
    lanes[i & 3] += w[i] * (d * d);
  }
}

// One transformed-minus-query component: x holds interleaved (re, im)
// doubles, mul_re/mul_im are component-duplicated multiplier arrays. Even
// components compute re(M*X) = re*mr - im*mi, odd ones im(M*X) = im*mr +
// re*mi; the partner component is x[i ^ 1]. This is exactly the
// multiply/swap-multiply/addsub sequence the vector variants execute.
inline double TransformedComponent(const double* x, const double* mul_re,
                                   const double* mul_im, std::size_t i) {
  const double a = x[i] * mul_re[i];
  const double b = x[i ^ 1] * mul_im[i];
  return (i & 1) == 0 ? a - b : a + b;
}

inline void TailTransformedToPlain(double lanes[4], const double* x,
                                   const double* q, const double* mul_re,
                                   const double* mul_im, std::size_t first,
                                   std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const double d = TransformedComponent(x, mul_re, mul_im, i) - q[i];
    lanes[i & 3] += d * d;
  }
}

inline void TailComplexMultiply(const double* x, const double* mul_re,
                                const double* mul_im, double* out,
                                std::size_t first, std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    out[i] = TransformedComponent(x, mul_re, mul_im, i);
  }
}

inline void TailCorrelationSums(double dx[4], double dy[4], double dxx[4],
                                double dyy[4], double dxy[4], const double* x,
                                const double* y, double x_shift,
                                double y_shift, std::size_t first,
                                std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const double d = x[i] - x_shift;
    const double e = y[i] - y_shift;
    const std::size_t lane = i & 3;
    dx[lane] += d;
    dy[lane] += e;
    dxx[lane] += d * d;
    dyy[lane] += e * e;
    dxy[lane] += d * e;
  }
}

inline void TailWeightedDotSums(double dot[4], double ex[4], double ey[4],
                                const double* x, const double* y,
                                const double* w, std::size_t first,
                                std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const std::size_t lane = i & 3;
    dot[lane] += w[i] * (x[i] * y[i]);
    ex[lane] += w[i] * (x[i] * x[i]);
    ey[lane] += w[i] * (y[i] * y[i]);
  }
}

}  // namespace tsq::kernels::internal

namespace tsq::kernels {

/// Raw variant tables, one per TU. Sse2/Avx2 are only compiled (and only
/// referenced by dispatch.cc) on x86-64 builds.
const KernelTable& ScalarKernelTable();
const KernelTable& Sse2KernelTable();
const KernelTable& Avx2KernelTable();

}  // namespace tsq::kernels

#endif  // TSQ_KERNELS_INTERNAL_H_
