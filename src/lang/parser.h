#ifndef TSQ_LANG_PARSER_H_
#define TSQ_LANG_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tsq::lang {

/// Abstract syntax of the tsq query language.
///
/// Grammar (case-insensitive keywords):
///
///   query     := rangeQuery | knnQuery | joinQuery
///   rangeQuery:= FIND SIMILAR TO ref UNDER pipelines threshold options*
///   knnQuery  := FIND NUM NEAREST TO ref UNDER pipelines options*
///   joinQuery := FIND PAIRS UNDER pipelines threshold options*
///   ref       := SERIES NUM
///   pipelines := pipeline (',' pipeline)*
///   pipeline  := factor (THEN factor)*        -- Eq. 11 composition
///   factor    := IDENT [ '(' arg (',' arg)* ')' ]
///   arg       := NUM | NUM '..' NUM [ ':' NUM ]   -- range with step
///   threshold := WITHIN (DISTANCE NUM | CORRELATION NUM)
///   options   := USING (AUTO | MT | ST | SCAN)
///              | APPLY (BOTH | DATA)
///              | GROUPS NUM | PER_MBR NUM | CLUSTERED
///              | ORDERED
///
/// Examples:
///   find similar to series 17 under mv(1..40) within correlation 0.96
///   find 5 nearest to series 3 under momentum then shift(0..10) apply data
///   find pairs under mv(5..14) within correlation 0.99 using mt

/// One argument of a transform factor: a scalar or an inclusive range.
struct Arg {
  double lo = 0.0;
  double hi = 0.0;
  double step = 1.0;
  bool is_range = false;
};

/// A transform factor, e.g. mv(1..40) or momentum.
struct Factor {
  std::string name;
  std::vector<Arg> args;
  std::size_t position = 0;
};

/// A THEN-pipeline of factors (applied left to right).
using Pipeline = std::vector<Factor>;

enum class QueryKind { kRange, kKnn, kJoin };
enum class ThresholdKind { kNone, kDistance, kCorrelation };
/// kDefault and kAuto both compile to Algorithm::kAuto (the planner); the
/// explicit spelling exists so scripts can say what they mean.
enum class AlgorithmChoice { kDefault, kAuto, kMt, kSt, kScan };
enum class ApplyChoice { kDefault, kBoth, kData };
enum class GroupingChoice { kDefault, kGroups, kPerMbr, kClustered };

/// Parsed query, ready for compilation against an engine.
struct ParsedQuery {
  QueryKind kind = QueryKind::kRange;
  std::size_t series_id = 0;      // range/knn: the query sequence
  std::size_t k = 0;              // knn
  std::vector<Pipeline> pipelines;
  ThresholdKind threshold = ThresholdKind::kNone;
  double threshold_value = 0.0;
  AlgorithmChoice algorithm = AlgorithmChoice::kDefault;
  ApplyChoice apply = ApplyChoice::kDefault;
  GroupingChoice grouping = GroupingChoice::kDefault;
  std::size_t grouping_value = 0;
  bool ordered = false;
};

/// Parses one query. Errors carry the byte position of the offending token.
Result<ParsedQuery> Parse(std::string_view input);

}  // namespace tsq::lang

#endif  // TSQ_LANG_PARSER_H_
