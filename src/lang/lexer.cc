#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace tsq::lang {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto error = [&](const std::string& what) {
    std::ostringstream msg;
    msg << what << " at position " << i;
    return Status::InvalidArgument(msg.str());
  };
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == ':') {
      token.kind = TokenKind::kColon;
      ++i;
    } else if (c == '.' && i + 1 < input.size() && input[i + 1] == '.') {
      token.kind = TokenKind::kDotDot;
      i += 2;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               (c == '.' && i + 1 < input.size() &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      // Number: digits, optional decimal point (but ".." is a range), and
      // optional exponent.
      const std::size_t start = i;
      if (c == '-') ++i;
      bool any_digit = false;
      bool seen_dot = false;
      while (i < input.size()) {
        const char d = input[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          any_digit = true;
          ++i;
        } else if (d == '.' && !seen_dot &&
                   !(i + 1 < input.size() && input[i + 1] == '.')) {
          seen_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && any_digit &&
                   i + 1 < input.size() &&
                   (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
                    input[i + 1] == '-' || input[i + 1] == '+')) {
          i += 2;
          while (i < input.size() &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
          break;
        } else {
          break;
        }
      }
      if (!any_digit) return error("malformed number");
      token.kind = TokenKind::kNumber;
      token.text = std::string(input.substr(start, i - start));
      token.number = std::strtod(token.text.c_str(), nullptr);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(input.substr(start, i - start));
      for (char& ch : token.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
    } else {
      return error(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace tsq::lang
