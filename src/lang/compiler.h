#ifndef TSQ_LANG_COMPILER_H_
#define TSQ_LANG_COMPILER_H_

#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "lang/parser.h"

namespace tsq::lang {

/// A compiled query: the engine-level spec plus the execution options to run
/// it with — exactly the two arguments of SimilarityEngine::Execute.
struct CompiledQuery {
  core::QuerySpec spec;
  core::ExecOptions options;
};

/// Expands the factor language into spectral transformations of length `n`.
///
/// Built-in factors (args in brackets; ranges `lo..hi[:step]` expand):
///   mv(w)           moving average          momentum[(step)]
///   lwma(w)         linear-weighted MA      shift(s)    (circular)
///   ema(alpha)      exponential MA          pshift(s)   (paper's padded)
///   scale(a)        constant factor         invert
///   band(lo, hi)    ideal band-pass         diff2
/// A THEN-pipeline composes factors (Eq. 10/11); multiple pipelines union.
Result<std::vector<transform::SpectralTransform>> ExpandPipelines(
    const std::vector<Pipeline>& pipelines, std::size_t n);

/// Compiles a parsed query against an engine (resolves SERIES ids,
/// translates correlation thresholds via Eq. 9, expands transformations,
/// applies options).
Result<CompiledQuery> Compile(const ParsedQuery& query,
                              const core::SimilarityEngine& engine);

/// Parse + compile in one step.
Result<CompiledQuery> CompileQuery(std::string_view text,
                                   const core::SimilarityEngine& engine);

/// Runs a compiled query and renders a human-readable result summary.
/// Convenience for REPL/CLI front ends.
Result<std::string> Execute(const CompiledQuery& query,
                            const core::SimilarityEngine& engine,
                            std::size_t max_rows = 20);

}  // namespace tsq::lang

#endif  // TSQ_LANG_COMPILER_H_
