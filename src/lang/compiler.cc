#include "lang/compiler.h"

#include <cmath>
#include <sstream>

#include "transform/builders.h"
#include "transform/partition.h"
#include "ts/distance.h"
#include "ts/normal_form.h"

namespace tsq::lang {

namespace {

// Expands one factor argument into its list of values.
std::vector<double> ExpandArg(const Arg& arg) {
  std::vector<double> values;
  if (!arg.is_range) {
    values.push_back(arg.lo);
    return values;
  }
  for (double v = arg.lo; v <= arg.hi + 1e-9; v += arg.step) {
    values.push_back(v);
  }
  return values;
}

Status ArityError(const Factor& factor, const char* expected) {
  std::ostringstream msg;
  msg << "transformation '" << factor.name << "' expects " << expected
      << " (at position " << factor.position << ")";
  return Status::InvalidArgument(msg.str());
}

// Builds the transforms of a single factor (expanding range arguments).
Result<std::vector<transform::SpectralTransform>> ExpandFactor(
    const Factor& factor, std::size_t n) {
  using transform::SpectralTransform;
  std::vector<SpectralTransform> out;
  const auto check_positive_int = [&](double v, const char* what) -> Status {
    if (v < 0.0 || std::fabs(v - std::round(v)) > 1e-9) {
      std::ostringstream msg;
      msg << "'" << factor.name << "' needs a non-negative integer " << what;
      return Status::InvalidArgument(msg.str());
    }
    return Status::Ok();
  };

  if (factor.name == "mv" || factor.name == "ma") {
    if (factor.args.size() != 1) return ArityError(factor, "one window arg");
    for (double w : ExpandArg(factor.args[0])) {
      TSQ_RETURN_IF_ERROR(check_positive_int(w, "window"));
      if (w < 1.0 || w > static_cast<double>(n)) {
        return ArityError(factor, "a window in [1, n]");
      }
      out.push_back(transform::MovingAverageTransform(
          n, static_cast<std::size_t>(w)));
    }
  } else if (factor.name == "lwma") {
    if (factor.args.size() != 1) return ArityError(factor, "one window arg");
    for (double w : ExpandArg(factor.args[0])) {
      TSQ_RETURN_IF_ERROR(check_positive_int(w, "window"));
      if (w < 1.0 || w > static_cast<double>(n)) {
        return ArityError(factor, "a window in [1, n]");
      }
      out.push_back(transform::LinearWeightedMovingAverageTransform(
          n, static_cast<std::size_t>(w)));
    }
  } else if (factor.name == "ema") {
    if (factor.args.size() != 1) return ArityError(factor, "one alpha arg");
    for (double alpha : ExpandArg(factor.args[0])) {
      if (alpha <= 0.0 || alpha > 1.0) {
        return ArityError(factor, "alpha in (0, 1]");
      }
      out.push_back(transform::ExponentialMovingAverageTransform(n, alpha));
    }
  } else if (factor.name == "momentum") {
    if (factor.args.empty()) {
      out.push_back(transform::MomentumTransform(n));
    } else if (factor.args.size() == 1) {
      for (double s : ExpandArg(factor.args[0])) {
        TSQ_RETURN_IF_ERROR(check_positive_int(s, "step"));
        if (s < 1.0 || s >= static_cast<double>(n)) {
          return ArityError(factor, "a step in [1, n)");
        }
        out.push_back(
            transform::MomentumTransform(n, static_cast<std::size_t>(s)));
      }
    } else {
      return ArityError(factor, "at most one step arg");
    }
  } else if (factor.name == "shift" || factor.name == "pshift") {
    if (factor.args.size() != 1) return ArityError(factor, "one shift arg");
    for (double s : ExpandArg(factor.args[0])) {
      // Negative shifts are circular left shifts.
      double wrapped = std::fmod(s, static_cast<double>(n));
      if (wrapped < 0.0) wrapped += static_cast<double>(n);
      TSQ_RETURN_IF_ERROR(check_positive_int(wrapped, "shift"));
      const std::size_t days = static_cast<std::size_t>(wrapped);
      out.push_back(factor.name == "shift"
                        ? transform::ShiftTransform(n, days)
                        : transform::PaddedShiftTransform(n, days));
    }
  } else if (factor.name == "scale") {
    if (factor.args.size() != 1) return ArityError(factor, "one factor arg");
    for (double a : ExpandArg(factor.args[0])) {
      out.push_back(transform::ScaleTransform(n, a));
    }
  } else if (factor.name == "invert") {
    if (!factor.args.empty()) return ArityError(factor, "no args");
    out.push_back(transform::InvertTransform(n));
  } else if (factor.name == "identity" || factor.name == "id") {
    if (!factor.args.empty()) return ArityError(factor, "no args");
    out.push_back(transform::SpectralTransform::Identity(n));
  } else if (factor.name == "band") {
    if (factor.args.size() != 2 || factor.args[0].is_range ||
        factor.args[1].is_range) {
      return ArityError(factor, "two scalar band edges");
    }
    TSQ_RETURN_IF_ERROR(check_positive_int(factor.args[0].lo, "band edge"));
    TSQ_RETURN_IF_ERROR(check_positive_int(factor.args[1].lo, "band edge"));
    out.push_back(transform::BandPassTransform(
        n, static_cast<std::size_t>(factor.args[0].lo),
        static_cast<std::size_t>(factor.args[1].lo)));
  } else if (factor.name == "diff2") {
    if (!factor.args.empty()) return ArityError(factor, "no args");
    out.push_back(transform::SecondDifferenceTransform(n));
  } else {
    std::ostringstream msg;
    msg << "unknown transformation '" << factor.name << "' (at position "
        << factor.position << ")";
    return Status::InvalidArgument(msg.str());
  }
  if (out.empty()) {
    return ArityError(factor, "a non-empty expansion");
  }
  return out;
}

}  // namespace

Result<std::vector<transform::SpectralTransform>> ExpandPipelines(
    const std::vector<Pipeline>& pipelines, std::size_t n) {
  std::vector<transform::SpectralTransform> all;
  for (const Pipeline& pipeline : pipelines) {
    if (pipeline.empty()) {
      return Status::InvalidArgument("empty transformation pipeline");
    }
    Result<std::vector<transform::SpectralTransform>> current =
        ExpandFactor(pipeline[0], n);
    if (!current.ok()) return current.status();
    std::vector<transform::SpectralTransform> composed = std::move(*current);
    for (std::size_t i = 1; i < pipeline.size(); ++i) {
      Result<std::vector<transform::SpectralTransform>> next =
          ExpandFactor(pipeline[i], n);
      if (!next.ok()) return next.status();
      composed = transform::ComposeSpectralSets(composed, *next);
    }
    for (auto& t : composed) all.push_back(std::move(t));
  }
  if (all.empty()) {
    return Status::InvalidArgument("no transformations in query");
  }
  return all;
}

Result<CompiledQuery> Compile(const ParsedQuery& query,
                              const core::SimilarityEngine& engine) {
  const std::size_t n = engine.length();
  Result<std::vector<transform::SpectralTransform>> transforms =
      ExpandPipelines(query.pipelines, n);
  if (!transforms.ok()) return transforms.status();

  CompiledQuery compiled;
  switch (query.algorithm) {
    case AlgorithmChoice::kDefault:
    case AlgorithmChoice::kAuto:
      compiled.options.planner.algorithm = core::Algorithm::kAuto;
      break;
    case AlgorithmChoice::kMt:
      compiled.options.planner.algorithm = core::Algorithm::kMtIndex;
      break;
    case AlgorithmChoice::kSt:
      compiled.options.planner.algorithm = core::Algorithm::kStIndex;
      break;
    case AlgorithmChoice::kScan:
      compiled.options.planner.algorithm = core::Algorithm::kSequentialScan;
      break;
  }

  const auto resolve_query_series = [&](std::size_t id) -> Result<ts::Series> {
    if (id >= engine.dataset().size() || engine.dataset().removed(id)) {
      std::ostringstream msg;
      msg << "series " << id << " is not in the data set";
      return Status::NotFound(msg.str());
    }
    return ts::Denormalize(engine.dataset().normal(id));
  };
  const auto epsilon_for = [&](ThresholdKind kind,
                               double value) -> Result<double> {
    if (kind == ThresholdKind::kDistance) {
      if (value < 0.0) {
        return Status::InvalidArgument("negative distance threshold");
      }
      return value;
    }
    if (value > 1.0 || value < -1.0) {
      return Status::InvalidArgument("correlation threshold outside [-1, 1]");
    }
    return ts::CorrelationToDistanceThreshold(value, n);
  };
  const auto make_partition =
      [&](std::span<const transform::SpectralTransform> set)
      -> Result<transform::Partition> {
    const std::size_t count = set.size();
    switch (query.grouping) {
      case GroupingChoice::kDefault:
        return transform::Partition{};
      case GroupingChoice::kGroups:
        if (query.grouping_value > count) {
          return Status::InvalidArgument("more groups than transformations");
        }
        return transform::PartitionIntoGroups(count, query.grouping_value);
      case GroupingChoice::kPerMbr:
        return transform::PartitionBySize(count, query.grouping_value);
      case GroupingChoice::kClustered: {
        std::vector<transform::FeatureTransform> fts;
        for (const auto& t : set) {
          fts.push_back(t.ToFeatureTransform(engine.dataset().layout()));
        }
        return transform::PartitionByClusters(fts, 8);
      }
    }
    return transform::Partition{};
  };

  switch (query.kind) {
    case QueryKind::kRange: {
      core::RangeQuerySpec spec;
      Result<ts::Series> series = resolve_query_series(query.series_id);
      if (!series.ok()) return series.status();
      spec.query = std::move(*series);
      spec.transforms = std::move(*transforms);
      Result<double> epsilon =
          epsilon_for(query.threshold, query.threshold_value);
      if (!epsilon.ok()) return epsilon.status();
      spec.epsilon = *epsilon;
      Result<transform::Partition> partition =
          make_partition(spec.transforms);
      if (!partition.ok()) return partition.status();
      spec.partition = std::move(*partition);
      spec.use_ordering = query.ordered;
      spec.target = query.apply == ApplyChoice::kData
                        ? core::TransformTarget::kDataOnly
                        : core::TransformTarget::kBoth;
      compiled.spec = std::move(spec);
      return compiled;
    }
    case QueryKind::kKnn: {
      core::KnnQuerySpec spec;
      Result<ts::Series> series = resolve_query_series(query.series_id);
      if (!series.ok()) return series.status();
      spec.query = std::move(*series);
      spec.k = query.k;
      spec.transforms = std::move(*transforms);
      Result<transform::Partition> partition =
          make_partition(spec.transforms);
      if (!partition.ok()) return partition.status();
      spec.partition = std::move(*partition);
      spec.target = query.apply == ApplyChoice::kData
                        ? core::TransformTarget::kDataOnly
                        : core::TransformTarget::kBoth;
      compiled.spec = std::move(spec);
      return compiled;
    }
    case QueryKind::kJoin: {
      core::JoinQuerySpec spec;
      spec.transforms = std::move(*transforms);
      if (query.threshold == ThresholdKind::kCorrelation) {
        spec.mode = core::JoinMode::kCorrelation;
        spec.min_correlation = query.threshold_value;
      } else {
        spec.mode = core::JoinMode::kDistance;
        Result<double> epsilon =
            epsilon_for(query.threshold, query.threshold_value);
        if (!epsilon.ok()) return epsilon.status();
        spec.epsilon = *epsilon;
      }
      Result<transform::Partition> partition =
          make_partition(spec.transforms);
      if (!partition.ok()) return partition.status();
      spec.partition = std::move(*partition);
      if (query.apply == ApplyChoice::kData) {
        return Status::InvalidArgument(
            "APPLY DATA is not meaningful for pair joins");
      }
      if (query.ordered) {
        return Status::InvalidArgument("ORDERED is not supported for joins");
      }
      compiled.spec = std::move(spec);
      return compiled;
    }
  }
  return Status::Internal("unhandled query kind");
}

Result<CompiledQuery> CompileQuery(std::string_view text,
                                   const core::SimilarityEngine& engine) {
  Result<ParsedQuery> parsed = Parse(text);
  if (!parsed.ok()) return parsed.status();
  return Compile(*parsed, engine);
}

Result<std::string> Execute(const CompiledQuery& query,
                            const core::SimilarityEngine& engine,
                            std::size_t max_rows) {
  std::ostringstream out;
  Result<core::QueryResult> executed = engine.Execute(query.spec,
                                                      query.options);
  if (!executed.ok()) return executed.status();
  if (const auto* range = std::get_if<core::RangeQuerySpec>(&query.spec)) {
    const core::RangeQueryResult* result = executed->range();
    out << result->matches.size() << " match(es); disk accesses = "
        << result->stats.disk_accesses()
        << ", candidates = " << result->stats.candidates << "\n";
    std::vector<core::Match> sorted = result->matches;
    core::SortMatches(&sorted);
    std::size_t rows = 0;
    for (const core::Match& m : sorted) {
      if (rows++ == max_rows) {
        out << "  ...\n";
        break;
      }
      out << "  series " << m.series_id << "  "
          << range->transforms[m.transform_index].label() << "  D = "
          << m.distance << "\n";
    }
    return out.str();
  }
  if (const auto* knn = std::get_if<core::KnnQuerySpec>(&query.spec)) {
    const core::KnnQueryResult* result = executed->knn();
    out << result->matches.size() << " neighbour(s):\n";
    for (const core::KnnMatch& m : result->matches) {
      out << "  series " << m.series_id << "  "
          << knn->transforms[m.transform_index].label() << "  D = "
          << m.distance << "\n";
    }
    return out.str();
  }
  const auto& join = std::get<core::JoinQuerySpec>(query.spec);
  const core::JoinQueryResult* result = executed->join();
  out << result->matches.size() << " pair match(es); disk accesses = "
      << result->stats.disk_accesses() << "\n";
  std::vector<core::JoinMatch> sorted = result->matches;
  core::SortJoinMatches(&sorted);
  std::size_t rows = 0;
  for (const core::JoinMatch& m : sorted) {
    if (rows++ == max_rows) {
      out << "  ...\n";
      break;
    }
    out << "  (" << m.a << ", " << m.b << ")  "
        << join.transforms[m.transform_index].label() << "  "
        << (join.mode == core::JoinMode::kCorrelation ? "rho = " : "D = ")
        << m.value << "\n";
  }
  return out.str();
}

}  // namespace tsq::lang
