#ifndef TSQ_LANG_LEXER_H_
#define TSQ_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tsq::lang {

/// Token kinds of the tsq query language.
enum class TokenKind {
  kIdentifier,  // keywords and transform names; case-insensitive
  kNumber,      // 123, 0.96, -2.5
  kLParen,
  kRParen,
  kComma,
  kDotDot,  // ".."
  kColon,   // ":" (range step separator)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier text (lower-cased) or number literal
  double number = 0.0;   // value when kind == kNumber
  std::size_t position = 0;  // byte offset in the input, for error messages
};

/// Splits a query string into tokens. Identifiers are lower-cased (the
/// language is case-insensitive). Fails with InvalidArgument on characters
/// outside the language.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Names a token kind for diagnostics.
std::string_view TokenKindName(TokenKind kind);

}  // namespace tsq::lang

#endif  // TSQ_LANG_LEXER_H_
