#include "lang/parser.h"

#include <sstream>

#include "lang/lexer.h"

namespace tsq::lang {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Run() {
    ParsedQuery query;
    TSQ_RETURN_IF_ERROR(ExpectKeyword("find"));
    if (PeekKeyword("similar")) {
      Advance();
      TSQ_RETURN_IF_ERROR(ExpectKeyword("to"));
      query.kind = QueryKind::kRange;
      TSQ_RETURN_IF_ERROR(ParseRef(&query));
    } else if (PeekKeyword("pairs")) {
      Advance();
      query.kind = QueryKind::kJoin;
    } else if (Peek().kind == TokenKind::kNumber) {
      query.kind = QueryKind::kKnn;
      query.k = static_cast<std::size_t>(Peek().number);
      if (Peek().number < 1.0) return Error("k must be at least 1");
      Advance();
      TSQ_RETURN_IF_ERROR(ExpectKeyword("nearest"));
      TSQ_RETURN_IF_ERROR(ExpectKeyword("to"));
      TSQ_RETURN_IF_ERROR(ParseRef(&query));
    } else {
      return Error("expected SIMILAR, PAIRS or a neighbour count after FIND");
    }

    TSQ_RETURN_IF_ERROR(ExpectKeyword("under"));
    TSQ_RETURN_IF_ERROR(ParsePipelines(&query));

    // Threshold and options in any order.
    while (Peek().kind != TokenKind::kEnd) {
      if (PeekKeyword("within")) {
        Advance();
        if (PeekKeyword("distance")) {
          query.threshold = ThresholdKind::kDistance;
        } else if (PeekKeyword("correlation")) {
          query.threshold = ThresholdKind::kCorrelation;
        } else {
          return Error("expected DISTANCE or CORRELATION after WITHIN");
        }
        Advance();
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected a threshold value");
        }
        query.threshold_value = Peek().number;
        Advance();
      } else if (PeekKeyword("using")) {
        Advance();
        if (PeekKeyword("auto")) {
          query.algorithm = AlgorithmChoice::kAuto;
        } else if (PeekKeyword("mt")) {
          query.algorithm = AlgorithmChoice::kMt;
        } else if (PeekKeyword("st")) {
          query.algorithm = AlgorithmChoice::kSt;
        } else if (PeekKeyword("scan")) {
          query.algorithm = AlgorithmChoice::kScan;
        } else {
          return Error("expected AUTO, MT, ST or SCAN after USING");
        }
        Advance();
      } else if (PeekKeyword("apply")) {
        Advance();
        if (PeekKeyword("both")) {
          query.apply = ApplyChoice::kBoth;
        } else if (PeekKeyword("data")) {
          query.apply = ApplyChoice::kData;
        } else {
          return Error("expected BOTH or DATA after APPLY");
        }
        Advance();
      } else if (PeekKeyword("groups") || PeekKeyword("per_mbr")) {
        query.grouping = PeekKeyword("groups") ? GroupingChoice::kGroups
                                               : GroupingChoice::kPerMbr;
        Advance();
        if (Peek().kind != TokenKind::kNumber || Peek().number < 1.0) {
          return Error("expected a positive count");
        }
        query.grouping_value = static_cast<std::size_t>(Peek().number);
        Advance();
      } else if (PeekKeyword("clustered")) {
        query.grouping = GroupingChoice::kClustered;
        Advance();
      } else if (PeekKeyword("ordered")) {
        query.ordered = true;
        Advance();
      } else {
        return Error("unexpected trailing input");
      }
    }

    if (query.kind != QueryKind::kKnn &&
        query.threshold == ThresholdKind::kNone) {
      return Error("range and join queries need a WITHIN threshold");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  bool PeekKeyword(std::string_view word) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == word;
  }

  Status ExpectKeyword(std::string_view word) {
    if (!PeekKeyword(word)) {
      std::ostringstream msg;
      msg << "expected '" << word << "'";
      return Error(msg.str()).status();
    }
    Advance();
    return Status::Ok();
  }

  Result<ParsedQuery> Error(const std::string& what) const {
    std::ostringstream msg;
    msg << what << " (at position " << Peek().position << ", near "
        << TokenKindName(Peek().kind)
        << (Peek().text.empty() ? "" : " '" + Peek().text + "'") << ")";
    return Status::InvalidArgument(msg.str());
  }

  Status ParseRef(ParsedQuery* query) {
    TSQ_RETURN_IF_ERROR(ExpectKeyword("series"));
    if (Peek().kind != TokenKind::kNumber || Peek().number < 0.0) {
      return Error("expected a series id").status();
    }
    query->series_id = static_cast<std::size_t>(Peek().number);
    Advance();
    return Status::Ok();
  }

  Status ParsePipelines(ParsedQuery* query) {
    while (true) {
      Pipeline pipeline;
      TSQ_RETURN_IF_ERROR(ParseFactor(&pipeline));
      while (PeekKeyword("then")) {
        Advance();
        TSQ_RETURN_IF_ERROR(ParseFactor(&pipeline));
      }
      query->pipelines.push_back(std::move(pipeline));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return Status::Ok();
  }

  Status ParseFactor(Pipeline* pipeline) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected a transformation name").status();
    }
    Factor factor;
    factor.name = Peek().text;
    factor.position = Peek().position;
    Advance();
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      while (true) {
        Arg arg;
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected a numeric argument").status();
        }
        arg.lo = arg.hi = Peek().number;
        Advance();
        if (Peek().kind == TokenKind::kDotDot) {
          Advance();
          if (Peek().kind != TokenKind::kNumber) {
            return Error("expected a range upper bound").status();
          }
          arg.hi = Peek().number;
          arg.is_range = true;
          Advance();
          if (Peek().kind == TokenKind::kColon) {
            Advance();
            if (Peek().kind != TokenKind::kNumber || Peek().number <= 0.0) {
              return Error("expected a positive range step").status();
            }
            arg.step = Peek().number;
            Advance();
          }
          if (arg.hi < arg.lo) {
            return Error("range upper bound below lower bound").status();
          }
        }
        factor.args.push_back(arg);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')'").status();
      }
      Advance();
    }
    pipeline->push_back(std::move(factor));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<ParsedQuery> Parse(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(*tokens)).Run();
}

}  // namespace tsq::lang
