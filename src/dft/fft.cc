#include "dft/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace tsq::dft {

namespace {

constexpr double kPi = std::numbers::pi;

std::vector<Complex> ToComplex(std::span<const double> x) {
  std::vector<Complex> data(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = Complex(x[i], 0.0);
  return data;
}

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(IsPowerOfTwo(n)) {
  TSQ_CHECK_GE(n, std::size_t{1});
  if (pow2_) return;
  // Bluestein setup: x_k * chirp_k convolved with conj(chirp) gives the DFT.
  conv_size_ = NextPowerOfTwo(2 * n_ - 1);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // exp(-j*pi*k^2/n); reduce k^2 mod 2n first to keep the argument small.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double angle = -kPi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = std::polar(1.0, angle);
  }
  std::vector<Complex> filter(conv_size_, Complex(0.0, 0.0));
  filter[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    filter[k] = std::conj(chirp_[k]);
    filter[conv_size_ - k] = std::conj(chirp_[k]);
  }
  Radix2(filter, /*invert=*/false);
  chirp_filter_fft_ = std::move(filter);
}

void FftPlan::Radix2(std::vector<Complex>& data, bool invert) {
  const std::size_t n = data.size();
  TSQ_DCHECK(IsPowerOfTwo(n));
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (invert ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen = std::polar(1.0, angle);
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void FftPlan::TransformRaw(std::vector<Complex>& data, bool invert) const {
  TSQ_CHECK_EQ(data.size(), n_);
  if (pow2_) {
    Radix2(data, invert);
    return;
  }
  // Bluestein: X_f = conj(chirp_f)' ... concretely, with c_k = chirp_k,
  //   X_f = c_f * sum_k (x_k c_k) * conj(c_{f-k}) -- a circular convolution.
  // Inversion conjugates the chirps, which equals conjugate-input trick:
  // IDFT(x) = conj(DFT(conj(x))) (unscaled).
  if (invert) {
    for (auto& v : data) v = std::conj(v);
  }
  std::vector<Complex> a(conv_size_, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n_; ++k) a[k] = data[k] * chirp_[k];
  Radix2(a, /*invert=*/false);
  for (std::size_t k = 0; k < conv_size_; ++k) a[k] *= chirp_filter_fft_[k];
  Radix2(a, /*invert=*/true);
  const double scale = 1.0 / static_cast<double>(conv_size_);
  for (std::size_t f = 0; f < n_; ++f) {
    data[f] = a[f] * scale * chirp_[f];
  }
  if (invert) {
    for (auto& v : data) v = std::conj(v);
  }
}

std::vector<Complex> FftPlan::Forward(std::span<const double> x) const {
  std::vector<Complex> data = ToComplex(x);
  return Forward(std::span<const Complex>(data));
}

std::vector<Complex> FftPlan::Forward(std::span<const Complex> x) const {
  TSQ_CHECK_EQ(x.size(), n_);
  std::vector<Complex> data(x.begin(), x.end());
  TransformRaw(data, /*invert=*/false);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  for (auto& v : data) v *= scale;
  return data;
}

std::vector<Complex> FftPlan::Inverse(std::span<const Complex> coefficients) const {
  TSQ_CHECK_EQ(coefficients.size(), n_);
  std::vector<Complex> data(coefficients.begin(), coefficients.end());
  TransformRaw(data, /*invert=*/true);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  for (auto& v : data) v *= scale;
  return data;
}

std::vector<double> FftPlan::InverseReal(
    std::span<const Complex> coefficients) const {
  const std::vector<Complex> full = Inverse(coefficients);
  std::vector<double> out(full.size());
  for (std::size_t i = 0; i < full.size(); ++i) out[i] = full[i].real();
  return out;
}

std::vector<Complex> Forward(std::span<const double> x) {
  return FftPlan(x.size()).Forward(x);
}

std::vector<Complex> Forward(std::span<const Complex> x) {
  return FftPlan(x.size()).Forward(x);
}

std::vector<Complex> Inverse(std::span<const Complex> coefficients) {
  return FftPlan(coefficients.size()).Inverse(coefficients);
}

std::vector<double> InverseReal(std::span<const Complex> coefficients) {
  return FftPlan(coefficients.size()).InverseReal(coefficients);
}

std::vector<Complex> NaiveForward(std::span<const double> x) {
  const std::size_t n = x.size();
  TSQ_CHECK_GE(n, std::size_t{1});
  std::vector<Complex> out(n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::size_t f = 0; f < n; ++f) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * kPi * static_cast<double>(t) * static_cast<double>(f) /
          static_cast<double>(n);
      acc += x[t] * std::polar(1.0, angle);
    }
    out[f] = acc * scale;
  }
  return out;
}

double Energy(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double Energy(std::span<const Complex> x) {
  double acc = 0.0;
  for (const Complex& v : x) acc += std::norm(v);
  return acc;
}

std::vector<double> CircularConvolution(std::span<const double> x,
                                        std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  const std::size_t n = x.size();
  FftPlan plan(n);
  std::vector<Complex> fx = plan.Forward(x);
  const std::vector<Complex> fy = plan.Forward(y);
  // Unitary convention: conv(x, y) <-> sqrt(n) * (X .* Y).
  const double scale = std::sqrt(static_cast<double>(n));
  for (std::size_t f = 0; f < n; ++f) fx[f] *= fy[f] * scale;
  return plan.InverseReal(fx);
}

std::vector<double> NaiveCircularConvolution(std::span<const double> x,
                                             std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (i + n - k % n) % n;
      acc += x[k] * y[idx];
    }
    out[i] = acc;
  }
  return out;
}

std::vector<Complex> KernelTransfer(std::span<const double> kernel) {
  // H_f = sum_t h_t exp(-j 2 pi t f / n) = sqrt(n) * unitary DFT.
  std::vector<Complex> transfer = Forward(kernel);
  const double scale = std::sqrt(static_cast<double>(kernel.size()));
  for (auto& v : transfer) v *= scale;
  return transfer;
}

}  // namespace tsq::dft
