#include <vector>

#include "common/check.h"
#include "dft/spectrum.h"
#include "kernels/kernels.h"

namespace tsq::dft {

std::vector<Complex> ApplySpectrumMultipliers(
    std::span<const Complex> spectrum, std::span<const Complex> multipliers) {
  TSQ_CHECK_EQ(spectrum.size(), multipliers.size());
  const std::size_t n = spectrum.size();
  // One-off duplication into the component arrays the kernel consumes;
  // callers with a long-lived multiplier set should hold a
  // transform::SpectralTransform instead, which caches these.
  std::vector<double> mre2(2 * n);
  std::vector<double> mim2(2 * n);
  for (std::size_t f = 0; f < n; ++f) {
    mre2[2 * f] = multipliers[f].real();
    mre2[2 * f + 1] = multipliers[f].real();
    mim2[2 * f] = multipliers[f].imag();
    mim2[2 * f + 1] = multipliers[f].imag();
  }
  std::vector<Complex> out(n);
  kernels::ComplexPointwiseMultiply(
      {reinterpret_cast<const double*>(spectrum.data()), 2 * n}, mre2, mim2,
      {reinterpret_cast<double*>(out.data()), 2 * n});
  return out;
}

}  // namespace tsq::dft
