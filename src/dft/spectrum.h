#ifndef TSQ_DFT_SPECTRUM_H_
#define TSQ_DFT_SPECTRUM_H_

#include <complex>
#include <span>
#include <vector>

#include "dft/fft.h"

namespace tsq::dft {

/// A complex value in polar form. The paper represents DFT coefficients and
/// transformation actions this way: multiplicative factors act on
/// `magnitude`, additive phase shifts act on `angle` (Section 3.1).
struct Polar {
  double magnitude = 0.0;
  /// Radians in [-pi, pi].
  double angle = 0.0;

  bool operator==(const Polar&) const = default;
};

/// Wraps an angle (radians) into [-pi, pi].
double WrapAngle(double radians);

/// Smallest absolute angular difference between two angles, in [0, pi].
double AngularDistance(double a, double b);

/// Converts a complex value to polar form (angle wrapped into [-pi, pi]).
Polar ToPolar(const Complex& value);

/// Converts polar form back to a complex value.
Complex FromPolar(const Polar& polar);

/// Converts a spectrum to polar form element-wise.
std::vector<Polar> SpectrumToPolar(std::span<const Complex> spectrum);

/// Converts a polar spectrum back to complex form element-wise.
std::vector<Complex> SpectrumFromPolar(std::span<const Polar> spectrum);

/// Squared distance between two complex values given in polar form, computed
/// by the law of cosines: |X|^2 + |Y|^2 - 2|X||Y|cos(angleX - angleY).
double PolarSquaredDistance(const Polar& x, const Polar& y);

/// Element-wise spectrum×multiplier application (Eq. 5): out_f = M_f * X_f,
/// routed through the SIMD kernel layer. Callers that apply the same
/// multipliers repeatedly should prefer transform::SpectralTransform, which
/// caches the kernel-ready component arrays.
std::vector<Complex> ApplySpectrumMultipliers(
    std::span<const Complex> spectrum, std::span<const Complex> multipliers);

/// Verifies the conjugate-symmetry property of the DFT of a real sequence
/// (Eq. 6): |X_{n-f}| == |X_f| for f in [1, n). Returns the maximum absolute
/// magnitude mismatch (0 for perfectly symmetric spectra).
double SymmetryDefect(std::span<const Complex> spectrum);

}  // namespace tsq::dft

#endif  // TSQ_DFT_SPECTRUM_H_
