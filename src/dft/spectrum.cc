#include "dft/spectrum.h"

#include <cmath>
#include <numbers>

namespace tsq::dft {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

double WrapAngle(double radians) {
  double wrapped = std::fmod(radians + kPi, kTwoPi);
  if (wrapped < 0.0) wrapped += kTwoPi;
  return wrapped - kPi;
}

double AngularDistance(double a, double b) {
  const double diff = std::fabs(WrapAngle(a - b));
  return diff > kPi ? kTwoPi - diff : diff;
}

Polar ToPolar(const Complex& value) {
  return Polar{std::abs(value), std::arg(value)};
}

Complex FromPolar(const Polar& polar) {
  return std::polar(polar.magnitude, polar.angle);
}

std::vector<Polar> SpectrumToPolar(std::span<const Complex> spectrum) {
  std::vector<Polar> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = ToPolar(spectrum[i]);
  return out;
}

std::vector<Complex> SpectrumFromPolar(std::span<const Polar> spectrum) {
  std::vector<Complex> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    out[i] = FromPolar(spectrum[i]);
  }
  return out;
}

double PolarSquaredDistance(const Polar& x, const Polar& y) {
  const double cosine = std::cos(x.angle - y.angle);
  const double d2 = x.magnitude * x.magnitude + y.magnitude * y.magnitude -
                    2.0 * x.magnitude * y.magnitude * cosine;
  // Clamp tiny negative values caused by rounding.
  return d2 < 0.0 ? 0.0 : d2;
}

double SymmetryDefect(std::span<const Complex> spectrum) {
  const std::size_t n = spectrum.size();
  double worst = 0.0;
  for (std::size_t f = 1; f < n; ++f) {
    const double defect =
        std::fabs(std::abs(spectrum[f]) - std::abs(spectrum[n - f]));
    worst = std::max(worst, defect);
  }
  return worst;
}

}  // namespace tsq::dft
