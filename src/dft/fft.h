#ifndef TSQ_DFT_FFT_H_
#define TSQ_DFT_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tsq::dft {

using Complex = std::complex<double>;

/// Discrete Fourier Transform engine.
///
/// All transforms use the *unitary* convention of the paper (Eq. 1):
///
///   X_f = (1/sqrt(n)) * sum_t x_t * exp(-j*2*pi*t*f/n)
///
/// so Parseval's relation holds with no extra factors: E(x) = E(X) (Eq. 7),
/// and the Euclidean distance between two sequences is identical in the time
/// and frequency domains (Eq. 8).
///
/// Power-of-two lengths use an iterative radix-2 Cooley-Tukey FFT; other
/// lengths use Bluestein's chirp-z algorithm (which internally runs
/// power-of-two FFTs), so every length is O(n log n).
///
/// A plan caches twiddle factors and scratch space for one length; reuse it
/// when transforming many sequences of the same length.
class FftPlan {
 public:
  /// Creates a plan for length-`n` transforms. Requires n >= 1.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// Forward unitary DFT of a real sequence. Requires x.size() == size().
  std::vector<Complex> Forward(std::span<const double> x) const;

  /// Forward unitary DFT of a complex sequence.
  std::vector<Complex> Forward(std::span<const Complex> x) const;

  /// Inverse unitary DFT. Requires coefficients.size() == size().
  std::vector<Complex> Inverse(std::span<const Complex> coefficients) const;

  /// Inverse unitary DFT of the spectrum of a real sequence; returns the real
  /// parts (imaginary parts are numerical noise for conjugate-symmetric
  /// input).
  std::vector<double> InverseReal(std::span<const Complex> coefficients) const;

 private:
  // Transforms in place; `invert` flips the exponent sign. Unitary scaling is
  // applied by the public wrappers.
  void TransformRaw(std::vector<Complex>& data, bool invert) const;
  // Radix-2 in-place FFT on a power-of-two-sized buffer (unscaled).
  static void Radix2(std::vector<Complex>& data, bool invert);

  std::size_t n_;
  bool pow2_;
  // Bluestein state (only populated when n_ is not a power of two).
  std::size_t conv_size_ = 0;             // power-of-two >= 2n-1
  std::vector<Complex> chirp_;            // exp(-j*pi*k^2/n), k in [0, n)
  std::vector<Complex> chirp_filter_fft_; // FFT of the padded conjugate chirp
};

/// One-shot forward unitary DFT of a real sequence (any length >= 1).
std::vector<Complex> Forward(std::span<const double> x);

/// One-shot forward unitary DFT of a complex sequence.
std::vector<Complex> Forward(std::span<const Complex> x);

/// One-shot inverse unitary DFT.
std::vector<Complex> Inverse(std::span<const Complex> coefficients);

/// One-shot inverse unitary DFT returning real parts.
std::vector<double> InverseReal(std::span<const Complex> coefficients);

/// O(n^2) reference DFT used to validate the FFT in tests.
std::vector<Complex> NaiveForward(std::span<const double> x);

/// Signal energy: sum of squared magnitudes (Eq. 2).
double Energy(std::span<const double> x);
double Energy(std::span<const Complex> x);

/// Circular convolution (Eq. 3): out_i = sum_k x_k * y_{(i-k) mod n}.
/// Requires x.size() == y.size(). Computed via FFT in O(n log n).
std::vector<double> CircularConvolution(std::span<const double> x,
                                        std::span<const double> y);

/// O(n^2) reference circular convolution used in tests.
std::vector<double> NaiveCircularConvolution(std::span<const double> x,
                                             std::span<const double> y);

/// The *unnormalized* transfer function of a convolution kernel:
/// H_f = sum_t h_t * exp(-j*2*pi*t*f/n). Under the unitary convention,
/// circular convolution with kernel h multiplies coefficient f by H_f
/// (conv(x, h) <-> H .* X, Eq. 5 with the scaling made explicit).
std::vector<Complex> KernelTransfer(std::span<const double> kernel);

/// True when n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

}  // namespace tsq::dft

#endif  // TSQ_DFT_FFT_H_
