#ifndef TSQ_RSTAR_RECT_H_
#define TSQ_RSTAR_RECT_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tsq::rstar {

/// A point in d-dimensional space.
using Point = std::vector<double>;

/// An axis-aligned d-dimensional rectangle [low_i, high_i] per dimension.
///
/// Used for R*-tree node/entry bounding boxes, for transformation MBRs and
/// for query regions. Degenerate rectangles (low == high) represent points.
class Rect {
 public:
  Rect() = default;

  /// Constructs from explicit bounds. Requires equal sizes and
  /// low[i] <= high[i] for all i.
  Rect(std::vector<double> low, std::vector<double> high);

  /// A degenerate rectangle covering exactly `point`.
  static Rect FromPoint(const Point& point);

  /// The "empty" rectangle of dimension d (low = +inf, high = -inf), the
  /// identity for Enlarge.
  static Rect Empty(std::size_t dimensions);

  std::size_t dimensions() const { return low_.size(); }
  bool empty() const;

  double low(std::size_t dim) const { return low_[dim]; }
  double high(std::size_t dim) const { return high_[dim]; }
  std::span<const double> lows() const { return low_; }
  std::span<const double> highs() const { return high_; }

  void set_low(std::size_t dim, double v) { low_[dim] = v; }
  void set_high(std::size_t dim, double v) { high_[dim] = v; }

  /// Side length along `dim` (0 for points, never negative for valid rects).
  double Extent(std::size_t dim) const { return high_[dim] - low_[dim]; }

  /// Product of extents. 0 for degenerate rectangles.
  double Area() const;

  /// Sum of extents (the R*-split "margin" objective).
  double Margin() const;

  /// Center coordinate along `dim`.
  double Center(std::size_t dim) const { return 0.5 * (low_[dim] + high_[dim]); }

  /// Squared Euclidean distance between the centers of two rects.
  double CenterSquaredDistance(const Rect& other) const;

  /// Closed-interval intersection test.
  bool Intersects(const Rect& other) const;

  /// True when `other` lies fully inside this rect.
  bool Contains(const Rect& other) const;
  bool ContainsPoint(const Point& point) const;

  /// Grows this rect to cover `other`.
  void Enlarge(const Rect& other);

  /// Area increase if this rect were enlarged to cover `other`.
  double Enlargement(const Rect& other) const;

  /// Area of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Rect& other) const;

  /// MINDIST of Roussopoulos et al.: squared distance from `point` to the
  /// nearest face of the rect; 0 if the point is inside. Lower-bounds the
  /// squared distance from `point` to anything inside the rect.
  double MinSquaredDistance(const Point& point) const;

  /// MINMAXDIST of Roussopoulos et al.: the smallest upper bound on the
  /// squared distance from `point` to the nearest *object contained in* the
  /// rect (every face of an R-tree MBR touches at least one object).
  double MinMaxSquaredDistance(const Point& point) const;

  /// "(lo..hi)x(lo..hi)" rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Rect&) const = default;

 private:
  std::vector<double> low_;
  std::vector<double> high_;
};

/// MBR of a set of rectangles. Requires a non-empty span.
Rect BoundingRect(std::span<const Rect> rects);

}  // namespace tsq::rstar

#endif  // TSQ_RSTAR_RECT_H_
