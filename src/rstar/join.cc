#include "rstar/join.h"

#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace tsq::rstar {

namespace {

// A node as the join sees it: original entries plus their mapped rects and
// the mapped bounding rect. Cached per side so every page is fetched once.
struct JoinNodeView {
  bool is_leaf = false;
  std::uint32_t level = 0;
  std::vector<Entry> entries;        // original rects (reported to callback)
  std::vector<Rect> mapped;          // per-entry mapped rects
  Rect mapped_bound;                 // bounding rect of `mapped`
};

class NodeCache {
 public:
  NodeCache(const RStarTree& tree, const RectMap& map, SearchStats* stats)
      : tree_(tree), map_(map), stats_(stats) {}

  Result<const JoinNodeView*> Get(storage::PageId page) {
    auto it = cache_.find(page);
    if (it != cache_.end()) return &it->second;
    RStarTree::NodeView raw;
    TSQ_RETURN_IF_ERROR(tree_.ReadNodeView(page, &raw, stats_));
    JoinNodeView view;
    view.is_leaf = raw.is_leaf;
    view.level = raw.level;
    view.entries = std::move(raw.entries);
    view.mapped.reserve(view.entries.size());
    for (const Entry& entry : view.entries) {
      view.mapped.push_back(map_ ? map_(entry.rect) : entry.rect);
    }
    TSQ_CHECK(!view.mapped.empty());
    view.mapped_bound = view.mapped.front();
    for (std::size_t i = 1; i < view.mapped.size(); ++i) {
      view.mapped_bound.Enlarge(view.mapped[i]);
    }
    auto [inserted, _] = cache_.emplace(page, std::move(view));
    return &inserted->second;
  }

 private:
  const RStarTree& tree_;
  const RectMap& map_;
  SearchStats* stats_;
  std::unordered_map<storage::PageId, JoinNodeView> cache_;
};

Status JoinNodes(NodeCache& left_cache, NodeCache& right_cache,
                 storage::PageId left_page, storage::PageId right_page,
                 const JoinPredicate& predicate,
                 const JoinCallback& callback) {
  Result<const JoinNodeView*> a_result = left_cache.Get(left_page);
  if (!a_result.ok()) return a_result.status();
  Result<const JoinNodeView*> b_result = right_cache.Get(right_page);
  if (!b_result.ok()) return b_result.status();
  const JoinNodeView& a = **a_result;
  const JoinNodeView& b = **b_result;

  if (a.is_leaf && b.is_leaf) {
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
      for (std::size_t j = 0; j < b.entries.size(); ++j) {
        if (predicate(a.mapped[i], b.mapped[j])) {
          callback(a.entries[i], b.entries[j]);
        }
      }
    }
    return Status::Ok();
  }
  if (!a.is_leaf && (b.is_leaf || a.level >= b.level)) {
    // Descend the left (deeper or equal) side.
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
      if (!predicate(a.mapped[i], b.mapped_bound)) continue;
      TSQ_RETURN_IF_ERROR(JoinNodes(
          left_cache, right_cache,
          static_cast<storage::PageId>(a.entries[i].id), right_page,
          predicate, callback));
    }
    return Status::Ok();
  }
  // Descend the right side.
  for (std::size_t j = 0; j < b.entries.size(); ++j) {
    if (!predicate(a.mapped_bound, b.mapped[j])) continue;
    TSQ_RETURN_IF_ERROR(JoinNodes(
        left_cache, right_cache, left_page,
        static_cast<storage::PageId>(b.entries[j].id), predicate, callback));
  }
  return Status::Ok();
}

}  // namespace

Status SpatialJoin(const RStarTree& left, const RStarTree& right,
                   const JoinPredicate& predicate, const JoinCallback& callback,
                   SearchStats* left_stats, SearchStats* right_stats,
                   const JoinOptions& options) {
  if (left.size() == 0 || right.size() == 0) return Status::Ok();
  NodeCache left_cache(left, options.left_map, left_stats);
  NodeCache right_cache(right, options.right_map, right_stats);
  return JoinNodes(left_cache, right_cache, left.root_page(),
                   right.root_page(), predicate, callback);
}

}  // namespace tsq::rstar
