#include "rstar/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace tsq::rstar {

Rect::Rect(std::vector<double> low, std::vector<double> high)
    : low_(std::move(low)), high_(std::move(high)) {
  TSQ_CHECK_EQ(low_.size(), high_.size());
  for (std::size_t d = 0; d < low_.size(); ++d) {
    TSQ_DCHECK(low_[d] <= high_[d])
        << "invalid rect bounds in dim " << d << ": " << low_[d] << " > "
        << high_[d];
  }
}

Rect Rect::FromPoint(const Point& point) {
  return Rect(point, point);
}

Rect Rect::Empty(std::size_t dimensions) {
  Rect r;
  r.low_.assign(dimensions, std::numeric_limits<double>::infinity());
  r.high_.assign(dimensions, -std::numeric_limits<double>::infinity());
  return r;
}

bool Rect::empty() const {
  for (std::size_t d = 0; d < dimensions(); ++d) {
    if (low_[d] > high_[d]) return true;
  }
  return dimensions() == 0;
}

double Rect::Area() const {
  double area = 1.0;
  for (std::size_t d = 0; d < dimensions(); ++d) area *= Extent(d);
  return area;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (std::size_t d = 0; d < dimensions(); ++d) margin += Extent(d);
  return margin;
}

double Rect::CenterSquaredDistance(const Rect& other) const {
  TSQ_DCHECK(dimensions() == other.dimensions());
  double acc = 0.0;
  for (std::size_t d = 0; d < dimensions(); ++d) {
    const double diff = Center(d) - other.Center(d);
    acc += diff * diff;
  }
  return acc;
}

bool Rect::Intersects(const Rect& other) const {
  TSQ_DCHECK(dimensions() == other.dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    if (low_[d] > other.high_[d] || other.low_[d] > high_[d]) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  TSQ_DCHECK(dimensions() == other.dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    if (other.low_[d] < low_[d] || other.high_[d] > high_[d]) return false;
  }
  return true;
}

bool Rect::ContainsPoint(const Point& point) const {
  TSQ_DCHECK(dimensions() == point.size());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    if (point[d] < low_[d] || point[d] > high_[d]) return false;
  }
  return true;
}

void Rect::Enlarge(const Rect& other) {
  TSQ_DCHECK(dimensions() == other.dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    low_[d] = std::min(low_[d], other.low_[d]);
    high_[d] = std::max(high_[d], other.high_[d]);
  }
}

double Rect::Enlargement(const Rect& other) const {
  Rect grown = *this;
  grown.Enlarge(other);
  return grown.Area() - Area();
}

double Rect::OverlapArea(const Rect& other) const {
  TSQ_DCHECK(dimensions() == other.dimensions());
  double area = 1.0;
  for (std::size_t d = 0; d < dimensions(); ++d) {
    const double lo = std::max(low_[d], other.low_[d]);
    const double hi = std::min(high_[d], other.high_[d]);
    if (lo > hi) return 0.0;
    area *= hi - lo;
  }
  return area;
}

double Rect::MinSquaredDistance(const Point& point) const {
  TSQ_DCHECK(dimensions() == point.size());
  double acc = 0.0;
  for (std::size_t d = 0; d < dimensions(); ++d) {
    double diff = 0.0;
    if (point[d] < low_[d]) {
      diff = low_[d] - point[d];
    } else if (point[d] > high_[d]) {
      diff = point[d] - high_[d];
    }
    acc += diff * diff;
  }
  return acc;
}

double Rect::MinMaxSquaredDistance(const Point& point) const {
  TSQ_DCHECK(dimensions() == point.size());
  const std::size_t dims = dimensions();
  TSQ_DCHECK(dims > 0);
  // Precompute per-dimension contributions.
  // rm_k = distance to the nearer face along k; rM_k = to the farther face.
  std::vector<double> rm2(dims), rM2(dims);
  double total_rM2 = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double mid = Center(d);
    const double rm = point[d] <= mid ? low_[d] : high_[d];
    const double rM = point[d] >= mid ? low_[d] : high_[d];
    rm2[d] = (point[d] - rm) * (point[d] - rm);
    rM2[d] = (point[d] - rM) * (point[d] - rM);
    total_rM2 += rM2[d];
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < dims; ++d) {
    best = std::min(best, total_rM2 - rM2[d] + rm2[d]);
  }
  return best;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < dimensions(); ++d) {
    if (d > 0) os << "x";
    os << "(" << low_[d] << ".." << high_[d] << ")";
  }
  return os.str();
}

Rect BoundingRect(std::span<const Rect> rects) {
  TSQ_CHECK(!rects.empty());
  Rect out = rects.front();
  for (std::size_t i = 1; i < rects.size(); ++i) out.Enlarge(rects[i]);
  return out;
}

}  // namespace tsq::rstar
