#ifndef TSQ_RSTAR_RSTAR_TREE_H_
#define TSQ_RSTAR_RSTAR_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "rstar/rect.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tsq::rstar {

/// One entry of a node: a bounding rect plus either a child page id (internal
/// nodes) or an opaque data id (leaves).
struct Entry {
  Rect rect;
  std::uint64_t id = 0;
};

/// Tuning knobs of the R*-tree (defaults follow Beckmann et al. 1990).
struct TreeOptions {
  /// Minimum node fill as a fraction of capacity (the paper's m = 40%).
  double min_fill_fraction = 0.4;
  /// Fraction of entries removed during forced reinsertion (p = 30%).
  double reinsert_fraction = 0.3;
  /// Forced reinsertion on first overflow per level per insertion.
  bool forced_reinsert = true;
  /// Overrides the page-derived node capacity when > 0 (testing hook).
  std::uint32_t capacity_override = 0;
};

/// Counters for one or more index operations, in the units the paper reports.
struct SearchStats {
  /// Pages read at any level -- DA_all(q, r) in the cost model (Eq. 18).
  std::uint64_t nodes_accessed = 0;
  /// Pages read at the leaf level -- DA_leaf(q, r).
  std::uint64_t leaf_nodes_accessed = 0;
  /// Leaf entries that satisfied the predicate (candidates).
  std::uint64_t matches = 0;

  SearchStats& operator+=(const SearchStats& other) {
    nodes_accessed += other.nodes_accessed;
    leaf_nodes_accessed += other.leaf_nodes_accessed;
    matches += other.matches;
    return *this;
  }
};

/// Disk-resident R*-tree (Beckmann, Kriegel, Schneider, Seeger; SIGMOD 1990).
///
/// The paper's experiments run on "Norbert Beckmann's Version 2
/// implementation of the R*-tree"; this is a from-scratch implementation of
/// the same algorithm: ChooseSubtree with minimum overlap enlargement at the
/// leaf level, margin-driven split-axis selection, and forced reinsertion.
///
/// Nodes are stored one per page in a storage::PageFile, so every node visit
/// is a counted page read. The search interface takes a *predicate on
/// rectangles* rather than a fixed query window: the MT-index algorithm
/// works by transforming each node rectangle with a transformation MBR
/// before testing it against the query region (paper Section 4.1), which
/// plugs in here without the tree knowing about transformations.
class RStarTree {
 public:
  /// A predicate deciding whether a bounding rect (internal entry or leaf
  /// entry) may contain query answers. Must never reject a rect that
  /// contains a qualifying entry (it may accept false positives).
  using RectPredicate = std::function<bool(const Rect&)>;

  /// A lower bound on the squared distance from the (implicit) query to
  /// anything inside the rect; used by nearest-neighbour search.
  using RectDistance = std::function<double(const Rect&)>;

  /// Creates an empty tree of the given dimensionality backed by `file`
  /// (not owned; must outlive the tree and be exclusive to it).
  RStarTree(storage::PageFile* file, std::size_t dimensions,
            TreeOptions options = TreeOptions());

  /// Routes node I/O through `pool` (an LRU cache over the same file;
  /// write-through). SearchStats keep counting *logical* node accesses —
  /// without a pool those equal physical page reads; with one, physical
  /// reads are the pool's misses. Pass nullptr to detach.
  void SetBufferPool(storage::BufferPool* pool) { pool_ = pool; }

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts an entry. `id` is opaque to the tree.
  Status Insert(const Rect& rect, std::uint64_t id);

  /// Persistence hook: points an empty tree object at an existing node
  /// structure inside its (already loaded) page file. `root`, `height` and
  /// `size` must come from a prior tree's accessors; CheckInvariants() is
  /// the caller's friend after restoring.
  Status RestoreForLoad(storage::PageId root, std::size_t height,
                        std::size_t size);

  /// Bulk-loads the tree with Sort-Tile-Recursive packing (Leutenegger et
  /// al. 1997): O(n log n), produces near-full nodes and a far better
  /// clustered tree than repeated insertion, ~100x faster to build.
  /// Requires an empty tree; the result satisfies CheckInvariants() and
  /// behaves identically to an insertion-built tree for every query.
  Status BulkLoad(std::vector<Entry> entries);

  /// Removes an entry matching both `rect` and `id`; NotFound if absent.
  ///
  /// Failure atomicity: all fallible page reads (leaf location, the
  /// condense plan, the root-shrink chain) happen before the first page is
  /// written, so a read failure — an injected fault included — leaves the
  /// tree untouched. The only post-mutation failure window is orphan
  /// reinsertion after an underflow, which must traverse (read) the tree
  /// again; a caller that needs stronger guarantees compensates by
  /// rebuilding (see core::SequenceIndex::Rebuild).
  Status Delete(const Rect& rect, std::uint64_t id);

  /// Range search: collects all leaf entries whose rect satisfies
  /// `predicate`, pruning subtrees whose bounding rect fails it.
  /// Stats for this one search are added to `*stats` when non-null.
  Status Search(const RectPredicate& predicate, std::vector<Entry>* results,
                SearchStats* stats = nullptr) const;

  /// Convenience window query: entries intersecting `window`.
  Status WindowQuery(const Rect& window, std::vector<Entry>* results,
                     SearchStats* stats = nullptr) const;

  /// k-nearest-neighbour search by branch-and-bound on MINDIST (Roussopoulos
  /// et al. 1995). `entry_distance` gives the squared distance of a leaf
  /// entry rect, `node_distance` a lower bound for a subtree rect; passing
  /// the same function for both is correct for point data. Results are
  /// sorted by ascending distance.
  struct Neighbor {
    Entry entry;
    double squared_distance = 0.0;
  };
  Status NearestNeighbors(std::size_t k, const RectDistance& node_distance,
                          const RectDistance& entry_distance,
                          std::vector<Neighbor>* results,
                          SearchStats* stats = nullptr) const;

  /// Euclidean k-NN around `query`.
  Status NearestNeighbors(std::size_t k, const Point& query,
                          std::vector<Neighbor>* results,
                          SearchStats* stats = nullptr) const;

  std::size_t size() const { return size_; }
  std::size_t dimensions() const { return dimensions_; }
  /// Levels from root to leaf inclusive (0 for an empty tree).
  std::size_t height() const { return height_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t min_fill() const { return min_fill_; }

  /// Bounding rect of all data, or nullopt when empty.
  std::optional<Rect> RootRect() const;

  /// Exhaustively checks structural invariants (parent MBRs tight and
  /// containing, fill factors, uniform leaf depth, size bookkeeping).
  /// Intended for tests; reads every node.
  Status CheckInvariants() const;

  /// Runs `fn` on every node's (level, rect, entries); level 0 = leaf.
  /// Intended for diagnostics and the spatial-join implementation.
  struct NodeView {
    std::uint32_t level;
    storage::PageId page;
    bool is_leaf;
    std::vector<Entry> entries;
  };
  Status VisitNodes(const std::function<void(const NodeView&)>& fn) const;

  storage::PageId root_page() const { return root_; }

  /// Reads the node stored at `page`. Exposed for the spatial join, which
  /// traverses two trees in lockstep. Counts page reads in `*stats`.
  Status ReadNodeView(storage::PageId page, NodeView* out,
                      SearchStats* stats = nullptr) const;

 private:
  struct Node {
    storage::PageId self = storage::kInvalidPageId;
    std::uint32_t level = 0;  // 0 = leaf
    std::vector<Entry> entries;

    bool is_leaf() const { return level == 0; }
  };

  // --- node I/O ------------------------------------------------------------
  Status ReadNode(storage::PageId id, Node* out,
                  SearchStats* stats = nullptr) const;
  Status WriteNode(const Node& node);
  Status SerializeNode(const Node& node, storage::Page* page) const;
  Status DeserializeNode(storage::PageId id, const storage::Page& page,
                         Node* out) const;

  // --- insertion -----------------------------------------------------------
  // Inserts `entry` at `target_level` (0 = leaf); `reinserted_levels` tracks
  // which levels already did a forced reinsert during this logical insert.
  Status InsertAtLevel(const Entry& entry, std::uint32_t target_level,
                       std::vector<bool>& reinserted_levels);
  // Chooses the child of `node` to descend into for an entry with `rect`.
  std::size_t ChooseSubtree(const Node& node, const Rect& rect) const;
  // Handles an overflowing node: forced reinsert or split, propagating up.
  // `path` holds the page ids from root to `node` (inclusive).
  Status OverflowTreatment(Node node, std::vector<storage::PageId> path,
                           std::vector<bool>& reinserted_levels);
  Status SplitNode(Node node, std::vector<storage::PageId> path,
                   std::vector<bool>& reinserted_levels);
  // R*-split: picks the axis and distribution; returns entries partitioned
  // into two groups.
  void ChooseSplit(const std::vector<Entry>& entries,
                   std::vector<Entry>* group_a,
                   std::vector<Entry>* group_b) const;
  // Recomputes ancestors' bounding rects along `path` after a child changed.
  Status AdjustPath(const std::vector<storage::PageId>& path);

  // --- deletion ------------------------------------------------------------
  Status FindLeaf(const Node& node, const Rect& rect, std::uint64_t id,
                  std::vector<storage::PageId>& path, bool* found) const;

  Rect NodeRect(const Node& node) const;

  storage::PageFile* file_;
  storage::BufferPool* pool_ = nullptr;
  std::size_t dimensions_;
  TreeOptions options_;
  std::uint32_t capacity_ = 0;
  std::uint32_t min_fill_ = 0;
  storage::PageId root_ = storage::kInvalidPageId;
  std::size_t size_ = 0;
  std::size_t height_ = 0;
};

}  // namespace tsq::rstar

#endif  // TSQ_RSTAR_RSTAR_TREE_H_
