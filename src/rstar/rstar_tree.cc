#include "rstar/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

#include "common/check.h"

namespace tsq::rstar {

namespace {

// Node page layout: [u16 magic][u16 level][u32 count][entries...], entry =
// [u64 id][dim f64 lows][dim f64 highs].
constexpr std::uint16_t kNodeMagic = 0x5254;  // "RT"
constexpr std::size_t kHeaderSize = 8;

// Deep-enough bound for reinsertion bookkeeping; R-tree height is
// logarithmic, so 64 levels can never be reached.
constexpr std::size_t kMaxLevels = 64;

}  // namespace

RStarTree::RStarTree(storage::PageFile* file, std::size_t dimensions,
                     TreeOptions options)
    : file_(file), dimensions_(dimensions), options_(options) {
  TSQ_CHECK(file != nullptr);
  TSQ_CHECK_GE(dimensions, std::size_t{1});
  const std::size_t entry_size = sizeof(std::uint64_t) +
                                 2 * dimensions_ * sizeof(double);
  const std::size_t fit = (storage::kPageSize - kHeaderSize) / entry_size;
  capacity_ = options_.capacity_override > 0
                  ? options_.capacity_override
                  : static_cast<std::uint32_t>(fit);
  TSQ_CHECK_GE(capacity_, 4u) << "page too small for dimension "
                              << dimensions_;
  TSQ_CHECK(options_.capacity_override == 0 || options_.capacity_override <= fit)
      << "capacity override does not fit in a page";
  min_fill_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(options_.min_fill_fraction *
                                    static_cast<double>(capacity_)));
  // The split algorithm needs 2*min_fill <= capacity + 1.
  min_fill_ = std::min(min_fill_, (capacity_ + 1) / 2);
}

// --- node I/O ----------------------------------------------------------------

Status RStarTree::SerializeNode(const Node& node, storage::Page* page) const {
  TSQ_CHECK_LE(node.entries.size(), static_cast<std::size_t>(capacity_) + 1);
  std::uint8_t* out = page->bytes.data();
  std::memset(out, 0, storage::kPageSize);
  const std::uint16_t level = static_cast<std::uint16_t>(node.level);
  const std::uint32_t count = static_cast<std::uint32_t>(node.entries.size());
  std::memcpy(out + 0, &kNodeMagic, 2);
  std::memcpy(out + 2, &level, 2);
  std::memcpy(out + 4, &count, 4);
  std::size_t cursor = kHeaderSize;
  for (const Entry& entry : node.entries) {
    TSQ_CHECK_EQ(entry.rect.dimensions(), dimensions_);
    std::memcpy(out + cursor, &entry.id, sizeof entry.id);
    cursor += sizeof entry.id;
    std::memcpy(out + cursor, entry.rect.lows().data(),
                dimensions_ * sizeof(double));
    cursor += dimensions_ * sizeof(double);
    std::memcpy(out + cursor, entry.rect.highs().data(),
                dimensions_ * sizeof(double));
    cursor += dimensions_ * sizeof(double);
  }
  if (cursor > storage::kPageSize) {
    return Status::Internal("serialized node exceeds page size");
  }
  return Status::Ok();
}

Status RStarTree::DeserializeNode(storage::PageId id,
                                  const storage::Page& page, Node* out) const {
  const std::uint8_t* in = page.bytes.data();
  std::uint16_t magic = 0;
  std::uint16_t level = 0;
  std::uint32_t count = 0;
  std::memcpy(&magic, in + 0, 2);
  std::memcpy(&level, in + 2, 2);
  std::memcpy(&count, in + 4, 4);
  if (magic != kNodeMagic) {
    return Status::Corruption("page is not an R*-tree node");
  }
  if (count > capacity_ + 1) {
    return Status::Corruption("node entry count exceeds capacity");
  }
  out->self = id;
  out->level = level;
  out->entries.clear();
  out->entries.reserve(count);
  std::size_t cursor = kHeaderSize;
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    std::memcpy(&entry.id, in + cursor, sizeof entry.id);
    cursor += sizeof entry.id;
    std::vector<double> low(dimensions_), high(dimensions_);
    std::memcpy(low.data(), in + cursor, dimensions_ * sizeof(double));
    cursor += dimensions_ * sizeof(double);
    std::memcpy(high.data(), in + cursor, dimensions_ * sizeof(double));
    cursor += dimensions_ * sizeof(double);
    entry.rect = Rect(std::move(low), std::move(high));
    out->entries.push_back(std::move(entry));
  }
  return Status::Ok();
}

Status RStarTree::ReadNode(storage::PageId id, Node* out,
                           SearchStats* stats) const {
  storage::Page page;
  if (pool_ != nullptr) {
    TSQ_RETURN_IF_ERROR(pool_->Read(id, &page));
  } else {
    TSQ_RETURN_IF_ERROR(file_->Read(id, &page));
  }
  TSQ_RETURN_IF_ERROR(DeserializeNode(id, page, out));
  if (stats != nullptr) {
    ++stats->nodes_accessed;
    if (out->is_leaf()) ++stats->leaf_nodes_accessed;
  }
  return Status::Ok();
}

Status RStarTree::WriteNode(const Node& node) {
  storage::Page page;
  TSQ_RETURN_IF_ERROR(SerializeNode(node, &page));
  if (pool_ != nullptr) return pool_->Write(node.self, page);
  return file_->Write(node.self, page);
}

Rect RStarTree::NodeRect(const Node& node) const {
  TSQ_CHECK(!node.entries.empty());
  Rect rect = node.entries.front().rect;
  for (std::size_t i = 1; i < node.entries.size(); ++i) {
    rect.Enlarge(node.entries[i].rect);
  }
  return rect;
}

// --- insertion ---------------------------------------------------------------

Status RStarTree::Insert(const Rect& rect, std::uint64_t id) {
  TSQ_CHECK_EQ(rect.dimensions(), dimensions_);
  std::vector<bool> reinserted(kMaxLevels, false);
  TSQ_RETURN_IF_ERROR(InsertAtLevel(Entry{rect, id}, 0, reinserted));
  ++size_;
  return Status::Ok();
}

std::size_t RStarTree::ChooseSubtree(const Node& node,
                                     const Rect& rect) const {
  TSQ_CHECK(!node.entries.empty());
  const std::size_t count = node.entries.size();
  std::size_t best = 0;
  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement (R* refinement).
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < count; ++i) {
      Rect grown = node.entries[i].rect;
      grown.Enlarge(rect);
      double overlap_delta = 0.0;
      for (std::size_t j = 0; j < count; ++j) {
        if (j == i) continue;
        overlap_delta += grown.OverlapArea(node.entries[j].rect) -
                         node.entries[i].rect.OverlapArea(node.entries[j].rect);
      }
      const double enlarge = node.entries[i].rect.Enlargement(rect);
      const double area = node.entries[i].rect.Area();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best = i;
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    return best;
  }
  // Higher levels: minimize area enlargement, ties by area.
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    const double enlarge = node.entries[i].rect.Enlargement(rect);
    const double area = node.entries[i].rect.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = i;
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  return best;
}

Status RStarTree::InsertAtLevel(const Entry& entry, std::uint32_t target_level,
                                std::vector<bool>& reinserted_levels) {
  if (root_ == storage::kInvalidPageId) {
    TSQ_CHECK_EQ(target_level, 0u);
    Node root;
    root.self = file_->Allocate();
    root.level = 0;
    root.entries.push_back(entry);
    root_ = root.self;
    height_ = 1;
    return WriteNode(root);
  }

  // Descend to the target level, remembering the path.
  std::vector<storage::PageId> path{root_};
  Node node;
  TSQ_RETURN_IF_ERROR(ReadNode(root_, &node));
  TSQ_CHECK_GE(node.level, target_level)
      << "reinsertion level deeper than the tree";
  while (node.level > target_level) {
    const std::size_t child_index = ChooseSubtree(node, entry.rect);
    const storage::PageId child =
        static_cast<storage::PageId>(node.entries[child_index].id);
    path.push_back(child);
    TSQ_RETURN_IF_ERROR(ReadNode(child, &node));
  }

  node.entries.push_back(entry);
  if (node.entries.size() <= capacity_) {
    TSQ_RETURN_IF_ERROR(WriteNode(node));
    return AdjustPath(path);
  }
  return OverflowTreatment(std::move(node), std::move(path),
                           reinserted_levels);
}

Status RStarTree::OverflowTreatment(Node node,
                                    std::vector<storage::PageId> path,
                                    std::vector<bool>& reinserted_levels) {
  TSQ_CHECK_LT(node.level, kMaxLevels);
  const bool is_root = node.self == root_;
  if (!is_root && options_.forced_reinsert &&
      !reinserted_levels[node.level]) {
    reinserted_levels[node.level] = true;
    // Remove the p entries whose centers are farthest from the node center.
    const Rect node_rect = NodeRect(node);
    const std::size_t p = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.reinsert_fraction *
                                    static_cast<double>(node.entries.size())));
    std::vector<std::pair<double, std::size_t>> by_distance;
    by_distance.reserve(node.entries.size());
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      by_distance.emplace_back(
          node.entries[i].rect.CenterSquaredDistance(node_rect), i);
    }
    std::sort(by_distance.begin(), by_distance.end());
    // Keep the close ones, reinsert the far ones starting with the closest
    // ("close reinsert" performed best in the R* paper).
    std::vector<Entry> keep, reinsert;
    const std::size_t keep_count = node.entries.size() - p;
    for (std::size_t rank = 0; rank < by_distance.size(); ++rank) {
      const Entry& e = node.entries[by_distance[rank].second];
      if (rank < keep_count) {
        keep.push_back(e);
      } else {
        reinsert.push_back(e);
      }
    }
    node.entries = std::move(keep);
    TSQ_RETURN_IF_ERROR(WriteNode(node));
    TSQ_RETURN_IF_ERROR(AdjustPath(path));
    const std::uint32_t level = node.level;
    for (const Entry& e : reinsert) {
      TSQ_RETURN_IF_ERROR(InsertAtLevel(e, level, reinserted_levels));
    }
    return Status::Ok();
  }
  return SplitNode(std::move(node), std::move(path), reinserted_levels);
}

void RStarTree::ChooseSplit(const std::vector<Entry>& entries,
                            std::vector<Entry>* group_a,
                            std::vector<Entry>* group_b) const {
  const std::size_t total = entries.size();
  const std::size_t m = min_fill_;
  TSQ_CHECK_GE(total, 2 * m);

  // For every axis consider entries sorted by low and by high value; the
  // split axis is the one with the smallest margin sum over all candidate
  // distributions (R* "ChooseSplitAxis").
  std::size_t best_axis = 0;
  bool best_axis_by_low = true;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  // Remember the winning axis' distributions to avoid re-sorting.
  std::vector<std::size_t> best_order;

  std::vector<std::size_t> order(total);
  for (std::size_t axis = 0; axis < dimensions_; ++axis) {
    for (const bool by_low : {true, false}) {
      for (std::size_t i = 0; i < total; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const Rect& ra = entries[a].rect;
        const Rect& rb = entries[b].rect;
        if (by_low) {
          if (ra.low(axis) != rb.low(axis)) return ra.low(axis) < rb.low(axis);
          return ra.high(axis) < rb.high(axis);
        }
        if (ra.high(axis) != rb.high(axis)) {
          return ra.high(axis) < rb.high(axis);
        }
        return ra.low(axis) < rb.low(axis);
      });
      // Prefix/suffix bounding rects for O(n) margin evaluation.
      std::vector<Rect> prefix(total), suffix(total);
      prefix[0] = entries[order[0]].rect;
      for (std::size_t i = 1; i < total; ++i) {
        prefix[i] = prefix[i - 1];
        prefix[i].Enlarge(entries[order[i]].rect);
      }
      suffix[total - 1] = entries[order[total - 1]].rect;
      for (std::size_t i = total - 1; i-- > 0;) {
        suffix[i] = suffix[i + 1];
        suffix[i].Enlarge(entries[order[i]].rect);
      }
      double margin_sum = 0.0;
      for (std::size_t split = m; split + m <= total; ++split) {
        margin_sum += prefix[split - 1].Margin() + suffix[split].Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_low = by_low;
        best_order = order;
      }
    }
  }
  (void)best_axis;
  (void)best_axis_by_low;

  // On the chosen axis/order, pick the distribution with minimum overlap,
  // ties by minimum combined area (R* "ChooseSplitIndex").
  const std::vector<std::size_t>& ord = best_order;
  std::vector<Rect> prefix(total), suffix(total);
  prefix[0] = entries[ord[0]].rect;
  for (std::size_t i = 1; i < total; ++i) {
    prefix[i] = prefix[i - 1];
    prefix[i].Enlarge(entries[ord[i]].rect);
  }
  suffix[total - 1] = entries[ord[total - 1]].rect;
  for (std::size_t i = total - 1; i-- > 0;) {
    suffix[i] = suffix[i + 1];
    suffix[i].Enlarge(entries[ord[i]].rect);
  }
  std::size_t best_split = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (std::size_t split = m; split + m <= total; ++split) {
    const double overlap = prefix[split - 1].OverlapArea(suffix[split]);
    const double area = prefix[split - 1].Area() + suffix[split].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }

  group_a->clear();
  group_b->clear();
  for (std::size_t i = 0; i < total; ++i) {
    if (i < best_split) {
      group_a->push_back(entries[ord[i]]);
    } else {
      group_b->push_back(entries[ord[i]]);
    }
  }
}

Status RStarTree::SplitNode(Node node, std::vector<storage::PageId> path,
                            std::vector<bool>& reinserted_levels) {
  std::vector<Entry> group_a, group_b;
  ChooseSplit(node.entries, &group_a, &group_b);

  Node sibling;
  sibling.self = file_->Allocate();
  sibling.level = node.level;
  sibling.entries = std::move(group_b);
  node.entries = std::move(group_a);
  TSQ_RETURN_IF_ERROR(WriteNode(node));
  TSQ_RETURN_IF_ERROR(WriteNode(sibling));

  if (node.self == root_) {
    Node new_root;
    new_root.self = file_->Allocate();
    new_root.level = node.level + 1;
    new_root.entries.push_back(Entry{NodeRect(node), node.self});
    new_root.entries.push_back(Entry{NodeRect(sibling), sibling.self});
    root_ = new_root.self;
    ++height_;
    return WriteNode(new_root);
  }

  // Replace the parent's entry for `node` and add one for the sibling.
  TSQ_CHECK_GE(path.size(), std::size_t{2});
  path.pop_back();
  Node parent;
  TSQ_RETURN_IF_ERROR(ReadNode(path.back(), &parent));
  bool replaced = false;
  for (Entry& entry : parent.entries) {
    if (entry.id == node.self) {
      entry.rect = NodeRect(node);
      replaced = true;
      break;
    }
  }
  TSQ_CHECK(replaced) << "parent lost track of split child";
  parent.entries.push_back(Entry{NodeRect(sibling), sibling.self});
  if (parent.entries.size() <= capacity_) {
    TSQ_RETURN_IF_ERROR(WriteNode(parent));
    return AdjustPath(path);
  }
  return OverflowTreatment(std::move(parent), std::move(path),
                           reinserted_levels);
}

Status RStarTree::AdjustPath(const std::vector<storage::PageId>& path) {
  // Walk from the deepest ancestor up, refreshing each parent's rect for the
  // child on the path.
  for (std::size_t i = path.size(); i-- > 1;) {
    Node child, parent;
    TSQ_RETURN_IF_ERROR(ReadNode(path[i], &child));
    TSQ_RETURN_IF_ERROR(ReadNode(path[i - 1], &parent));
    bool found = false;
    for (Entry& entry : parent.entries) {
      if (entry.id == path[i]) {
        entry.rect = NodeRect(child);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("path child missing from parent during adjust");
    }
    TSQ_RETURN_IF_ERROR(WriteNode(parent));
  }
  return Status::Ok();
}

Status RStarTree::RestoreForLoad(storage::PageId root, std::size_t height,
                                 std::size_t size) {
  if (root_ != storage::kInvalidPageId) {
    return Status::FailedPrecondition("restore requires an empty tree");
  }
  if (size == 0) {
    if (height != 0 || root != storage::kInvalidPageId) {
      return Status::InvalidArgument("empty tree must have no root");
    }
    return Status::Ok();
  }
  Node probe;
  TSQ_RETURN_IF_ERROR(ReadNode(root, &probe));
  if (probe.level + 1 != height) {
    return Status::Corruption("root level does not match recorded height");
  }
  root_ = root;
  height_ = height;
  size_ = size;
  return Status::Ok();
}

// --- bulk loading ------------------------------------------------------------

namespace {

// Splits `count` items into full groups of `capacity`, except that a short
// remainder below `min_fill` borrows from the previous group so every group
// respects the fill invariant. Returned as end indices.
std::vector<std::size_t> PackedChunks(std::size_t count, std::size_t capacity,
                                      std::size_t min_fill) {
  std::vector<std::size_t> ends;
  std::size_t produced = 0;
  while (count - produced > capacity) {
    const std::size_t remaining_after = count - produced - capacity;
    if (remaining_after >= min_fill || remaining_after == 0) {
      produced += capacity;
    } else {
      // Split the final capacity + remainder evenly across two groups.
      const std::size_t tail = capacity + remaining_after;
      produced += (tail + 1) / 2;
    }
    ends.push_back(produced);
  }
  if (produced < count) ends.push_back(count);
  return ends;
}

}  // namespace

Status RStarTree::BulkLoad(std::vector<Entry> entries) {
  if (root_ != storage::kInvalidPageId) {
    return Status::FailedPrecondition("bulk load requires an empty tree");
  }
  if (entries.empty()) return Status::Ok();
  for (const Entry& entry : entries) {
    TSQ_CHECK_EQ(entry.rect.dimensions(), dimensions_);
  }
  size_ = entries.size();

  // STR tiling: recursively sort by each dimension's center and slice into
  // vertical slabs until groups fit in one node.
  struct Tiler {
    std::size_t dims;
    std::uint32_t capacity;
    std::uint32_t min_fill;

    void Tile(std::vector<Entry>& es, std::size_t lo, std::size_t hi,
              std::size_t dim, std::vector<std::pair<std::size_t, std::size_t>>*
                                   groups) const {
      const std::size_t count = hi - lo;
      if (count <= capacity) {
        groups->emplace_back(lo, hi);
        return;
      }
      std::sort(es.begin() + static_cast<std::ptrdiff_t>(lo),
                es.begin() + static_cast<std::ptrdiff_t>(hi),
                [dim](const Entry& a, const Entry& b) {
                  return a.rect.Center(dim) < b.rect.Center(dim);
                });
      if (dim + 1 == dims) {
        // Last dimension: emit (nearly) full node-size groups.
        std::size_t start = lo;
        for (const std::size_t end : PackedChunks(count, capacity, min_fill)) {
          groups->emplace_back(start, lo + end);
          start = lo + end;
        }
        return;
      }
      // Slabs ~ leaves^(1/remaining dims); each slab holds a whole number of
      // node-size groups so only the last dimension's packing creates any
      // partially-filled node.
      const std::size_t leaves = (count + capacity - 1) / capacity;
      const double exponent = 1.0 / static_cast<double>(dims - dim);
      const std::size_t slabs = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(std::pow(static_cast<double>(leaves), exponent))));
      const std::size_t leaves_per_slab = (leaves + slabs - 1) / slabs;
      std::size_t start = lo;
      for (const std::size_t end :
           PackedChunks(count, leaves_per_slab * capacity,
                        min_fill)) {
        Tile(es, start, lo + end, dim + 1, groups);
        start = lo + end;
      }
    }
  };

  // Build one level: pack `level_entries` into nodes, returning the parent
  // entries.
  std::uint32_t level = 0;
  std::vector<Entry> current = std::move(entries);
  while (true) {
    if (current.size() <= capacity_) {
      Node root;
      root.self = file_->Allocate();
      root.level = level;
      root.entries = std::move(current);
      root_ = root.self;
      height_ = level + 1;
      return WriteNode(root);
    }
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    Tiler tiler{dimensions_, capacity_, min_fill_};
    tiler.Tile(current, 0, current.size(), 0, &groups);
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (const auto& [lo, hi] : groups) {
      TSQ_CHECK_LT(lo, hi);
      Node node;
      node.self = file_->Allocate();
      node.level = level;
      node.entries.assign(current.begin() + static_cast<std::ptrdiff_t>(lo),
                          current.begin() + static_cast<std::ptrdiff_t>(hi));
      TSQ_CHECK_LE(node.entries.size(), capacity_);
      TSQ_RETURN_IF_ERROR(WriteNode(node));
      parents.push_back(Entry{NodeRect(node), node.self});
    }
    current = std::move(parents);
    ++level;
  }
}

// --- deletion ----------------------------------------------------------------

Status RStarTree::FindLeaf(const Node& node, const Rect& rect,
                           std::uint64_t id,
                           std::vector<storage::PageId>& path,
                           bool* found) const {
  path.push_back(node.self);
  if (node.is_leaf()) {
    for (const Entry& entry : node.entries) {
      if (entry.id == id && entry.rect == rect) {
        *found = true;
        return Status::Ok();
      }
    }
    path.pop_back();
    return Status::Ok();
  }
  for (const Entry& entry : node.entries) {
    if (!entry.rect.Contains(rect)) continue;
    Node child;
    TSQ_RETURN_IF_ERROR(
        ReadNode(static_cast<storage::PageId>(entry.id), &child));
    TSQ_RETURN_IF_ERROR(FindLeaf(child, rect, id, path, found));
    if (*found) return Status::Ok();
  }
  path.pop_back();
  return Status::Ok();
}

Status RStarTree::Delete(const Rect& rect, std::uint64_t id) {
  if (root_ == storage::kInvalidPageId) {
    return Status::NotFound("delete from empty tree");
  }
  Node root;
  TSQ_RETURN_IF_ERROR(ReadNode(root_, &root));
  std::vector<storage::PageId> path;
  bool found = false;
  TSQ_RETURN_IF_ERROR(FindLeaf(root, rect, id, path, &found));
  if (!found) return Status::NotFound("entry not in tree");

  // ---- Phase 1: reads and in-memory planning only. Nothing is written
  // until every fallible read has succeeded, so a failure up to the apply
  // marker below (an injected read fault included) leaves the tree exactly
  // as it was. ----
  std::vector<Node> nodes(path.size());
  nodes[0] = std::move(root);
  for (std::size_t i = 1; i < path.size(); ++i) {
    TSQ_RETURN_IF_ERROR(ReadNode(path[i], &nodes[i]));
  }

  // Erase the entry from the in-memory leaf.
  Node& leaf = nodes.back();
  auto it = std::find_if(leaf.entries.begin(), leaf.entries.end(),
                         [&](const Entry& e) {
                           return e.id == id && e.rect == rect;
                         });
  TSQ_CHECK(it != leaf.entries.end());
  leaf.entries.erase(it);

  // Condense in memory: walking up from the leaf, orphan underfull nodes
  // (their surviving entries get reinserted below) and refresh ancestor
  // rects.
  std::vector<bool> alive(nodes.size(), true);
  std::vector<std::pair<Entry, std::uint32_t>> orphans;
  for (std::size_t i = nodes.size(); i-- > 1;) {
    Node& node = nodes[i];
    Node& parent = nodes[i - 1];
    auto entry_it = std::find_if(
        parent.entries.begin(), parent.entries.end(),
        [&](const Entry& e) { return e.id == path[i]; });
    TSQ_CHECK(entry_it != parent.entries.end());
    if (node.entries.size() < min_fill_) {
      for (const Entry& e : node.entries) {
        orphans.emplace_back(e, node.level);
      }
      parent.entries.erase(entry_it);
      alive[i] = false;
    } else {
      entry_it->rect = NodeRect(node);
    }
  }

  // Plan the root shrink: single-child internal roots collapse into their
  // child. Off-path replacement roots need a read, which is still phase-1
  // work.
  storage::PageId new_root = root_;
  std::size_t new_height = height_;
  Node current = nodes[0];
  while (!current.is_leaf() && current.entries.size() == 1) {
    new_root = static_cast<storage::PageId>(current.entries.front().id);
    --new_height;
    bool on_path = false;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (path[i] == new_root && alive[i]) {
        current = nodes[i];
        on_path = true;
        break;
      }
    }
    if (!on_path) {
      TSQ_RETURN_IF_ERROR(ReadNode(new_root, &current));
    }
  }
  if (current.is_leaf() && current.entries.empty()) {
    new_root = storage::kInvalidPageId;
    new_height = 0;
  }

  // ---- Phase 2: apply. Node writes never consult the read-fault hook, so
  // a delete that triggers no underflow (the common case) is now
  // failure-atomic under fault injection. ----
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (alive[i]) TSQ_RETURN_IF_ERROR(WriteNode(nodes[i]));
  }
  root_ = new_root;
  height_ = new_height;
  --size_;

  // Reinsert orphans at their original levels (deepest first so that leaf
  // entries go back before higher-level subtrees rely on them). This is the
  // one part of a delete that can still fail after mutation — reinsertion
  // traverses (reads) the tree — which is why SequenceIndex::Rebuild exists
  // as the caller-level compensation.
  std::sort(orphans.begin(), orphans.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [entry, level] : orphans) {
    std::vector<bool> reinserted(kMaxLevels, false);
    if (root_ == storage::kInvalidPageId && level > 0) {
      return Status::Internal("orphaned subtree with no tree to hold it");
    }
    TSQ_RETURN_IF_ERROR(InsertAtLevel(entry, level, reinserted));
  }
  return Status::Ok();
}

// --- search ------------------------------------------------------------------

Status RStarTree::Search(const RectPredicate& predicate,
                         std::vector<Entry>* results,
                         SearchStats* stats) const {
  if (root_ == storage::kInvalidPageId) return Status::Ok();
  std::vector<storage::PageId> stack{root_};
  while (!stack.empty()) {
    const storage::PageId page = stack.back();
    stack.pop_back();
    Node node;
    TSQ_RETURN_IF_ERROR(ReadNode(page, &node, stats));
    for (const Entry& entry : node.entries) {
      if (!predicate(entry.rect)) continue;
      if (node.is_leaf()) {
        results->push_back(entry);
        if (stats != nullptr) ++stats->matches;
      } else {
        stack.push_back(static_cast<storage::PageId>(entry.id));
      }
    }
  }
  return Status::Ok();
}

Status RStarTree::WindowQuery(const Rect& window, std::vector<Entry>* results,
                              SearchStats* stats) const {
  return Search(
      [&window](const Rect& rect) { return window.Intersects(rect); },
      results, stats);
}

Status RStarTree::NearestNeighbors(std::size_t k,
                                   const RectDistance& node_distance,
                                   const RectDistance& entry_distance,
                                   std::vector<Neighbor>* results,
                                   SearchStats* stats) const {
  results->clear();
  if (root_ == storage::kInvalidPageId || k == 0) return Status::Ok();

  struct QueueItem {
    double distance;
    storage::PageId page;
    bool operator>(const QueueItem& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      frontier;
  frontier.push({0.0, root_});

  // Max-heap of the best k found so far, keyed by distance.
  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a.squared_distance < b.squared_distance;
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(worse)> best(
      worse);

  while (!frontier.empty()) {
    const QueueItem item = frontier.top();
    frontier.pop();
    if (best.size() == k && item.distance > best.top().squared_distance) {
      break;  // Everything left is farther than the current k-th best.
    }
    Node node;
    TSQ_RETURN_IF_ERROR(ReadNode(item.page, &node, stats));
    for (const Entry& entry : node.entries) {
      if (node.is_leaf()) {
        const double d = entry_distance(entry.rect);
        if (best.size() < k) {
          best.push(Neighbor{entry, d});
        } else if (d < best.top().squared_distance) {
          best.pop();
          best.push(Neighbor{entry, d});
        }
      } else {
        const double d = node_distance(entry.rect);
        if (best.size() < k || d <= best.top().squared_distance) {
          frontier.push({d, static_cast<storage::PageId>(entry.id)});
        }
      }
    }
  }

  results->reserve(best.size());
  while (!best.empty()) {
    results->push_back(best.top());
    best.pop();
  }
  std::reverse(results->begin(), results->end());
  if (stats != nullptr) stats->matches += results->size();
  return Status::Ok();
}

Status RStarTree::NearestNeighbors(std::size_t k, const Point& query,
                                   std::vector<Neighbor>* results,
                                   SearchStats* stats) const {
  const auto distance = [&query](const Rect& rect) {
    return rect.MinSquaredDistance(query);
  };
  return NearestNeighbors(k, distance, distance, results, stats);
}

// --- introspection -----------------------------------------------------------

std::optional<Rect> RStarTree::RootRect() const {
  if (root_ == storage::kInvalidPageId) return std::nullopt;
  Node root;
  if (!ReadNode(root_, &root).ok() || root.entries.empty()) {
    return std::nullopt;
  }
  return NodeRect(root);
}

Status RStarTree::VisitNodes(
    const std::function<void(const NodeView&)>& fn) const {
  if (root_ == storage::kInvalidPageId) return Status::Ok();
  std::vector<storage::PageId> stack{root_};
  while (!stack.empty()) {
    const storage::PageId page = stack.back();
    stack.pop_back();
    Node node;
    TSQ_RETURN_IF_ERROR(ReadNode(page, &node));
    NodeView view{node.level, page, node.is_leaf(), node.entries};
    fn(view);
    if (!node.is_leaf()) {
      for (const Entry& entry : node.entries) {
        stack.push_back(static_cast<storage::PageId>(entry.id));
      }
    }
  }
  return Status::Ok();
}

Status RStarTree::ReadNodeView(storage::PageId page, NodeView* out,
                               SearchStats* stats) const {
  Node node;
  TSQ_RETURN_IF_ERROR(ReadNode(page, &node, stats));
  out->level = node.level;
  out->page = page;
  out->is_leaf = node.is_leaf();
  out->entries = std::move(node.entries);
  return Status::Ok();
}

Status RStarTree::CheckInvariants() const {
  if (root_ == storage::kInvalidPageId) {
    if (size_ != 0) return Status::Internal("empty tree with nonzero size");
    return Status::Ok();
  }
  std::size_t leaf_entries = 0;
  std::optional<std::uint32_t> leaf_level;
  Status failure = Status::Ok();

  // (page, expected rect or nullopt for root, expected level or nullopt).
  struct Pending {
    storage::PageId page;
    std::optional<Rect> rect;
    std::optional<std::uint32_t> level;
  };
  std::vector<Pending> stack{{root_, std::nullopt, std::nullopt}};
  while (!stack.empty()) {
    const Pending item = stack.back();
    stack.pop_back();
    Node node;
    TSQ_RETURN_IF_ERROR(ReadNode(item.page, &node));
    if (node.entries.empty()) {
      return Status::Internal("empty node in non-empty tree");
    }
    if (item.level.has_value() && node.level != *item.level) {
      return Status::Internal("child level does not match parent level - 1");
    }
    if (item.rect.has_value() && !(NodeRect(node) == *item.rect)) {
      return Status::Internal("parent rect is not the tight MBR of child");
    }
    const bool is_root = item.page == root_;
    if (!is_root && node.entries.size() < min_fill_) {
      return Status::Internal("node underflow");
    }
    if (node.entries.size() > capacity_) {
      return Status::Internal("node overflow");
    }
    if (node.is_leaf()) {
      if (leaf_level.has_value() && node.level != *leaf_level) {
        return Status::Internal("leaves at different levels");
      }
      leaf_level = node.level;
      leaf_entries += node.entries.size();
    } else {
      for (const Entry& entry : node.entries) {
        stack.push_back(Pending{static_cast<storage::PageId>(entry.id),
                                entry.rect, node.level - 1});
      }
    }
  }
  if (leaf_entries != size_) {
    return Status::Internal("leaf entry count does not match size()");
  }
  return failure;
}

}  // namespace tsq::rstar
