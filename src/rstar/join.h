#ifndef TSQ_RSTAR_JOIN_H_
#define TSQ_RSTAR_JOIN_H_

#include <functional>

#include "common/status.h"
#include "rstar/rstar_tree.h"

namespace tsq::rstar {

/// A rectangle-pair predicate used to prune the synchronized traversal. Must
/// be *monotone*: whenever it rejects a pair of rectangles, it must also
/// reject every pair of rectangles contained in them. (Intersection tests and
/// transformed-intersection tests are monotone.)
using JoinPredicate = std::function<bool(const Rect&, const Rect&)>;

/// Receives each qualifying pair of leaf entries (one from each tree). The
/// entry rects passed to the callback are the *original* (unmapped) ones.
using JoinCallback =
    std::function<void(const Entry& left, const Entry& right)>;

/// Optional per-side rectangle preprocessing (e.g. applying a transformation
/// MBR, Section 4.1's join): applied once per entry when its node is first
/// loaded, so the cost is not paid per candidate pair.
using RectMap = std::function<Rect(const Rect&)>;

struct JoinOptions {
  RectMap left_map;   // identity when empty
  RectMap right_map;  // identity when empty
};

/// R-tree spatial join by synchronized depth-first traversal (Brinkhoff,
/// Kriegel, Seeger; SIGMOD 1993 — without the plane-sweep refinement).
///
/// Descends both trees in lockstep, pruning any node pair whose (mapped)
/// bounding rects fail `predicate`, and invokes `callback` on every
/// qualifying pair of leaf entries. Nodes are read through a join-local
/// cache (each page is fetched from the file at most once per join, the
/// behaviour of a buffered R*-tree), and `left_stats`/`right_stats` count
/// those physical fetches. The trees may be the same object (self-join); the
/// callback then sees each unordered pair twice (plus identity pairs) —
/// filter by id in the callback.
Status SpatialJoin(const RStarTree& left, const RStarTree& right,
                   const JoinPredicate& predicate,
                   const JoinCallback& callback,
                   SearchStats* left_stats = nullptr,
                   SearchStats* right_stats = nullptr,
                   const JoinOptions& options = JoinOptions());

}  // namespace tsq::rstar

#endif  // TSQ_RSTAR_JOIN_H_
