#ifndef TSQ_TSQ_H_
#define TSQ_TSQ_H_

/// Umbrella header: everything an application needs to load sequences, build
/// a SimilarityEngine and run similarity queries, in one include.
///
///   #include "tsq.h"
///
///   tsq::core::SimilarityEngine engine(std::move(series));
///   tsq::core::RangeQuerySpec spec;
///   ...
///   auto result = engine.Execute(spec, {.num_threads = 4});
///
/// Internal layers (storage pages, R*-tree nodes, DFT plans) are reachable
/// through these headers but are not part of the stable surface; the stable
/// surface is SimilarityEngine::Execute, the three QuerySpec alternatives,
/// ExecOptions, the transform builders and the lang compiler.

#include "common/status.h"       // Status, Result<T>
#include "core/cost_model.h"     // Eq. 18-20 cost model
#include "core/engine.h"         // SimilarityEngine, QuerySpec, QueryResult
#include "core/explain.h"        // Explain / ExplainJson over a QueryResult
#include "core/query.h"          // Algorithm, ExecOptions, specs and stats
#include "exec/parallel.h"       // ParallelFor (used by custom drivers)
#include "obs/metrics.h"         // process-wide MetricsRegistry
#include "obs/trace.h"           // QueryTrace, FormatTrace, TraceToJson
#include "lang/compiler.h"       // textual query language -> QuerySpec
#include "subseq/subsequence_index.h"  // Section 5 subsequence queries
#include "transform/builders.h"  // MovingAverageRange, TimeShiftRange, ...
#include "transform/cluster.h"   // transformation-set clustering (Sec. 4.3)
#include "transform/ordering.h"  // dominance chains (Sec. 4.4)
#include "ts/distance.h"         // D(x, y), CorrelationToDistanceThreshold
#include "ts/generate.h"         // synthetic random walks
#include "ts/io.h"               // CSV loading
#include "ts/ops.h"              // moving average, shifts, ...

#endif  // TSQ_TSQ_H_
