#include "ts/ops.h"

#include "common/check.h"

namespace tsq::ts {

Series CircularMovingAverage(std::span<const double> x, std::size_t w) {
  const std::size_t n = x.size();
  TSQ_CHECK_GE(w, std::size_t{1});
  TSQ_CHECK_LE(w, n);
  Series out(n, 0.0);
  // Sliding-window sum over the circular trailing window.
  double window = 0.0;
  for (std::size_t k = 0; k < w; ++k) {
    window += x[(n - k) % n];  // x_0, x_{n-1}, ..., x_{n-w+1}
  }
  const double inv_w = 1.0 / static_cast<double>(w);
  out[0] = window * inv_w;
  for (std::size_t i = 1; i < n; ++i) {
    window += x[i] - x[(i + n - w) % n];
    out[i] = window * inv_w;
  }
  return out;
}

Series MovingAverage(std::span<const double> x, std::size_t w) {
  const std::size_t n = x.size();
  TSQ_CHECK_GE(w, std::size_t{1});
  TSQ_CHECK_LE(w, n);
  Series out(n - w + 1, 0.0);
  double window = 0.0;
  for (std::size_t k = 0; k < w; ++k) window += x[k];
  const double inv_w = 1.0 / static_cast<double>(w);
  out[0] = window * inv_w;
  for (std::size_t i = 1; i + w <= n; ++i) {
    window += x[i + w - 1] - x[i - 1];
    out[i] = window * inv_w;
  }
  return out;
}

Series CircularMomentum(std::span<const double> x) {
  return CircularMomentum(x, 1);
}

Series CircularMomentum(std::span<const double> x, std::size_t step) {
  const std::size_t n = x.size();
  TSQ_CHECK_GE(step, std::size_t{1});
  TSQ_CHECK_LT(step, n);
  Series out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = x[i] - x[(i + n - step) % n];
  }
  return out;
}

Series Momentum(std::span<const double> x) {
  const std::size_t n = x.size();
  TSQ_CHECK_GE(n, std::size_t{2});
  Series out(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) out[i] = x[i + 1] - x[i];
  return out;
}

Series CircularShift(std::span<const double> x, std::size_t s) {
  const std::size_t n = x.size();
  TSQ_CHECK_GE(n, std::size_t{1});
  Series out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + n - s % n) % n];
  return out;
}

Series PaddedShift(std::span<const double> x, std::size_t s) {
  const std::size_t n = x.size();
  Series out(n, 0.0);
  for (std::size_t i = s; i < n; ++i) out[i] = x[i - s];
  return out;
}

Series Scale(std::span<const double> x, double factor) {
  return AffineMap(x, factor, 0.0);
}

Series Invert(std::span<const double> x) { return Scale(x, -1.0); }

}  // namespace tsq::ts
