#include "ts/normal_form.h"

#include "common/check.h"

namespace tsq::ts {

NormalForm Normalize(std::span<const double> x) {
  TSQ_CHECK_GE(x.size(), std::size_t{1});
  const SeriesStats stats = ComputeStats(x);
  NormalForm out;
  out.mean = stats.mean;
  out.stddev = stats.stddev;
  if (stats.stddev == 0.0) {
    out.values.assign(x.size(), 0.0);
    return out;
  }
  out.values = AffineMap(x, 1.0 / stats.stddev, -stats.mean / stats.stddev);
  return out;
}

Series Denormalize(const NormalForm& normal) {
  return AffineMap(normal.values, normal.stddev, normal.mean);
}

}  // namespace tsq::ts
