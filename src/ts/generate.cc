#include "ts/generate.h"

#include <cmath>

#include "common/check.h"

namespace tsq::ts {

Series GenerateRandomWalk(std::size_t length, double step, Rng& rng) {
  TSQ_CHECK_GE(length, std::size_t{1});
  Series x(length);
  double value = 0.0;
  for (std::size_t t = 0; t < length; ++t) {
    value += rng.Uniform(-step, step);
    x[t] = value;
  }
  return x;
}

std::vector<Series> GenerateRandomWalks(const RandomWalkConfig& config) {
  Rng rng(config.seed);
  std::vector<Series> out;
  out.reserve(config.num_series);
  for (std::size_t i = 0; i < config.num_series; ++i) {
    out.push_back(GenerateRandomWalk(config.length, config.step, rng));
  }
  return out;
}

std::vector<Series> GenerateSeasonal(const SeasonalConfig& config) {
  TSQ_CHECK_GE(config.num_series, std::size_t{1});
  TSQ_CHECK_GE(config.length, std::size_t{2});
  TSQ_CHECK(!config.harmonics.empty());
  Rng rng(config.seed);
  const double two_pi = 2.0 * 3.14159265358979323846;
  std::vector<Series> out;
  out.reserve(config.num_series);
  for (std::size_t i = 0; i < config.num_series; ++i) {
    Series x(config.length, 0.0);
    for (const std::size_t harmonic : config.harmonics) {
      TSQ_CHECK_LT(harmonic, config.length / 2 + 1);
      const double amplitude =
          rng.Uniform(config.amplitude_min, config.amplitude_max);
      const double phase = rng.Uniform(0.0, two_pi);
      for (std::size_t t = 0; t < config.length; ++t) {
        x[t] += amplitude *
                std::cos(two_pi * static_cast<double>(harmonic * t) /
                             static_cast<double>(config.length) +
                         phase);
      }
    }
    for (double& v : x) v += config.noise * rng.NextGaussian();
    out.push_back(std::move(x));
  }
  return out;
}

std::vector<Series> GenerateStockMarket(const StockMarketConfig& config) {
  TSQ_CHECK_GE(config.num_series, std::size_t{1});
  TSQ_CHECK_GE(config.length, std::size_t{2});
  TSQ_CHECK_GE(config.num_sectors, std::size_t{1});
  Rng rng(config.seed);

  // Shared factor return paths.
  std::vector<double> market(config.length);
  for (double& r : market) r = config.market_vol * rng.NextGaussian();
  std::vector<std::vector<double>> sectors(config.num_sectors,
                                           std::vector<double>(config.length));
  for (auto& sector : sectors) {
    for (double& r : sector) r = config.sector_vol * rng.NextGaussian();
  }

  // Sector-level factor loadings; stocks jitter around them, so intra-sector
  // pairs with small idiosyncratic volatility are near-duplicates (the
  // rho >= 0.99 join tail) while cross-sector pairs are merely correlated.
  std::vector<double> sector_beta(config.num_sectors);
  std::vector<double> sector_gamma(config.num_sectors);
  for (std::size_t s = 0; s < config.num_sectors; ++s) {
    sector_beta[s] = rng.Uniform(0.7, 1.3);
    sector_gamma[s] = rng.Uniform(0.7, 1.3);
  }

  std::vector<Series> out;
  out.reserve(config.num_series);
  for (std::size_t i = 0; i < config.num_series; ++i) {
    const std::size_t sector = i % config.num_sectors;
    const double beta = sector_beta[sector] * rng.Uniform(0.97, 1.03);
    const double gamma = sector_gamma[sector] * rng.Uniform(0.97, 1.03);
    const double idio_vol =
        rng.Uniform(config.idio_vol_min, config.idio_vol_max);
    Series price(config.length);
    double log_price = std::log(config.start_price);
    for (std::size_t t = 0; t < config.length; ++t) {
      const double ret = beta * market[t] + gamma * sectors[sector][t] +
                         idio_vol * rng.NextGaussian();
      log_price += ret;
      price[t] = std::exp(log_price);
    }
    out.push_back(std::move(price));
  }
  return out;
}

}  // namespace tsq::ts
