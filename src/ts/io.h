#ifndef TSQ_TS_IO_H_
#define TSQ_TS_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace tsq::ts {

/// Writes one series per row as comma-separated values. Rows may have
/// different lengths. Overwrites the file if it exists.
Status WriteCsv(const std::string& path, const std::vector<Series>& data);

/// Reads a CSV written by WriteCsv (or any numeric CSV, one series per row).
/// Blank lines are skipped; a non-numeric field yields an error.
Result<std::vector<Series>> ReadCsv(const std::string& path);

}  // namespace tsq::ts

#endif  // TSQ_TS_IO_H_
