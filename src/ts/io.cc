#include "ts/io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tsq::ts {

Status WriteCsv(const std::string& path, const std::vector<Series>& data) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.precision(17);
  for (const Series& row : data) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<Series>> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<Series> data;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    Series row;
    std::stringstream fields(line);
    std::string field;
    while (std::getline(fields, field, ',')) {
      char* end = nullptr;
      errno = 0;
      const double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || errno == ERANGE) {
        std::ostringstream msg;
        msg << path << ":" << line_number << ": not a number: '" << field
            << "'";
        return Status::Corruption(msg.str());
      }
      row.push_back(value);
    }
    data.push_back(std::move(row));
  }
  return data;
}

}  // namespace tsq::ts
