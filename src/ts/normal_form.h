#ifndef TSQ_TS_NORMAL_FORM_H_
#define TSQ_TS_NORMAL_FORM_H_

#include <span>

#include "ts/series.h"

namespace tsq::ts {

/// A series in normal form together with the statistics that were removed.
///
/// The normal form of x (Section 3.2) is the transformation
/// (1/sigma, -mu/sigma) applied element-wise, i.e. (x - mu) / sigma with the
/// *sample* standard deviation. It minimizes Euclidean distance w.r.t.
/// scalar shift, and ties the Euclidean distance to cross-correlation via
/// Eq. 9. The original mean and standard deviation are retained so the raw
/// series can be reconstructed and, as in the paper's index layout, stored as
/// extra index dimensions.
struct NormalForm {
  Series values;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes the normal form. A constant series (stddev == 0) maps to the
/// all-zero series with its stddev recorded as 0; Denormalize restores it.
/// Requires x.size() >= 1.
NormalForm Normalize(std::span<const double> x);

/// Reconstructs the original series: x = normal * stddev + mean.
Series Denormalize(const NormalForm& normal);

}  // namespace tsq::ts

#endif  // TSQ_TS_NORMAL_FORM_H_
