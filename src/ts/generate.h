#ifndef TSQ_TS_GENERATE_H_
#define TSQ_TS_GENERATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ts/series.h"

namespace tsq::ts {

/// The paper's synthetic workload (Section 5): random walks
///   x_t = x_{t-1} + z_t,  z_t ~ Uniform[-step, step]
/// with step = 500 as in the paper.
struct RandomWalkConfig {
  std::size_t num_series = 1000;
  std::size_t length = 128;
  double step = 500.0;
  std::uint64_t seed = 42;
};

/// Generates `config.num_series` independent random walks.
std::vector<Series> GenerateRandomWalks(const RandomWalkConfig& config);

/// Synthetic replacement for the paper's stock data set (1068 stocks, 128
/// daily closes, from the long-dead ftp.ai.mit.edu archive).
///
/// Prices follow correlated geometric random walks driven by a factor model:
///   r_t(i) = beta_i * market_t + gamma_i * sector_{s(i),t} + idio_vol_i * e_t
///   price_t(i) = price_{t-1}(i) * exp(r_t(i))
/// Stocks in the same sector share the sector factor, producing the heavy
/// tail of highly-correlated pairs the paper's join experiment (Fig. 7)
/// depends on; per-stock idiosyncratic volatility is drawn from
/// [idio_vol_min, idio_vol_max] so some pairs are near-duplicates (join
/// output non-empty at rho >= 0.99) while most are not.
struct StockMarketConfig {
  std::size_t num_series = 1068;  // as in the paper
  std::size_t length = 128;       // as in the paper
  std::size_t num_sectors = 30;
  double market_vol = 0.008;
  double sector_vol = 0.012;
  double idio_vol_min = 0.0005;
  double idio_vol_max = 0.02;
  double start_price = 100.0;
  std::uint64_t seed = 1999;
};

/// Generates `config.num_series` daily closing-price series.
std::vector<Series> GenerateStockMarket(const StockMarketConfig& config);

/// One series from the paper's random-walk recipe (helper for tests).
Series GenerateRandomWalk(std::size_t length, double step, Rng& rng);

/// Seasonal workload: each series is a sum of a few shared harmonics with
/// per-series amplitudes/phases plus noise — energy concentrated at known
/// DFT coefficients, the classic case for Fourier-based indexing and for
/// band-pass transformations.
struct SeasonalConfig {
  std::size_t num_series = 500;
  std::size_t length = 128;
  /// DFT bands carrying the signal (cycles per series length).
  std::vector<std::size_t> harmonics = {1, 2, 7};
  double amplitude_min = 0.5;
  double amplitude_max = 2.0;
  double noise = 0.2;
  std::uint64_t seed = 7;
};

std::vector<Series> GenerateSeasonal(const SeasonalConfig& config);

}  // namespace tsq::ts

#endif  // TSQ_TS_GENERATE_H_
