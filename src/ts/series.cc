#include "ts/series.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace tsq::ts {

SeriesStats ComputeStats(std::span<const double> x) {
  TSQ_CHECK_GE(x.size(), std::size_t{1});
  double sum = 0.0;
  for (double v : x) sum += v;
  const double mean = sum / static_cast<double>(x.size());
  if (x.size() == 1) return SeriesStats{mean, 0.0};
  double ss = 0.0;
  for (double v : x) {
    const double d = v - mean;
    ss += d * d;
  }
  const double var = ss / static_cast<double>(x.size() - 1);
  return SeriesStats{mean, std::sqrt(var)};
}

Series AffineMap(std::span<const double> x, double a, double b) {
  Series out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = a * x[i] + b;
  return out;
}

Series Subtract(std::span<const double> x, std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  Series out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

std::string Preview(std::span<const double> x, std::size_t max_values) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < x.size() && i < max_values; ++i) {
    if (i > 0) os << ", ";
    os << x[i];
  }
  if (x.size() > max_values) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace tsq::ts
