#include "ts/distance.h"

#include <cmath>

#include "common/check.h"
#include "ts/series.h"

namespace tsq::ts {

double SquaredEuclideanDistance(std::span<const double> x,
                                std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

double EuclideanDistance(std::span<const double> x, std::span<const double> y) {
  return std::sqrt(SquaredEuclideanDistance(x, y));
}

double CityBlockDistance(std::span<const double> x, std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::fabs(x[i] - y[i]);
  return acc;
}

double CrossCorrelation(std::span<const double> x, std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  TSQ_CHECK_GE(x.size(), std::size_t{2});
  const SeriesStats sx = ComputeStats(x);
  const SeriesStats sy = ComputeStats(y);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double dot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) dot += x[i] * y[i];
  const double mean_xy = dot / static_cast<double>(x.size());
  return (mean_xy - sx.mean * sy.mean) / (sx.stddev * sy.stddev);
}

double CorrelationToSquaredDistance(double rho, std::size_t n) {
  const double d2 = 2.0 * (static_cast<double>(n) - 1.0 -
                           static_cast<double>(n) * rho);
  return d2 < 0.0 ? 0.0 : d2;
}

double CorrelationToDistanceThreshold(double min_correlation, std::size_t n) {
  return std::sqrt(CorrelationToSquaredDistance(min_correlation, n));
}

double SquaredDistanceToCorrelation(double squared_distance, std::size_t n) {
  TSQ_CHECK_GE(n, std::size_t{1});
  return (static_cast<double>(n) - 1.0 - squared_distance / 2.0) /
         static_cast<double>(n);
}

}  // namespace tsq::ts
