#include "ts/distance.h"

#include <cmath>

#include "common/check.h"
#include "kernels/kernels.h"
#include "ts/series.h"

namespace tsq::ts {

double SquaredEuclideanDistance(std::span<const double> x,
                                std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  return kernels::SquaredDistance(x, y);
}

double EuclideanDistance(std::span<const double> x, std::span<const double> y) {
  return std::sqrt(SquaredEuclideanDistance(x, y));
}

double CityBlockDistance(std::span<const double> x, std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::fabs(x[i] - y[i]);
  return acc;
}

double CrossCorrelation(std::span<const double> x, std::span<const double> y) {
  TSQ_CHECK_EQ(x.size(), y.size());
  TSQ_CHECK_GE(x.size(), std::size_t{2});
  const double n = static_cast<double>(x.size());
  // One fused pass over values shifted by x[0]/y[0]. Shifting keeps the
  // sums-of-squares subtraction below well-conditioned even for series with
  // a huge mean and tiny variance, where the old three-pass
  // mean/stddev/dot formulation lost all significant digits.
  const kernels::CorrelationSums s =
      kernels::ShiftedCorrelationSums(x, y, x[0], y[0]);
  const double ss_x = s.dxx - s.dx * s.dx / n;
  const double ss_y = s.dyy - s.dy * s.dy / n;
  if (ss_x <= 0.0 || ss_y <= 0.0) return 0.0;
  const double ss_xy = s.dxy - s.dx * s.dy / n;
  // Matches the historical convention: covariance over n, stddevs over n-1,
  // so |rho| peaks at (n-1)/n rather than 1.
  return (n - 1.0) / n * ss_xy / std::sqrt(ss_x * ss_y);
}

double CorrelationToSquaredDistance(double rho, std::size_t n) {
  const double d2 = 2.0 * (static_cast<double>(n) - 1.0 -
                           static_cast<double>(n) * rho);
  return d2 < 0.0 ? 0.0 : d2;
}

double CorrelationToDistanceThreshold(double min_correlation, std::size_t n) {
  return std::sqrt(CorrelationToSquaredDistance(min_correlation, n));
}

double SquaredDistanceToCorrelation(double squared_distance, std::size_t n) {
  TSQ_CHECK_GE(n, std::size_t{1});
  return (static_cast<double>(n) - 1.0 - squared_distance / 2.0) /
         static_cast<double>(n);
}

}  // namespace tsq::ts
