#ifndef TSQ_TS_SERIES_H_
#define TSQ_TS_SERIES_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tsq::ts {

/// A time series is a finite sequence of real values, one per time point.
/// Plain std::vector keeps the numeric kernels composable with the STL.
using Series = std::vector<double>;

/// Summary statistics of a series.
///
/// `stddev` is the *sample* standard deviation (n-1 denominator). The paper's
/// Eq. 9 -- D^2(X,Y) = 2(n - 1 - n*rho(X,Y)) for normal-form sequences --
/// holds exactly only under this convention (a normal form then satisfies
/// sum(x_t^2) = n-1), so the whole library standardizes on it.
struct SeriesStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes mean and sample standard deviation. Requires x.size() >= 1;
/// stddev is 0 for length-1 or constant series.
SeriesStats ComputeStats(std::span<const double> x);

/// Element-wise a*x + b.
Series AffineMap(std::span<const double> x, double a, double b);

/// Element-wise difference x - y. Requires equal sizes.
Series Subtract(std::span<const double> x, std::span<const double> y);

/// Renders a short, human-readable preview ("[1, 2, 3, ...]") for logging.
std::string Preview(std::span<const double> x, std::size_t max_values = 8);

}  // namespace tsq::ts

#endif  // TSQ_TS_SERIES_H_
