#ifndef TSQ_TS_OPS_H_
#define TSQ_TS_OPS_H_

#include <cstddef>
#include <span>

#include "ts/series.h"

namespace tsq::ts {

/// w-day moving average over a circular (wrap-around) window:
///   y_i = (1/w) * sum_{k=0}^{w-1} x_{(i-k) mod n}
/// (a *trailing* window, the convention used in stock chart analysis and the
/// one that reproduces the paper's Appendix examples). Output has length n.
/// Requires 1 <= w <= n.
///
/// Circular moving average is exactly a circular convolution, so it has an
/// exact per-coefficient action in the frequency domain
/// (transform::MovingAverageTransform).
Series CircularMovingAverage(std::span<const double> x, std::size_t w);

/// w-day moving average over full (non-wrapping) windows:
///   y_i = (1/w) * sum_{k=0}^{w-1} x_{i+k},  i in [0, n-w]
/// Output has length n - w + 1. Requires 1 <= w <= n.
Series MovingAverage(std::span<const double> x, std::size_t w);

/// Circular momentum (the paper's Section 3.1.1 kernel [1, -1, 0, ...]):
///   y_i = x_i - x_{(i-1) mod n}
/// Output has length n.
Series CircularMomentum(std::span<const double> x);

/// n-step circular momentum: y_i = x_i - x_{(i-step) mod n}.
/// Requires 1 <= step < n.
Series CircularMomentum(std::span<const double> x, std::size_t step);

/// Non-circular momentum: y_i = x_{i+1} - x_i, output length n - 1.
/// Requires n >= 2.
Series Momentum(std::span<const double> x);

/// Circular right-shift by `s` positions: y_i = x_{(i-s) mod n}.
Series CircularShift(std::span<const double> x, std::size_t s);

/// The paper's Section 3.1.2 shift: pad `s` zeros at the front, drop the
/// overflow, keeping length n: y_i = 0 for i < s, else x_{i-s}.
Series PaddedShift(std::span<const double> x, std::size_t s);

/// Scales every value by `factor`.
Series Scale(std::span<const double> x, double factor);

/// Inverts a series (multiplies by -1); the transformation the paper adds in
/// Section 5.2 to create a second transformation cluster.
Series Invert(std::span<const double> x);

}  // namespace tsq::ts

#endif  // TSQ_TS_OPS_H_
