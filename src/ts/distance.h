#ifndef TSQ_TS_DISTANCE_H_
#define TSQ_TS_DISTANCE_H_

#include <span>

namespace tsq::ts {

/// Squared Euclidean distance sum((x_i - y_i)^2). Requires equal sizes.
double SquaredEuclideanDistance(std::span<const double> x,
                                std::span<const double> y);

/// Euclidean distance. Requires equal sizes.
double EuclideanDistance(std::span<const double> x, std::span<const double> y);

/// City-block (L1) distance. Requires equal sizes.
double CityBlockDistance(std::span<const double> x, std::span<const double> y);

/// Pearson cross-correlation as the paper's footnote 5 defines it:
///   rho(X, Y) = (mean(X.*Y) - mean(X)*mean(Y)) / (std(X) * std(Y))
/// with sample (n-1) standard deviations but a 1/n expectation, the mixed
/// convention under which Eq. 9 is an exact identity. Note the consequence:
/// |rho| <= (n-1)/n, i.e. a perfectly correlated pair scores (n-1)/n, not 1
/// (for n = 128 the ceiling is ~0.9922, which is why the paper's rho >= 0.99
/// join threshold is a near-duplicate test). Returns 0 when either series is
/// constant (zero variance). Requires equal sizes >= 2.
double CrossCorrelation(std::span<const double> x, std::span<const double> y);

/// Eq. 9 forward direction: the squared Euclidean distance between two
/// *normal-form* sequences of length n implied by correlation `rho`:
///   D^2 = 2 * (n - 1 - n * rho)
/// Clamped at 0 (rho close to 1 can make the expression slightly negative).
double CorrelationToSquaredDistance(double rho, std::size_t n);

/// Eq. 9 as a threshold translator: the Euclidean distance threshold
/// equivalent to "correlation >= min_correlation" for normal-form sequences
/// of length n. (Used by every experiment in Section 5: rho = 0.96.)
double CorrelationToDistanceThreshold(double min_correlation, std::size_t n);

/// Eq. 9 reverse direction: the correlation implied by a squared Euclidean
/// distance between two normal-form sequences of length n:
///   rho = (n - 1 - D^2/2) / n
double SquaredDistanceToCorrelation(double squared_distance, std::size_t n);

}  // namespace tsq::ts

#endif  // TSQ_TS_DISTANCE_H_
