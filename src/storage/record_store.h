#ifndef TSQ_STORAGE_RECORD_STORE_H_
#define TSQ_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"
#include "ts/series.h"

namespace tsq::storage {

/// Locates a stored record: the page it starts on and the byte offset of its
/// header within that page.
struct RecordId {
  PageId page = kInvalidPageId;
  std::uint32_t offset = 0;

  bool operator==(const RecordId&) const = default;
};

/// Append-only store of variable-length records packed into pages.
///
/// This is the "full database record" storage of the paper's Query 1: the
/// post-processing step fetches each candidate's complete sequence from here,
/// and every page touched counts as a disk access — the second term of the
/// cost model (Eq. 18).
///
/// Layout: records are appended into the current page as
/// [u32 total_length][payload fragment]; a record that does not fit continues
/// on freshly allocated (hence consecutive) pages until exhausted. A page's
/// trailing free space smaller than a header starts a new page.
class RecordStore {
 public:
  /// The store allocates pages from (and counts reads against) `file`, which
  /// it does not own. The file must be used exclusively by this store.
  explicit RecordStore(PageFile* file);

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Appends a record; returns its id.
  Result<RecordId> Append(std::span<const std::uint8_t> payload);

  /// Fetches a record by id (reads, and counts, every page it spans). When
  /// `pages_read` is non-null it is *incremented* by the number of page
  /// reads this call issued — the per-task accounting the parallel query
  /// executor uses instead of diffing the file's global counter.
  Result<std::vector<std::uint8_t>> Get(RecordId id,
                                        std::uint64_t* pages_read =
                                            nullptr) const;

  /// Fetches `length` payload bytes starting at `byte_offset` within the
  /// record, reading (and counting) only the pages that range spans plus the
  /// header page. OutOfRange when the range exceeds the record.
  Result<std::vector<std::uint8_t>> GetRange(RecordId id,
                                             std::size_t byte_offset,
                                             std::size_t length) const;

  /// Typed range fetch: `count` doubles starting at value index `first`.
  Result<ts::Series> GetSeriesRange(RecordId id, std::size_t first,
                                    std::size_t count) const;

  /// Convenience: stores a time series as a record of doubles.
  Result<RecordId> AppendSeries(const ts::Series& series);

  /// Convenience: fetches a record and decodes it as a series of doubles.
  /// `pages_read`, when non-null, is incremented per page read (see Get).
  Result<ts::Series> GetSeries(RecordId id,
                               std::uint64_t* pages_read = nullptr) const;

  std::size_t record_count() const { return record_count_; }

  /// Persistence hooks: the append cursor to save alongside the page file,
  /// and its restoration after PageFile::LoadFrom.
  PageId current_page() const { return current_page_; }
  std::uint32_t cursor() const { return cursor_; }
  void RestoreForLoad(PageId current_page, std::uint32_t cursor,
                      std::size_t record_count) {
    current_page_ = current_page;
    cursor_ = cursor;
    record_count_ = record_count;
  }

 private:
  static constexpr std::uint32_t kHeaderSize = sizeof(std::uint32_t);

  PageFile* file_;
  PageId current_page_ = kInvalidPageId;
  std::uint32_t cursor_ = 0;  // next free byte within current_page_
  std::size_t record_count_ = 0;
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_RECORD_STORE_H_
